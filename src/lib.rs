//! # incast-bursts
//!
//! A Rust reproduction of *"Understanding Incast Bursts in Modern
//! Datacenters"* (Canel et al., IMC '24). This façade crate re-exports the
//! workspace's public API; see the individual crates for detail:
//!
//! - [`simnet`]: deterministic discrete-event, packet-level datacenter
//!   network simulator (the NS3 substitute),
//! - [`transport`]: TCP endpoints with pluggable congestion control
//!   (DCTCP, Reno, CUBIC, and the paper's Section-5 mitigation variants),
//! - [`millisampler`]: host-side 1 ms ingress sampling and burst detection
//!   (the Millisampler substitute),
//! - [`workload`]: incast (partition/aggregate) applications and the five
//!   production service models of the paper's Table 1,
//! - [`incast_core`] (re-exported as [`core_api`]): experiment configs and
//!   runners for every figure and table in the paper, plus ablations and
//!   mitigation prototypes,
//! - [`stats`]: deterministic RNG, distributions, CDFs, and time series,
//! - [`telemetry`]: the unified observability layer — metrics registry,
//!   event sinks (JSONL export, flow filters), run manifests, and
//!   event-loop profiles shared by every crate above.
//!
//! ## Quickstart
//!
//! ```
//! use incast_bursts::core_api::modes::{ModesConfig, run_incast};
//!
//! // A tiny 20-flow, 1 ms incast burst through the paper's dumbbell.
//! let mut cfg = ModesConfig::default();
//! cfg.num_flows = 20;
//! cfg.burst_duration_ms = 1.0;
//! cfg.num_bursts = 2;
//! let result = run_incast(&cfg);
//! assert!(result.mean_bct_ms > 0.0);
//! ```

pub use incast_core as core_api;
pub use millisampler;
pub use simnet;
pub use stats;
pub use telemetry;
pub use transport;
pub use workload;
