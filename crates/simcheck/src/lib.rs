//! # simcheck — randomized scenario fuzzing for the incast simulator
//!
//! Three layers, in the spirit of generative protocol checkers:
//!
//! 1. **Invariants.** Built with the `check` feature enabled everywhere, so
//!    every run carries `simnet::check`'s shadow byte ledgers, packet
//!    conservation, per-node time monotonicity, and the transport crates'
//!    TCP conformance oracle (sequence-space monotonicity, no ACK of unsent
//!    data, RTO backoff doubling, ECE-matches-CE).
//! 2. **Scenario fuzzing.** [`Scenario::generate`] derives a random but
//!    seeded incast configuration — fan-in, burst schedule, queue capacity,
//!    ECN threshold, shared-buffer model, delayed ACKs, grouping — and
//!    [`check_scenario`] runs it on both event schedulers (timing wheel and
//!    reference heap) plus a repeat run, requiring byte-identical results
//!    and zero recorded violations.
//! 3. **Shrinking.** [`shrink`] greedily minimizes a failing scenario
//!    (halve flows, drop the buffer, shorten bursts, ...) while the failure
//!    persists, and [`reproducer`] renders the survivor as a ready-to-paste
//!    `#[test]`.
//!
//! The `simcheck` binary drives seed ranges in parallel:
//! `cargo run --release -p simcheck -- --seeds 500`.

use incast_core::cache::CacheValue;
use incast_core::modes::{run_incast_with, MitigationKind};
use incast_core::{FaultSpec, ModesConfig, TopologySpec};
use simnet::check::Violation;
use simnet::{BufferPolicy, EventQueue, QueueConfig, SimTime, TimingWheel};
use stats::Rng;
use transport::{DelayedAckConfig, TcpConfig, TransportKind};
use workload::{BurstSchedule, Grouping};

/// Shared-buffer part of a [`Scenario`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferScenario {
    /// Pool size in KiB.
    pub total_kb: u64,
    /// Dynamic Threshold alpha x100 (`Some(50)` = alpha 0.5), or `None`
    /// for a static pool.
    pub alpha_x100: Option<u32>,
}

/// Fault-injection part of a [`Scenario`]: at most one scheduled fault,
/// with integral microsecond windows so scenarios stay `Eq` and shrink
/// deterministically. All-`None` means a fault-free run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultScenario {
    /// Trunk blackhole over `[from_us, until_us)`.
    pub blackhole_us: Option<(u64, u64)>,
    /// Random trunk loss over a window, probability in per-mille.
    pub loss_pm: Option<(u64, u64, u32)>,
    /// Host pause (paper-style straggler) of one sender over a window.
    pub straggler_us: Option<(u64, u64, u32)>,
}

impl FaultScenario {
    /// True when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        *self == FaultScenario::default()
    }

    /// Length of the scheduled window in microseconds (0 when empty).
    pub fn window_us(&self) -> u64 {
        let span = |w: (u64, u64)| w.1.saturating_sub(w.0);
        self.blackhole_us.map(span).unwrap_or(0)
            + self
                .loss_pm
                .map(|(a, b, _)| b.saturating_sub(a))
                .unwrap_or(0)
            + self
                .straggler_us
                .map(|(a, b, _)| b.saturating_sub(a))
                .unwrap_or(0)
    }
}

/// Control-plane part of a [`Scenario`]: which notification plane runs and
/// how lossy its control path is (per-mille, so scenarios stay `Eq`;
/// 1000 = fully blackholed, which must degrade to exactly the baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MitigationScenario {
    /// `false` = Pulser pause plane on the receiver downlinks; `true` =
    /// distributed cwnd-cut plane on every fabric tier.
    pub distributed: bool,
    /// Notification loss probability in per-mille.
    pub loss_pm: u32,
}

/// One randomly generated incast scenario. The `Debug` rendering is valid
/// construction syntax, which is what lets [`reproducer`] emit a paste-able
/// test from a shrunk failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Seed for both the generator that produced this scenario and the run
    /// itself.
    pub seed: u64,
    /// Incast fan-in (N senders).
    pub num_flows: usize,
    /// Burst duration in tenths of a millisecond (integral so scenarios
    /// stay `Eq` and shrink deterministically).
    pub burst_ms_x10: u64,
    /// Bursts per run.
    pub num_bursts: u32,
    /// Bottleneck queue capacity in packets.
    pub queue_capacity_pkts: u32,
    /// ECN marking threshold K in packets (`None` = no marking).
    pub ecn_threshold_pkts: Option<u32>,
    /// Optional shared buffer on the receiver ToR.
    pub buffer: Option<BufferScenario>,
    /// DCTCP delayed-ACK state machine on or off.
    pub delayed_ack: bool,
    /// Receiver-side group scheduling (§5.2 mitigation path).
    pub grouping: bool,
    /// Open-loop periodic bursts instead of request-response.
    pub periodic: bool,
    /// Scheduled fault, if any (blackhole, lossy window, or straggler).
    pub fault: FaultScenario,
    /// Run the QUIC-style loss-recovery stack instead of TCP NewReno.
    pub quic: bool,
    /// Multi-rack Clos fabric as `(racks, spines)`, or `None` for the
    /// single-rack dumbbell. Senders round-robin across racks, so the same
    /// fan-in exercises ECMP across the spine tier.
    pub clos: Option<(u8, u8)>,
    /// In-fabric notification control plane, or `None` for mitigation-off.
    pub mitigation: Option<MitigationScenario>,
}

impl Scenario {
    /// Derives a random scenario from `seed`. The same seed always yields
    /// the same scenario, and the scenario's run uses the same seed, so one
    /// integer pins the whole test case.
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = Rng::new(seed ^ 0x51AC_C0DE_D00D_F00D);
        let queue_capacity_pkts = rng.range_u64(30, 300) as u32;
        let ecn_threshold_pkts = if rng.chance(0.85) {
            Some(rng.range_u64(4, (queue_capacity_pkts / 2).max(5) as u64) as u32)
        } else {
            None
        };
        let buffer = if rng.chance(0.6) {
            Some(BufferScenario {
                total_kb: rng.range_u64(64, 1024),
                alpha_x100: if rng.chance(0.7) {
                    Some(*rng.choose(&[25u32, 50, 100, 200, 400, 800]).unwrap())
                } else {
                    None
                },
            })
        } else {
            None
        };
        let mut sc = Scenario {
            seed,
            num_flows: rng.range_u64(2, 40) as usize,
            burst_ms_x10: rng.range_u64(5, 40),
            num_bursts: rng.range_u64(1, 3) as u32,
            queue_capacity_pkts,
            ecn_threshold_pkts,
            buffer,
            delayed_ack: rng.chance(0.3),
            grouping: rng.chance(0.2),
            periodic: rng.chance(0.3),
            fault: FaultScenario::default(),
            quic: false,
            clos: None,
            mitigation: None,
        };
        // Fault draws come LAST so adding them did not reshuffle the
        // scenarios older seeds generate.
        if rng.chance(0.3) {
            let from = rng.range_u64(50, 2_000);
            let until = from + rng.range_u64(100, 3_000);
            sc.fault = match rng.range_u64(0, 3) {
                0 => FaultScenario {
                    blackhole_us: Some((from, until)),
                    ..FaultScenario::default()
                },
                1 => FaultScenario {
                    loss_pm: Some((from, until, rng.range_u64(10, 200) as u32)),
                    ..FaultScenario::default()
                },
                _ => FaultScenario {
                    straggler_us: Some((from, until, rng.range_u64(0, sc.num_flows as u64) as u32)),
                    ..FaultScenario::default()
                },
            };
        }
        // The transport draw also comes after everything older, for the
        // same seed-stability reason: seeds that predate the QUIC stack
        // still generate the same TCP scenarios they always did.
        sc.quic = rng.chance(0.4);
        // The topology draw is the newest of all, appended last like the
        // two above it: seeds that predate multi-rack fabrics still
        // generate the same single-rack scenarios they always did.
        if rng.chance(0.25) {
            sc.clos = Some((rng.range_u64(2, 4) as u8, rng.range_u64(1, 4) as u8));
        }
        // The control-plane draw is the newest, appended after every older
        // draw for the same seed-stability reason. Loss spans the full
        // 0..=1000 per-mille range so the sample covers lossless planes,
        // partially-degraded ones, and the fully-dead plane (which must be
        // byte-identical to mitigation-off).
        if rng.chance(0.25) {
            sc.mitigation = Some(MitigationScenario {
                distributed: rng.chance(0.4),
                loss_pm: rng.range_u64(0, 1000) as u32,
            });
        }
        sc
    }

    /// The [`ModesConfig`] this scenario runs as.
    pub fn to_config(&self) -> ModesConfig {
        let tcp = TcpConfig {
            transport: if self.quic {
                TransportKind::Quic
            } else {
                TransportKind::Tcp
            },
            delayed_ack: if self.delayed_ack {
                Some(DelayedAckConfig::default())
            } else {
                None
            },
            ..TcpConfig::default()
        };
        let tor_queue = QueueConfig {
            capacity_bytes: self.queue_capacity_pkts as u64 * 1500,
            capacity_pkts: Some(self.queue_capacity_pkts),
            ecn_threshold_pkts: self.ecn_threshold_pkts,
            ecn_threshold_bytes: None,
        };
        let receiver_tor_buffer = self.buffer.map(|b| {
            let policy = match b.alpha_x100 {
                Some(a) => BufferPolicy::DynamicThreshold {
                    alpha: a as f64 / 100.0,
                },
                None => BufferPolicy::StaticPool,
            };
            (b.total_kb * 1024, policy)
        });
        ModesConfig {
            num_flows: self.num_flows,
            topology: match self.clos {
                Some((racks, spines)) => TopologySpec::Clos {
                    racks: racks as usize,
                    spines: spines as usize,
                },
                None => TopologySpec::Dumbbell,
            },
            burst_duration_ms: self.burst_ms_x10 as f64 / 10.0,
            num_bursts: self.num_bursts,
            warmup_bursts: 0,
            tcp,
            tor_queue,
            receiver_tor_buffer,
            grouping: if self.grouping {
                Some(Grouping {
                    group_size: (self.num_flows / 4).max(2),
                    group_gap: SimTime::from_us(200),
                })
            } else {
                None
            },
            schedule: if self.periodic {
                BurstSchedule::Periodic {
                    period: SimTime::from_ms(5),
                }
            } else {
                BurstSchedule::AfterCompletion {
                    gap: SimTime::from_ms(1),
                }
            },
            seed: self.seed,
            horizon: SimTime::from_secs(5),
            faults: {
                let mut f = FaultSpec::default();
                if let Some((a, b)) = self.fault.blackhole_us {
                    f.blackhole = Some((SimTime::from_us(a), SimTime::from_us(b)));
                }
                if let Some((a, b, pm)) = self.fault.loss_pm {
                    f.loss = Some((SimTime::from_us(a), SimTime::from_us(b), pm as f64 / 1000.0));
                }
                if let Some((a, b, idx)) = self.fault.straggler_us {
                    f.straggler = Some((SimTime::from_us(a), SimTime::from_us(b), idx));
                }
                f
            },
            mitigation: {
                let mut m = incast_core::modes::MitigationSpec::default();
                if let Some(mit) = self.mitigation {
                    m.kind = if mit.distributed {
                        MitigationKind::Distributed
                    } else {
                        MitigationKind::Pulser
                    };
                    m.notif_loss = mit.loss_pm as f64 / 1000.0;
                }
                m
            },
            ..ModesConfig::default()
        }
    }
}

/// A failed scenario: any recorded invariant violation, a wheel-vs-heap
/// divergence, or a repeat-run nondeterminism.
#[derive(Debug)]
pub struct Failure {
    /// The scenario that failed.
    pub scenario: Scenario,
    /// Violations drained from the invariant log (capped; see
    /// `simnet::check`), plus the true total.
    pub violations: Vec<Violation>,
    /// Total violation count (may exceed `violations.len()`).
    pub violation_count: u64,
    /// Differential mismatch description, if any.
    pub mismatch: Option<String>,
}

impl Failure {
    /// One-line summary for reports.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        if self.violation_count > 0 {
            let kinds: Vec<&str> = {
                let mut k: Vec<&str> = self.violations.iter().map(|v| v.kind).collect();
                k.sort_unstable();
                k.dedup();
                k
            };
            parts.push(format!(
                "{} violation(s): {}",
                self.violation_count,
                kinds.join(", ")
            ));
        }
        if let Some(m) = &self.mismatch {
            parts.push(m.clone());
        }
        parts.join("; ")
    }
}

/// Result-encoding with the wall-clock profile field stripped (everything
/// else in an [`incast_core::IncastRunResult`] is deterministic).
fn deterministic_encoding(result: &incast_core::IncastRunResult) -> String {
    let enc = result.encode();
    enc.split(",\"p_wall_ns\":")
        .next()
        .unwrap_or(&enc)
        .to_string()
}

/// Runs `scenario` with all invariants on: once on the timing wheel, once
/// on the reference heap scheduler, and once more on the wheel for repeat
/// determinism. Returns `None` on a clean pass, `Some(Failure)` otherwise.
pub fn check_scenario(scenario: &Scenario) -> Option<Failure> {
    simnet::check::reset();
    let cfg = scenario.to_config();

    let (r_wheel, m_wheel) = run_incast_with::<TimingWheel>(&cfg, None);
    let (r_heap, m_heap) = run_incast_with::<EventQueue>(&cfg, None);
    let (r_again, _) = run_incast_with::<TimingWheel>(&cfg, None);

    let e_wheel = deterministic_encoding(&r_wheel);
    let e_heap = deterministic_encoding(&r_heap);
    let e_again = deterministic_encoding(&r_again);

    let mut mismatch = None;
    if e_wheel != e_heap {
        mismatch = Some(format!(
            "wheel vs heap result diverged (wheel {} B, heap {} B encoded)",
            e_wheel.len(),
            e_heap.len()
        ));
    } else if m_wheel.events_processed != m_heap.events_processed
        || m_wheel.sim_time_ps != m_heap.sim_time_ps
        || m_wheel.counters_json != m_heap.counters_json
    {
        mismatch = Some(format!(
            "wheel vs heap manifest diverged (events {} vs {}, sim_time {} vs {} ps)",
            m_wheel.events_processed,
            m_heap.events_processed,
            m_wheel.sim_time_ps,
            m_heap.sim_time_ps
        ));
    } else if e_wheel != e_again {
        mismatch = Some("repeat run with identical seed diverged".to_string());
    }

    // Graceful-degradation invariants: a control plane may pause or pace
    // flows — in overloaded scenarios it legitimately completes bursts the
    // baseline never finishes — but it can never *wedge* one, and it can
    // never make a burst pathologically slower than the mitigation-off
    // twin of the same scenario. Two checks:
    //
    // 1. No deadlock: if the mitigated run drains idle *before* the
    //    horizon while the baseline proved more bursts were completable,
    //    some flow wedged (every pause self-expires within the transport's
    //    guard bound — that half is the `pause_guard` oracle, live in
    //    every checked run — so this should be structurally impossible).
    //    Running out of horizon with bursts outstanding is a slowdown,
    //    not a wedge, and is judged by the envelope instead.
    // 2. Degradation envelope, per burst over the commonly-completed
    //    prefix: mitigated BCT within 10x baseline + 500 ms. Scoped to
    //    the plane/transport pairs where bounded degradation is a design
    //    guarantee: pause planes (the pause is clamped to the guard bound,
    //    so the worst case is delay, never collapse) and cwnd-cut planes
    //    over QUIC (PTO repairs small-window tail losses at RTT scale —
    //    seed 109: cut+QUIC *improves* drops 139→19 at unchanged BCT).
    //    Cut planes over min-RTO TCP are excluded by design, and that
    //    exclusion is itself a finding this fuzzer produced: a cut at
    //    burst start shrinks windows below what dup-ACK fast retransmit
    //    needs (no RFC 3042 limited transmit, no TLP in the paper's
    //    stack), so drops that the baseline repairs at RTT scale become
    //    200 ms-floor RTO chains — 2 ms bursts regress to 1.2–2.8 s even
    //    with a lossless control path. See EXPERIMENTS.md "Mitigations".
    if let Some(mit) = scenario.mitigation.filter(|_| mismatch.is_none()) {
        let enveloped = !mit.distributed || scenario.quic;
        let off = Scenario {
            mitigation: None,
            ..*scenario
        };
        let (r_off, _) = run_incast_with::<TimingWheel>(&off.to_config(), None);
        if r_wheel.bcts_ms.len() < r_off.bcts_ms.len() && m_wheel.sim_time_ps < cfg.horizon.as_ps()
        {
            mismatch = Some(format!(
                "mitigated run went idle at {} ps with bursts outstanding \
                 ({} completed vs baseline {}): guard-timer deadlock?",
                m_wheel.sim_time_ps,
                r_wheel.bcts_ms.len(),
                r_off.bcts_ms.len()
            ));
        }
        if enveloped && mismatch.is_none() {
            for (i, (&on_ms, &off_ms)) in r_wheel.bcts_ms.iter().zip(&r_off.bcts_ms).enumerate() {
                let envelope_ms = off_ms * 10.0 + 500.0;
                if on_ms > envelope_ms {
                    mismatch = Some(format!(
                        "degradation envelope breached at burst {i}: mitigated BCT \
                         {on_ms:.3} ms vs baseline {off_ms:.3} ms \
                         (envelope {envelope_ms:.3} ms)"
                    ));
                    break;
                }
            }
        }
    }

    let violation_count = simnet::check::violation_count();
    let violations = simnet::check::take();
    if violation_count == 0 && mismatch.is_none() {
        return None;
    }
    Some(Failure {
        scenario: *scenario,
        violations,
        violation_count,
        mismatch,
    })
}

/// Shrinking transformations of `sc`, each strictly smaller (so greedy
/// shrinking terminates).
fn shrink_candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    // Mitigation off comes FIRST: a failure that persists without the
    // control plane is not a control-plane bug, and ruling that out early
    // keeps every later shrink step running on the cheaper baseline.
    if sc.mitigation.is_some() {
        out.push(Scenario {
            mitigation: None,
            ..*sc
        });
    }
    if sc.num_flows > 2 {
        out.push(Scenario {
            num_flows: (sc.num_flows / 2).max(2),
            ..*sc
        });
        out.push(Scenario {
            num_flows: sc.num_flows - 1,
            ..*sc
        });
    }
    if sc.num_bursts > 1 {
        out.push(Scenario {
            num_bursts: 1,
            ..*sc
        });
    }
    if sc.burst_ms_x10 > 5 {
        out.push(Scenario {
            burst_ms_x10: (sc.burst_ms_x10 / 2).max(5),
            ..*sc
        });
    }
    if sc.buffer.is_some() {
        out.push(Scenario {
            buffer: None,
            ..*sc
        });
    }
    if sc.grouping {
        out.push(Scenario {
            grouping: false,
            ..*sc
        });
    }
    if sc.delayed_ack {
        out.push(Scenario {
            delayed_ack: false,
            ..*sc
        });
    }
    if sc.periodic {
        out.push(Scenario {
            periodic: false,
            ..*sc
        });
    }
    if sc.quic {
        // Shrink toward the TCP baseline: a failure that persists without
        // the QUIC stack is not a QUIC bug.
        out.push(Scenario { quic: false, ..*sc });
    }
    if let Some((racks, spines)) = sc.clos {
        // Shrink toward the dumbbell: drop the multi-rack fabric entirely...
        out.push(Scenario { clos: None, ..*sc });
        // ...or walk racks, then spines, down toward the 1x1 degenerate
        // form (which is byte-identical to the dumbbell build).
        if racks > 1 {
            out.push(Scenario {
                clos: Some((racks - 1, spines)),
                ..*sc
            });
        }
        if spines > 1 {
            out.push(Scenario {
                clos: Some((racks, spines - 1)),
                ..*sc
            });
        }
    }
    if sc.ecn_threshold_pkts.is_some() {
        out.push(Scenario {
            ecn_threshold_pkts: None,
            ..*sc
        });
    }
    if !sc.fault.is_empty() {
        // Drop the fault entirely...
        out.push(Scenario {
            fault: FaultScenario::default(),
            ..*sc
        });
        // ...or keep it but halve its window (strictly shorter).
        if sc.fault.window_us() > 100 {
            let halve = |(a, b): (u64, u64)| (a, a + (b - a) / 2);
            out.push(Scenario {
                fault: FaultScenario {
                    blackhole_us: sc.fault.blackhole_us.map(halve),
                    loss_pm: sc.fault.loss_pm.map(|(a, b, p)| (a, a + (b - a) / 2, p)),
                    straggler_us: sc
                        .fault
                        .straggler_us
                        .map(|(a, b, i)| (a, a + (b - a) / 2, i)),
                },
                ..*sc
            });
        }
    }
    out
}

/// Greedily shrinks a failing scenario: applies the first transformation
/// that still fails, repeats until no transformation preserves the failure.
/// Every candidate is strictly smaller, so this terminates. Returns the
/// minimal failing scenario (the input itself if nothing smaller fails).
pub fn shrink(failing: &Scenario) -> Scenario {
    let mut current = *failing;
    loop {
        let mut improved = false;
        for cand in shrink_candidates(&current) {
            if check_scenario(&cand).is_some() {
                current = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// Renders a shrunk failure as a ready-to-paste `#[test]`.
pub fn reproducer(sc: &Scenario, failure: &Failure) -> String {
    format!(
        r#"// Shrunk by `cargo run -p simcheck` from seed {seed}.
// Failure: {summary}
#[test]
fn simcheck_reproducer_seed_{seed}() {{
    use simcheck::*;
    let scenario = {sc:?};
    assert!(
        simcheck::check_scenario(&scenario).is_none(),
        "invariant violation or scheduler divergence"
    );
}}
"#,
        seed = sc.seed,
        summary = failure.summary(),
        sc = sc,
    )
}

/// Outcome of fuzzing one seed (what the binary and CI report).
#[derive(Debug)]
pub enum SeedOutcome {
    /// All invariants held, schedulers agreed.
    Pass,
    /// Something failed; carries the original failure.
    Fail(Box<Failure>),
}

/// Forced control-plane mode for a sweep (the `--mitigation` CLI flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForceMitigation {
    /// Strip the per-seed mitigation draw: baseline-only.
    Off,
    /// Pin a Pulser pause plane with a seed-derived notification loss.
    Pulser,
    /// Pin a distributed cwnd-cut plane with a seed-derived loss.
    Distributed,
}

impl ForceMitigation {
    /// The scenario field this mode pins. Loss walks the full per-mille
    /// range (including 1000 = dead plane) as the seed advances, so a
    /// forced sweep still covers every degradation regime.
    pub fn pin(&self, seed: u64) -> Option<MitigationScenario> {
        let loss_pm = ((seed % 11) * 100) as u32;
        match self {
            ForceMitigation::Off => None,
            ForceMitigation::Pulser => Some(MitigationScenario {
                distributed: false,
                loss_pm,
            }),
            ForceMitigation::Distributed => Some(MitigationScenario {
                distributed: true,
                loss_pm,
            }),
        }
    }
}

/// Fuzzes one seed: generate, run, check. `force_quic` pins the transport
/// for the whole sweep (`Some(true)` = QUIC-only, `Some(false)` =
/// TCP-only); `force_clos` pins the topology the same way (`Some(true)` =
/// a seed-derived multi-rack Clos, `Some(false)` = dumbbell-only);
/// `force_mitigation` pins the control plane (off, or a seed-derived lossy
/// plane of either kind); `None` keeps the per-seed samples from
/// [`Scenario::generate`].
pub fn fuzz_seed_with(
    seed: u64,
    force_quic: Option<bool>,
    force_clos: Option<bool>,
    force_mitigation: Option<ForceMitigation>,
) -> SeedOutcome {
    let mut scenario = Scenario::generate(seed);
    if let Some(quic) = force_quic {
        scenario.quic = quic;
    }
    match force_clos {
        Some(true) => {
            scenario.clos = Some((2 + (seed % 3) as u8, 1 + (seed % 4) as u8));
        }
        Some(false) => scenario.clos = None,
        None => {}
    }
    if let Some(force) = force_mitigation {
        scenario.mitigation = force.pin(seed);
    }
    match check_scenario(&scenario) {
        None => SeedOutcome::Pass,
        Some(f) => SeedOutcome::Fail(Box::new(f)),
    }
}

/// Fuzzes one seed with the per-seed transport sample.
pub fn fuzz_seed(seed: u64) -> SeedOutcome {
    fuzz_seed_with(seed, None, None, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(Scenario::generate(17), Scenario::generate(17));
        assert_ne!(Scenario::generate(17), Scenario::generate(18));
    }

    #[test]
    fn scenarios_cover_the_config_space() {
        let scs: Vec<Scenario> = (0..200).map(Scenario::generate).collect();
        assert!(scs.iter().any(|s| s.buffer.is_some()));
        assert!(scs.iter().any(|s| s.buffer.is_none()));
        assert!(scs.iter().any(|s| s.delayed_ack));
        assert!(scs.iter().any(|s| s.grouping));
        assert!(scs.iter().any(|s| s.periodic));
        assert!(scs.iter().any(|s| s.ecn_threshold_pkts.is_none()));
        assert!(scs.iter().any(|s| s.fault.is_empty()));
        assert!(scs.iter().any(|s| s.fault.blackhole_us.is_some()));
        assert!(scs.iter().any(|s| s.fault.loss_pm.is_some()));
        assert!(scs.iter().any(|s| s.fault.straggler_us.is_some()));
        assert!(scs.iter().any(|s| s.quic));
        assert!(scs.iter().any(|s| !s.quic));
        assert!(
            scs.iter().any(|s| s.quic && !s.fault.is_empty()),
            "no faulted QUIC scenario in the sample"
        );
        assert!(scs.iter().any(|s| s.clos.is_some()));
        assert!(scs.iter().any(|s| s.clos.is_none()));
        assert!(
            scs.iter()
                .any(|s| matches!(s.clos, Some((_, sp)) if sp > 1)),
            "no multi-spine Clos scenario in the sample"
        );
        assert!(scs.iter().any(|s| s.mitigation.is_some()));
        assert!(scs.iter().any(|s| s.mitigation.is_none()));
        assert!(
            scs.iter()
                .any(|s| matches!(s.mitigation, Some(m) if m.distributed)),
            "no distributed control plane in the sample"
        );
        assert!(
            scs.iter()
                .any(|s| matches!(s.mitigation, Some(m) if !m.distributed && m.loss_pm > 0)),
            "no lossy Pulser plane in the sample"
        );
        for s in &scs {
            assert!((2..=40).contains(&s.num_flows));
            assert!((5..=40).contains(&s.burst_ms_x10));
            if let Some(k) = s.ecn_threshold_pkts {
                assert!(k < s.queue_capacity_pkts, "K below capacity");
            }
            if let Some((r, sp)) = s.clos {
                assert!((2..=4).contains(&r), "racks in range");
                assert!((1..=4).contains(&sp), "spines in range");
            }
            if let Some(m) = s.mitigation {
                assert!(m.loss_pm <= 1000, "loss in per-mille range");
            }
        }
    }

    #[test]
    fn mitigation_off_is_the_first_shrink_candidate() {
        let sc = Scenario {
            mitigation: Some(MitigationScenario {
                distributed: true,
                loss_pm: 300,
            }),
            ..Scenario::generate(1)
        };
        let cands = shrink_candidates(&sc);
        assert_eq!(
            cands.first().map(|c| c.mitigation),
            Some(None),
            "shrinker must try turning the mitigation off first"
        );
    }

    #[test]
    fn forced_mitigation_pins_cover_the_loss_range() {
        let pins: Vec<_> = (0..11)
            .map(|s| ForceMitigation::Pulser.pin(s).unwrap())
            .collect();
        assert!(pins.iter().any(|m| m.loss_pm == 0));
        assert!(pins.iter().any(|m| m.loss_pm == 1000));
        assert!(pins.iter().all(|m| !m.distributed));
        assert!(ForceMitigation::Distributed.pin(3).unwrap().distributed);
        assert_eq!(ForceMitigation::Off.pin(3), None);
    }

    #[test]
    fn debug_rendering_is_construction_syntax() {
        let sc = Scenario::generate(3);
        let dbg = format!("{sc:?}");
        assert!(dbg.starts_with("Scenario {"), "{dbg}");
        assert!(dbg.contains("seed: 3"), "{dbg}");
    }

    #[test]
    fn shrink_candidates_are_strictly_smaller() {
        let size = |s: &Scenario| {
            s.num_flows as u64
                + s.num_bursts as u64
                + s.burst_ms_x10
                + s.buffer.is_some() as u64
                + s.grouping as u64
                + s.delayed_ack as u64
                + s.periodic as u64
                + s.ecn_threshold_pkts.is_some() as u64
                + (!s.fault.is_empty()) as u64
                + s.fault.window_us()
                + s.quic as u64
                + s.clos.map(|(r, sp)| 1 + r as u64 + sp as u64).unwrap_or(0)
                + s.mitigation.is_some() as u64
        };
        // Cover both fault-free and faulted starting points.
        let mut faulted = 0;
        for seed in 0..40 {
            let sc = Scenario::generate(seed);
            faulted += (!sc.fault.is_empty()) as u64;
            for cand in shrink_candidates(&sc) {
                assert!(size(&cand) < size(&sc), "{cand:?} not smaller than {sc:?}");
            }
        }
        assert!(faulted > 0, "no faulted scenario in the sample");
    }
}
