//! The simcheck CLI: fuzz a seed range with all invariants enabled.
//!
//! ```sh
//! cargo run --release -p simcheck -- --seeds 500
//! cargo run --release -p simcheck -- --seeds 200 --start 1000 --report out.txt
//! ```
//!
//! Each seed becomes one random scenario, run on both schedulers plus a
//! repeat run. Failures are shrunk to minimal reproducers and printed as
//! paste-able `#[test]`s; the process exits nonzero if anything failed.

use incast_core::{default_threads, par_map};
use simcheck::{fuzz_seed_with, reproducer, shrink, ForceMitigation, SeedOutcome};
use std::io::Write;

struct Args {
    seeds: u64,
    start: u64,
    threads: usize,
    report: Option<String>,
    /// `None` = per-seed sample; `Some(true)` = QUIC only; `Some(false)` =
    /// TCP only.
    force_quic: Option<bool>,
    /// `None` = per-seed sample; `Some(true)` = multi-rack Clos only;
    /// `Some(false)` = dumbbell only.
    force_clos: Option<bool>,
    /// `None` = per-seed sample; otherwise pin the control plane for the
    /// whole sweep (off, or a seed-derived lossy plane of either kind).
    force_mitigation: Option<ForceMitigation>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 100,
        start: 0,
        threads: default_threads(),
        report: None,
        force_quic: None,
        force_clos: None,
        force_mitigation: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--seeds" => args.seeds = value("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--start" => args.start = value("--start")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => {
                args.threads = value("--threads")?.parse().map_err(|e| format!("{e}"))?
            }
            "--report" => args.report = Some(value("--report")?),
            "--transport" => {
                args.force_quic = match value("--transport")?.as_str() {
                    "mix" => None,
                    "tcp" => Some(false),
                    "quic" => Some(true),
                    other => return Err(format!("unknown transport {other} (tcp|quic|mix)")),
                }
            }
            "--topology" => {
                args.force_clos = match value("--topology")?.as_str() {
                    "mix" => None,
                    "dumbbell" => Some(false),
                    "clos" => Some(true),
                    other => return Err(format!("unknown topology {other} (dumbbell|clos|mix)")),
                }
            }
            "--mitigation" => {
                args.force_mitigation = match value("--mitigation")?.as_str() {
                    "mix" => None,
                    "off" => Some(ForceMitigation::Off),
                    "pulser" => Some(ForceMitigation::Pulser),
                    "distributed" => Some(ForceMitigation::Distributed),
                    other => {
                        return Err(format!(
                            "unknown mitigation {other} (off|pulser|distributed|mix)"
                        ))
                    }
                }
            }
            "--help" | "-h" => {
                return Err("usage: simcheck [--seeds N] [--start S] [--threads T] \
                     [--transport tcp|quic|mix] [--topology dumbbell|clos|mix] \
                     [--mitigation off|pulser|distributed|mix] [--report FILE]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let seeds: Vec<u64> = (args.start..args.start + args.seeds).collect();
    println!(
        "simcheck: fuzzing seeds {}..{} on {} thread(s), invariants on, \
         transport {}, topology {}, mitigation {}",
        args.start,
        args.start + args.seeds,
        args.threads,
        match args.force_quic {
            None => "mix",
            Some(true) => "quic",
            Some(false) => "tcp",
        },
        match args.force_clos {
            None => "mix",
            Some(true) => "clos",
            Some(false) => "dumbbell",
        },
        match args.force_mitigation {
            None => "mix",
            Some(ForceMitigation::Off) => "off",
            Some(ForceMitigation::Pulser) => "pulser",
            Some(ForceMitigation::Distributed) => "distributed",
        }
    );
    let t0 = std::time::Instant::now();
    let force_quic = args.force_quic;
    let force_clos = args.force_clos;
    let force_mitigation = args.force_mitigation;
    let outcomes = par_map(seeds.clone(), args.threads, |&seed| {
        match fuzz_seed_with(seed, force_quic, force_clos, force_mitigation) {
            SeedOutcome::Pass => None,
            SeedOutcome::Fail(f) => Some((seed, f)),
        }
    });
    let failures: Vec<_> = outcomes.into_iter().flatten().collect();
    let elapsed = t0.elapsed();

    let mut report = String::new();
    report.push_str(&format!(
        "simcheck: {} seed(s) in {:.2?}, {} failure(s)\n",
        args.seeds,
        elapsed,
        failures.len()
    ));
    // Shrink each failure (sequentially: shrinking re-runs scenarios and
    // uses the thread-local violation log).
    for (seed, failure) in &failures {
        report.push_str(&format!(
            "\nseed {seed}: {}\n  original: {:?}\n",
            failure.summary(),
            failure.scenario
        ));
        let minimal = shrink(&failure.scenario);
        report.push_str(&format!("  shrunk:   {minimal:?}\n"));
        report.push_str(&format!(
            "  reproducer:\n{}\n",
            reproducer(&minimal, failure)
        ));
    }
    print!("{report}");
    if let Some(path) = &args.report {
        match std::fs::File::create(path).and_then(|mut f| f.write_all(report.as_bytes())) {
            Ok(()) => println!("report written to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
