//! Smoke coverage of the fuzzer itself: a pinned seed range must pass
//! cleanly, and a deliberately injected accounting bug must be caught and
//! shrunk to a small reproducer.

use simcheck::{
    check_scenario, fuzz_seed, fuzz_seed_with, reproducer, shrink, ForceMitigation, Scenario,
    SeedOutcome,
};

/// A fixed seed range runs with every invariant on and zero violations.
/// (CI runs a larger range in release via the `simcheck` binary.)
#[test]
fn pinned_seed_range_is_clean() {
    for seed in 0..15 {
        match fuzz_seed(seed) {
            SeedOutcome::Pass => {}
            SeedOutcome::Fail(f) => panic!("seed {seed} failed: {}", f.summary()),
        }
    }
}

/// Forced multi-rack topologies hold the same invariants: a pinned seed
/// range re-run with a seed-derived Clos fabric (2-4 racks, 1-4 spines)
/// stays clean on both schedulers. (CI runs a larger range in release via
/// `simcheck --topology clos`.)
#[test]
fn pinned_clos_seed_range_is_clean() {
    for seed in 0..6 {
        match fuzz_seed_with(seed, None, Some(true), None) {
            SeedOutcome::Pass => {}
            SeedOutcome::Fail(f) => panic!("clos seed {seed} failed: {}", f.summary()),
        }
    }
}

/// Forced control planes hold the same invariants: pinned seed ranges
/// re-run with a seed-derived Pulser pause plane and a distributed
/// cwnd-cut plane (losses walking 0..=100 %) stay clean — no guard-timer
/// deadlocks, no degradation-envelope breaches, schedulers agree. (CI runs
/// a 100-seed range in release via `simcheck --mitigation pulser`.)
#[test]
fn pinned_forced_mitigation_seed_ranges_are_clean() {
    for seed in 0..6 {
        match fuzz_seed_with(seed, None, None, Some(ForceMitigation::Pulser)) {
            SeedOutcome::Pass => {}
            SeedOutcome::Fail(f) => panic!("pulser seed {seed} failed: {}", f.summary()),
        }
    }
    for seed in 0..3 {
        match fuzz_seed_with(seed, None, None, Some(ForceMitigation::Distributed)) {
            SeedOutcome::Pass => {}
            SeedOutcome::Fail(f) => panic!("distributed seed {seed} failed: {}", f.summary()),
        }
    }
}

/// The acceptance-criteria scenario: flip the test-only buffer-accounting
/// bug (a one-byte under-release per shared-buffer dequeue — invisible to
/// capacity bounds checks, visible to the shadow ledger), and the checker
/// must catch it and shrink it to a reproducer of at most 10 flows.
#[test]
fn injected_buffer_bug_is_caught_and_shrunk() {
    // Find a generated scenario that exercises a shared buffer.
    let scenario = (0..100)
        .map(Scenario::generate)
        .find(|s| s.buffer.is_some())
        .expect("generator covers shared buffers");

    simnet::check::set_inject_buffer_underrelease(true);
    let failure = check_scenario(&scenario);
    let minimal = failure.as_ref().map(|f| shrink(&f.scenario));
    // Sanity: with the bug off again, the same scenario passes.
    simnet::check::set_inject_buffer_underrelease(false);
    let clean_again = check_scenario(&scenario);

    let failure = failure.expect("injected bug must be caught");
    assert!(
        failure
            .violations
            .iter()
            .any(|v| v.kind == "buffer_accounting"),
        "expected a buffer_accounting violation, got: {}",
        failure.summary()
    );

    let minimal = minimal.unwrap();
    assert!(
        minimal.num_flows <= 10,
        "shrunk reproducer still has {} flows: {minimal:?}",
        minimal.num_flows
    );
    assert!(
        minimal.buffer.is_some(),
        "shrinking must keep the buffer (dropping it removes the failure)"
    );

    let test_src = reproducer(&minimal, &failure);
    assert!(test_src.contains("#[test]"), "{test_src}");
    assert!(test_src.contains("check_scenario"), "{test_src}");
    assert!(
        test_src.contains(&format!("seed: {}", minimal.seed)),
        "{test_src}"
    );

    assert!(clean_again.is_none(), "bug off: scenario must pass again");
}

/// Fault schedules are part of the fuzzed space: flip the test-only
/// fault-drop-miscount bug (drops on an administratively-down link bypass
/// the global `fault_drops` counter, so packet conservation stops
/// balancing — invisible unless a FaultPlan takes a link down), and the
/// checker must catch it on a generated blackhole scenario and shrink it
/// to a minimal plan that *keeps* the fault.
#[test]
fn injected_fault_miscount_is_caught_and_shrunk_to_a_minimal_plan() {
    simnet::check::set_inject_fault_drop_miscount(true);
    // Search generated scenarios for a blackhole whose window actually
    // drops packets under the bug (the outage must overlap live traffic).
    let (scenario, failure) = (0..300)
        .map(Scenario::generate)
        .filter(|s| s.fault.blackhole_us.is_some())
        .find_map(|s| check_scenario(&s).map(|f| (s, f)))
        .expect("some generated blackhole scenario must trip the bug");
    let minimal = shrink(&scenario);
    simnet::check::set_inject_fault_drop_miscount(false);

    assert!(
        failure
            .violations
            .iter()
            .any(|v| v.kind == "packet_conservation"),
        "expected a packet_conservation violation, got: {}",
        failure.summary()
    );
    assert!(
        minimal.fault.blackhole_us.is_some(),
        "shrinking must keep the fault (dropping it removes the failure): {minimal:?}"
    );
    assert!(
        minimal.fault.window_us() <= scenario.fault.window_us(),
        "shrinking never widens the fault window"
    );
    assert!(
        minimal.num_flows <= scenario.num_flows,
        "shrinking never adds flows"
    );
    let test_src = reproducer(&minimal, &failure);
    assert!(test_src.contains("fault: FaultScenario"), "{test_src}");

    // Bug off: the same scenario passes again (faults alone are benign).
    assert!(
        check_scenario(&scenario).is_none(),
        "bug off: faulted scenario must pass cleanly"
    );
}

/// Conservation and drain audits also hold on a direct simnet run (not
/// just through the incast runner).
#[test]
fn direct_simnet_run_passes_drain_audit() {
    simnet::check::reset();
    let mut fabric = simnet::build_dumbbell(2, 7);
    struct OneShot {
        to: simnet::NodeId,
    }
    impl simnet::Endpoint for OneShot {
        fn on_start(&mut self, ctx: &mut simnet::Ctx) {
            for i in 0..20u64 {
                let pkt = simnet::Packet::data(
                    simnet::FlowId(0),
                    ctx.node(),
                    self.to,
                    (i * 1446) as u32,
                    1446,
                    false,
                    ctx.now(),
                );
                ctx.send(pkt);
            }
        }
        fn on_packet(&mut self, _ctx: &mut simnet::Ctx, _pkt: simnet::Packet) {}
    }
    let rx = fabric.receivers[0];
    fabric
        .sim
        .set_endpoint(fabric.senders[0], Box::new(OneShot { to: rx }));
    fabric.sim.run();
    fabric.sim.audit_drain();
    assert_eq!(
        simnet::check::violation_count(),
        0,
        "{:?}",
        simnet::check::take()
    );
}
