//! The five production services of the paper's Table 1, as synthetic models.
//!
//! The paper cannot release production traces (its Appendix A), so each
//! service is modeled by the structure its figures reveal:
//!
//! - **Burst arrivals** are Poisson, with per-service rates chosen so
//!   detected burst frequencies span the paper's "tens to 200 per second"
//!   (Fig. 2a).
//! - **Burst classes**: each burst belongs to a weighted class fixing its
//!   flow count, per-flow demand, and response spread together. This is how
//!   the paper's own bimodality reading ("a high-flow task like aggregating
//!   responses and a low-flow task like checkpointing", §3.3) is expressed:
//!   storage and aggregator have a low-flow/large-response class producing
//!   the Fig. 2c cliff.
//! - **Operating modes**: a service may have several mode layers chosen per
//!   snapshot — video's ≈225/≈275-flow modes (Fig. 3a) switch on the scale
//!   of hours as the scheduler resizes its worker pool.
//! - **Response spread** is the per-burst alignment of worker responses:
//!   tight bursts outrun the drain and mark; loose ones deliver the same
//!   bytes quietly. This one knob yields the paper's "~50 % of bursts see
//!   no marking at all" (Fig. 4b) while keeping every burst above the 50 %
//!   detection threshold.
//!
//! These are *calibration inputs*; queueing, marking, losses, and measured
//! durations are emergent from the packet simulation.

use simnet::Rate;
use stats::{Dist, Rng};

/// Identifier of one of the five modeled services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceId {
    /// Distributed key-value store.
    Storage,
    /// Collects content to display on a page.
    Aggregator,
    /// Indexing service for recommendations.
    Indexer,
    /// Distributed real-time messaging system.
    Messaging,
    /// Video analytics service.
    Video,
}

impl ServiceId {
    /// All five services, in the paper's Table 1 order.
    pub const ALL: [ServiceId; 5] = [
        ServiceId::Storage,
        ServiceId::Aggregator,
        ServiceId::Indexer,
        ServiceId::Messaging,
        ServiceId::Video,
    ];

    /// Lower-case name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ServiceId::Storage => "storage",
            ServiceId::Aggregator => "aggregator",
            ServiceId::Indexer => "indexer",
            ServiceId::Messaging => "messaging",
            ServiceId::Video => "video",
        }
    }

    /// Table 1 description.
    pub fn description(&self) -> &'static str {
        match self {
            ServiceId::Storage => "Distributed key-value store",
            ServiceId::Aggregator => "Collects content to display on a page",
            ServiceId::Indexer => "Indexing service for recommendations",
            ServiceId::Messaging => "Distributed real-time messaging system",
            ServiceId::Video => "Video analytics service",
        }
    }

    /// The calibrated model for this service.
    pub fn model(&self) -> ServiceModel {
        ServiceModel::for_service(*self)
    }
}

/// One kind of burst a service issues: flow count, per-flow response size,
/// and worker response spread are correlated through class membership.
#[derive(Debug, Clone)]
pub struct BurstClass {
    /// Flows (workers queried) per burst.
    pub flows: Dist,
    /// Response bytes per worker.
    pub per_flow_bytes: Dist,
    /// Worker start offsets are uniform in `[0, spread)`; milliseconds.
    pub spread_ms: Dist,
}

/// One operating mode: a weighted set of burst classes.
pub type ModeClasses = Vec<(f64, BurstClass)>;

/// A synthetic workload model for one service's receiving host.
#[derive(Debug, Clone)]
pub struct ServiceModel {
    /// Which service this models.
    pub id: ServiceId,
    /// Size of the worker pool behind the coordinator.
    pub worker_pool: usize,
    /// Mean burst arrivals per second (Poisson process).
    pub bursts_per_sec: f64,
    /// Operating modes: `(weight, classes)`; one mode is chosen per
    /// snapshot (video's two operating points live here).
    pub modes: Vec<(f64, ModeClasses)>,
    /// Receiver NIC rate.
    pub line_rate: Rate,
}

/// Per-snapshot parameters drawn from a [`ServiceModel`].
#[derive(Debug, Clone)]
pub struct SnapshotModel {
    /// Burst classes in effect for this snapshot.
    pub classes: ModeClasses,
    /// Burst arrival rate (per second).
    pub bursts_per_sec: f64,
}

impl SnapshotModel {
    /// Samples one burst's `(flows, per_flow_bytes, spread_ms)`.
    pub fn sample_burst(&self, rng: &mut Rng, worker_pool: usize) -> (usize, u64, f64) {
        let total: f64 = self.classes.iter().map(|(w, _)| w).sum();
        let mut pick = rng.f64() * total;
        let mut class = &self.classes[0].1;
        for (w, c) in &self.classes {
            pick -= w;
            if pick <= 0.0 {
                class = c;
                break;
            }
        }
        let flows = class
            .flows
            .sample_clamped(rng, 1.0, worker_pool as f64)
            .round() as usize;
        let per_flow = class.per_flow_bytes.sample(rng).max(1.0) as u64;
        let spread = class.spread_ms.sample(rng).max(0.0);
        (flows, per_flow, spread)
    }

    /// Mean flows per burst implied by the class weights (diagnostic).
    pub fn mean_flows(&self) -> f64 {
        let total: f64 = self.classes.iter().map(|(w, _)| w).sum();
        self.classes
            .iter()
            .map(|(w, c)| w / total * c.flows.mean().unwrap_or(0.0))
            .sum()
    }

    /// Mean burst bytes implied by the classes (diagnostic).
    pub fn mean_burst_bytes(&self) -> f64 {
        let total: f64 = self.classes.iter().map(|(w, _)| w).sum();
        self.classes
            .iter()
            .map(|(w, c)| {
                w / total * c.flows.mean().unwrap_or(0.0) * c.per_flow_bytes.mean().unwrap_or(0.0)
            })
            .sum()
    }
}

/// Log-normal sized in KB with a given median and shape.
fn kb(median_kb: f64, sigma: f64) -> Dist {
    Dist::LogNormal {
        mu: (median_kb * 1024.0).ln(),
        sigma,
    }
}

/// Log-normal spread in ms with a given median and shape.
fn spread(median_ms: f64, sigma: f64) -> Dist {
    Dist::LogNormal {
        mu: median_ms.ln(),
        sigma,
    }
}

/// Normal flow count.
fn flows(mean: f64, std_dev: f64) -> Dist {
    Dist::Normal { mean, std_dev }
}

impl ServiceModel {
    /// The calibrated model for `id` (10 Gbps NICs; see module docs).
    pub fn for_service(id: ServiceId) -> Self {
        let line_rate = Rate::gbps(10);
        match id {
            // Storage: frequent bursts; 40 % checkpoint-like (few flows,
            // large objects — the Fig. 2c cliff), 60 % fan-out reads.
            ServiceId::Storage => ServiceModel {
                id,
                worker_pool: 250,
                bursts_per_sec: 150.0,
                modes: vec![(
                    1.0,
                    vec![
                        (
                            0.4,
                            BurstClass {
                                flows: flows(8.0, 3.0),
                                per_flow_bytes: kb(120.0, 0.5),
                                spread_ms: spread(1.5, 0.8),
                            },
                        ),
                        (
                            0.6,
                            BurstClass {
                                flows: flows(60.0, 25.0),
                                per_flow_bytes: kb(16.0, 0.4),
                                spread_ms: spread(1.3, 0.8),
                            },
                        ),
                    ],
                )],
                line_rate,
            },
            // Aggregator: the paper's running example (Fig. 1): mostly
            // high-fan-in page assembly with a small low-flow class.
            ServiceId::Aggregator => ServiceModel {
                id,
                worker_pool: 500,
                bursts_per_sec: 100.0,
                modes: vec![(
                    1.0,
                    vec![
                        (
                            0.1,
                            BurstClass {
                                flows: flows(10.0, 4.0),
                                per_flow_bytes: kb(100.0, 0.5),
                                spread_ms: spread(1.0, 0.8),
                            },
                        ),
                        (
                            0.9,
                            BurstClass {
                                flows: flows(160.0, 60.0),
                                per_flow_bytes: kb(6.5, 0.35),
                                spread_ms: spread(0.9, 0.8),
                            },
                        ),
                    ],
                )],
                line_rate,
            },
            // Indexer: mid-range fan-in, moderate rate.
            ServiceId::Indexer => ServiceModel {
                id,
                worker_pool: 300,
                bursts_per_sec: 50.0,
                modes: vec![(
                    1.0,
                    vec![(
                        1.0,
                        BurstClass {
                            flows: flows(80.0, 30.0),
                            per_flow_bytes: kb(14.0, 0.4),
                            spread_ms: spread(1.6, 0.8),
                        },
                    )],
                )],
                line_rate,
            },
            // Messaging: fewest bursts, lower fan-in, mid-size messages.
            ServiceId::Messaging => ServiceModel {
                id,
                worker_pool: 150,
                bursts_per_sec: 30.0,
                modes: vec![(
                    1.0,
                    vec![(
                        1.0,
                        BurstClass {
                            flows: flows(45.0, 18.0),
                            per_flow_bytes: kb(22.0, 0.5),
                            spread_ms: spread(1.8, 0.9),
                        },
                    )],
                )],
                line_rate,
            },
            // Video: two operating points at ~225 and ~275 flows (Fig. 3a)
            // switching on the scale of hours; tightly aligned responses
            // (high marking, Fig. 4b).
            ServiceId::Video => ServiceModel {
                id,
                worker_pool: 400,
                bursts_per_sec: 30.0,
                modes: vec![
                    (
                        0.55,
                        vec![(
                            1.0,
                            BurstClass {
                                flows: flows(225.0, 15.0),
                                per_flow_bytes: kb(4.5, 0.35),
                                spread_ms: spread(0.5, 0.7),
                            },
                        )],
                    ),
                    (
                        0.45,
                        vec![(
                            1.0,
                            BurstClass {
                                flows: flows(275.0, 15.0),
                                per_flow_bytes: kb(4.5, 0.35),
                                spread_ms: spread(0.5, 0.7),
                            },
                        )],
                    ),
                ],
                line_rate,
            },
        }
    }

    /// Draws the parameters in effect for one snapshot (one 2 s collection
    /// on one host). Single-mode services always return their mode; video
    /// picks one of its two operating points.
    pub fn snapshot(&self, rng: &mut Rng) -> SnapshotModel {
        assert!(!self.modes.is_empty());
        let total: f64 = self.modes.iter().map(|(w, _)| w).sum();
        let mut pick = rng.f64() * total;
        let mut chosen = &self.modes[0].1;
        for (w, m) in &self.modes {
            pick -= w;
            if pick <= 0.0 {
                chosen = m;
                break;
            }
        }
        SnapshotModel {
            classes: chosen.clone(),
            bursts_per_sec: self.bursts_per_sec,
        }
    }

    /// Expected mean utilization implied by the calibration (diagnostic).
    pub fn expected_utilization(&self) -> f64 {
        let total: f64 = self.modes.iter().map(|(w, _)| w).sum();
        let mean_bytes: f64 = self
            .modes
            .iter()
            .map(|(w, m)| {
                let snap = SnapshotModel {
                    classes: m.clone(),
                    bursts_per_sec: self.bursts_per_sec,
                };
                w / total * snap.mean_burst_bytes()
            })
            .sum();
        self.bursts_per_sec * mean_bytes / self.line_rate.bytes_per_sec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_services_with_names_and_descriptions() {
        assert_eq!(ServiceId::ALL.len(), 5);
        let names: Vec<_> = ServiceId::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["storage", "aggregator", "indexer", "messaging", "video"]
        );
        for s in ServiceId::ALL {
            assert!(!s.description().is_empty());
            let m = s.model();
            assert_eq!(m.id, s);
            assert!(m.worker_pool > 0);
        }
    }

    #[test]
    fn utilization_calibration_is_plausible() {
        // The paper reports ~10 % average utilization; models should land
        // in the same low-utilization regime.
        for s in ServiceId::ALL {
            let u = s.model().expected_utilization();
            assert!(
                (0.01..0.35).contains(&u),
                "{}: expected utilization {u:.3}",
                s.name()
            );
        }
    }

    #[test]
    fn video_has_two_modes_others_one() {
        assert_eq!(ServiceId::Video.model().modes.len(), 2);
        for s in [
            ServiceId::Storage,
            ServiceId::Aggregator,
            ServiceId::Indexer,
            ServiceId::Messaging,
        ] {
            assert_eq!(s.model().modes.len(), 1);
        }
    }

    #[test]
    fn video_snapshots_land_on_both_operating_points() {
        let m = ServiceId::Video.model();
        let mut rng = Rng::new(42);
        let mut low = 0;
        let mut high = 0;
        for _ in 0..200 {
            let snap = m.snapshot(&mut rng);
            let mean = snap.mean_flows();
            if (mean - 225.0).abs() < 1.0 {
                low += 1;
            } else if (mean - 275.0).abs() < 1.0 {
                high += 1;
            } else {
                panic!("unexpected mode mean {mean}");
            }
        }
        assert!(low > 50 && high > 50, "low {low} high {high}");
    }

    #[test]
    fn sampled_bursts_respect_worker_pool() {
        for s in ServiceId::ALL {
            let m = s.model();
            let mut rng = Rng::new(7);
            let snap = m.snapshot(&mut rng);
            for _ in 0..500 {
                let (flows, per_flow, spread) = snap.sample_burst(&mut rng, m.worker_pool);
                assert!(flows >= 1 && flows <= m.worker_pool);
                assert!(per_flow >= 1);
                assert!(spread >= 0.0);
            }
        }
    }

    #[test]
    fn storage_and_aggregator_have_low_flow_cliff() {
        for (svc, min_frac, max_frac) in [
            (ServiceId::Storage, 0.25, 0.55),
            (ServiceId::Aggregator, 0.04, 0.25),
        ] {
            let m = svc.model();
            let mut rng = Rng::new(2);
            let snap = m.snapshot(&mut rng);
            let below20 = (0..5000)
                .filter(|_| snap.sample_burst(&mut rng, m.worker_pool).0 < 20)
                .count() as f64
                / 5000.0;
            assert!(
                (min_frac..max_frac).contains(&below20),
                "{}: cliff fraction {below20}",
                svc.name()
            );
        }
    }

    #[test]
    fn aggregator_tail_reaches_high_flow_counts() {
        let m = ServiceId::Aggregator.model();
        let mut rng = Rng::new(3);
        let snap = m.snapshot(&mut rng);
        let max = (0..5000)
            .map(|_| snap.sample_burst(&mut rng, m.worker_pool).0)
            .max()
            .unwrap();
        assert!(max > 300, "tail max {max}");
    }

    #[test]
    fn burst_totals_mostly_fit_the_tor_queue() {
        // Calibration guard: the typical burst must exceed the 50 %
        // detection threshold (0.625 MB/ms) but stay below ~2 MB so only
        // the tail overflows the 2 MB ToR queue.
        for s in ServiceId::ALL {
            let m = s.model();
            let mut rng = Rng::new(4);
            let snap = m.snapshot(&mut rng);
            let mean = snap.mean_burst_bytes();
            assert!(
                (500_000.0..2_000_000.0).contains(&mean),
                "{}: mean burst bytes {mean:.0}",
                s.name()
            );
        }
    }
}
