//! Cyclic incast bursts (the paper's Section 4 workload).
//!
//! A coordinator on the receiver host repeatedly queries N workers, each of
//! which responds with `per_flow_bytes` over its persistent connection. The
//! next burst begins a think-time after all responses of the current burst
//! arrive (partition/aggregate request-response), or on a fixed period.
//! Request send times are jittered uniformly over a configurable range
//! (0–100 µs by default, per the paper).
//!
//! The coordinator records per-burst completion times (BCTs) and burst
//! windows for queue-trace alignment.

use simnet::{FlowId, NodeId, SimTime};
use stats::Rng;
use telemetry::{Event, EventClass, EventKind, SinkRef};
use transport::{TcpApi, TcpApp};

/// How successive bursts are scheduled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BurstSchedule {
    /// Burst k+1 starts `gap` after burst k completes (request-response).
    AfterCompletion {
        /// Think time between completion and the next query.
        gap: SimTime,
    },
    /// Bursts start every `period` regardless of completion (open loop).
    Periodic {
        /// Burst start spacing.
        period: SimTime,
    },
}

/// Configuration of the cyclic incast coordinator.
#[derive(Debug, Clone)]
pub struct IncastConfig {
    /// Worker hosts; flow `i` connects worker `i` to the coordinator.
    pub workers: Vec<NodeId>,
    /// Response bytes per worker per burst.
    pub per_flow_bytes: u64,
    /// Number of bursts to run.
    pub num_bursts: u32,
    /// Request jitter range (uniform `[0, jitter)`), the paper's 0–100 µs.
    pub jitter: SimTime,
    /// Burst scheduling policy.
    pub schedule: BurstSchedule,
    /// Optional receiver-side incast scheduling (the paper's §5.2 "divide a
    /// large incast into a series of smaller incasts"): workers are split
    /// into groups of `group_size` whose requests go out `group_gap` apart.
    pub grouping: Option<Grouping>,
    /// RNG seed for the jitter.
    pub seed: u64,
    /// Offset added to worker indices when minting [`FlowId`]s: worker `i`
    /// talks on `FlowId(flow_base + i)`. Lets several coordinators coexist
    /// in one fabric (the rack-contention sweep runs one incast group per
    /// rack) with disjoint flow-id spaces, keeping traces and the ECMP
    /// flow hash unambiguous. Zero for the single-coordinator paper setup.
    pub flow_base: u32,
}

/// Receiver-side incast scheduling parameters (§5.2 mitigation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grouping {
    /// Workers per group (flows simultaneously active).
    pub group_size: usize,
    /// Delay between consecutive groups' requests.
    pub group_gap: SimTime,
}

impl IncastConfig {
    /// The paper's setup for a given worker set: equal demand sized so the
    /// burst lasts `burst_ms` at the 10 Gbps bottleneck.
    pub fn paper(workers: Vec<NodeId>, burst_ms: f64, num_bursts: u32, seed: u64) -> Self {
        let total_bytes = (10_000_000_000.0 / 8.0 * burst_ms / 1000.0) as u64;
        let per_flow_bytes = (total_bytes / workers.len() as u64).max(1);
        IncastConfig {
            workers,
            per_flow_bytes,
            num_bursts,
            jitter: SimTime::from_us(100),
            schedule: BurstSchedule::AfterCompletion {
                gap: SimTime::from_ms(2),
            },
            grouping: None,
            seed,
            flow_base: 0,
        }
    }
}

/// Per-burst outcome.
#[derive(Debug, Clone, Copy)]
pub struct BurstOutcome {
    /// When the first request of the burst was issued.
    pub start: SimTime,
    /// When the last response byte arrived.
    pub end: SimTime,
}

impl BurstOutcome {
    /// Burst completion time.
    pub fn bct(&self) -> SimTime {
        self.end - self.start
    }
}

/// Timer key for the next-burst timer.
const NEXT_BURST: u64 = 0;
/// Request timers are `REQUEST_BASE + worker index`.
const REQUEST_BASE: u64 = 1;

/// The coordinator application. Install on the receiver host (wrapped in
/// `TcpHost`), with [`crate::Worker`]s on the senders.
#[derive(Debug)]
pub struct CyclicCoordinator {
    cfg: IncastConfig,
    rng: Rng,
    burst_idx: u32,
    /// Cumulative bytes expected per flow by the end of the current burst.
    expected_total: u64,
    /// Burst start time (first request issue time).
    burst_start: SimTime,
    flows_done: usize,
    /// Completed bursts.
    pub outcomes: Vec<BurstOutcome>,
    /// Telemetry sink for burst boundary events.
    sink: Option<SinkRef>,
}

impl CyclicCoordinator {
    /// Creates the coordinator.
    pub fn new(cfg: IncastConfig) -> Self {
        assert!(!cfg.workers.is_empty(), "no workers");
        assert!(cfg.per_flow_bytes > 0, "zero demand");
        assert!(cfg.num_bursts > 0, "zero bursts");
        let rng = Rng::new(cfg.seed).fork(0xC0_0D);
        CyclicCoordinator {
            cfg,
            rng,
            burst_idx: 0,
            expected_total: 0,
            burst_start: SimTime::ZERO,
            flows_done: 0,
            outcomes: Vec::new(),
            sink: None,
        }
    }

    /// Attaches a telemetry sink: burst boundaries are reported as
    /// [`EventKind::BurstStart`] / [`EventKind::BurstEnd`] events (the
    /// trace markers used to align queue and flow telemetry per burst).
    /// A sink not subscribing to [`EventClass::App`] is dropped here.
    pub fn set_sink(&mut self, sink: SinkRef) {
        if sink.accepts(EventClass::App) {
            self.sink = Some(sink);
        }
    }

    /// True when every configured burst has completed.
    pub fn finished(&self) -> bool {
        self.outcomes.len() == self.cfg.num_bursts as usize
    }

    /// Completed burst completion times in milliseconds.
    pub fn bcts_ms(&self) -> Vec<f64> {
        self.outcomes.iter().map(|o| o.bct().as_ms_f64()).collect()
    }

    fn request_delay(&mut self, worker_idx: usize) -> SimTime {
        let jitter = if self.cfg.jitter > SimTime::ZERO {
            SimTime::from_ps(self.rng.below(self.cfg.jitter.as_ps()))
        } else {
            SimTime::ZERO
        };
        match self.cfg.grouping {
            None => jitter,
            Some(g) => {
                assert!(g.group_size > 0, "zero group size");
                let group = worker_idx / g.group_size;
                jitter + g.group_gap.mul(group as u64)
            }
        }
    }

    fn start_burst(&mut self, api: &mut TcpApi) {
        self.burst_start = api.now();
        self.expected_total += self.cfg.per_flow_bytes;
        self.flows_done = 0;
        for i in 0..self.cfg.workers.len() {
            let delay = self.request_delay(i);
            api.set_app_timer_after(REQUEST_BASE + i as u64, delay);
        }
        if let Some(s) = &self.sink {
            s.emit(&Event {
                t_ps: api.now().as_ps(),
                kind: EventKind::BurstStart {
                    burst: self.burst_idx,
                    flows: self.cfg.workers.len() as u32,
                    per_flow_bytes: self.cfg.per_flow_bytes,
                },
            });
        }
    }

    fn maybe_finish_burst(&mut self, api: &mut TcpApi) {
        if self.flows_done < self.cfg.workers.len() {
            return;
        }
        let outcome = BurstOutcome {
            start: self.burst_start,
            end: api.now(),
        };
        if let Some(s) = &self.sink {
            s.emit(&Event {
                t_ps: api.now().as_ps(),
                kind: EventKind::BurstEnd {
                    burst: self.burst_idx,
                    bct_ms: outcome.bct().as_ms_f64(),
                },
            });
        }
        self.outcomes.push(outcome);
        self.burst_idx += 1;
        if self.burst_idx >= self.cfg.num_bursts {
            return;
        }
        match self.cfg.schedule {
            BurstSchedule::AfterCompletion { gap } => {
                api.set_app_timer_after(NEXT_BURST, gap);
            }
            BurstSchedule::Periodic { .. } => {
                // Periodic bursts are armed at start time; nothing to do.
            }
        }
    }
}

impl TcpApp for CyclicCoordinator {
    fn on_start(&mut self, api: &mut TcpApi) {
        match self.cfg.schedule {
            BurstSchedule::AfterCompletion { .. } => self.start_burst(api),
            BurstSchedule::Periodic { period } => {
                // Arm every burst start now; completion only records BCTs.
                for k in 0..self.cfg.num_bursts {
                    if k == 0 {
                        self.start_burst(api);
                    } else {
                        // One dedicated key per burst start (timer keys are
                        // one-shot; re-arming a key supersedes it).
                        let key = REQUEST_BASE + self.cfg.workers.len() as u64 + k as u64;
                        api.set_app_timer(key, period.mul(k as u64));
                    }
                }
            }
        }
    }

    fn on_app_timer(&mut self, api: &mut TcpApi, id: u64) {
        if id == NEXT_BURST {
            self.start_burst(api);
            return;
        }
        let req = id - REQUEST_BASE;
        let n = self.cfg.workers.len() as u64;
        if req < n {
            // Issue the (jittered) request to worker `req`.
            let worker = self.cfg.workers[req as usize];
            api.send_ctrl(
                worker,
                FlowId(self.cfg.flow_base + req as u32),
                self.cfg.per_flow_bytes,
                self.burst_idx as u64,
            );
        } else {
            // A periodic burst start.
            self.start_burst(api);
        }
    }

    fn on_receive(&mut self, api: &mut TcpApi, flow: FlowId, _newly: u64, total: u64) {
        debug_assert!(
            flow.0 >= self.cfg.flow_base
                && ((flow.0 - self.cfg.flow_base) as usize) < self.cfg.workers.len()
        );
        // A flow is done with the current burst when its cumulative
        // delivery reaches the cumulative expectation.
        if total >= self.expected_total && total - _newly < self.expected_total {
            self.flows_done += 1;
            self.maybe_finish_burst(api);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::Worker;
    use simnet::{build_dumbbell, IncastFabric, Shared};
    use transport::{TcpConfig, TcpHost};

    fn build(
        n: usize,
        burst_ms: f64,
        num_bursts: u32,
        grouping: Option<Grouping>,
    ) -> (IncastFabric, Shared<CyclicCoordinator>) {
        let mut fabric = build_dumbbell(n, 11);
        for (i, &s) in fabric.senders.iter().enumerate() {
            let worker = Worker::new(Rng::new(1000 + i as u64));
            fabric.sim.set_endpoint(
                s,
                Box::new(TcpHost::new(TcpConfig::default(), Box::new(worker))),
            );
        }
        let mut cfg = IncastConfig::paper(fabric.senders.clone(), burst_ms, num_bursts, 3);
        cfg.grouping = grouping;
        let app = Shared::new(CyclicCoordinator::new(cfg));
        let handle = app.handle();
        let host = TcpHost::new(TcpConfig::default(), Box::new(app));
        fabric.sim.set_endpoint(fabric.receivers[0], Box::new(host));
        (fabric, handle)
    }

    #[test]
    fn completes_all_bursts_and_records_bcts() {
        let (mut fabric, coord) = build(5, 1.0, 3, None);
        fabric.sim.run();
        let c = coord.borrow();
        assert!(c.finished());
        assert_eq!(c.outcomes.len(), 3);
        for o in &c.outcomes {
            let bct = o.bct().as_ms_f64();
            // 1 ms of data over a shared 10 Gbps bottleneck: near-optimal
            // BCT is ~1 ms; allow slack for jitter and slow start.
            assert!(bct > 0.5 && bct < 10.0, "bct {bct} ms");
        }
        // Bursts don't overlap and respect the 2 ms gap.
        for w in c.outcomes.windows(2) {
            assert!(w[1].start >= w[0].end + SimTime::from_ms(2));
        }
    }

    #[test]
    fn flow_base_offsets_flow_ids_without_changing_behavior() {
        let (mut fabric, coord) = build(4, 0.5, 2, None);
        {
            coord.borrow_mut().cfg.flow_base = 700;
        }
        fabric.sim.run();
        assert!(coord.borrow().finished());
        assert_eq!(coord.borrow().outcomes.len(), 2);
    }

    #[test]
    fn demand_sizing_matches_paper_formula() {
        let cfg = IncastConfig::paper(vec![NodeId(0); 100], 15.0, 11, 0);
        // 15 ms x 10 Gbps = 18.75 MB; / 100 flows = 187.5 KB.
        assert_eq!(cfg.per_flow_bytes, 187_500);
    }

    #[test]
    fn grouping_staggers_requests() {
        let (mut fabric, coord) = build(
            6,
            1.0,
            1,
            Some(Grouping {
                group_size: 2,
                group_gap: SimTime::from_ms(1),
            }),
        );
        fabric.sim.run();
        let c = coord.borrow();
        assert!(c.finished());
        // Three groups 1 ms apart: the burst takes at least 2 ms even
        // though the data itself fits in ~1 ms.
        assert!(c.outcomes[0].bct() >= SimTime::from_ms(2));
    }

    #[test]
    fn sink_reports_burst_boundaries() {
        let (mut fabric, coord) = build(3, 0.5, 2, None);
        let (jsonl, sref) = telemetry::JsonlSink::new().shared();
        coord.borrow_mut().set_sink(sref);
        fabric.sim.run();
        assert!(coord.borrow().finished());
        let out = jsonl.borrow().render().to_string();
        let starts = out.lines().filter(|l| l.contains(r#""ev":"burst_start""#));
        let ends: Vec<&str> = out
            .lines()
            .filter(|l| l.contains(r#""ev":"burst_end""#))
            .collect();
        assert_eq!(starts.count(), 2);
        assert_eq!(ends.len(), 2);
        assert!(ends[0].contains(r#""burst":0"#));
        assert!(ends[1].contains(r#""burst":1"#));
        assert!(ends[0].contains(r#""bct_ms":"#));
        assert!(out.contains(r#""flows":3"#));
    }

    #[test]
    fn periodic_schedule_runs_open_loop() {
        let (mut fabric, coord) = build(4, 0.5, 3, None);
        {
            coord.borrow_mut().cfg.schedule = BurstSchedule::Periodic {
                period: SimTime::from_ms(5),
            };
        }
        fabric.sim.run();
        let c = coord.borrow();
        assert_eq!(c.outcomes.len(), 3);
        // Starts are 5 ms apart (within jitter).
        let s0 = c.outcomes[0].start.as_ms_f64();
        let s1 = c.outcomes[1].start.as_ms_f64();
        let s2 = c.outcomes[2].start.as_ms_f64();
        assert!((s1 - s0 - 5.0).abs() < 0.2, "{s0} {s1}");
        assert!((s2 - s1 - 5.0).abs() < 0.2, "{s1} {s2}");
    }
}
