//! # workload — incast applications and service models
//!
//! The application layer of the reproduction:
//!
//! - [`Worker`]: the partition/aggregate worker — answers each coordinator
//!   request with the demanded response bytes, after the paper's 0–100 µs
//!   start jitter.
//! - [`CyclicCoordinator`]: the Section-4 workload — N-flow incast bursts,
//!   cyclic (next burst a think-time after the previous completes), with
//!   per-burst completion-time records and an optional §5.2 group-scheduling
//!   mitigation.
//! - [`ServiceId`]/[`ServiceModel`]: the five production services of
//!   Table 1, as synthetic models calibrated to the paper's reported burst
//!   statistics.
//! - [`sample_schedule`]/[`ScheduleCoordinator`]: Poisson burst schedules
//!   replayed against a worker fleet for the Section-3 fleet study.

pub mod incast;
pub mod schedule;
pub mod service;
pub mod worker;

pub use incast::{BurstOutcome, BurstSchedule, CyclicCoordinator, Grouping, IncastConfig};
pub use schedule::{sample_schedule, ScheduleCoordinator, ScheduledBurst, TraceSchedule};
pub use service::{BurstClass, ModeClasses, ServiceId, ServiceModel, SnapshotModel};
pub use worker::Worker;
