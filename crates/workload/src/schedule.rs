//! Stochastic trace schedules and their coordinator.
//!
//! For the Section-3 fleet study, each host-trace is one packet simulation
//! driven by a pre-sampled [`TraceSchedule`]: Poisson burst arrivals, a
//! flow count and per-flow demand per burst, and a random worker subset per
//! burst. Pre-sampling (rather than sampling inside the app) keeps the
//! workload deterministic and independently testable.

use crate::service::SnapshotModel;
use simnet::{FlowId, NodeId, SimTime};
use stats::Rng;
use transport::{TcpApi, TcpApp};

/// One scheduled burst.
#[derive(Debug, Clone)]
pub struct ScheduledBurst {
    /// Request issue time.
    pub at: SimTime,
    /// Worker indices queried.
    pub workers: Vec<usize>,
    /// Per-worker request offset from `at` (same length as `workers`):
    /// models the spread of worker response times within the burst.
    pub offsets: Vec<SimTime>,
    /// Response bytes per worker.
    pub per_flow_bytes: u64,
}

/// A full trace's workload.
#[derive(Debug, Clone)]
pub struct TraceSchedule {
    /// Bursts in non-decreasing time order.
    pub bursts: Vec<ScheduledBurst>,
    /// Trace duration.
    pub duration: SimTime,
}

/// Samples a schedule from a snapshot model.
///
/// Arrivals are Poisson with the model's rate; each burst samples a flow
/// count (clamped to the pool), a per-flow demand, and a uniform worker
/// subset without replacement.
pub fn sample_schedule(
    model: &SnapshotModel,
    worker_pool: usize,
    duration: SimTime,
    rng: &mut Rng,
) -> TraceSchedule {
    assert!(worker_pool > 0);
    let mean_gap_secs = 1.0 / model.bursts_per_sec;
    let mut bursts = Vec::new();
    let mut t = 0.0f64;
    loop {
        // Exponential inter-arrival.
        let u = 1.0 - rng.f64();
        t += -mean_gap_secs * u.ln();
        if t >= duration.as_secs_f64() {
            break;
        }
        let (flows, per_flow, spread) = model.sample_burst(rng, worker_pool);
        let workers = sample_subset(worker_pool, flows, rng);
        let offsets = workers
            .iter()
            .map(|_| SimTime::from_ms_f64(rng.f64() * spread))
            .collect();
        bursts.push(ScheduledBurst {
            at: SimTime::from_secs_f64(t),
            workers,
            offsets,
            per_flow_bytes: per_flow,
        });
    }
    TraceSchedule { bursts, duration }
}

/// Uniform subset of `k` distinct indices from `0..n` (partial
/// Fisher-Yates).
fn sample_subset(n: usize, k: usize, rng: &mut Rng) -> Vec<usize> {
    let k = k.min(n);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + rng.below((n - i) as u64) as usize;
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

impl TraceSchedule {
    /// Total demand across all bursts, in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bursts
            .iter()
            .map(|b| b.per_flow_bytes * b.workers.len() as u64)
            .sum()
    }

    /// Implied mean offered load as a fraction of `line_rate_bps`.
    pub fn offered_load(&self, line_rate_bps: u64) -> f64 {
        let bits = self.total_bytes() as f64 * 8.0;
        bits / (line_rate_bps as f64 * self.duration.as_secs_f64())
    }
}

/// Coordinator app that replays a [`TraceSchedule`] against a worker fleet.
#[derive(Debug)]
pub struct ScheduleCoordinator {
    schedule: TraceSchedule,
    workers: Vec<NodeId>,
    /// Worker `i` talks to this coordinator on flow `flow_base + i`; two
    /// coordinators sharing a worker pool must use disjoint bases.
    flow_base: u32,
    /// Requests issued (diagnostic).
    pub requests_sent: u64,
}

impl ScheduleCoordinator {
    /// Creates the coordinator; `workers[i]` serves worker index `i` and
    /// flow `i`.
    pub fn new(schedule: TraceSchedule, workers: Vec<NodeId>) -> Self {
        Self::with_flow_base(schedule, workers, 0)
    }

    /// Creates the coordinator with flows numbered from `flow_base`.
    pub fn with_flow_base(schedule: TraceSchedule, workers: Vec<NodeId>, flow_base: u32) -> Self {
        for b in &schedule.bursts {
            for &w in &b.workers {
                assert!(w < workers.len(), "worker index out of range");
            }
        }
        ScheduleCoordinator {
            schedule,
            workers,
            flow_base,
            requests_sent: 0,
        }
    }
}

/// Timer keys: `(burst << SLOT_BITS) | slot` where `slot` indexes the
/// burst's worker list. Supports pools up to 65k workers.
const SLOT_BITS: u64 = 16;

impl TcpApp for ScheduleCoordinator {
    fn on_start(&mut self, api: &mut TcpApi) {
        for (k, b) in self.schedule.bursts.iter().enumerate() {
            for (slot, off) in b.offsets.iter().enumerate() {
                api.set_app_timer((k as u64) << SLOT_BITS | slot as u64, b.at + *off);
            }
        }
    }

    fn on_app_timer(&mut self, api: &mut TcpApi, id: u64) {
        let burst = (id >> SLOT_BITS) as usize;
        let slot = (id & ((1 << SLOT_BITS) - 1)) as usize;
        let b = &self.schedule.bursts[burst];
        let w = b.workers[slot];
        api.send_ctrl(
            self.workers[w],
            FlowId(self.flow_base + w as u32),
            b.per_flow_bytes,
            burst as u64,
        );
        self.requests_sent += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceId;
    use stats::Dist;

    fn model(rate: f64) -> SnapshotModel {
        SnapshotModel {
            classes: vec![(
                1.0,
                crate::service::BurstClass {
                    flows: Dist::Constant(10.0),
                    per_flow_bytes: Dist::Constant(10_000.0),
                    spread_ms: Dist::Constant(0.5),
                },
            )],
            bursts_per_sec: rate,
        }
    }

    #[test]
    fn poisson_rate_is_respected() {
        let mut rng = Rng::new(3);
        let s = sample_schedule(&model(100.0), 50, SimTime::from_secs(10), &mut rng);
        // 10 s at 100/s -> ~1000 bursts, within 15 %.
        assert!(
            (850..1150).contains(&s.bursts.len()),
            "{} bursts",
            s.bursts.len()
        );
        // Sorted times within the duration.
        for w in s.bursts.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(s.bursts.last().unwrap().at < SimTime::from_secs(10));
    }

    #[test]
    fn subsets_are_distinct_and_in_range() {
        let mut rng = Rng::new(5);
        for _ in 0..100 {
            let sub = sample_subset(20, 7, &mut rng);
            assert_eq!(sub.len(), 7);
            let mut sorted = sub.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 7, "duplicates in {sub:?}");
            assert!(sub.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn oversized_subset_clamps_to_pool() {
        let mut rng = Rng::new(6);
        let sub = sample_subset(5, 50, &mut rng);
        assert_eq!(sub.len(), 5);
    }

    #[test]
    fn offered_load_math() {
        let mut rng = Rng::new(7);
        let s = sample_schedule(&model(50.0), 50, SimTime::from_secs(4), &mut rng);
        // ~50/s x 10 flows x 10 KB = ~5 MB/s = 40 Mbps; on 10 Gbps ~0.4 %.
        let load = s.offered_load(10_000_000_000);
        assert!((0.002..0.007).contains(&load), "load {load}");
    }

    #[test]
    fn service_models_produce_nonempty_schedules() {
        for svc in ServiceId::ALL {
            let m = svc.model();
            let mut rng = Rng::new(11);
            let snap = m.snapshot(&mut rng);
            let s = sample_schedule(&snap, m.worker_pool, SimTime::from_secs(2), &mut rng);
            assert!(
                !s.bursts.is_empty(),
                "{} produced no bursts in 2 s",
                svc.name()
            );
            // Offered load in the calibrated low-utilization regime.
            let load = s.offered_load(m.line_rate.bps());
            assert!(load < 0.6, "{}: load {load}", svc.name());
        }
    }

    #[test]
    #[should_panic]
    fn coordinator_rejects_out_of_range_worker() {
        let schedule = TraceSchedule {
            bursts: vec![ScheduledBurst {
                at: SimTime::ZERO,
                workers: vec![3],
                offsets: vec![SimTime::ZERO],
                per_flow_bytes: 1,
            }],
            duration: SimTime::from_secs(1),
        };
        ScheduleCoordinator::new(schedule, vec![NodeId(0)]);
    }
}
