//! The worker side of partition/aggregate.
//!
//! A worker waits for a coordinator's request (a control message carrying a
//! demand in bytes), optionally applies a start-time jitter — the paper
//! jitters flow starts by 0–100 µs "to model variations in processing
//! time" (§4) — and then queues the response bytes on its persistent
//! connection back to the coordinator.

use simnet::{FlowId, NodeId, SimTime};
use stats::Rng;
use std::collections::HashMap;
use transport::{TcpApi, TcpApp};

/// Worker application: responds to every request with the demanded bytes.
#[derive(Debug)]
pub struct Worker {
    /// Jitter range `[0, max)` applied before starting each response;
    /// zero disables jitter.
    jitter: SimTime,
    rng: Rng,
    /// Demand accumulated while a jitter timer is pending, per flow.
    pending: HashMap<FlowId, (NodeId, u64)>,
    /// Requests served (diagnostic).
    pub requests: u64,
}

impl Worker {
    /// Creates a worker with the paper's 0–100 µs jitter.
    pub fn new(rng: Rng) -> Self {
        Self::with_jitter(rng, SimTime::from_us(100))
    }

    /// Creates a worker with a custom jitter range (zero = respond
    /// immediately).
    pub fn with_jitter(rng: Rng, jitter: SimTime) -> Self {
        Worker {
            jitter,
            rng,
            pending: HashMap::new(),
            requests: 0,
        }
    }

    fn start_response(api: &mut TcpApi, flow: FlowId, peer: NodeId, bytes: u64) {
        api.open_sender(flow, peer);
        api.add_demand(flow, bytes);
    }
}

impl TcpApp for Worker {
    fn on_ctrl(&mut self, api: &mut TcpApi, from: NodeId, flow: FlowId, demand: u64, _burst: u64) {
        self.requests += 1;
        if self.jitter == SimTime::ZERO {
            Self::start_response(api, flow, from, demand);
            return;
        }
        let delay = SimTime::from_ps(self.rng.below(self.jitter.as_ps().max(1)));
        let entry = self.pending.entry(flow).or_insert((from, 0));
        entry.1 += demand;
        // One jitter timer per flow; a second request before it fires just
        // adds demand.
        api.set_app_timer_after(flow.0 as u64, delay);
    }

    fn on_app_timer(&mut self, api: &mut TcpApi, id: u64) {
        let flow = FlowId(id as u32);
        if let Some((peer, bytes)) = self.pending.remove(&flow) {
            if bytes > 0 {
                Self::start_response(api, flow, peer, bytes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{build_dumbbell, Shared};
    use std::cell::RefCell;
    use std::rc::Rc;
    use transport::TcpConfig;

    /// Coordinator that sends one request per worker at t=0 and records
    /// delivery.
    struct OneShotCoord {
        workers: Vec<NodeId>,
        demand: u64,
        totals: Rc<RefCell<HashMap<FlowId, u64>>>,
        first_byte_at: Rc<RefCell<HashMap<FlowId, SimTime>>>,
    }
    impl TcpApp for OneShotCoord {
        fn on_start(&mut self, api: &mut TcpApi) {
            for (i, &w) in self.workers.iter().enumerate() {
                api.send_ctrl(w, FlowId(i as u32), self.demand, 0);
            }
        }
        fn on_receive(&mut self, api: &mut TcpApi, flow: FlowId, _newly: u64, total: u64) {
            self.first_byte_at
                .borrow_mut()
                .entry(flow)
                .or_insert_with(|| api.now());
            self.totals.borrow_mut().insert(flow, total);
        }
    }

    fn run(jitter: SimTime, n: usize) -> (HashMap<FlowId, u64>, HashMap<FlowId, SimTime>) {
        let mut fabric = build_dumbbell(n, 7);
        let totals = Rc::new(RefCell::new(HashMap::new()));
        let first = Rc::new(RefCell::new(HashMap::new()));
        for (i, &s) in fabric.senders.iter().enumerate() {
            let worker = Worker::with_jitter(Rng::new(100 + i as u64), jitter);
            fabric.sim.set_endpoint(s, Box::new(host_for(worker)));
        }
        fabric.sim.set_endpoint(
            fabric.receivers[0],
            Box::new(host_for(OneShotCoord {
                workers: fabric.senders.clone(),
                demand: 30_000,
                totals: totals.clone(),
                first_byte_at: first.clone(),
            })),
        );
        fabric.sim.run();
        let t = totals.borrow().clone();
        let f = first.borrow().clone();
        (t, f)
    }

    /// Helper: wrap an app in a TcpHost with default config.
    fn host_for(app: impl TcpApp + 'static) -> transport::TcpHost {
        transport::TcpHost::new(TcpConfig::default(), Box::new(app))
    }

    #[test]
    fn workers_respond_with_full_demand() {
        let (totals, _) = run(SimTime::ZERO, 3);
        assert_eq!(totals.len(), 3);
        for &t in totals.values() {
            assert_eq!(t, 30_000);
        }
    }

    #[test]
    fn jitter_spreads_start_times() {
        let (_, first) = run(SimTime::from_us(100), 8);
        let mut times: Vec<u64> = first.values().map(|t| t.as_ps()).collect();
        times.sort_unstable();
        // With 8 workers jittered over 100 us, first-byte times can't all be
        // equal (the no-jitter case collapses to serialization spacing only).
        let spread = times.last().unwrap() - times.first().unwrap();
        assert!(
            spread > SimTime::from_us(10).as_ps(),
            "spread only {spread} ps"
        );
    }

    #[test]
    fn accumulates_demand_while_jitter_pending() {
        // Two requests for the same flow before the timer fires must both
        // be served. We drive the app surface directly via a sim-free check
        // of the pending map.
        let mut w = Worker::with_jitter(Rng::new(1), SimTime::from_us(100));
        assert_eq!(w.requests, 0);
        // (Integration covered by service-trace tests; here just the map.)
        w.pending.insert(FlowId(3), (NodeId(0), 500));
        w.pending.entry(FlowId(3)).or_insert((NodeId(0), 0)).1 += 700;
        assert_eq!(w.pending[&FlowId(3)].1, 1200);
    }

    #[test]
    fn shared_wrapper_exposes_worker_state() {
        let mut fabric = build_dumbbell(1, 9);
        let host = Shared::new(host_for(Worker::with_jitter(Rng::new(5), SimTime::ZERO)));
        let handle = host.handle();
        fabric.sim.set_endpoint(fabric.senders[0], Box::new(host));
        fabric.sim.set_endpoint(
            fabric.receivers[0],
            Box::new(host_for(OneShotCoord {
                workers: fabric.senders.clone(),
                demand: 10_000,
                totals: Rc::new(RefCell::new(HashMap::new())),
                first_byte_at: Rc::new(RefCell::new(HashMap::new())),
            })),
        );
        fabric.sim.run();
        let core = handle.borrow();
        let (_, tx) = core.core().senders().next().unwrap();
        assert_eq!(tx.stats().bytes_acked, 10_000);
    }
}
