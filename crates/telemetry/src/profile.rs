//! Wall-clock profiling of the simulator hot loop.
//!
//! [`LoopProfile`] accumulates how many events of each kind a run
//! processed and how much wall-clock time the event loop spent, giving an
//! events/sec figure that experiment reports print beside their tables.
//! Profiles from parallel runs merge additively.

use std::time::Duration;

/// Per-event-kind counts from the simulator loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventTallies {
    /// Link serialization completions.
    pub tx_complete: u64,
    /// Packet deliveries (hop arrivals).
    pub delivery: u64,
    /// Endpoint timers.
    pub timer: u64,
    /// Scheduled fault-plan events.
    pub fault: u64,
    /// Switch control-plane timers (incast notification retries).
    pub ctrl: u64,
}

impl EventTallies {
    /// Total events across kinds.
    pub fn total(&self) -> u64 {
        self.tx_complete + self.delivery + self.timer + self.fault + self.ctrl
    }
}

/// Wall-clock cost of one or more simulation runs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LoopProfile {
    /// Per-kind event counts.
    pub tallies: EventTallies,
    /// Wall-clock time spent inside the event loop.
    pub wall: Duration,
}

impl LoopProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total events processed.
    pub fn events(&self) -> u64 {
        self.tallies.total()
    }

    /// Events per wall-clock second (0 when no time was measured).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events() as f64 / secs
        } else {
            0.0
        }
    }

    /// Adds another profile into this one (for aggregating parallel runs).
    pub fn merge(&mut self, other: &LoopProfile) {
        self.tallies.tx_complete += other.tallies.tx_complete;
        self.tallies.delivery += other.tallies.delivery;
        self.tallies.timer += other.tallies.timer;
        self.tallies.fault += other.tallies.fault;
        self.tallies.ctrl += other.tallies.ctrl;
        self.wall += other.wall;
    }

    /// One-line human summary, e.g.
    /// `"1234567 events in 0.41s (3.0M ev/s; tx 400000, rx 800000, timer 34567, fault 0)"`.
    pub fn summary(&self) -> String {
        let eps = self.events_per_sec();
        let eps_str = if eps >= 1e6 {
            format!("{:.1}M ev/s", eps / 1e6)
        } else if eps >= 1e3 {
            format!("{:.0}k ev/s", eps / 1e3)
        } else {
            format!("{eps:.0} ev/s")
        };
        format!(
            "{} events in {:.2}s ({}; tx {}, rx {}, timer {}, fault {}, ctrl {})",
            self.events(),
            self.wall.as_secs_f64(),
            eps_str,
            self.tallies.tx_complete,
            self.tallies.delivery,
            self.tallies.timer,
            self.tallies.fault,
            self.tallies.ctrl,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_total() {
        let t = EventTallies {
            tx_complete: 1,
            delivery: 2,
            timer: 3,
            fault: 4,
            ctrl: 5,
        };
        assert_eq!(t.total(), 15);
    }

    #[test]
    fn events_per_sec_guards_zero_wall() {
        let p = LoopProfile::new();
        assert_eq!(p.events_per_sec(), 0.0);
        let p = LoopProfile {
            tallies: EventTallies {
                tx_complete: 500,
                delivery: 500,
                ..Default::default()
            },
            wall: Duration::from_millis(500),
        };
        assert!((p.events_per_sec() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = LoopProfile {
            tallies: EventTallies {
                tx_complete: 1,
                delivery: 2,
                timer: 3,
                fault: 1,
                ctrl: 1,
            },
            wall: Duration::from_millis(10),
        };
        let b = LoopProfile {
            tallies: EventTallies {
                tx_complete: 10,
                delivery: 20,
                timer: 30,
                fault: 2,
                ctrl: 2,
            },
            wall: Duration::from_millis(90),
        };
        a.merge(&b);
        assert_eq!(a.events(), 72);
        assert_eq!(a.wall, Duration::from_millis(100));
    }

    #[test]
    fn summary_formats_magnitudes() {
        let mk = |events: u64, ms: u64| LoopProfile {
            tallies: EventTallies {
                tx_complete: events,
                ..Default::default()
            },
            wall: Duration::from_millis(ms),
        };
        assert!(mk(5_000_000, 1000).summary().contains("M ev/s"));
        assert!(mk(5_000, 1000).summary().contains("k ev/s"));
        assert!(mk(50, 1000).summary().contains("50 ev/s"));
    }

    #[test]
    fn summary_reports_fault_and_ctrl_tallies() {
        let p = LoopProfile {
            tallies: EventTallies {
                tx_complete: 1,
                delivery: 2,
                timer: 3,
                fault: 4,
                ctrl: 5,
            },
            wall: Duration::from_millis(10),
        };
        assert!(
            p.summary().contains("tx 1, rx 2, timer 3, fault 4, ctrl 5"),
            "{}",
            p.summary()
        );
    }
}
