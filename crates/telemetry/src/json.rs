//! A minimal, dependency-free JSON encoder.
//!
//! The workspace builds in air-gapped containers where no crate registry is
//! reachable, so telemetry serialization cannot lean on serde. This module is
//! the replacement: a tiny writer producing deterministic output — fields
//! appear exactly in the order they are written, floats use Rust's shortest
//! round-trip formatting — which is what makes byte-identical trace diffing
//! across runs possible.

/// Escapes `s` into `out` as the contents of a JSON string (no quotes).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Writes `v` as a JSON number into `out` (`null` for NaN/infinite values,
/// which JSON cannot represent).
pub fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // `{}` prints integral floats without a fraction ("1"), which is
        // still a valid JSON number, so no fix-up is needed.
    } else {
        out.push_str("null");
    }
}

/// An incremental JSON object writer appending to a borrowed buffer.
///
/// ```
/// let mut buf = String::new();
/// let mut o = telemetry::json::Obj::new(&mut buf);
/// o.u64("t", 7).str("ev", "drop").bool("ce", false);
/// o.finish();
/// assert_eq!(buf, r#"{"t":7,"ev":"drop","ce":false}"#);
/// ```
#[derive(Debug)]
pub struct Obj<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> Obj<'a> {
    /// Starts an object (writes the opening brace).
    pub fn new(out: &'a mut String) -> Self {
        out.push('{');
        Obj { out, first: true }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push('"');
        escape_into(k, self.out);
        self.out.push_str("\":");
    }

    /// Writes an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.out.push_str(&v.to_string());
        self
    }

    /// Writes a signed integer field.
    pub fn i64(&mut self, k: &str, v: i64) -> &mut Self {
        self.key(k);
        self.out.push_str(&v.to_string());
        self
    }

    /// Writes a float field (`null` for non-finite values).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        write_f64(v, self.out);
        self
    }

    /// Writes a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Writes a string field (escaped).
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.out.push('"');
        escape_into(v, self.out);
        self.out.push('"');
        self
    }

    /// Writes a pre-rendered JSON value verbatim (object, array, …).
    pub fn raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.out.push_str(json);
        self
    }

    /// Writes an explicit `null` field.
    pub fn null(&mut self, k: &str) -> &mut Self {
        self.key(k);
        self.out.push_str("null");
        self
    }

    /// Closes the object (writes the closing brace).
    pub fn finish(self) {
        self.out.push('}');
    }
}

/// Renders an iterator of pre-rendered JSON values as a JSON array.
pub fn array_of_raw<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_fields_in_order() {
        let mut buf = String::new();
        let mut o = Obj::new(&mut buf);
        o.u64("a", 1).str("b", "x").bool("c", true).f64("d", 2.5);
        o.finish();
        assert_eq!(buf, r#"{"a":1,"b":"x","c":true,"d":2.5}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let mut buf = String::new();
        let mut o = Obj::new(&mut buf);
        o.str("s", "a\"b\\c\nd\te\u{1}");
        o.finish();
        assert_eq!(buf, "{\"s\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut buf = String::new();
        let mut o = Obj::new(&mut buf);
        o.f64("nan", f64::NAN).f64("inf", f64::INFINITY);
        o.finish();
        assert_eq!(buf, r#"{"nan":null,"inf":null}"#);
    }

    #[test]
    fn integral_floats_are_valid_json() {
        let mut buf = String::new();
        write_f64(3.0, &mut buf);
        assert_eq!(buf, "3");
    }

    #[test]
    fn raw_and_null_and_arrays() {
        let mut buf = String::new();
        let mut o = Obj::new(&mut buf);
        o.raw("inner", r#"{"x":1}"#).null("gone");
        o.finish();
        assert_eq!(buf, r#"{"inner":{"x":1},"gone":null}"#);
        let arr = array_of_raw(vec!["1".to_string(), "2".to_string()]);
        assert_eq!(arr, "[1,2]");
        assert_eq!(array_of_raw(Vec::<String>::new()), "[]");
    }

    #[test]
    fn empty_object() {
        let mut buf = String::new();
        Obj::new(&mut buf).finish();
        assert_eq!(buf, "{}");
    }
}
