//! Structured telemetry events.
//!
//! One [`Event`] is one timestamped observation from anywhere in the stack:
//! a per-link packet event from the simulator, a queue-depth or shared-buffer
//! sample, a per-flow congestion-window transition from the transport, a
//! burst lifecycle marker from the workload, or a flushed metric. Events
//! carry raw integer identifiers (link/node/flow indices, picosecond
//! timestamps) so this crate stays at the bottom of the dependency graph;
//! the emitting crates own the typed ids.

use crate::json::Obj;

/// Coarse event category, used by sinks for cheap subscription gating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// Per-packet link events (enqueue/drop/tx/deliver).
    Packet,
    /// Queue-depth samples.
    Queue,
    /// Shared-buffer occupancy watermarks.
    Buffer,
    /// Per-flow transport state transitions.
    Flow,
    /// Application/workload lifecycle (burst start/end).
    App,
    /// Flushed metric values.
    Metric,
    /// Injected infrastructure faults (link flaps, buffer resizes, host
    /// pauses) from a simulation's fault plan.
    Fault,
    /// Control-plane lifecycle (incast detection episodes: detect, retry,
    /// completion).
    Ctrl,
}

/// Payload details of a traced packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PktDetail {
    /// A data segment.
    Data {
        /// Wire sequence number.
        seq: u32,
        /// Payload bytes.
        payload: u32,
        /// True if this is a retransmission.
        retx: bool,
    },
    /// An acknowledgment.
    Ack {
        /// Cumulative ack (wire).
        ack: u32,
        /// ECN-Echo flag.
        ece: bool,
    },
    /// A QUIC-style data packet (fresh packet number per transmission).
    QuicData {
        /// Wire packet number.
        pn: u32,
        /// Wire stream offset of the payload.
        offset: u32,
        /// Payload bytes.
        payload: u32,
        /// True if the stream bytes were previously transmitted.
        retx: bool,
    },
    /// A QUIC-style acknowledgment carrying packet-number ranges.
    QuicAck {
        /// Largest acknowledged wire packet number.
        largest: u32,
        /// Number of ACK ranges carried.
        ranges: u32,
        /// ECN-Echo flag.
        ece: bool,
    },
    /// An application control message.
    Ctrl {
        /// Demand bytes requested.
        demand: u64,
        /// Burst index.
        burst: u64,
    },
    /// A switch-originated incast notification frame.
    Notif {
        /// Episode epoch at the detecting port.
        epoch: u32,
        /// Requested pause duration in picoseconds.
        pause_ps: u64,
        /// True if the notification requests a cwnd cut instead of a pause.
        cut: bool,
    },
    /// A host's acknowledgment of a notification.
    NotifAck {
        /// Epoch being acknowledged.
        epoch: u32,
    },
}

/// Identity and size of a traced packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PktInfo {
    /// Flow index.
    pub flow: u32,
    /// Source node index.
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
    /// Wire size in bytes.
    pub bytes: u32,
    /// True if the packet currently carries a CE mark.
    pub ce: bool,
    /// Kind-specific detail.
    pub detail: PktDetail,
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// The egress queue's own byte/packet capacity was exceeded.
    QueueFull,
    /// The switch's shared buffer refused admission.
    SharedBuffer,
    /// Link fault injection lost the frame on the wire.
    Fault,
    /// Link fault injection corrupted the frame (dropped at the receiver
    /// as an FCS failure).
    Corrupt,
}

impl DropCause {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            DropCause::QueueFull => "queue_full",
            DropCause::SharedBuffer => "shared_buffer",
            DropCause::Fault => "fault",
            DropCause::Corrupt => "corrupt",
        }
    }
}

/// Transport-level connection state, as seen by flow probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowState {
    /// Normal transmission.
    Open,
    /// NewReno fast recovery.
    Recovery,
    /// Post-RTO: the window collapsed and the flow is rebuilding.
    Backoff,
}

impl FlowState {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            FlowState::Open => "open",
            FlowState::Recovery => "recovery",
            FlowState::Backoff => "backoff",
        }
    }
}

/// What caused a flow-window event to be emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowTrigger {
    /// An ACK advanced or changed the window.
    Ack,
    /// An ACK carrying ECN-Echo changed the window.
    Ece,
    /// Triple-duplicate-ACK fast retransmit.
    FastRetransmit,
    /// Retransmission timeout.
    Rto,
    /// Fresh demand after idle (a new burst is starting).
    BurstStart,
}

impl WindowTrigger {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            WindowTrigger::Ack => "ack",
            WindowTrigger::Ece => "ece",
            WindowTrigger::FastRetransmit => "fast_retx",
            WindowTrigger::Rto => "rto",
            WindowTrigger::BurstStart => "burst_start",
        }
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A packet was accepted into a link's egress queue.
    PktEnqueue {
        /// Link index.
        link: u32,
        /// The packet.
        pkt: PktInfo,
        /// True if this enqueue CE-marked the packet.
        marked: bool,
    },
    /// A packet was dropped at (or on) a link.
    PktDrop {
        /// Link index.
        link: u32,
        /// The packet.
        pkt: PktInfo,
        /// Why.
        reason: DropCause,
    },
    /// Serialization of a packet onto the wire began.
    PktTxStart {
        /// Link index.
        link: u32,
        /// The packet.
        pkt: PktInfo,
    },
    /// A packet arrived at a link's far end.
    PktDeliver {
        /// Link index.
        link: u32,
        /// The packet.
        pkt: PktInfo,
    },
    /// Queue depth after an enqueue or dequeue on a probed link.
    QueueDepth {
        /// Link index.
        link: u32,
        /// Occupancy in packets.
        pkts: u32,
        /// Occupancy in bytes.
        bytes: u64,
    },
    /// A shared buffer reached a new occupancy high-water mark.
    BufferWatermark {
        /// Buffer index.
        buffer: u32,
        /// Bytes charged at the new peak.
        used_bytes: u64,
        /// Pool size.
        total_bytes: u64,
    },
    /// A sender's congestion window / state changed.
    FlowWindow {
        /// Host node index.
        node: u32,
        /// Flow index.
        flow: u32,
        /// Congestion window in bytes (floor applied).
        cwnd: u64,
        /// Slow-start threshold in bytes.
        ssthresh: u64,
        /// Bytes in flight.
        inflight: u64,
        /// Connection state.
        state: FlowState,
        /// What caused this emission.
        trigger: WindowTrigger,
    },
    /// A coordinator issued the requests of a new burst.
    BurstStart {
        /// Burst index (0-based).
        burst: u32,
        /// Number of flows queried.
        flows: u32,
        /// Demand per flow in bytes.
        per_flow_bytes: u64,
    },
    /// The last response byte of a burst arrived.
    BurstEnd {
        /// Burst index (0-based).
        burst: u32,
        /// Burst completion time in milliseconds.
        bct_ms: f64,
    },
    /// A control-plane episode transition at a detecting switch port
    /// (incast detected, notifications re-fired, episode closed).
    CtrlEpisode {
        /// Detecting switch node index.
        node: u32,
        /// Monitored egress link index.
        link: u32,
        /// Episode epoch at that port.
        epoch: u32,
        /// Stable phase label: "detect", "emit", "retry", "done", "expire".
        phase: &'static str,
        /// Targets concerned (senders notified / still unacknowledged).
        targets: u32,
    },
    /// A scheduled infrastructure fault fired (see the simulator's
    /// `FaultPlan`).
    Fault {
        /// Position of the fault in its plan.
        index: u32,
        /// Stable fault-kind label ("link_down", "buffer_resize", …).
        kind: &'static str,
        /// Index of the targeted entity (link, buffer, or node).
        target: u64,
    },
    /// A flushed metric value (see [`crate::MetricsRegistry`]).
    Metric {
        /// Owning component ("link", "flow", "sim", …).
        component: &'static str,
        /// Metric name.
        name: &'static str,
        /// Instance id.
        id: u64,
        /// Value.
        value: f64,
    },
}

/// One timestamped telemetry event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulated time in picoseconds.
    pub t_ps: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// The event's class (for sink gating).
    pub fn class(&self) -> EventClass {
        match self.kind {
            EventKind::PktEnqueue { .. }
            | EventKind::PktDrop { .. }
            | EventKind::PktTxStart { .. }
            | EventKind::PktDeliver { .. } => EventClass::Packet,
            EventKind::QueueDepth { .. } => EventClass::Queue,
            EventKind::BufferWatermark { .. } => EventClass::Buffer,
            EventKind::FlowWindow { .. } => EventClass::Flow,
            EventKind::BurstStart { .. } | EventKind::BurstEnd { .. } => EventClass::App,
            EventKind::CtrlEpisode { .. } => EventClass::Ctrl,
            EventKind::Fault { .. } => EventClass::Fault,
            EventKind::Metric { .. } => EventClass::Metric,
        }
    }

    /// The flow this event concerns, if any (drives flow filters).
    pub fn flow(&self) -> Option<u32> {
        match self.kind {
            EventKind::PktEnqueue { pkt, .. }
            | EventKind::PktDrop { pkt, .. }
            | EventKind::PktTxStart { pkt, .. }
            | EventKind::PktDeliver { pkt, .. } => Some(pkt.flow),
            EventKind::FlowWindow { flow, .. } => Some(flow),
            _ => None,
        }
    }

    fn write_pkt(o: &mut Obj, link: u32, pkt: &PktInfo) {
        o.u64("link", link as u64)
            .u64("flow", pkt.flow as u64)
            .u64("src", pkt.src as u64)
            .u64("dst", pkt.dst as u64)
            .u64("bytes", pkt.bytes as u64)
            .bool("ce", pkt.ce);
        match pkt.detail {
            PktDetail::Data { seq, payload, retx } => {
                o.str("pkt", "data")
                    .u64("seq", seq as u64)
                    .u64("len", payload as u64)
                    .bool("retx", retx);
            }
            PktDetail::Ack { ack, ece } => {
                o.str("pkt", "ack").u64("ack", ack as u64).bool("ece", ece);
            }
            PktDetail::QuicData {
                pn,
                offset,
                payload,
                retx,
            } => {
                o.str("pkt", "qdata")
                    .u64("pn", pn as u64)
                    .u64("off", offset as u64)
                    .u64("len", payload as u64)
                    .bool("retx", retx);
            }
            PktDetail::QuicAck {
                largest,
                ranges,
                ece,
            } => {
                o.str("pkt", "qack")
                    .u64("largest", largest as u64)
                    .u64("ranges", ranges as u64)
                    .bool("ece", ece);
            }
            PktDetail::Ctrl { demand, burst } => {
                o.str("pkt", "ctrl")
                    .u64("demand", demand)
                    .u64("burst", burst);
            }
            PktDetail::Notif {
                epoch,
                pause_ps,
                cut,
            } => {
                o.str("pkt", "notif")
                    .u64("epoch", epoch as u64)
                    .u64("pause_ps", pause_ps)
                    .bool("cut", cut);
            }
            PktDetail::NotifAck { epoch } => {
                o.str("pkt", "notif_ack").u64("epoch", epoch as u64);
            }
        }
    }

    /// Appends this event as one JSON object (no trailing newline) to `out`.
    ///
    /// Field order is fixed, so equal events serialize to equal bytes —
    /// the property the determinism tests and trace diffing rely on.
    pub fn write_json(&self, out: &mut String) {
        let mut o = Obj::new(out);
        o.u64("t", self.t_ps);
        match &self.kind {
            EventKind::PktEnqueue { link, pkt, marked } => {
                o.str("ev", "pkt_enq");
                Self::write_pkt(&mut o, *link, pkt);
                o.bool("marked", *marked);
            }
            EventKind::PktDrop { link, pkt, reason } => {
                o.str("ev", "pkt_drop");
                Self::write_pkt(&mut o, *link, pkt);
                o.str("reason", reason.label());
            }
            EventKind::PktTxStart { link, pkt } => {
                o.str("ev", "pkt_tx");
                Self::write_pkt(&mut o, *link, pkt);
            }
            EventKind::PktDeliver { link, pkt } => {
                o.str("ev", "pkt_rx");
                Self::write_pkt(&mut o, *link, pkt);
            }
            EventKind::QueueDepth { link, pkts, bytes } => {
                o.str("ev", "queue_depth")
                    .u64("link", *link as u64)
                    .u64("pkts", *pkts as u64)
                    .u64("bytes", *bytes);
            }
            EventKind::BufferWatermark {
                buffer,
                used_bytes,
                total_bytes,
            } => {
                o.str("ev", "buffer_watermark")
                    .u64("buffer", *buffer as u64)
                    .u64("used_bytes", *used_bytes)
                    .u64("total_bytes", *total_bytes);
            }
            EventKind::FlowWindow {
                node,
                flow,
                cwnd,
                ssthresh,
                inflight,
                state,
                trigger,
            } => {
                o.str("ev", "flow_window")
                    .u64("node", *node as u64)
                    .u64("flow", *flow as u64)
                    .u64("cwnd", *cwnd)
                    .u64("ssthresh", *ssthresh)
                    .u64("inflight", *inflight)
                    .str("state", state.label())
                    .str("trigger", trigger.label());
            }
            EventKind::BurstStart {
                burst,
                flows,
                per_flow_bytes,
            } => {
                o.str("ev", "burst_start")
                    .u64("burst", *burst as u64)
                    .u64("flows", *flows as u64)
                    .u64("per_flow_bytes", *per_flow_bytes);
            }
            EventKind::BurstEnd { burst, bct_ms } => {
                o.str("ev", "burst_end")
                    .u64("burst", *burst as u64)
                    .f64("bct_ms", *bct_ms);
            }
            EventKind::CtrlEpisode {
                node,
                link,
                epoch,
                phase,
                targets,
            } => {
                o.str("ev", "ctrl")
                    .u64("node", *node as u64)
                    .u64("link", *link as u64)
                    .u64("epoch", *epoch as u64)
                    .str("phase", phase)
                    .u64("targets", *targets as u64);
            }
            EventKind::Fault {
                index,
                kind,
                target,
            } => {
                o.str("ev", "fault")
                    .u64("index", *index as u64)
                    .str("kind", kind)
                    .u64("target", *target);
            }
            EventKind::Metric {
                component,
                name,
                id,
                value,
            } => {
                o.str("ev", "metric")
                    .str("component", component)
                    .str("name", name)
                    .u64("id", *id)
                    .f64("value", *value);
            }
        }
        o.finish();
    }

    /// This event as a standalone JSON string.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_pkt() -> PktInfo {
        PktInfo {
            flow: 5,
            src: 0,
            dst: 2,
            bytes: 1500,
            ce: false,
            detail: PktDetail::Data {
                seq: 100,
                payload: 1446,
                retx: false,
            },
        }
    }

    #[test]
    fn enqueue_serializes_with_fixed_field_order() {
        let ev = Event {
            t_ps: 3_000_000,
            kind: EventKind::PktEnqueue {
                link: 1,
                pkt: data_pkt(),
                marked: true,
            },
        };
        assert_eq!(
            ev.to_json(),
            r#"{"t":3000000,"ev":"pkt_enq","link":1,"flow":5,"src":0,"dst":2,"bytes":1500,"ce":false,"pkt":"data","seq":100,"len":1446,"retx":false,"marked":true}"#
        );
    }

    #[test]
    fn classes_and_flows() {
        let pkt_ev = Event {
            t_ps: 0,
            kind: EventKind::PktDeliver {
                link: 0,
                pkt: data_pkt(),
            },
        };
        assert_eq!(pkt_ev.class(), EventClass::Packet);
        assert_eq!(pkt_ev.flow(), Some(5));

        let q = Event {
            t_ps: 0,
            kind: EventKind::QueueDepth {
                link: 2,
                pkts: 7,
                bytes: 10_500,
            },
        };
        assert_eq!(q.class(), EventClass::Queue);
        assert_eq!(q.flow(), None);

        let fw = Event {
            t_ps: 0,
            kind: EventKind::FlowWindow {
                node: 1,
                flow: 9,
                cwnd: 14460,
                ssthresh: u64::MAX,
                inflight: 0,
                state: FlowState::Open,
                trigger: WindowTrigger::BurstStart,
            },
        };
        assert_eq!(fw.class(), EventClass::Flow);
        assert_eq!(fw.flow(), Some(9));
    }

    #[test]
    fn fault_event_serializes_and_classes() {
        let ev = Event {
            t_ps: 5_000_000,
            kind: EventKind::Fault {
                index: 2,
                kind: "link_down",
                target: 4,
            },
        };
        assert_eq!(ev.class(), EventClass::Fault);
        assert_eq!(ev.flow(), None);
        assert_eq!(
            ev.to_json(),
            r#"{"t":5000000,"ev":"fault","index":2,"kind":"link_down","target":4}"#
        );
    }

    #[test]
    fn drop_reasons_and_states_have_stable_labels() {
        assert_eq!(DropCause::QueueFull.label(), "queue_full");
        assert_eq!(DropCause::SharedBuffer.label(), "shared_buffer");
        assert_eq!(DropCause::Fault.label(), "fault");
        assert_eq!(DropCause::Corrupt.label(), "corrupt");
        assert_eq!(FlowState::Backoff.label(), "backoff");
        assert_eq!(WindowTrigger::FastRetransmit.label(), "fast_retx");
    }

    #[test]
    fn quic_details_serialize() {
        let qd = Event {
            t_ps: 1,
            kind: EventKind::PktDeliver {
                link: 3,
                pkt: PktInfo {
                    flow: 1,
                    src: 0,
                    dst: 2,
                    bytes: 1500,
                    ce: false,
                    detail: PktDetail::QuicData {
                        pn: 17,
                        offset: 4096,
                        payload: 1446,
                        retx: true,
                    },
                },
            },
        };
        assert!(
            qd.to_json()
                .contains(r#""pkt":"qdata","pn":17,"off":4096,"len":1446,"retx":true"#),
            "{}",
            qd.to_json()
        );
        let qa = Event {
            t_ps: 2,
            kind: EventKind::PktDeliver {
                link: 3,
                pkt: PktInfo {
                    flow: 1,
                    src: 2,
                    dst: 0,
                    bytes: 64,
                    ce: false,
                    detail: PktDetail::QuicAck {
                        largest: 17,
                        ranges: 2,
                        ece: true,
                    },
                },
            },
        };
        assert!(
            qa.to_json()
                .contains(r#""pkt":"qack","largest":17,"ranges":2,"ece":true"#),
            "{}",
            qa.to_json()
        );
    }

    #[test]
    fn notif_details_and_ctrl_episode_serialize() {
        let notif = Event {
            t_ps: 7,
            kind: EventKind::PktDeliver {
                link: 2,
                pkt: PktInfo {
                    flow: 0xC000_0000,
                    src: 10,
                    dst: 1,
                    bytes: 64,
                    ce: false,
                    detail: PktDetail::Notif {
                        epoch: 3,
                        pause_ps: 150_000_000,
                        cut: false,
                    },
                },
            },
        };
        assert!(
            notif
                .to_json()
                .contains(r#""pkt":"notif","epoch":3,"pause_ps":150000000,"cut":false"#),
            "{}",
            notif.to_json()
        );
        let ack = Event {
            t_ps: 8,
            kind: EventKind::PktDeliver {
                link: 2,
                pkt: PktInfo {
                    flow: 0xC000_0000,
                    src: 1,
                    dst: 10,
                    bytes: 64,
                    ce: false,
                    detail: PktDetail::NotifAck { epoch: 3 },
                },
            },
        };
        assert!(
            ack.to_json().contains(r#""pkt":"notif_ack","epoch":3"#),
            "{}",
            ack.to_json()
        );
        let ep = Event {
            t_ps: 9,
            kind: EventKind::CtrlEpisode {
                node: 10,
                link: 2,
                epoch: 3,
                phase: "detect",
                targets: 8,
            },
        };
        assert_eq!(ep.class(), EventClass::Ctrl);
        assert_eq!(ep.flow(), None);
        assert_eq!(
            ep.to_json(),
            r#"{"t":9,"ev":"ctrl","node":10,"link":2,"epoch":3,"phase":"detect","targets":8}"#
        );
    }

    #[test]
    fn ack_and_ctrl_serialize() {
        let ack = Event {
            t_ps: 1,
            kind: EventKind::PktDeliver {
                link: 3,
                pkt: PktInfo {
                    flow: 1,
                    src: 2,
                    dst: 0,
                    bytes: 64,
                    ce: false,
                    detail: PktDetail::Ack {
                        ack: 777,
                        ece: true,
                    },
                },
            },
        };
        assert!(ack
            .to_json()
            .contains(r#""pkt":"ack","ack":777,"ece":true"#));
        let ctrl = Event {
            t_ps: 2,
            kind: EventKind::BurstEnd {
                burst: 4,
                bct_ms: 1.25,
            },
        };
        assert_eq!(
            ctrl.to_json(),
            r#"{"t":2,"ev":"burst_end","burst":4,"bct_ms":1.25}"#
        );
    }
}
