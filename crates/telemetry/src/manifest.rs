//! Per-run manifests.
//!
//! A [`RunManifest`] records everything needed to replay and diff a run:
//! the seed, topology, transport configuration, the code version
//! (`git describe`), how many telemetry events were captured, how many
//! simulator events were processed, and (optionally) wall-clock time.
//! Everything except wall-clock is deterministic for a fixed seed and
//! binary, so manifests from two identical runs compare byte-equal once
//! the wall-clock field is left unset (it is omitted from the JSON when
//! `None`).

use crate::json::Obj;

/// A replayable description of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunManifest {
    /// Human name of the experiment/run.
    pub name: String,
    /// RNG seed.
    pub seed: u64,
    /// Topology summary, e.g. `"dumbbell:senders=32,trunk=100G"`.
    pub topology: String,
    /// Pre-rendered JSON of the transport config (see
    /// `TcpConfig::to_json` in the transport crate), or `"{}"`.
    pub config_json: String,
    /// Output of `git describe --always --dirty`, or `"unknown"`.
    pub git_describe: String,
    /// Telemetry events captured by the attached sink.
    pub event_count: u64,
    /// Simulator events processed.
    pub events_processed: u64,
    /// Final simulated time in picoseconds.
    pub sim_time_ps: u64,
    /// Pre-rendered JSON of the simulator counters, or `"{}"`.
    pub counters_json: String,
    /// Event scheduler driving the run (`"wheel"` or `"heap"`), or
    /// `"unknown"`.
    pub scheduler: String,
    /// Wall-clock duration in microseconds. `None` keeps the manifest
    /// deterministic; the field is omitted from the JSON entirely.
    pub wall_clock_us: Option<u64>,
    /// Event-loop throughput (simulator events per wall-clock second).
    /// Nondeterministic like `wall_clock_us`; omitted from the JSON when
    /// `None` and cleared by [`RunManifest::deterministic`].
    pub events_per_sec: Option<u64>,
    /// Pre-rendered JSON of the run-cache statistics for the sweep that
    /// produced this manifest (hits, misses, entries). Depends on cache
    /// state rather than the run's inputs, so like the wall-clock fields it
    /// is omitted when `None` and cleared by [`RunManifest::deterministic`].
    pub cache_json: Option<String>,
    /// Invariant violations recorded during the run by the `check` feature's
    /// invariant layer (`simnet::check`). `None` when the layer is compiled
    /// out; `Some(0)` is a clean checked run. Deterministic for a fixed
    /// seed, so it survives [`RunManifest::deterministic`].
    pub invariant_violations: Option<u64>,
    /// Faults applied from the run's fault plan. `None` when the run had no
    /// plan installed; deterministic for a fixed seed + plan, so it survives
    /// [`RunManifest::deterministic`].
    pub faults_injected: Option<u64>,
    /// Why the run was cut short by a budget guard ("sim_time", "events",
    /// or "wall_clock"), if it was. Truncated runs are excluded from sweep
    /// aggregates. Deterministic for the sim-side causes, so it survives
    /// [`RunManifest::deterministic`] (wall-clock truncation makes the whole
    /// run nondeterministic anyway — such runs should never be compared).
    pub truncated: Option<String>,
    /// Pre-rendered JSON of supervised-sweep coverage counts
    /// (ran/failed/truncated/retried). Retry counts depend on transient IO,
    /// so like `cache_json` it is omitted when `None` and cleared by
    /// [`RunManifest::deterministic`].
    pub coverage_json: Option<String>,
    /// Pre-rendered JSON of the run's wall-clock phase breakdown
    /// (setup/sim/aggregate microseconds). Nondeterministic like
    /// `wall_clock_us`; omitted when `None` and cleared by
    /// [`RunManifest::deterministic`].
    pub timing_json: Option<String>,
    /// Pre-rendered JSON of the sweep pool's work-distribution counters
    /// (local claims, steals, lane occupancy). Depends on thread
    /// scheduling, so it is omitted when `None` and cleared by
    /// [`RunManifest::deterministic`].
    pub pool_json: Option<String>,
    /// Pre-rendered JSON of per-tier queue statistics (uplink / spine /
    /// downlink watermarks, drops, marks) for multi-tier fabrics. `None`
    /// for single-rack topologies. Deterministic for a fixed seed, so it
    /// survives [`RunManifest::deterministic`].
    pub tiers_json: Option<String>,
    /// Pre-rendered JSON describing the run's in-fabric incast control
    /// plane (mitigation kind, monitored ports, notification lifecycle
    /// tallies). `None` when no control plane was installed. Deterministic
    /// for a fixed seed, so it survives [`RunManifest::deterministic`].
    pub control_json: Option<String>,
}

impl RunManifest {
    /// A manifest with the identifying fields set and the rest default.
    pub fn new(name: &str, seed: u64, topology: &str) -> Self {
        RunManifest {
            name: name.to_string(),
            seed,
            topology: topology.to_string(),
            config_json: "{}".to_string(),
            git_describe: "unknown".to_string(),
            counters_json: "{}".to_string(),
            scheduler: "unknown".to_string(),
            ..Default::default()
        }
    }

    /// Fills `git_describe` from the working tree (best effort).
    pub fn with_git_describe(mut self) -> Self {
        self.git_describe = git_describe();
        self
    }

    /// Renders the manifest as one JSON object. Field order is fixed;
    /// `wall_clock_us` is omitted when `None`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let mut o = Obj::new(&mut out);
        o.str("name", &self.name)
            .u64("seed", self.seed)
            .str("topology", &self.topology)
            .raw(
                "config",
                if self.config_json.is_empty() {
                    "{}"
                } else {
                    &self.config_json
                },
            )
            .str("git_describe", &self.git_describe)
            .u64("event_count", self.event_count)
            .u64("events_processed", self.events_processed)
            .u64("sim_time_ps", self.sim_time_ps)
            .raw(
                "counters",
                if self.counters_json.is_empty() {
                    "{}"
                } else {
                    &self.counters_json
                },
            )
            .str("scheduler", &self.scheduler);
        if let Some(t) = &self.tiers_json {
            o.raw("tiers", t);
        }
        if let Some(c) = &self.control_json {
            o.raw("control", c);
        }
        if let Some(v) = self.invariant_violations {
            o.u64("invariant_violations", v);
        }
        if let Some(f) = self.faults_injected {
            o.u64("faults_injected", f);
        }
        if let Some(cause) = &self.truncated {
            o.str("truncated", cause);
        }
        if let Some(us) = self.wall_clock_us {
            o.u64("wall_clock_us", us);
        }
        if let Some(eps) = self.events_per_sec {
            o.u64("events_per_sec", eps);
        }
        if let Some(cache) = &self.cache_json {
            o.raw("cache", cache);
        }
        if let Some(cov) = &self.coverage_json {
            o.raw("coverage", cov);
        }
        if let Some(t) = &self.timing_json {
            o.raw("timing", t);
        }
        if let Some(p) = &self.pool_json {
            o.raw("pool", p);
        }
        o.finish();
        out
    }

    /// This manifest with the wall-clock-derived fields cleared — the form
    /// to use when comparing manifests across runs for determinism.
    pub fn deterministic(&self) -> RunManifest {
        let mut m = self.clone();
        m.wall_clock_us = None;
        m.events_per_sec = None;
        m.cache_json = None;
        m.coverage_json = None;
        m.timing_json = None;
        m.pool_json = None;
        m
    }
}

/// `git describe --always --dirty` of the current working tree, or
/// `"unknown"` when git is unavailable (e.g. outside a checkout).
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_renders_fixed_field_order() {
        let mut m = RunManifest::new("paper_default", 42, "dumbbell:senders=4");
        m.config_json = r#"{"mss":1500}"#.to_string();
        m.event_count = 10;
        m.events_processed = 99;
        m.sim_time_ps = 1_000_000;
        m.counters_json = r#"{"drops":2}"#.to_string();
        m.scheduler = "wheel".to_string();
        let j = m.to_json();
        assert_eq!(
            j,
            r#"{"name":"paper_default","seed":42,"topology":"dumbbell:senders=4","config":{"mss":1500},"git_describe":"unknown","event_count":10,"events_processed":99,"sim_time_ps":1000000,"counters":{"drops":2},"scheduler":"wheel"}"#
        );
    }

    #[test]
    fn wall_clock_is_omitted_when_none_and_present_when_set() {
        let mut m = RunManifest::new("x", 1, "t");
        assert!(!m.to_json().contains("wall_clock_us"));
        assert!(!m.to_json().contains("events_per_sec"));
        m.wall_clock_us = Some(1234);
        m.events_per_sec = Some(5_000_000);
        assert!(m.to_json().contains(r#""wall_clock_us":1234"#));
        assert!(m.to_json().contains(r#""events_per_sec":5000000"#));
        let det = m.deterministic().to_json();
        assert!(!det.contains("wall_clock_us"));
        assert!(!det.contains("events_per_sec"));
    }

    #[test]
    fn cache_json_is_omitted_when_none_and_raw_when_set() {
        let mut m = RunManifest::new("x", 1, "t");
        assert!(!m.to_json().contains("cache"));
        m.cache_json = Some(r#"{"hits":3,"misses":1}"#.to_string());
        assert!(m.to_json().ends_with(r#""cache":{"hits":3,"misses":1}}"#));
        assert!(!m.deterministic().to_json().contains("cache"));
    }

    #[test]
    fn invariant_violations_render_and_survive_deterministic() {
        let mut m = RunManifest::new("x", 1, "t");
        assert!(!m.to_json().contains("invariant_violations"));
        m.invariant_violations = Some(0);
        assert!(m.to_json().contains(r#""invariant_violations":0"#));
        // Deterministic for a fixed seed, so the determinism view keeps it.
        assert_eq!(m.deterministic().invariant_violations, Some(0));
        assert!(m
            .deterministic()
            .to_json()
            .contains(r#""invariant_violations":0"#));
    }

    #[test]
    fn faults_and_truncation_render_and_survive_deterministic() {
        let mut m = RunManifest::new("x", 1, "t");
        assert!(!m.to_json().contains("faults_injected"));
        assert!(!m.to_json().contains("truncated"));
        m.faults_injected = Some(6);
        m.truncated = Some("events".to_string());
        assert!(m.to_json().contains(r#""faults_injected":6"#));
        assert!(m.to_json().contains(r#""truncated":"events""#));
        // Both are functions of the run's inputs, so the determinism view
        // keeps them.
        let det = m.deterministic();
        assert_eq!(det.faults_injected, Some(6));
        assert_eq!(det.truncated.as_deref(), Some("events"));
    }

    #[test]
    fn coverage_json_is_omitted_when_none_and_cleared_by_deterministic() {
        let mut m = RunManifest::new("x", 1, "t");
        assert!(!m.to_json().contains("coverage"));
        m.coverage_json = Some(r#"{"total":4,"ran":3,"failed":1}"#.to_string());
        assert!(m
            .to_json()
            .ends_with(r#""coverage":{"total":4,"ran":3,"failed":1}}"#));
        assert!(!m.deterministic().to_json().contains("coverage"));
    }

    #[test]
    fn timing_and_pool_are_omitted_when_none_and_cleared_by_deterministic() {
        let mut m = RunManifest::new("x", 1, "t");
        assert!(!m.to_json().contains("timing"));
        assert!(!m.to_json().contains("pool"));
        m.timing_json = Some(r#"{"setup_us":10,"sim_us":90,"aggregate_us":5}"#.to_string());
        m.pool_json = Some(r#"{"jobs":1,"steal_claims":0}"#.to_string());
        let j = m.to_json();
        assert!(j.contains(r#""timing":{"setup_us":10,"sim_us":90,"aggregate_us":5}"#));
        assert!(j.ends_with(r#""pool":{"jobs":1,"steal_claims":0}}"#));
        let det = m.deterministic().to_json();
        assert!(!det.contains("timing"));
        assert!(!det.contains("pool"));
    }

    #[test]
    fn tiers_json_renders_and_survives_deterministic() {
        let mut m = RunManifest::new("x", 1, "clos:racks=2");
        assert!(!m.to_json().contains("tiers"));
        m.tiers_json = Some(r#"{"uplink":{"watermark_pkts":9}}"#.to_string());
        assert!(m
            .to_json()
            .contains(r#""tiers":{"uplink":{"watermark_pkts":9}}"#));
        // A function of the run's inputs, so the determinism view keeps it.
        assert!(m.deterministic().to_json().contains(r#""tiers":"#));
    }

    #[test]
    fn control_json_renders_and_survives_deterministic() {
        let mut m = RunManifest::new("x", 1, "t");
        assert!(!m.to_json().contains("control"));
        m.control_json = Some(r#"{"mitigation":"pulser","ports":1}"#.to_string());
        assert!(m
            .to_json()
            .contains(r#""control":{"mitigation":"pulser","ports":1}"#));
        // A function of the run's inputs, so the determinism view keeps it.
        assert!(m.deterministic().to_json().contains(r#""control":"#));
    }

    #[test]
    fn empty_config_falls_back_to_empty_object() {
        let mut m = RunManifest::new("x", 1, "t");
        m.config_json = String::new();
        m.counters_json = String::new();
        let j = m.to_json();
        assert!(j.contains(r#""config":{}"#));
        assert!(j.contains(r#""counters":{}"#));
    }

    #[test]
    fn git_describe_never_panics() {
        let d = git_describe();
        assert!(!d.is_empty());
    }

    #[test]
    fn deterministic_manifests_compare_equal() {
        let mut a = RunManifest::new("x", 7, "t");
        let mut b = RunManifest::new("x", 7, "t");
        a.wall_clock_us = Some(1);
        b.wall_clock_us = Some(999);
        assert_ne!(a, b);
        assert_eq!(a.deterministic(), b.deterministic());
        assert_eq!(a.deterministic().to_json(), b.deterministic().to_json());
    }
}
