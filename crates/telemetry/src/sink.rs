//! Event sinks: where telemetry events go.
//!
//! The simulator and transport emit [`Event`]s through a [`SinkRef`] — a
//! cheap clonable handle. When no sink is attached the emitting code pays
//! one `Option` check per would-be event; when one is attached, the sink's
//! [`EventSink::accepts`] gate lets it subscribe to only the classes it
//! wants before any serialization happens.

use crate::event::{Event, EventClass};
use std::cell::RefCell;
use std::rc::Rc;

/// A consumer of telemetry events.
pub trait EventSink {
    /// Whether this sink wants events of `class` at all. Emitters may use
    /// this to skip building events nobody will consume.
    fn accepts(&self, class: EventClass) -> bool {
        let _ = class;
        true
    }

    /// Consumes one event.
    fn on_event(&mut self, ev: &Event);

    /// Number of events this sink has consumed.
    fn event_count(&self) -> u64;
}

/// A clonable shared handle to a dynamically-typed sink.
///
/// The simulation is single-threaded, so `Rc<RefCell<..>>` (mirroring
/// simnet's `Shared<T>`) is the right sharing primitive. Callers that need
/// to read results back after a run keep their own typed
/// `Rc<RefCell<JsonlSink>>` and hand a `SinkRef` to the instrumented
/// components.
#[derive(Clone)]
pub struct SinkRef(Rc<RefCell<dyn EventSink>>);

impl SinkRef {
    /// Wraps a concrete sink.
    pub fn new<S: EventSink + 'static>(sink: S) -> Self {
        SinkRef(Rc::new(RefCell::new(sink)))
    }

    /// Wraps an existing shared sink, leaving the caller a typed handle.
    pub fn from_rc<S: EventSink + 'static>(sink: Rc<RefCell<S>>) -> Self {
        SinkRef(sink)
    }

    /// Whether the sink subscribes to `class`.
    pub fn accepts(&self, class: EventClass) -> bool {
        self.0.borrow().accepts(class)
    }

    /// Delivers one event.
    pub fn emit(&self, ev: &Event) {
        self.0.borrow_mut().on_event(ev);
    }

    /// Events consumed so far.
    pub fn event_count(&self) -> u64 {
        self.0.borrow().event_count()
    }
}

impl std::fmt::Debug for SinkRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SinkRef")
            .field("events", &self.event_count())
            .finish()
    }
}

/// A sink that counts events and discards them. Useful for measuring the
/// overhead of event construction itself.
#[derive(Debug, Default)]
pub struct NullSink {
    count: u64,
}

impl NullSink {
    /// A fresh counting sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for NullSink {
    fn on_event(&mut self, _ev: &Event) {
        self.count += 1;
    }

    fn event_count(&self) -> u64 {
        self.count
    }
}

/// An in-memory JSONL sink: every accepted event becomes one JSON object on
/// its own line, in arrival order. Output is deterministic — equal event
/// streams render to equal bytes.
#[derive(Debug)]
pub struct JsonlSink {
    buf: String,
    count: u64,
    /// When set, only packet/flow events for this flow id are recorded
    /// (class-level events like queue depth always pass).
    flow_filter: Option<u32>,
    /// Classes this sink subscribes to; `None` means all.
    classes: Option<Vec<EventClass>>,
}

impl Default for JsonlSink {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonlSink {
    /// A sink capturing every event class.
    pub fn new() -> Self {
        JsonlSink {
            buf: String::new(),
            count: 0,
            flow_filter: None,
            classes: None,
        }
    }

    /// Restricts flow-attributed events (packets, flow windows) to `flow`.
    pub fn with_flow_filter(mut self, flow: u32) -> Self {
        self.flow_filter = Some(flow);
        self
    }

    /// Restricts the sink to the given event classes.
    pub fn with_classes(mut self, classes: &[EventClass]) -> Self {
        self.classes = Some(classes.to_vec());
        self
    }

    /// Wraps this sink for sharing; returns the typed handle plus the
    /// `SinkRef` to hand to instrumented components.
    pub fn shared(self) -> (Rc<RefCell<JsonlSink>>, SinkRef) {
        let rc = Rc::new(RefCell::new(self));
        let sref = SinkRef::from_rc(rc.clone());
        (rc, sref)
    }

    /// The rendered JSONL buffer (one JSON object per line).
    pub fn render(&self) -> &str {
        &self.buf
    }

    /// Iterator over rendered lines.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.buf.lines()
    }

    /// Number of events recorded.
    pub fn events_written(&self) -> u64 {
        self.count
    }
}

impl EventSink for JsonlSink {
    fn accepts(&self, class: EventClass) -> bool {
        match &self.classes {
            None => true,
            Some(cs) => cs.contains(&class),
        }
    }

    fn on_event(&mut self, ev: &Event) {
        if !self.accepts(ev.class()) {
            return;
        }
        if let (Some(want), Some(flow)) = (self.flow_filter, ev.flow()) {
            if flow != want {
                return;
            }
        }
        ev.write_json(&mut self.buf);
        self.buf.push('\n');
        self.count += 1;
    }

    fn event_count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, FlowState, PktDetail, PktInfo, WindowTrigger};

    fn pkt(flow: u32) -> PktInfo {
        PktInfo {
            flow,
            src: 0,
            dst: 1,
            bytes: 1500,
            ce: false,
            detail: PktDetail::Data {
                seq: 0,
                payload: 1446,
                retx: false,
            },
        }
    }

    fn enq(t: u64, flow: u32) -> Event {
        Event {
            t_ps: t,
            kind: EventKind::PktEnqueue {
                link: 0,
                pkt: pkt(flow),
                marked: false,
            },
        }
    }

    #[test]
    fn jsonl_records_one_line_per_event() {
        let mut sink = JsonlSink::new();
        sink.on_event(&enq(1, 0));
        sink.on_event(&enq(2, 1));
        assert_eq!(sink.events_written(), 2);
        assert_eq!(sink.lines().count(), 2);
        for line in sink.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn flow_filter_drops_other_flows_but_keeps_unattributed() {
        let mut sink = JsonlSink::new().with_flow_filter(3);
        sink.on_event(&enq(1, 2));
        sink.on_event(&enq(2, 3));
        sink.on_event(&Event {
            t_ps: 3,
            kind: EventKind::QueueDepth {
                link: 0,
                pkts: 1,
                bytes: 1500,
            },
        });
        assert_eq!(sink.events_written(), 2);
        assert!(sink.render().contains("queue_depth"));
        assert!(sink.render().contains(r#""flow":3"#));
        assert!(!sink.render().contains(r#""flow":2"#));
    }

    #[test]
    fn class_subscription_gates_events() {
        let mut sink = JsonlSink::new().with_classes(&[EventClass::Flow]);
        assert!(!sink.accepts(EventClass::Packet));
        assert!(sink.accepts(EventClass::Flow));
        sink.on_event(&enq(1, 0));
        sink.on_event(&Event {
            t_ps: 2,
            kind: EventKind::FlowWindow {
                node: 0,
                flow: 0,
                cwnd: 14460,
                ssthresh: u64::MAX,
                inflight: 0,
                state: FlowState::Open,
                trigger: WindowTrigger::Ack,
            },
        });
        assert_eq!(sink.events_written(), 1);
        assert!(sink.render().contains("flow_window"));
    }

    #[test]
    fn shared_handle_reads_back_through_sinkref() {
        let (rc, sref) = JsonlSink::new().shared();
        sref.emit(&enq(5, 0));
        assert_eq!(sref.event_count(), 1);
        assert_eq!(rc.borrow().events_written(), 1);
    }

    #[test]
    fn null_sink_counts() {
        let mut s = NullSink::new();
        s.on_event(&enq(1, 0));
        s.on_event(&enq(2, 0));
        assert_eq!(s.event_count(), 2);
    }
}
