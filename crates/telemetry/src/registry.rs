//! A lightweight metrics registry.
//!
//! Counters, gauges, and sim-time time-series keyed by
//! `(component, name, id)`. Component and metric names are `&'static str`
//! so a metric key is two pointers and an integer — updates are a hash
//! lookup plus an add, with no allocation on the hot path after the first
//! touch of a key. Snapshots render deterministically (keys sorted) so two
//! identical runs produce identical metric dumps.

use crate::event::{Event, EventKind};
use crate::json::{array_of_raw, Obj};
use crate::sink::SinkRef;
use stats::TimeSeries;
use std::collections::HashMap;

/// Identifies one metric instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricKey {
    /// Owning component ("link", "flow", "sim", …).
    pub component: &'static str,
    /// Metric name ("drops", "cwnd_bytes", …).
    pub name: &'static str,
    /// Instance id (link index, flow index, 0 for singletons).
    pub id: u64,
}

impl MetricKey {
    /// Builds a key.
    pub fn new(component: &'static str, name: &'static str, id: u64) -> Self {
        MetricKey {
            component,
            name,
            id,
        }
    }
}

/// Counters, gauges, and time-series, deterministically snapshotable.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: HashMap<MetricKey, u64>,
    gauges: HashMap<MetricKey, f64>,
    series: HashMap<MetricKey, TimeSeries>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a counter (creating it at zero).
    pub fn count(&mut self, component: &'static str, name: &'static str, id: u64, delta: u64) {
        *self
            .counters
            .entry(MetricKey::new(component, name, id))
            .or_insert(0) += delta;
    }

    /// Sets a gauge to `value`.
    pub fn gauge(&mut self, component: &'static str, name: &'static str, id: u64, value: f64) {
        self.gauges
            .insert(MetricKey::new(component, name, id), value);
    }

    /// Accumulates `value` into a sim-time series bucketed at
    /// `interval_ps`, at time `t_ps`. The interval of an existing series is
    /// fixed by its first observation.
    pub fn observe(
        &mut self,
        component: &'static str,
        name: &'static str,
        id: u64,
        interval_ps: u64,
        t_ps: u64,
        value: f64,
    ) {
        self.series
            .entry(MetricKey::new(component, name, id))
            .or_insert_with(|| TimeSeries::new(interval_ps))
            .accumulate(t_ps, value);
    }

    /// A counter's value (0 if never touched).
    pub fn counter(&self, component: &'static str, name: &'static str, id: u64) -> u64 {
        self.counters
            .get(&MetricKey::new(component, name, id))
            .copied()
            .unwrap_or(0)
    }

    /// A gauge's value, if set.
    pub fn gauge_value(&self, component: &'static str, name: &'static str, id: u64) -> Option<f64> {
        self.gauges
            .get(&MetricKey::new(component, name, id))
            .copied()
    }

    /// A time-series, if observed.
    pub fn series(
        &self,
        component: &'static str,
        name: &'static str,
        id: u64,
    ) -> Option<&TimeSeries> {
        self.series.get(&MetricKey::new(component, name, id))
    }

    /// Total number of registered metric instances.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.series.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flushes every counter and gauge to `sink` as [`EventKind::Metric`]
    /// events stamped `t_ps`, in sorted key order.
    pub fn flush_to(&self, sink: &SinkRef, t_ps: u64) {
        let mut keys: Vec<&MetricKey> = self.counters.keys().collect();
        keys.sort();
        for k in keys {
            sink.emit(&Event {
                t_ps,
                kind: EventKind::Metric {
                    component: k.component,
                    name: k.name,
                    id: k.id,
                    value: self.counters[k] as f64,
                },
            });
        }
        let mut keys: Vec<&MetricKey> = self.gauges.keys().collect();
        keys.sort();
        for k in keys {
            sink.emit(&Event {
                t_ps,
                kind: EventKind::Metric {
                    component: k.component,
                    name: k.name,
                    id: k.id,
                    value: self.gauges[k],
                },
            });
        }
    }

    /// Renders the whole registry as one deterministic JSON object:
    /// `{"counters":[...],"gauges":[...],"series":[...]}` with entries
    /// sorted by key.
    pub fn to_json(&self) -> String {
        fn key_obj(k: &MetricKey, out: &mut Obj) {
            out.str("component", k.component)
                .str("name", k.name)
                .u64("id", k.id);
        }

        let mut counters: Vec<(&MetricKey, u64)> =
            self.counters.iter().map(|(k, v)| (k, *v)).collect();
        counters.sort_by_key(|(k, _)| **k);
        let counters = array_of_raw(counters.into_iter().map(|(k, v)| {
            let mut s = String::new();
            let mut o = Obj::new(&mut s);
            key_obj(k, &mut o);
            o.u64("value", v);
            o.finish();
            s
        }));

        let mut gauges: Vec<(&MetricKey, f64)> = self.gauges.iter().map(|(k, v)| (k, *v)).collect();
        gauges.sort_by_key(|(k, _)| **k);
        let gauges = array_of_raw(gauges.into_iter().map(|(k, v)| {
            let mut s = String::new();
            let mut o = Obj::new(&mut s);
            key_obj(k, &mut o);
            o.f64("value", v);
            o.finish();
            s
        }));

        let mut series: Vec<(&MetricKey, &TimeSeries)> = self.series.iter().collect();
        series.sort_by_key(|(k, _)| **k);
        let series = array_of_raw(series.into_iter().map(|(k, ts)| {
            let mut s = String::new();
            let mut o = Obj::new(&mut s);
            key_obj(k, &mut o);
            o.u64("interval_ps", ts.interval());
            let values = array_of_raw(ts.values().iter().map(|&v| {
                let mut b = String::new();
                crate::json::write_f64(v, &mut b);
                b
            }));
            o.raw("values", &values);
            o.finish();
            s
        }));

        let mut out = String::new();
        let mut o = Obj::new(&mut out);
        o.raw("counters", &counters)
            .raw("gauges", &gauges)
            .raw("series", &series);
        o.finish();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::JsonlSink;

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut r = MetricsRegistry::new();
        r.count("link", "drops", 3, 1);
        r.count("link", "drops", 3, 2);
        r.count("link", "drops", 4, 5);
        assert_eq!(r.counter("link", "drops", 3), 3);
        assert_eq!(r.counter("link", "drops", 4), 5);
        assert_eq!(r.counter("link", "drops", 9), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.gauge("sim", "events_per_sec", 0, 1.0);
        r.gauge("sim", "events_per_sec", 0, 2.5);
        assert_eq!(r.gauge_value("sim", "events_per_sec", 0), Some(2.5));
        assert_eq!(r.gauge_value("sim", "missing", 0), None);
    }

    #[test]
    fn series_bucket_by_interval() {
        let mut r = MetricsRegistry::new();
        r.observe("link", "depth", 0, 100, 10, 1.0);
        r.observe("link", "depth", 0, 100, 150, 2.0);
        r.observe("link", "depth", 0, 100, 160, 3.0);
        let ts = r.series("link", "depth", 0).unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.get(0), 1.0);
        assert_eq!(ts.get(1), 5.0);
    }

    #[test]
    fn to_json_is_sorted_and_deterministic() {
        let build = || {
            let mut r = MetricsRegistry::new();
            r.count("link", "drops", 2, 7);
            r.count("flow", "retx", 0, 1);
            r.gauge("sim", "eps", 0, 3.5);
            r.observe("link", "depth", 1, 1000, 0, 4.0);
            r.to_json()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        // "flow" sorts before "link": insertion order must not leak.
        let flow_at = a.find(r#""component":"flow""#).unwrap();
        let link_at = a.find(r#""component":"link""#).unwrap();
        assert!(flow_at < link_at);
        assert!(a.contains(r#""interval_ps":1000"#));
    }

    #[test]
    fn flush_emits_sorted_metric_events() {
        let mut r = MetricsRegistry::new();
        r.count("b", "x", 0, 2);
        r.count("a", "x", 0, 1);
        r.gauge("c", "y", 1, 9.0);
        let (rc, sref) = JsonlSink::new().shared();
        r.flush_to(&sref, 42);
        let out = rc.borrow().render().to_string();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(r#""component":"a""#));
        assert!(lines[1].contains(r#""component":"b""#));
        assert!(lines[2].contains(r#""component":"c""#));
        assert!(rc.borrow().events_written() == 3);
    }

    #[test]
    fn len_and_empty() {
        let mut r = MetricsRegistry::new();
        assert!(r.is_empty());
        r.count("a", "b", 0, 1);
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }
}
