//! Unified telemetry for the incast-bursts workspace.
//!
//! The paper's measurement half is an observability tool (Millisampler,
//! Section 3); this crate is the simulator's equivalent. It provides:
//!
//! - [`MetricsRegistry`] — counters, gauges, and sim-time series keyed by
//!   `(component, name, id)`, with deterministic JSON snapshots;
//! - [`Event`] / [`EventSink`] / [`SinkRef`] — structured, timestamped
//!   events (per-packet link events, queue depth, buffer watermarks,
//!   per-flow cwnd transitions, burst lifecycle) flowing from simnet,
//!   transport, and workload into pluggable sinks;
//! - [`JsonlSink`] — a deterministic JSONL renderer of the event stream
//!   (one JSON object per line, byte-identical across same-seed runs);
//! - [`PerfettoSink`] — a causal Chrome trace-event / Perfetto exporter
//!   (packet-hop spans, drop→retransmit and CE→ECE arrows, cwnd/queue
//!   counter tracks) whose output opens directly in a trace viewer;
//! - [`RunManifest`] — a replayable description of a run (seed, topology,
//!   config, git describe, counters);
//! - [`LoopProfile`] — wall-clock profiling of the simulator hot loop
//!   (events/sec, per-event-kind tallies).
//!
//! The crate sits at the bottom of the workspace dependency graph (it
//! depends only on `stats`) and identifies links/nodes/flows by raw
//! integers, so every other crate can emit into it without cycles. It has
//! no external dependencies: JSON encoding is hand-rolled in [`json`],
//! which is what makes the output bit-for-bit reproducible.

pub mod event;
pub mod json;
pub mod manifest;
pub mod perfetto;
pub mod profile;
pub mod registry;
pub mod sink;

pub use event::{
    DropCause, Event, EventClass, EventKind, FlowState, PktDetail, PktInfo, WindowTrigger,
};
pub use manifest::{git_describe, RunManifest};
pub use perfetto::PerfettoSink;
pub use profile::{EventTallies, LoopProfile};
pub use registry::{MetricKey, MetricsRegistry};
pub use sink::{EventSink, JsonlSink, NullSink, SinkRef};
