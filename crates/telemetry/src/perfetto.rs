//! Chrome trace-event / Perfetto export of the telemetry stream.
//!
//! [`PerfettoSink`] consumes the same [`Event`] stream as [`JsonlSink`]
//! and renders it in the Chrome trace-event JSON format, so any run can be
//! opened directly in `chrome://tracing` or [ui.perfetto.dev]. The mapping
//! turns the flat event stream into a *causal* view:
//!
//! - every packet becomes an **async span** per link hop — opened on
//!   enqueue, annotated with an async-instant at serialization start, and
//!   closed on delivery (or on an on-wire fault/corrupt drop);
//! - **flow arrows** connect causes to effects: a drop starts an arrow
//!   that terminates at the retransmission it provoked, and a CE-marked
//!   delivery starts an arrow that terminates at the ECN-Echo ack it
//!   triggers;
//! - per-flow cwnd/ssthresh/inflight and per-link queue depth become
//!   **counter tracks**, giving the cwnd/RTO timelines of the paper's
//!   Section 4 plots for free;
//! - drops, ECN marks, RTOs, fast retransmits, and injected faults become
//!   **instants**, and bursts become long app-level spans.
//!
//! Output is deterministic: it is a pure function of the event stream
//! (fixed field order, shortest-round-trip floats), so byte-identical
//! event streams — e.g. the wheel and heap schedulers on the same seed —
//! render to byte-identical traces. The determinism test-suite relies on
//! this.
//!
//! [ui.perfetto.dev]: https://ui.perfetto.dev
//! [`JsonlSink`]: crate::JsonlSink

use crate::event::{Event, EventClass, EventKind, PktDetail, PktInfo, WindowTrigger};
use crate::json::Obj;
use crate::sink::{EventSink, SinkRef};
use std::cell::RefCell;
use std::rc::Rc;

/// Synthetic "process" grouping link-level activity (hop spans, queue and
/// buffer counters, faults).
const PID_NET: u64 = 1;
/// Synthetic "process" grouping per-flow transport state (window counters,
/// RTO/fast-retransmit instants).
const PID_FLOW: u64 = 2;
/// Synthetic "process" for application/workload lifecycle (burst spans).
const PID_APP: u64 = 3;

/// A telemetry sink rendering Chrome trace-event JSON.
///
/// Build one, run a simulation with its [`SinkRef`] attached, then call
/// [`render`](PerfettoSink::render) and write the result to a `.json` file;
/// the file opens directly in a trace viewer.
#[derive(Debug)]
pub struct PerfettoSink {
    /// Pre-rendered trace-event objects, in emission order.
    events: Vec<String>,
    /// Telemetry events consumed (not trace objects emitted; one telemetry
    /// event may expand to several trace objects).
    count: u64,
    /// Pids that already carry a `process_name` metadata record.
    named_pids: Vec<u64>,
}

impl Default for PerfettoSink {
    fn default() -> Self {
        Self::new()
    }
}

impl PerfettoSink {
    /// A fresh sink subscribing to every event class.
    pub fn new() -> Self {
        PerfettoSink {
            events: Vec::new(),
            count: 0,
            named_pids: Vec::new(),
        }
    }

    /// Wraps this sink for sharing; returns the typed handle plus the
    /// `SinkRef` to hand to instrumented components.
    pub fn shared(self) -> (Rc<RefCell<PerfettoSink>>, SinkRef) {
        let rc = Rc::new(RefCell::new(self));
        let sref = SinkRef::from_rc(rc.clone());
        (rc, sref)
    }

    /// Telemetry events consumed.
    pub fn events_written(&self) -> u64 {
        self.count
    }

    /// Trace-event objects emitted so far.
    pub fn trace_events(&self) -> usize {
        self.events.len()
    }

    /// Renders the complete trace as a Chrome trace-event JSON document.
    pub fn render(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(ev);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Ensures `pid` has a `process_name` metadata record (emitted once, on
    /// first use, so naming order tracks the event stream and stays
    /// deterministic).
    fn name_pid(&mut self, pid: u64, name: &str) {
        if self.named_pids.contains(&pid) {
            return;
        }
        self.named_pids.push(pid);
        let mut s = String::new();
        let mut o = Obj::new(&mut s);
        o.str("name", "process_name")
            .str("ph", "M")
            .u64("pid", pid)
            .u64("tid", 0)
            .raw("args", &{
                let mut a = String::new();
                let mut ao = Obj::new(&mut a);
                ao.str("name", name);
                ao.finish();
                a
            });
        o.finish();
        self.events.push(s);
    }

    /// Starts one trace-event object with the common header fields
    /// (`name`, `cat`, `ph`, `ts`, `pid`, `tid`) and returns the buffer
    /// with the object still open for id/args/flow fields.
    fn header(name: &str, cat: &str, ph: &str, t_ps: u64, pid: u64, tid: u64) -> String {
        let mut s = String::new();
        let mut o = Obj::new(&mut s);
        o.str("name", name)
            .str("cat", cat)
            .str("ph", ph)
            .f64("ts", t_ps as f64 / 1e6)
            .u64("pid", pid)
            .u64("tid", tid);
        // Leave the object unfinished (no `finish()`): callers append more
        // fields and close it via `push_open`.
        let _ = o;
        s
    }

    /// Closes an object started by [`header`](Self::header) after the
    /// caller appended extra raw fields.
    fn push_open(&mut self, mut s: String, extra: &str) {
        s.push_str(extra);
        s.push('}');
        self.events.push(s);
    }

    /// The async-span id of one packet hop. The stream carries no global
    /// packet id, so identity is derived from what *is* stable and unique
    /// while the hop is in flight: the flow, the wire sequence (or ack /
    /// burst number), and the link.
    fn hop_id(link: u32, pkt: &PktInfo) -> String {
        match pkt.detail {
            PktDetail::Data { seq, .. } => format!("d{}.{}.{}", pkt.flow, seq, link),
            PktDetail::Ack { ack, .. } => format!("a{}.{}.{}", pkt.flow, ack, link),
            // QUIC packet numbers are unique per transmission, so the
            // packet number alone disambiguates hops of the same bytes.
            PktDetail::QuicData { pn, .. } => format!("qd{}.{}.{}", pkt.flow, pn, link),
            PktDetail::QuicAck { largest, .. } => format!("qa{}.{}.{}", pkt.flow, largest, link),
            PktDetail::Ctrl { burst, .. } => format!("c{}.{}.{}", pkt.flow, burst, link),
            // A notification is unique per (ctrl flow, epoch, target) while
            // in flight; the ack mirrors it in the reverse direction.
            PktDetail::Notif { epoch, .. } => {
                format!("n{}.{}.{}.{}", pkt.flow, epoch, pkt.dst, link)
            }
            PktDetail::NotifAck { epoch } => {
                format!("na{}.{}.{}.{}", pkt.flow, epoch, pkt.src, link)
            }
        }
    }

    /// Human-facing span name for a packet hop.
    fn hop_name(pkt: &PktInfo) -> String {
        match pkt.detail {
            PktDetail::Data { seq, retx, .. } => {
                if retx {
                    format!("f{} retx {}", pkt.flow, seq)
                } else {
                    format!("f{} data {}", pkt.flow, seq)
                }
            }
            PktDetail::Ack { ack, ece } => {
                if ece {
                    format!("f{} ack {} ece", pkt.flow, ack)
                } else {
                    format!("f{} ack {}", pkt.flow, ack)
                }
            }
            PktDetail::QuicData {
                pn, offset, retx, ..
            } => {
                if retx {
                    format!("f{} qretx {pn}@{offset}", pkt.flow)
                } else {
                    format!("f{} qdata {pn}@{offset}", pkt.flow)
                }
            }
            PktDetail::QuicAck { largest, ece, .. } => {
                if ece {
                    format!("f{} qack {largest} ece", pkt.flow)
                } else {
                    format!("f{} qack {largest}", pkt.flow)
                }
            }
            PktDetail::Ctrl { burst, .. } => format!("f{} ctrl b{}", pkt.flow, burst),
            PktDetail::Notif { epoch, cut, .. } => {
                if cut {
                    format!("f{} notif e{} cut", pkt.flow, epoch)
                } else {
                    format!("f{} notif e{} pause", pkt.flow, epoch)
                }
            }
            PktDetail::NotifAck { epoch } => format!("f{} nack e{}", pkt.flow, epoch),
        }
    }

    /// Emits an async packet-hop event (`ph` ∈ {"b","n","e"}).
    fn hop_event(&mut self, ph: &str, t_ps: u64, link: u32, pkt: &PktInfo, args: &str) {
        let s = Self::header(&Self::hop_name(pkt), "pkt", ph, t_ps, PID_NET, link as u64);
        let mut extra = format!(",\"id\":\"{}\"", Self::hop_id(link, pkt));
        if !args.is_empty() {
            extra.push_str(",\"args\":{");
            extra.push_str(args);
            extra.push('}');
        }
        self.push_open(s, &extra);
    }

    /// Emits a flow arrow endpoint (`ph` = "s" to start at a cause, "f"
    /// with `bp:"e"` to finish at the effect).
    fn arrow(&mut self, ph: &str, name: &str, t_ps: u64, pid: u64, tid: u64, id: &str) {
        let s = Self::header(name, "cause", ph, t_ps, pid, tid);
        let mut extra = format!(",\"id\":\"{id}\"");
        if ph == "f" {
            extra.push_str(",\"bp\":\"e\"");
        }
        self.push_open(s, &extra);
    }

    /// Emits a thread-scoped instant.
    fn instant(&mut self, name: &str, cat: &str, t_ps: u64, pid: u64, tid: u64, args: &str) {
        let s = Self::header(name, cat, "i", t_ps, pid, tid);
        let mut extra = String::from(",\"s\":\"t\"");
        if !args.is_empty() {
            extra.push_str(",\"args\":{");
            extra.push_str(args);
            extra.push('}');
        }
        self.push_open(s, &extra);
    }

    /// Emits a counter sample.
    fn counter(&mut self, name: &str, t_ps: u64, pid: u64, tid: u64, args: &str) {
        let s = Self::header(name, "counter", "C", t_ps, pid, tid);
        let extra = format!(",\"args\":{{{args}}}");
        self.push_open(s, &extra);
    }
}

impl EventSink for PerfettoSink {
    fn accepts(&self, _class: EventClass) -> bool {
        true
    }

    fn on_event(&mut self, ev: &Event) {
        self.count += 1;
        let t = ev.t_ps;
        match &ev.kind {
            EventKind::PktEnqueue { link, pkt, marked } => {
                self.name_pid(PID_NET, "network");
                let args = format!(
                    "\"bytes\":{},\"ce\":{},\"marked\":{}",
                    pkt.bytes, pkt.ce, marked
                );
                self.hop_event("b", t, *link, pkt, &args);
                if *marked {
                    self.instant("ecn_mark", "ecn", t, PID_NET, *link as u64, "");
                }
                match pkt.detail {
                    // A retransmitted segment is the effect of an earlier
                    // drop (or timeout) of the same wire sequence: land the
                    // causal arrow here.
                    PktDetail::Data {
                        seq, retx: true, ..
                    } => {
                        self.arrow(
                            "f",
                            "retx",
                            t,
                            PID_NET,
                            *link as u64,
                            &format!("retx{}.{}", pkt.flow, seq),
                        );
                    }
                    // A QUIC retransmission carries a fresh packet number,
                    // so the causal key is the stream offset instead.
                    PktDetail::QuicData {
                        offset, retx: true, ..
                    } => {
                        self.arrow(
                            "f",
                            "retx",
                            t,
                            PID_NET,
                            *link as u64,
                            &format!("qretx{}.{}", pkt.flow, offset),
                        );
                    }
                    // An ECN-Echo ack is the effect of a CE-marked delivery
                    // on the same flow.
                    PktDetail::Ack { ece: true, .. } | PktDetail::QuicAck { ece: true, .. } => {
                        self.arrow(
                            "f",
                            "ece",
                            t,
                            PID_NET,
                            *link as u64,
                            &format!("ece{}", pkt.flow),
                        );
                    }
                    _ => {}
                }
            }
            EventKind::PktDrop { link, pkt, reason } => {
                self.name_pid(PID_NET, "network");
                let args = format!("\"reason\":\"{}\",\"bytes\":{}", reason.label(), pkt.bytes);
                self.instant("drop", "drop", t, PID_NET, *link as u64, &args);
                // On-wire losses terminate a hop span that enqueue opened;
                // admission rejections (queue_full / shared_buffer) never
                // opened one.
                if matches!(
                    reason,
                    crate::event::DropCause::Fault | crate::event::DropCause::Corrupt
                ) {
                    self.hop_event("e", t, *link, pkt, &args);
                }
                // The drop is the cause of any retransmission of this
                // sequence (TCP) or stream offset (QUIC): start the arrow.
                match pkt.detail {
                    PktDetail::Data { seq, .. } => {
                        self.arrow(
                            "s",
                            "retx",
                            t,
                            PID_NET,
                            *link as u64,
                            &format!("retx{}.{}", pkt.flow, seq),
                        );
                    }
                    PktDetail::QuicData { offset, .. } => {
                        self.arrow(
                            "s",
                            "retx",
                            t,
                            PID_NET,
                            *link as u64,
                            &format!("qretx{}.{}", pkt.flow, offset),
                        );
                    }
                    _ => {}
                }
            }
            EventKind::PktTxStart { link, pkt } => {
                self.name_pid(PID_NET, "network");
                self.hop_event("n", t, *link, pkt, "");
            }
            EventKind::PktDeliver { link, pkt } => {
                self.name_pid(PID_NET, "network");
                self.hop_event("e", t, *link, pkt, "");
                // A CE-marked data delivery causes the receiver's next
                // ECN-Echo ack: start the arrow.
                if pkt.ce {
                    if let PktDetail::Data { .. } | PktDetail::QuicData { .. } = pkt.detail {
                        self.arrow(
                            "s",
                            "ece",
                            t,
                            PID_NET,
                            *link as u64,
                            &format!("ece{}", pkt.flow),
                        );
                    }
                }
            }
            EventKind::QueueDepth { link, pkts, bytes } => {
                self.name_pid(PID_NET, "network");
                let args = format!("\"pkts\":{pkts},\"bytes\":{bytes}");
                self.counter(&format!("queue{link}"), t, PID_NET, *link as u64, &args);
            }
            EventKind::BufferWatermark {
                buffer,
                used_bytes,
                total_bytes,
            } => {
                self.name_pid(PID_NET, "network");
                let args = format!("\"used_bytes\":{used_bytes},\"total_bytes\":{total_bytes}");
                self.counter(
                    &format!("buffer{buffer}"),
                    t,
                    PID_NET,
                    *buffer as u64,
                    &args,
                );
            }
            EventKind::FlowWindow {
                flow,
                cwnd,
                ssthresh,
                inflight,
                state,
                trigger,
                ..
            } => {
                self.name_pid(PID_FLOW, "flows");
                let mut args = format!("\"cwnd\":{cwnd},\"inflight\":{inflight}");
                // An unset ssthresh is u64::MAX; plotting it would flatten
                // the counter track, so it is omitted until it is real.
                if *ssthresh != u64::MAX {
                    args.push_str(&format!(",\"ssthresh\":{ssthresh}"));
                }
                self.counter(
                    &format!("flow{flow} window"),
                    t,
                    PID_FLOW,
                    *flow as u64,
                    &args,
                );
                match trigger {
                    WindowTrigger::Rto | WindowTrigger::FastRetransmit => {
                        let args = format!("\"state\":\"{}\",\"cwnd\":{}", state.label(), cwnd);
                        self.instant(trigger.label(), "loss", t, PID_FLOW, *flow as u64, &args);
                    }
                    _ => {}
                }
            }
            EventKind::BurstStart {
                burst,
                flows,
                per_flow_bytes,
            } => {
                self.name_pid(PID_APP, "app");
                let s = Self::header(&format!("burst {burst}"), "burst", "b", t, PID_APP, 0);
                let extra = format!(
                    ",\"id\":\"b{burst}\",\"args\":{{\"flows\":{flows},\"per_flow_bytes\":{per_flow_bytes}}}"
                );
                self.push_open(s, &extra);
            }
            EventKind::BurstEnd { burst, bct_ms } => {
                self.name_pid(PID_APP, "app");
                let s = Self::header(&format!("burst {burst}"), "burst", "e", t, PID_APP, 0);
                let mut extra = format!(",\"id\":\"b{burst}\",\"args\":{{\"bct_ms\":");
                crate::json::write_f64(*bct_ms, &mut extra);
                extra.push_str("}}");
                self.push_open(s, &extra);
            }
            EventKind::Fault {
                index,
                kind,
                target,
            } => {
                self.name_pid(PID_NET, "network");
                let args = format!("\"index\":{index},\"target\":{target}");
                self.instant(
                    &format!("fault:{kind}"),
                    "fault",
                    t,
                    PID_NET,
                    *target,
                    &args,
                );
            }
            EventKind::CtrlEpisode {
                node,
                link,
                epoch,
                phase,
                targets,
            } => {
                self.name_pid(PID_NET, "network");
                let args = format!("\"node\":{node},\"epoch\":{epoch},\"targets\":{targets}");
                self.instant(
                    &format!("ctrl:{phase}"),
                    "ctrl",
                    t,
                    PID_NET,
                    *link as u64,
                    &args,
                );
            }
            EventKind::Metric {
                component,
                name,
                id,
                value,
            } => {
                self.name_pid(PID_APP, "app");
                let mut args = String::from("\"value\":");
                crate::json::write_f64(*value, &mut args);
                self.counter(&format!("{component}.{name}.{id}"), t, PID_APP, *id, &args);
            }
        }
    }

    fn event_count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DropCause, FlowState};

    fn data(flow: u32, seq: u32, retx: bool, ce: bool) -> PktInfo {
        PktInfo {
            flow,
            src: 0,
            dst: 1,
            bytes: 1500,
            ce,
            detail: PktDetail::Data {
                seq,
                payload: 1446,
                retx,
            },
        }
    }

    fn feed(sink: &mut PerfettoSink, kind: EventKind, t_ps: u64) {
        sink.on_event(&Event { t_ps, kind });
    }

    #[test]
    fn hop_spans_open_and_close() {
        let mut s = PerfettoSink::new();
        feed(
            &mut s,
            EventKind::PktEnqueue {
                link: 2,
                pkt: data(5, 100, false, false),
                marked: false,
            },
            1_000_000,
        );
        feed(
            &mut s,
            EventKind::PktTxStart {
                link: 2,
                pkt: data(5, 100, false, false),
            },
            2_000_000,
        );
        feed(
            &mut s,
            EventKind::PktDeliver {
                link: 2,
                pkt: data(5, 100, false, false),
            },
            3_000_000,
        );
        let out = s.render();
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(out.contains(r#""ph":"b""#), "{out}");
        assert!(out.contains(r#""ph":"n""#), "{out}");
        assert!(out.contains(r#""ph":"e""#), "{out}");
        assert!(out.contains(r#""id":"d5.100.2""#), "{out}");
        assert!(out.contains(r#""name":"f5 data 100""#), "{out}");
        // ts is microseconds.
        assert!(out.contains(r#""ts":1"#), "{out}");
        assert_eq!(s.events_written(), 3);
    }

    #[test]
    fn drop_then_retx_are_linked_by_a_flow_arrow() {
        let mut s = PerfettoSink::new();
        feed(
            &mut s,
            EventKind::PktDrop {
                link: 0,
                pkt: data(3, 7, false, false),
                reason: DropCause::QueueFull,
            },
            1_000,
        );
        feed(
            &mut s,
            EventKind::PktEnqueue {
                link: 0,
                pkt: data(3, 7, true, false),
                marked: false,
            },
            2_000,
        );
        let out = s.render();
        assert!(out.contains(r#""ph":"s""#), "{out}");
        assert!(out.contains(r#""ph":"f""#), "{out}");
        assert!(out.contains(r#""id":"retx3.7""#), "{out}");
        assert!(out.contains(r#""reason":"queue_full""#), "{out}");
        // An admission drop must not emit an async end for a span that was
        // never opened.
        assert!(!out.contains(r#""ph":"e""#), "{out}");
    }

    #[test]
    fn ce_delivery_links_to_ece_ack() {
        let mut s = PerfettoSink::new();
        feed(
            &mut s,
            EventKind::PktDeliver {
                link: 1,
                pkt: data(4, 9, false, true),
            },
            5_000,
        );
        feed(
            &mut s,
            EventKind::PktEnqueue {
                link: 2,
                pkt: PktInfo {
                    flow: 4,
                    src: 1,
                    dst: 0,
                    bytes: 64,
                    ce: false,
                    detail: PktDetail::Ack { ack: 10, ece: true },
                },
                marked: false,
            },
            6_000,
        );
        let out = s.render();
        assert!(out.contains(r#""id":"ece4""#), "{out}");
        assert!(out.contains(r#""name":"f4 ack 10 ece""#), "{out}");
    }

    #[test]
    fn window_counters_and_loss_instants() {
        let mut s = PerfettoSink::new();
        feed(
            &mut s,
            EventKind::FlowWindow {
                node: 0,
                flow: 6,
                cwnd: 14460,
                ssthresh: u64::MAX,
                inflight: 2892,
                state: FlowState::Open,
                trigger: WindowTrigger::Ack,
            },
            1_000,
        );
        feed(
            &mut s,
            EventKind::FlowWindow {
                node: 0,
                flow: 6,
                cwnd: 2892,
                ssthresh: 7230,
                inflight: 0,
                state: FlowState::Backoff,
                trigger: WindowTrigger::Rto,
            },
            2_000,
        );
        let out = s.render();
        assert!(out.contains(r#""name":"flow6 window""#), "{out}");
        assert!(out.contains(r#""cwnd":14460"#), "{out}");
        // Unset ssthresh omitted; set ssthresh present.
        assert!(!out.contains(&u64::MAX.to_string()), "{out}");
        assert!(out.contains(r#""ssthresh":7230"#), "{out}");
        assert!(out.contains(r#""name":"rto""#), "{out}");
        assert!(out.contains(r#""state":"backoff""#), "{out}");
    }

    #[test]
    fn bursts_faults_and_metadata() {
        let mut s = PerfettoSink::new();
        feed(
            &mut s,
            EventKind::BurstStart {
                burst: 2,
                flows: 16,
                per_flow_bytes: 50_000,
            },
            0,
        );
        feed(
            &mut s,
            EventKind::Fault {
                index: 0,
                kind: "link_down",
                target: 3,
            },
            500,
        );
        feed(
            &mut s,
            EventKind::BurstEnd {
                burst: 2,
                bct_ms: 1.25,
            },
            1_000,
        );
        let out = s.render();
        assert!(out.contains(r#""name":"process_name""#), "{out}");
        assert!(out.contains(r#""id":"b2""#), "{out}");
        assert!(out.contains(r#""name":"fault:link_down""#), "{out}");
        assert!(out.contains(r#""bct_ms":1.25"#), "{out}");
        // Each pid is named exactly once.
        assert_eq!(out.matches(r#""process_name""#).count(), 2, "{out}");
    }

    #[test]
    fn render_is_a_pure_function_of_the_stream() {
        let build = || {
            let mut s = PerfettoSink::new();
            for t in 0..50u64 {
                feed(
                    &mut s,
                    EventKind::PktEnqueue {
                        link: (t % 3) as u32,
                        pkt: data((t % 5) as u32, t as u32, false, t % 7 == 0),
                        marked: t % 11 == 0,
                    },
                    t * 1_000,
                );
            }
            s.render()
        };
        assert_eq!(build(), build());
    }
}
