//! Statistical building blocks for the incast-bursts reproduction.
//!
//! Everything in this crate is deterministic: the random number generator is a
//! seeded [xoshiro256\*\*](https://prng.di.unimi.it/) implemented locally so that
//! experiment outputs are bit-reproducible regardless of external crate versions.
//!
//! The crate provides:
//!
//! - [`Rng`]: the seeded generator used by every stochastic component,
//! - [`dist`]: samplable probability distributions (uniform, exponential,
//!   normal, log-normal, Pareto, and weighted mixtures),
//! - [`Cdf`]: empirical cumulative distribution functions with percentile
//!   queries, used to regenerate the paper's CDF figures,
//! - [`TimeSeries`]: fixed-interval time-series buckets,
//! - [`Histogram`]: simple linear-bucket histograms,
//! - [`QuantileSketch`]: mergeable fixed-memory quantile sketches for
//!   streaming sweep aggregation,
//! - [`summary`]: scalar summary statistics (mean, variance, percentiles),
//! - [`retry_with_backoff`]: bounded retry for transient IO in the sweep
//!   machinery.

pub mod cdf;
pub mod dist;
pub mod histogram;
pub mod retry;
pub mod rng;
pub mod sketch;
pub mod summary;
pub mod timeseries;

pub use cdf::Cdf;
pub use dist::Dist;
pub use histogram::Histogram;
pub use retry::retry_with_backoff;
pub use rng::Rng;
pub use sketch::QuantileSketch;
pub use summary::Summary;
pub use timeseries::TimeSeries;
