//! Fixed-interval time-series buckets.
//!
//! The paper's Fig. 1 panels and Fig. 5–7 queue traces are all quantities
//! sampled or accumulated on a fixed grid (1 ms for host measurements,
//! finer for queue traces). [`TimeSeries`] is that grid: values are added at
//! a time offset and land in `floor(t / interval)` buckets.

/// A time series of `f64` values accumulated into fixed-width buckets.
///
/// Times are `u64` in any consistent unit (the simulator uses picoseconds,
/// the sampler uses nanoseconds); the unit is the caller's contract.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    interval: u64,
    buckets: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width. Panics if zero.
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "zero bucket interval");
        Self {
            interval,
            buckets: Vec::new(),
        }
    }

    /// Reconstructs a series from its bucket values (the inverse of
    /// [`Self::values`]), used by the run cache to decode stored series
    /// bit-exactly. Panics if `interval` is zero.
    pub fn from_values(interval: u64, buckets: Vec<f64>) -> Self {
        assert!(interval > 0, "zero bucket interval");
        Self { interval, buckets }
    }

    /// Bucket width.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Index of the bucket containing time `t`.
    pub fn bucket_of(&self, t: u64) -> usize {
        (t / self.interval) as usize
    }

    fn grow_to(&mut self, idx: usize) {
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0.0);
        }
    }

    /// Adds `value` into the bucket containing `t`.
    pub fn accumulate(&mut self, t: u64, value: f64) {
        let idx = self.bucket_of(t);
        self.grow_to(idx);
        self.buckets[idx] += value;
    }

    /// Records the max of the current bucket value and `value` at `t`
    /// (for watermark-style series).
    pub fn record_max(&mut self, t: u64, value: f64) {
        let idx = self.bucket_of(t);
        self.grow_to(idx);
        self.buckets[idx] = self.buckets[idx].max(value);
    }

    /// Number of buckets (highest touched bucket + 1).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True if no bucket was ever touched.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Value of bucket `idx` (0.0 beyond the touched range).
    pub fn get(&self, idx: usize) -> f64 {
        self.buckets.get(idx).copied().unwrap_or(0.0)
    }

    /// All bucket values.
    pub fn values(&self) -> &[f64] {
        &self.buckets
    }

    /// Iterator of `(bucket_start_time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i as u64 * self.interval, v))
    }

    /// Pads the series with zero buckets out to `end_time` (exclusive), so a
    /// quiet tail still appears in plots and averages.
    pub fn pad_until(&mut self, end_time: u64) {
        if end_time == 0 {
            return;
        }
        let idx = self.bucket_of(end_time - 1);
        self.grow_to(idx);
    }

    /// Sum over all buckets.
    pub fn total(&self) -> f64 {
        self.buckets.iter().sum()
    }

    /// Mean bucket value (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.buckets.is_empty() {
            0.0
        } else {
            self.total() / self.buckets.len() as f64
        }
    }

    /// Maximum bucket value (0 if empty).
    pub fn max(&self) -> f64 {
        self.buckets.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_lands_in_right_bucket() {
        let mut ts = TimeSeries::new(10);
        ts.accumulate(0, 1.0);
        ts.accumulate(9, 1.0);
        ts.accumulate(10, 5.0);
        ts.accumulate(25, 2.0);
        assert_eq!(ts.get(0), 2.0);
        assert_eq!(ts.get(1), 5.0);
        assert_eq!(ts.get(2), 2.0);
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn record_max_keeps_largest() {
        let mut ts = TimeSeries::new(10);
        ts.record_max(3, 5.0);
        ts.record_max(7, 2.0);
        ts.record_max(8, 9.0);
        assert_eq!(ts.get(0), 9.0);
    }

    #[test]
    fn get_beyond_range_is_zero() {
        let ts = TimeSeries::new(10);
        assert_eq!(ts.get(100), 0.0);
    }

    #[test]
    fn pad_until_extends_with_zeros() {
        let mut ts = TimeSeries::new(10);
        ts.accumulate(5, 1.0);
        ts.pad_until(45);
        assert_eq!(ts.len(), 5);
        assert_eq!(ts.get(4), 0.0);
        // Padding to an exact bucket boundary must not add an extra bucket.
        let mut ts2 = TimeSeries::new(10);
        ts2.pad_until(30);
        assert_eq!(ts2.len(), 3);
    }

    #[test]
    fn pad_until_zero_is_noop() {
        let mut ts = TimeSeries::new(10);
        ts.pad_until(0);
        assert!(ts.is_empty());
    }

    #[test]
    fn iter_yields_bucket_start_times() {
        let mut ts = TimeSeries::new(100);
        ts.accumulate(150, 3.0);
        let pts: Vec<_> = ts.iter().collect();
        assert_eq!(pts, vec![(0, 0.0), (100, 3.0)]);
    }

    #[test]
    fn totals_and_means() {
        let mut ts = TimeSeries::new(1);
        for t in 0..4 {
            ts.accumulate(t, (t + 1) as f64);
        }
        assert_eq!(ts.total(), 10.0);
        assert_eq!(ts.mean(), 2.5);
        assert_eq!(ts.max(), 4.0);
    }

    #[test]
    #[should_panic]
    fn zero_interval_panics() {
        TimeSeries::new(0);
    }
}
