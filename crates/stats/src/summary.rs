//! Streaming scalar summary statistics.
//!
//! [`Summary`] keeps count/mean/M2 (Welford) plus min/max so experiment
//! runners can report means and variances over long runs without retaining
//! every sample. Use [`crate::Cdf`] instead when percentiles are needed.

/// Streaming count, mean, variance, min, and max.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation (Welford's online update). Panics on `NaN`.
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation. Panics if empty.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "min of empty summary");
        self.min
    }

    /// Largest observation. Panics if empty.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "max of empty summary");
        self.max
    }

    /// Merges another summary (Chan et al. parallel combination).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn known_values() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.add(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Summary::new();
        for &x in &xs {
            all.add(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 3 == 0 {
                a.add(x);
            } else {
                b.add(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::new();
        s.add(1.0);
        s.add(3.0);
        let before = s.clone();
        s.merge(&Summary::new());
        assert_eq!(s.count(), before.count());
        assert_eq!(s.mean(), before.mean());

        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 2.0).abs() < 1e-12);
    }

    /// Seeded randomized vectors in `[-1e3, 1e3)` of length `[lo, hi)`.
    fn random_cases(seed: u64, cases: usize, lo: u64, hi: u64) -> Vec<Vec<f64>> {
        let mut rng = crate::Rng::new(seed);
        (0..cases)
            .map(|_| {
                let n = rng.range_u64(lo, hi) as usize;
                (0..n).map(|_| rng.range_f64(-1e3, 1e3)).collect()
            })
            .collect()
    }

    #[test]
    fn variance_nonnegative() {
        for xs in random_cases(0xC0FFEE, 64, 0, 100) {
            let mut s = Summary::new();
            for x in xs {
                s.add(x);
            }
            assert!(s.variance() >= 0.0);
        }
    }

    #[test]
    fn mean_within_min_max() {
        for xs in random_cases(0xBEEF, 64, 1, 100) {
            let mut s = Summary::new();
            for &x in &xs {
                s.add(x);
            }
            assert!(s.mean() >= s.min() - 1e-9);
            assert!(s.mean() <= s.max() + 1e-9);
        }
    }
}
