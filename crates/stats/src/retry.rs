//! Bounded retry with exponential backoff.
//!
//! Shared by the run cache's disk writes and the supervised sweep runner:
//! transient IO errors (a concurrently-created directory, a filesystem
//! momentarily out of handles, an antivirus scanner holding a lock) are
//! worth a couple of short-delay retries; persistent errors should fail
//! fast and let the caller degrade gracefully.

use std::time::Duration;

/// Calls `op` up to `attempts` times, sleeping `base * 2^i` after the
/// `i`-th failure. Returns the first `Ok` (or the last `Err`) together
/// with the number of retries consumed — 0 when the first attempt
/// succeeded, so callers can count "writes that needed a retry".
///
/// `attempts` is clamped to at least 1; the backoff sleep is skipped after
/// the final failure.
pub fn retry_with_backoff<T, E>(
    attempts: u32,
    base: Duration,
    mut op: impl FnMut() -> Result<T, E>,
) -> (Result<T, E>, u64) {
    let attempts = attempts.max(1);
    let mut retries = 0u64;
    loop {
        match op() {
            Ok(v) => return (Ok(v), retries),
            Err(e) => {
                if retries as u32 + 1 >= attempts {
                    return (Err(e), retries);
                }
                std::thread::sleep(base * 2u32.saturating_pow(retries as u32));
                retries += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_try_success_costs_no_retries() {
        let (r, retries) = retry_with_backoff(3, Duration::ZERO, || Ok::<_, ()>(42));
        assert_eq!(r, Ok(42));
        assert_eq!(retries, 0);
    }

    #[test]
    fn transient_failures_are_retried_and_counted() {
        let mut calls = 0;
        let (r, retries) = retry_with_backoff(3, Duration::ZERO, || {
            calls += 1;
            if calls < 3 {
                Err("flaky")
            } else {
                Ok(calls)
            }
        });
        assert_eq!(r, Ok(3));
        assert_eq!(retries, 2);
    }

    #[test]
    fn persistent_failure_returns_last_error_after_budget() {
        let mut calls = 0;
        let (r, retries) = retry_with_backoff(3, Duration::ZERO, || -> Result<(), _> {
            calls += 1;
            Err(calls)
        });
        assert_eq!(r, Err(3));
        assert_eq!(calls, 3);
        assert_eq!(retries, 2);
    }

    #[test]
    fn zero_attempts_still_runs_once() {
        let mut calls = 0;
        let (r, retries) = retry_with_backoff(0, Duration::ZERO, || -> Result<(), _> {
            calls += 1;
            Err(())
        });
        assert!(r.is_err());
        assert_eq!(calls, 1);
        assert_eq!(retries, 0);
    }
}
