//! Samplable probability distributions.
//!
//! The workload models in `crates/workload` describe each production service
//! by a handful of distributions (burst inter-arrival, duration, flow count,
//! per-flow demand). [`Dist`] is a small closed set of analytic distributions
//! plus mixtures, which is all the paper's reported shapes require: the
//! flow-count "cliffs" in Fig. 2c are mixtures, the steady operating points in
//! Fig. 3a are normals, and heavy retransmission tails come from Pareto
//! components.

use crate::rng::Rng;

/// A samplable probability distribution over `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Every sample equals the given constant.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with the given mean (`1/lambda`).
    Exponential { mean: f64 },
    /// Normal with the given mean and standard deviation.
    Normal { mean: f64, std_dev: f64 },
    /// Log-normal parameterized by the underlying normal's `mu`/`sigma`.
    LogNormal { mu: f64, sigma: f64 },
    /// Pareto (Type I) with scale `x_min > 0` and shape `alpha > 0`.
    Pareto { x_min: f64, alpha: f64 },
    /// Weighted mixture of component distributions.
    ///
    /// Weights need not sum to one; they are normalized at sampling time.
    Mixture(Vec<(f64, Dist)>),
}

impl Dist {
    /// Draws one sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        match self {
            Dist::Constant(c) => *c,
            Dist::Uniform { lo, hi } => rng.range_f64(*lo, *hi),
            Dist::Exponential { mean } => {
                // Inverse-CDF; guard against ln(0).
                let u = 1.0 - rng.f64();
                -mean * u.ln()
            }
            Dist::Normal { mean, std_dev } => mean + std_dev * sample_standard_normal(rng),
            Dist::LogNormal { mu, sigma } => (mu + sigma * sample_standard_normal(rng)).exp(),
            Dist::Pareto { x_min, alpha } => {
                let u = 1.0 - rng.f64();
                x_min / u.powf(1.0 / alpha)
            }
            Dist::Mixture(parts) => {
                assert!(!parts.is_empty(), "empty mixture");
                let total: f64 = parts.iter().map(|(w, _)| *w).sum();
                let mut pick = rng.f64() * total;
                for (w, d) in parts {
                    pick -= w;
                    if pick <= 0.0 {
                        return d.sample(rng);
                    }
                }
                parts.last().unwrap().1.sample(rng)
            }
        }
    }

    /// Draws one sample, clamped to `[lo, hi]`.
    ///
    /// Used where a physical quantity bounds an analytic distribution (e.g. a
    /// flow count can be neither negative nor larger than the worker pool).
    pub fn sample_clamped(&self, rng: &mut Rng, lo: f64, hi: f64) -> f64 {
        self.sample(rng).clamp(lo, hi)
    }

    /// Draws a sample rounded to the nearest non-negative integer.
    pub fn sample_count(&self, rng: &mut Rng) -> u64 {
        self.sample(rng).round().max(0.0) as u64
    }

    /// Analytic mean, where it exists in closed form.
    ///
    /// Returns `None` for a Pareto with `alpha <= 1` (infinite mean).
    pub fn mean(&self) -> Option<f64> {
        match self {
            Dist::Constant(c) => Some(*c),
            Dist::Uniform { lo, hi } => Some(0.5 * (lo + hi)),
            Dist::Exponential { mean } => Some(*mean),
            Dist::Normal { mean, .. } => Some(*mean),
            Dist::LogNormal { mu, sigma } => Some((mu + 0.5 * sigma * sigma).exp()),
            Dist::Pareto { x_min, alpha } => {
                if *alpha > 1.0 {
                    Some(alpha * x_min / (alpha - 1.0))
                } else {
                    None
                }
            }
            Dist::Mixture(parts) => {
                let total: f64 = parts.iter().map(|(w, _)| *w).sum();
                let mut acc = 0.0;
                for (w, d) in parts {
                    acc += w / total * d.mean()?;
                }
                Some(acc)
            }
        }
    }
}

/// Standard normal via Box–Muller (one variate per call; simple and branch-free
/// enough for workload generation, which is not on the simulator hot path).
fn sample_standard_normal(rng: &mut Rng) -> f64 {
    let u1 = (1.0 - rng.f64()).max(f64::MIN_POSITIVE);
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(d: &Dist, n: usize, seed: u64) -> f64 {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_always_constant() {
        let d = Dist::Constant(3.25);
        let mut rng = Rng::new(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.25);
        }
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Dist::Uniform { lo: 2.0, hi: 6.0 };
        let mut rng = Rng::new(2);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((2.0..6.0).contains(&x));
        }
        assert!((mean_of(&d, 50_000, 3) - 4.0).abs() < 0.05);
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let d = Dist::Exponential { mean: 5.0 };
        let mut rng = Rng::new(4);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
        assert!((mean_of(&d, 100_000, 5) - 5.0).abs() < 0.1);
    }

    #[test]
    fn normal_mean_and_spread() {
        let d = Dist::Normal {
            mean: 10.0,
            std_dev: 2.0,
        };
        let m = mean_of(&d, 100_000, 6);
        assert!((m - 10.0).abs() < 0.05, "mean {m}");
        let mut rng = Rng::new(7);
        let var: f64 = (0..100_000)
            .map(|_| {
                let x = d.sample(&mut rng) - 10.0;
                x * x
            })
            .sum::<f64>()
            / 100_000.0;
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn lognormal_is_positive_and_matches_mean() {
        let d = Dist::LogNormal {
            mu: 0.0,
            sigma: 0.5,
        };
        let mut rng = Rng::new(8);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
        let expected = d.mean().unwrap();
        assert!((mean_of(&d, 200_000, 9) - expected).abs() < 0.02);
    }

    #[test]
    fn pareto_respects_x_min() {
        let d = Dist::Pareto {
            x_min: 1.5,
            alpha: 2.5,
        };
        let mut rng = Rng::new(10);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 1.5);
        }
        let expected = d.mean().unwrap();
        assert!((mean_of(&d, 200_000, 11) - expected).abs() < 0.05);
    }

    #[test]
    fn pareto_heavy_tail_has_no_mean() {
        let d = Dist::Pareto {
            x_min: 1.0,
            alpha: 0.9,
        };
        assert!(d.mean().is_none());
    }

    #[test]
    fn mixture_draws_from_both_modes() {
        let d = Dist::Mixture(vec![
            (1.0, Dist::Constant(0.0)),
            (1.0, Dist::Constant(100.0)),
        ]);
        let mut rng = Rng::new(12);
        let (mut lo, mut hi) = (0, 0);
        for _ in 0..1000 {
            if d.sample(&mut rng) < 50.0 {
                lo += 1;
            } else {
                hi += 1;
            }
        }
        // Equal weights: roughly half each.
        assert!(lo > 400 && hi > 400, "lo {lo} hi {hi}");
        assert!((d.mean().unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn mixture_respects_weights() {
        let d = Dist::Mixture(vec![(9.0, Dist::Constant(1.0)), (1.0, Dist::Constant(2.0))]);
        let m = mean_of(&d, 100_000, 13);
        assert!((m - 1.1).abs() < 0.01, "mean {m}");
    }

    #[test]
    fn sample_clamped_respects_bounds() {
        let d = Dist::Normal {
            mean: 0.0,
            std_dev: 100.0,
        };
        let mut rng = Rng::new(14);
        for _ in 0..1000 {
            let x = d.sample_clamped(&mut rng, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn sample_count_never_negative() {
        let d = Dist::Normal {
            mean: 0.0,
            std_dev: 5.0,
        };
        let mut rng = Rng::new(15);
        for _ in 0..1000 {
            let _ = d.sample_count(&mut rng); // u64 by construction; just exercise it
        }
    }

    #[test]
    fn clone_round_trip() {
        let d = Dist::Mixture(vec![
            (0.3, Dist::Exponential { mean: 2.0 }),
            (
                0.7,
                Dist::Pareto {
                    x_min: 1.0,
                    alpha: 3.0,
                },
            ),
        ]);
        let back = d.clone();
        assert_eq!(d, back);
        // Clones must also sample identically from identical RNG streams.
        let mut r1 = Rng::new(99);
        let mut r2 = Rng::new(99);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r1), back.sample(&mut r2));
        }
    }
}
