//! Linear-bucket histograms.
//!
//! Used for coarse distributional views where a full [`crate::Cdf`] (which
//! retains every sample) would be wasteful — e.g. per-flow in-flight bytes
//! sampled every RTT across thousands of flows.

/// A histogram with uniform-width buckets over `[lo, hi)` plus overflow and
/// underflow counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram of `buckets` uniform buckets spanning `[lo, hi)`.
    ///
    /// Panics if `lo >= hi` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "lo must be < hi");
        assert!(buckets > 0, "need at least one bucket");
        Self {
            lo,
            hi,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one sample.
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample");
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Total samples recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Count in bucket `idx`.
    pub fn count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Samples below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// `(bucket_low_edge, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + i as f64 * width, c))
    }

    /// Approximate percentile from bucket midpoints (nearest-rank over the
    /// in-range mass; under/overflow clamp to the range edges).
    ///
    /// Panics on an empty histogram; sweep reducers, where an all-dropped
    /// run can legitimately produce zero samples, use [`Self::try_percentile`].
    pub fn percentile(&self, p: f64) -> f64 {
        self.try_percentile(p)
            .expect("percentile of empty histogram")
    }

    /// [`Self::percentile`] that answers `None` on an empty histogram
    /// instead of panicking.
    pub fn try_percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p));
        let total = self.total();
        if total == 0 {
            return None;
        }
        let target = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo + (i as f64 + 0.5) * width);
            }
        }
        Some(self.hi)
    }

    /// Folds `other` into `self` by adding counts. Panics unless both
    /// histograms share the same `[lo, hi)` range and bucket count — merging
    /// is only meaningful between identically-shaped histograms, as produced
    /// by a sweep's per-run reducers.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            (self.lo, self.hi, self.counts.len()),
            (other.lo, other.hi, other.counts.len()),
            "merging differently-shaped histograms"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_routes_to_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.0);
        h.add(0.5);
        h.add(9.999);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-0.1);
        h.add(1.0); // hi edge is exclusive -> overflow
        h.add(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn iter_edges() {
        let h = Histogram::new(0.0, 4.0, 4);
        let edges: Vec<f64> = h.iter().map(|(e, _)| e).collect();
        assert_eq!(edges, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn percentile_midpoints() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for _ in 0..90 {
            h.add(1.5); // bucket 1, midpoint 1.5
        }
        for _ in 0..10 {
            h.add(8.5); // bucket 8, midpoint 8.5
        }
        assert!((h.percentile(50.0) - 1.5).abs() < 1e-12);
        assert!((h.percentile(99.0) - 8.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_all_underflow_clamps_lo() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        assert_eq!(h.percentile(50.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_percentile_panics() {
        Histogram::new(0.0, 1.0, 2).percentile(50.0);
    }

    #[test]
    fn try_percentile_empty_is_none() {
        assert_eq!(Histogram::new(0.0, 1.0, 2).try_percentile(50.0), None);
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(0.3);
        assert_eq!(h.try_percentile(50.0), Some(0.25));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let mut b = Histogram::new(0.0, 10.0, 10);
        a.add(1.5);
        a.add(-1.0);
        b.add(1.5);
        b.add(20.0);
        a.merge(&b);
        assert_eq!(a.count(1), 2);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    #[should_panic]
    fn merge_shape_mismatch_panics() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        a.merge(&Histogram::new(0.0, 10.0, 5));
    }

    #[test]
    #[should_panic]
    fn bad_bounds_panic() {
        Histogram::new(1.0, 1.0, 2);
    }
}
