//! Mergeable fixed-memory quantile sketch.
//!
//! Sweep reducers previously pooled every per-burst sample into a
//! [`crate::Cdf`], whose memory grows with the run count. [`QuantileSketch`]
//! replaces that with a log-bucket histogram over the raw bit pattern of the
//! sample: the top 16 bits of an `f64` (sign, exponent, and the 4 leading
//! mantissa bits) index a bucket, so every bucket spans a 1/16-of-an-octave
//! value range and quantile answers carry at most ~3.2% relative error.
//! Counts live in a `BTreeMap`, so a sketch costs memory proportional to the
//! number of *distinct magnitudes* seen (bounded by 2¹⁶), not the number of
//! samples, and two sketches merge by adding counts — the property the sweep
//! engine's streaming reducers rely on.
//!
//! Sums, counts, zeros, min, and max are tracked exactly, so `mean()` is
//! exact and only interior quantiles are approximate. Samples must be
//! non-negative and finite (all sweep observables are).

use std::collections::BTreeMap;

/// A mergeable log-bucket quantile sketch over non-negative finite samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuantileSketch {
    /// Count per log-bucket; the key is the top 16 bits of the sample's
    /// IEEE-754 representation. Exact zeros are kept out of the map so the
    /// common all-zero bucket answers exactly.
    buckets: BTreeMap<u16, u64>,
    zeros: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Bucket index: sign (always 0 here), 11 exponent bits, 4 mantissa bits.
fn bucket_of(v: f64) -> u16 {
    (v.to_bits() >> 48) as u16
}

/// Midpoint of the value range covered by bucket `k`. The range is
/// `[from_bits(k << 48), from_bits((k+1) << 48))`, i.e. one sixteenth of an
/// octave, so the midpoint is within ~3.2% of any member.
fn bucket_mid(k: u16) -> f64 {
    let lo = f64::from_bits((k as u64) << 48);
    let hi = f64::from_bits(((k as u64) + 1) << 48);
    (lo + hi) / 2.0
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Panics on NaN, infinite, or negative input.
    pub fn add(&mut self, v: f64) {
        assert!(v.is_finite(), "non-finite sample");
        assert!(v >= 0.0, "negative sample");
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        if v == 0.0 {
            self.zeros += 1;
        } else {
            *self.buckets.entry(bucket_of(v)).or_insert(0) += 1;
        }
    }

    /// Folds `other` into `self` by adding bucket counts. The result is
    /// identical to having added both sketches' samples to one sketch,
    /// except for `sum` where float addition order differs; merge order is
    /// therefore part of a caller's determinism contract (the sweep engine
    /// always merges in item-index order).
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        self.zeros += other.zeros;
        for (&k, &c) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += c;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples (in insertion/merge order).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate percentile by nearest rank over the bucket counts, or
    /// `None` if the sketch is empty. Answers are bucket midpoints clamped
    /// to the exact `[min, max]` range, so the extremes are exact and
    /// interior quantiles are within ~3.2% relative error.
    pub fn try_quantile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.count == 0 {
            return None;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        if target >= self.count {
            return Some(self.max);
        }
        let mut seen = self.zeros;
        if seen >= target {
            return Some(0.0);
        }
        for (&k, &c) in &self.buckets {
            seen += c;
            if seen >= target {
                return Some(bucket_mid(k).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Like [`Self::try_quantile`], defaulting to 0 for an empty sketch.
    pub fn quantile_or_zero(&self, p: f64) -> f64 {
        self.try_quantile(p).unwrap_or(0.0)
    }

    /// Number of occupied log-buckets (a memory-footprint gauge).
    pub fn occupied_buckets(&self) -> usize {
        self.buckets.len() + usize::from(self.zeros > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn empty_sketch_answers_defaults() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.try_quantile(50.0), None);
        assert_eq!(s.quantile_or_zero(99.0), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut s = QuantileSketch::new();
        for v in [3.0, 1.0, 4.0, 1.0, 5.0] {
            s.add(v);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean(), 2.8);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn zeros_are_exact() {
        let mut s = QuantileSketch::new();
        for _ in 0..99 {
            s.add(0.0);
        }
        s.add(1e6);
        assert_eq!(s.try_quantile(50.0), Some(0.0));
        assert_eq!(s.try_quantile(100.0), Some(1e6));
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut s = QuantileSketch::new();
        let mut samples: Vec<f64> = Vec::new();
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            // Span several orders of magnitude.
            let v = (rng.f64() * 12.0).exp2();
            s.add(v);
            samples.push(v);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [1.0, 10.0, 50.0, 90.0, 99.0] {
            let exact = samples
                [(((p / 100.0) * samples.len() as f64).ceil() as usize - 1).min(samples.len() - 1)];
            let approx = s.try_quantile(p).unwrap();
            let rel = (approx - exact).abs() / exact;
            assert!(rel < 0.033, "p{p}: approx {approx} vs exact {exact}");
        }
    }

    #[test]
    fn merge_equals_bulk_add() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut both = QuantileSketch::new();
        let mut rng = Rng::new(11);
        for i in 0..1_000 {
            let v = rng.f64() * 100.0;
            if i % 2 == 0 {
                a.add(v);
            } else {
                b.add(v);
            }
            both.add(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), both.count());
        assert_eq!(merged.min(), both.min());
        assert_eq!(merged.max(), both.max());
        assert_eq!(merged.buckets, both.buckets);
        for p in [5.0, 50.0, 95.0] {
            assert_eq!(merged.try_quantile(p), both.try_quantile(p));
        }
    }

    #[test]
    fn merge_into_empty_copies() {
        let mut a = QuantileSketch::new();
        a.add(2.0);
        a.add(8.0);
        let mut empty = QuantileSketch::new();
        empty.merge(&a);
        assert_eq!(empty, a);
        // And merging an empty sketch changes nothing.
        let before = a.clone();
        a.merge(&QuantileSketch::new());
        assert_eq!(a, before);
    }

    #[test]
    fn memory_is_bounded_by_distinct_magnitudes() {
        let mut s = QuantileSketch::new();
        for i in 0..100_000u64 {
            s.add(1.0 + (i % 7) as f64 * 1e-9); // same bucket
        }
        assert_eq!(s.occupied_buckets(), 1);
    }

    #[test]
    #[should_panic]
    fn negative_sample_panics() {
        QuantileSketch::new().add(-1.0);
    }

    #[test]
    #[should_panic]
    fn nan_sample_panics() {
        QuantileSketch::new().add(f64::NAN);
    }
}
