//! Deterministic pseudo-random number generation.
//!
//! Implements xoshiro256\*\* (Blackman & Vigna), seeded through SplitMix64 as
//! its authors recommend. A local implementation (rather than the `rand`
//! crate) guarantees that experiment outputs never change underneath us when a
//! dependency is upgraded — reproducibility is a first-class requirement for
//! a measurement-study reproduction.

/// A seedable, deterministic random number generator (xoshiro256\*\*).
///
/// Cheap to fork: [`Rng::fork`] derives an independent child stream, which the
/// experiment runners use to give every host/flow/burst its own stream while
/// keeping the whole experiment reproducible from a single root seed.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step, used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not be seeded with all zeros; splitmix64 of any seed
        // cannot produce four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            return Self::new(seed.wrapping_add(1));
        }
        Self { s }
    }

    /// Derives an independent child generator keyed by `stream`.
    ///
    /// Children with distinct `stream` values produce uncorrelated sequences,
    /// and forking does not perturb the parent.
    pub fn fork(&self, stream: u64) -> Self {
        let mut sm = self.s[0] ^ self.s[2] ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift with rejection for unbiased output.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: lo > hi");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element. Returns `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_independent_of_parent_use() {
        let parent = Rng::new(7);
        let mut c1 = parent.fork(3);
        let mut parent2 = parent.clone();
        parent2.next_u64();
        let mut c2 = parent2.fork(3); // forking ignores parent's consumed state? No:
                                      // fork uses only the stored state, and parent2
                                      // advanced, so forks differ. Verify forks from
                                      // the *same* snapshot agree instead.
        let mut c3 = parent.fork(3);
        assert_eq!(c1.next_u64(), c3.next_u64());
        // And a fork from an advanced parent is a different stream.
        let x = c2.next_u64();
        let y = c3.next_u64();
        // (Statistically distinct; equality would be a 2^-64 fluke.)
        assert_ne!(x, y);
    }

    #[test]
    fn fork_streams_are_distinct() {
        let parent = Rng::new(9);
        let mut a = parent.fork(0);
        let mut b = parent.fork(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(5);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = Rng::new(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(13);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = r.below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        Rng::new(0).below(0);
    }

    #[test]
    fn range_u64_inclusive_bounds() {
        let mut r = Rng::new(17);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let x = r.range_u64(3, 5);
            assert!((3..=5).contains(&x));
            saw_lo |= x == 3;
            saw_hi |= x == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn range_u64_single_point() {
        let mut r = Rng::new(19);
        assert_eq!(r.range_u64(4, 4), 4);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(23);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut r = Rng::new(29);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = Rng::new(31);
        let empty: &[u8] = &[];
        assert!(r.choose(empty).is_none());
    }
}
