//! Empirical cumulative distribution functions.
//!
//! Every CDF figure in the paper (Figs. 2 and 4) is "one sample per burst";
//! [`Cdf`] collects those samples and answers percentile and
//! fraction-at-or-below queries, and can render itself as `(x, F(x))` pairs
//! for plotting.

/// An empirical CDF over `f64` samples.
///
/// Samples are stored and sorted lazily on first query; `NaN` samples are
/// rejected at insertion time so ordering is total.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// Creates an empty CDF.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a CDF from an iterator of samples. Panics on `NaN`.
    pub fn from_samples<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut cdf = Self::new();
        for x in iter {
            cdf.add(x);
        }
        cdf
    }

    /// Adds one sample. Panics on `NaN`.
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Merges another CDF's samples into this one.
    pub fn merge(&mut self, other: &Cdf) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN by construction"));
            self.sorted = true;
        }
    }

    /// Percentile `p` in `[0, 100]` by nearest-rank, or `None` if the CDF is
    /// empty. Panics if `p` is out of range.
    pub fn try_percentile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of [0,100]");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(self.samples[rank.max(1).min(n) - 1])
    }

    /// Percentile `p` in `[0, 100]` by nearest-rank. Panics if empty or `p`
    /// is out of range.
    pub fn percentile(&mut self, p: f64) -> f64 {
        self.try_percentile(p).expect("percentile of empty CDF")
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Arithmetic mean. Panics if empty.
    pub fn mean(&self) -> f64 {
        assert!(!self.samples.is_empty(), "mean of empty CDF");
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Smallest sample.
    pub fn min(&mut self) -> f64 {
        self.ensure_sorted();
        self.samples[0]
    }

    /// Largest sample.
    pub fn max(&mut self) -> f64 {
        self.ensure_sorted();
        *self.samples.last().expect("max of empty CDF")
    }

    /// `F(x)`: the fraction of samples `<= x`.
    pub fn fraction_at_or_below(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&s| s <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// Renders the CDF as up to `points` evenly spaced (by rank) `(x, F(x))`
    /// pairs, suitable for plotting a figure series.
    pub fn curve(&mut self, points: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let points = points.min(n);
        (1..=points)
            .map(|i| {
                let rank = ((i as f64 / points as f64) * n as f64).ceil() as usize;
                let rank = rank.clamp(1, n);
                (self.samples[rank - 1], rank as f64 / n as f64)
            })
            .collect()
    }

    /// Read-only view of the raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank_small() {
        let mut c = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.percentile(0.0), 1.0);
        assert_eq!(c.percentile(25.0), 1.0);
        assert_eq!(c.percentile(50.0), 2.0);
        assert_eq!(c.percentile(75.0), 3.0);
        assert_eq!(c.percentile(100.0), 4.0);
    }

    #[test]
    fn median_odd_count() {
        let mut c = Cdf::from_samples([5.0, 1.0, 3.0]);
        assert_eq!(c.median(), 3.0);
    }

    #[test]
    fn mean_simple() {
        let c = Cdf::from_samples([2.0, 4.0, 6.0]);
        assert!((c.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        let mut c = Cdf::from_samples([3.0, -1.0, 7.0]);
        assert_eq!(c.min(), -1.0);
        assert_eq!(c.max(), 7.0);
    }

    #[test]
    fn fraction_at_or_below_boundaries() {
        let mut c = Cdf::from_samples([1.0, 2.0, 2.0, 3.0]);
        assert_eq!(c.fraction_at_or_below(0.5), 0.0);
        assert_eq!(c.fraction_at_or_below(2.0), 0.75);
        assert_eq!(c.fraction_at_or_below(10.0), 1.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Cdf::from_samples([1.0, 2.0]);
        let b = Cdf::from_samples([3.0, 4.0]);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.percentile(100.0), 4.0);
    }

    #[test]
    fn curve_is_monotonic() {
        let mut c = Cdf::from_samples((0..100).map(|i| (i * 7 % 100) as f64));
        let pts = c.curve(20);
        assert_eq!(pts.len(), 20);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn curve_empty_and_zero_points() {
        let mut c = Cdf::new();
        assert!(c.curve(10).is_empty());
        let mut c = Cdf::from_samples([1.0]);
        assert!(c.curve(0).is_empty());
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        Cdf::new().add(f64::NAN);
    }

    #[test]
    #[should_panic]
    fn empty_percentile_panics() {
        Cdf::new().percentile(50.0);
    }

    #[test]
    fn try_percentile_empty_is_none() {
        assert_eq!(Cdf::new().try_percentile(50.0), None);
        assert_eq!(Cdf::new().try_percentile(0.0), None);
        let mut c = Cdf::from_samples([7.0]);
        assert_eq!(c.try_percentile(99.0), Some(7.0));
    }

    #[test]
    fn try_percentile_agrees_with_percentile() {
        for xs in random_cases(0xCDF5, 32, 1, 100) {
            let mut c = Cdf::from_samples(xs);
            for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
                assert_eq!(c.try_percentile(p), Some(c.percentile(p)));
            }
        }
    }

    /// Seeded randomized vectors in `[-1e6, 1e6)` of length `[lo, hi]`.
    fn random_cases(seed: u64, cases: usize, lo: u64, hi: u64) -> Vec<Vec<f64>> {
        let mut rng = crate::Rng::new(seed);
        (0..cases)
            .map(|_| {
                let n = rng.range_u64(lo, hi) as usize;
                (0..n).map(|_| rng.range_f64(-1e6, 1e6)).collect()
            })
            .collect()
    }

    #[test]
    fn percentiles_are_monotone() {
        for xs in random_cases(0xCDF0, 64, 1, 200) {
            let mut c = Cdf::from_samples(xs);
            let mut prev = c.percentile(0.0);
            for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
                let v = c.percentile(p);
                assert!(v >= prev);
                prev = v;
            }
        }
    }

    #[test]
    fn percentile_is_a_sample() {
        let mut rng = crate::Rng::new(0xCDF1);
        for xs in random_cases(0xCDF2, 64, 1, 200) {
            let p = rng.range_f64(0.0, 100.0);
            let mut c = Cdf::from_samples(xs.iter().copied());
            let v = c.percentile(p);
            assert!(xs.contains(&v));
        }
    }

    #[test]
    fn fraction_bounded() {
        let mut rng = crate::Rng::new(0xCDF3);
        for xs in random_cases(0xCDF4, 64, 0, 100) {
            let q = rng.range_f64(-1e7, 1e7);
            let mut c = Cdf::from_samples(xs.iter().copied());
            let f = c.fraction_at_or_below(q);
            assert!((0.0..=1.0).contains(&f));
        }
    }
}
