//! Property tests for [`stats::QuantileSketch`] through its public API:
//! merge must behave like a commutative, associative union of the underlying
//! sample multisets, and quantile answers must stay within the sketch's
//! advertised relative rank-error bound of the exact empirical quantiles.

use stats::{QuantileSketch, Rng};

/// Relative value error of the bucketing scheme (top 16 bits of the f64
/// representation: 4 mantissa bits, midpoint representative ≈ 3.2%). Tested
/// against a slightly looser bound to avoid flaking on boundary samples.
const REL_ERR: f64 = 0.04;

const QUANTILES: [f64; 7] = [0.0, 10.0, 25.0, 50.0, 90.0, 99.0, 100.0];

fn sketch_of(samples: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &x in samples {
        s.add(x);
    }
    s
}

/// Seeded random non-negative sample vectors, mixing magnitudes across many
/// bucket exponents and including exact zeros (the sketch's special bucket).
fn random_cases(seed: u64, cases: usize, max_len: u64) -> Vec<Vec<f64>> {
    let mut rng = Rng::new(seed);
    (0..cases)
        .map(|_| {
            let n = rng.range_u64(0, max_len) as usize;
            (0..n)
                .map(|_| {
                    if rng.chance(0.1) {
                        0.0
                    } else {
                        // log-uniform over ~9 decades
                        let exp = rng.range_f64(-3.0, 6.0);
                        rng.range_f64(1.0, 10.0) * 10f64.powf(exp)
                    }
                })
                .collect()
        })
        .collect()
}

/// Everything observable through the public API, for exact comparison.
/// `sum` is excluded where float re-association makes it inexact.
fn observables(s: &QuantileSketch) -> (u64, f64, f64, usize, Vec<Option<f64>>) {
    (
        s.count(),
        s.min(),
        s.max(),
        s.occupied_buckets(),
        QUANTILES.iter().map(|&p| s.try_quantile(p)).collect(),
    )
}

#[test]
fn merge_is_commutative() {
    let cases = random_cases(0x5E7C_0001, 48, 120);
    for pair in cases.chunks_exact(2) {
        let (xs, ys) = (&pair[0], &pair[1]);
        let mut ab = sketch_of(xs);
        ab.merge(&sketch_of(ys));
        let mut ba = sketch_of(ys);
        ba.merge(&sketch_of(xs));
        assert_eq!(observables(&ab), observables(&ba));
        // f64 addition is commutative (unlike associative), so even the sum
        // must match bit-for-bit when both sides add the same two partials.
        assert_eq!(ab.count(), (xs.len() + ys.len()) as u64);
    }
}

#[test]
fn merge_is_associative() {
    let cases = random_cases(0x5E7C_0002, 48, 80);
    for triple in cases.chunks_exact(3) {
        let (xs, ys, zs) = (&triple[0], &triple[1], &triple[2]);
        // (a ∪ b) ∪ c
        let mut left = sketch_of(xs);
        left.merge(&sketch_of(ys));
        left.merge(&sketch_of(zs));
        // a ∪ (b ∪ c)
        let mut bc = sketch_of(ys);
        bc.merge(&sketch_of(zs));
        let mut right = sketch_of(xs);
        right.merge(&bc);
        assert_eq!(observables(&left), observables(&right));
        // Sums differ only by float re-association.
        let tol = 1e-12 * left.sum().abs().max(1.0);
        assert!((left.sum() - right.sum()).abs() <= tol);
    }
}

#[test]
fn merge_equals_bulk_insertion() {
    let cases = random_cases(0x5E7C_0003, 32, 100);
    for pair in cases.chunks_exact(2) {
        let (xs, ys) = (&pair[0], &pair[1]);
        let mut merged = sketch_of(xs);
        merged.merge(&sketch_of(ys));
        let all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        let bulk = sketch_of(&all);
        assert_eq!(observables(&merged), observables(&bulk));
    }
}

/// Exact nearest-rank quantile over a sample vector (the reference the
/// sketch approximates).
fn exact_quantile(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

#[test]
fn quantiles_obey_relative_error_bound() {
    let cases = random_cases(0x5E7C_0004, 64, 400);
    for xs in cases.iter().filter(|xs| !xs.is_empty()) {
        let s = sketch_of(xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        for &p in &QUANTILES {
            let approx = s.try_quantile(p).unwrap();
            let exact = exact_quantile(&sorted, p);
            if exact == 0.0 {
                // Zeros occupy their own bucket and come back exactly.
                assert_eq!(approx, 0.0, "p{p} of {} samples", xs.len());
            } else {
                let rel = (approx - exact).abs() / exact;
                assert!(
                    rel <= REL_ERR,
                    "p{p}: approx {approx} vs exact {exact} (rel {rel:.4}) \
                     over {} samples",
                    xs.len()
                );
            }
        }
    }
}

#[test]
fn empty_sketch_answers_none_and_merges_as_identity() {
    let empty = QuantileSketch::new();
    assert!(empty.is_empty());
    assert_eq!(empty.try_quantile(50.0), None);

    let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
    let mut s = sketch_of(&xs);
    let before = observables(&s);
    s.merge(&empty);
    assert_eq!(observables(&s), before);

    let mut e = QuantileSketch::new();
    e.merge(&s);
    assert_eq!(observables(&e), observables(&s));
}
