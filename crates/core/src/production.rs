//! The Section-3 fleet study: service traces measured with the Millisampler
//! substitute (Figures 1, 2, 4 and Table 1).
//!
//! Each host-trace is one full packet simulation: a coordinator host
//! replays a Poisson burst schedule drawn from its service's model against
//! a worker pool, and the Millisampler tap on the coordinator's NIC records
//! the 1 ms buckets from which bursts, incasts, marking, and retransmission
//! statistics are derived — exactly the paper's measurement pipeline.
//!
//! Rack-level contention (the paper's explanation for production losses at
//! flow counts the simulator's static queues absorb, §3.4/§4.1.1) is
//! modeled by a second receiver on the same ToR running its own bursty
//! service while both downlink queues charge a shared Dynamic-Threshold
//! buffer.

use crate::cache::{trace_key, RunCache};
use millisampler::{detect_bursts, Burst, CtrlTallies, Millisampler, MsTrace, TraceSummary};
use simnet::{build_fabric, BufferPolicy, FabricConfig, Shared, SimTime};
use stats::{Rng, TimeSeries};
use transport::{TcpConfig, TcpHost};
use workload::{sample_schedule, ScheduleCoordinator, ServiceId, SnapshotModel, Worker};

/// Shared-buffer pool used when contention is enabled: 4 MB with DT
/// alpha = 1. A lone hot queue still reaches its 2 MB per-port cap, but two
/// simultaneously hot queues are each squeezed to ~1.3 MB — the paper's
/// "capacity available at runtime may be lower" effect, producing the rare
/// loss tail of Fig. 4c.
pub const CONTENTION_POOL_BYTES: u64 = 4_000_000;
const CONTENTION_DT_ALPHA: f64 = 1.0;

/// Configuration of one service host-trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// The service whose model drives the workload.
    pub service: ServiceId,
    /// Trace length (the paper collects 2 s).
    pub duration: SimTime,
    /// Seed (vary per host and snapshot).
    pub seed: u64,
    /// Enable the rack-contention receiver + shared ToR buffer.
    pub contention: bool,
    /// Bottleneck queue-depth recording interval.
    pub queue_sample: SimTime,
}

impl TraceConfig {
    /// A 2-second paper-style trace.
    pub fn new(service: ServiceId, seed: u64) -> Self {
        TraceConfig {
            service,
            duration: SimTime::from_secs(2),
            seed,
            contention: true,
            queue_sample: SimTime::from_us(100),
        }
    }
}

/// One measured host-trace.
#[derive(Debug)]
pub struct TraceResult {
    /// The Millisampler bucket series.
    pub trace: MsTrace,
    /// Detected bursts (50 %-of-line-rate rule).
    pub bursts: Vec<Burst>,
    /// Bottleneck (measured receiver's downlink) queue depth in packets.
    pub queue_pkts: TimeSeries,
    /// Queue capacity in packets, for occupancy fractions.
    pub queue_capacity_pkts: f64,
    /// The snapshot model that drove the run (for calibration checks).
    pub snapshot: SnapshotModel,
    /// Diagnostics: drops at the measured receiver's downlink queue.
    pub downlink_drops: u64,
    /// Diagnostics: drops at the ToR-ToR trunk queue.
    pub trunk_drops: u64,
    /// Diagnostics: drops at the contending receiver's downlink (0 if
    /// contention is off).
    pub contender_drops: u64,
    /// Diagnostics: CE marks at the measured downlink.
    pub downlink_marks: u64,
    /// Diagnostics: CE marks at the trunk.
    pub trunk_marks: u64,
    /// Fault/notification tallies from the simulator's counters (zero in
    /// the stock production study, which runs fault-free without a control
    /// plane — carried so pooled aggregates stay honest when either is on).
    pub tallies: CtrlTallies,
}

/// Runs one host-trace, sampling the snapshot model from the seed.
pub fn run_service_trace(cfg: &TraceConfig) -> TraceResult {
    let model = cfg.service.model();
    let mut rng = Rng::new(cfg.seed);
    let snapshot = model.snapshot(&mut rng);
    run_trace_with_snapshot(cfg, snapshot)
}

/// Runs one host-trace with an explicit snapshot model (used by the
/// stability study, where the operating mode must persist across hosts).
pub fn run_trace_with_snapshot(cfg: &TraceConfig, snapshot: SnapshotModel) -> TraceResult {
    let model = cfg.service.model();
    let mut rng = Rng::new(cfg.seed).fork(1);
    let schedule = sample_schedule(&snapshot, model.worker_pool, cfg.duration, &mut rng);

    let fabric_cfg = FabricConfig {
        num_senders: model.worker_pool,
        num_receivers: if cfg.contention { 2 } else { 1 },
        host_rate: model.line_rate,
        // Production ToRs mark at 6.7 % of capacity (paper §2), not the
        // DCTCP paper's 65 packets used in the Section-4 simulations.
        tor_queue: simnet::QueueConfig::production_tor(),
        receiver_tor_buffer: cfg.contention.then_some((
            CONTENTION_POOL_BYTES,
            BufferPolicy::DynamicThreshold {
                alpha: CONTENTION_DT_ALPHA,
            },
        )),
        seed: cfg.seed,
        ..FabricConfig::default()
    };
    let mut fabric = build_fabric(&fabric_cfg);
    let bottleneck = fabric.downlinks[0];
    fabric
        .sim
        .link_mut(bottleneck)
        .queue
        .enable_monitor(cfg.queue_sample);
    let capacity = fabric
        .sim
        .link(bottleneck)
        .queue
        .config()
        .capacity_pkts
        .unwrap_or(1333) as f64;

    // Workers (shared by both coordinators; flows are disjoint by base).
    for (i, &s) in fabric.senders.iter().enumerate() {
        let worker = Worker::new(rng.fork(10_000 + i as u64));
        fabric.sim.set_endpoint(
            s,
            Box::new(TcpHost::new(TcpConfig::default(), Box::new(worker))),
        );
    }

    // Measured coordinator.
    let coordinator = ScheduleCoordinator::new(schedule, fabric.senders.clone());
    fabric.sim.set_endpoint(
        fabric.receivers[0],
        Box::new(TcpHost::new(TcpConfig::default(), Box::new(coordinator))),
    );

    // Millisampler on the measured host's NIC.
    let tap = Shared::new(Millisampler::new(model.line_rate));
    let tap_handle = tap.handle();
    fabric.sim.set_tap(fabric.receivers[0], Box::new(tap));

    // Contending receiver: an aggregator-like neighbor on the same rack.
    if cfg.contention {
        let neighbor_model = ServiceId::Aggregator.model();
        let mut nrng = Rng::new(cfg.seed).fork(2);
        let mut nsnap = neighbor_model.snapshot(&mut nrng);
        // The neighbor bursts at half an aggregator's rate: co-bursting
        // with the measured host should be the exception, not the rule.
        nsnap.bursts_per_sec *= 0.5;
        // The neighbor reuses this rack's worker pool, clamped to it.
        let nschedule = sample_schedule(&nsnap, model.worker_pool, cfg.duration, &mut nrng);
        let contender = ScheduleCoordinator::with_flow_base(
            nschedule,
            fabric.senders.clone(),
            model.worker_pool as u32,
        );
        fabric.sim.set_endpoint(
            fabric.receivers[1],
            Box::new(TcpHost::new(TcpConfig::default(), Box::new(contender))),
        );
    }

    fabric.sim.run_until(cfg.duration);

    let trace = {
        // Take the tap state back: finish the trace at the duration.
        let sampler = std::mem::replace(
            &mut *tap_handle.borrow_mut(),
            Millisampler::new(model.line_rate),
        );
        sampler.finish(cfg.duration)
    };
    let bursts = detect_bursts(&trace);
    let queue_pkts = fabric
        .sim
        .link(bottleneck)
        .queue
        .monitor()
        .expect("monitor enabled")
        .clone();
    let dstats = fabric.sim.link(bottleneck).queue.stats();
    let tstats = fabric.sim.link(fabric.trunk).queue.stats();
    let contender_drops = if cfg.contention {
        fabric
            .sim
            .link(fabric.downlinks[1])
            .queue
            .stats()
            .dropped_pkts
    } else {
        0
    };

    let c = fabric.sim.counters();
    TraceResult {
        downlink_drops: dstats.dropped_pkts,
        downlink_marks: dstats.marked_pkts,
        trunk_drops: tstats.dropped_pkts,
        trunk_marks: tstats.marked_pkts,
        contender_drops,
        trace,
        bursts,
        queue_pkts,
        queue_capacity_pkts: capacity,
        snapshot,
        tallies: CtrlTallies {
            faults_applied: c.faults_applied,
            notif_sent: c.notif_sent,
            notif_acked: c.notif_acked,
            notif_retries: c.notif_retries,
            notif_lost: c.notif_lost,
        },
    }
}

/// Configuration of a fleet study (Figures 2 and 4).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Services to study.
    pub services: Vec<ServiceId>,
    /// Hosts per service (paper: 20).
    pub hosts: usize,
    /// Snapshots per host (paper: 9 across a day).
    pub snapshots: usize,
    /// Trace length (paper: 2 s).
    pub duration: SimTime,
    /// Rack-contention on (needed for the Fig. 4c loss tail).
    pub contention: bool,
    /// Root seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl FleetConfig {
    /// Reduced scale for quick runs.
    pub fn quick(threads: usize) -> Self {
        FleetConfig {
            services: ServiceId::ALL.to_vec(),
            hosts: 4,
            snapshots: 2,
            duration: SimTime::from_secs(1),
            contention: true,
            seed: 2024,
            threads,
        }
    }

    /// The paper's scale: 20 hosts x 9 snapshots x 2 s.
    pub fn paper(threads: usize) -> Self {
        FleetConfig {
            hosts: 20,
            snapshots: 9,
            duration: SimTime::from_secs(2),
            ..Self::quick(threads)
        }
    }
}

/// The `TraceConfig` of one fleet cell; pulled out so the run cache keys
/// the exact config the cell simulates.
fn fleet_cell_config(
    cfg: &FleetConfig,
    si: usize,
    svc: ServiceId,
    h: usize,
    k: usize,
) -> TraceConfig {
    TraceConfig {
        service: svc,
        duration: cfg.duration,
        seed: cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((si as u64) << 48 | (h as u64) << 24 | k as u64),
        contention: cfg.contention,
        queue_sample: SimTime::from_us(100),
    }
}

/// Reduces one host-trace config to its cached summary: a hit decodes the
/// stored [`TraceSummary`]; a miss runs the packet simulation.
pub fn run_trace_summary_cached(
    cfg: &TraceConfig,
    cache: &RunCache,
) -> std::sync::Arc<TraceSummary> {
    cache.get_or_compute(&trace_key(cfg), || {
        let r = run_service_trace(cfg);
        TraceSummary::from_trace(
            &r.trace,
            &r.bursts,
            Some((&r.queue_pkts, r.queue_capacity_pkts)),
        )
        .with_tallies(r.tallies)
    })
}

/// Runs the fleet study: every (service, host, snapshot) cell is one packet
/// simulation; per-burst statistics pool into one accumulator per service.
///
/// Uses the process-wide run cache ([`RunCache::global`]); see
/// [`run_fleet_with`] to pin a specific cache (tests, differential checks).
pub fn run_fleet(cfg: &FleetConfig) -> Vec<(ServiceId, millisampler::FleetAccumulator)> {
    run_fleet_with(cfg, RunCache::global())
}

/// [`run_fleet`] against an explicit cache. Cells run on the persistent
/// pool and stream their cached [`TraceSummary`]s into the per-service
/// accumulators in item order, so the pooled CDFs are identical for any
/// thread count or cache state.
pub fn run_fleet_with(
    cfg: &FleetConfig,
    cache: &RunCache,
) -> Vec<(ServiceId, millisampler::FleetAccumulator)> {
    let mut items = Vec::new();
    for (si, &svc) in cfg.services.iter().enumerate() {
        for h in 0..cfg.hosts {
            for k in 0..cfg.snapshots {
                items.push((si, svc, h, k));
            }
        }
    }
    let init: Vec<millisampler::FleetAccumulator> = cfg
        .services
        .iter()
        .map(|_| millisampler::FleetAccumulator::new())
        .collect();
    let accs = crate::runner::par_reduce(
        items,
        cfg.threads,
        |&(si, svc, h, k)| run_trace_summary_cached(&fleet_cell_config(cfg, si, svc, h, k), cache),
        init,
        |mut accs, &(si, _, _, _), summary| {
            accs[si].add_summary(&summary);
            accs
        },
    );
    cfg.services.iter().copied().zip(accs).collect()
}

/// The four panels of the paper's Figure 1, derived from one trace.
#[derive(Debug)]
pub struct Fig1Panels {
    /// (ms, ingress Gbps) — Fig. 1a.
    pub throughput_gbps: Vec<(f64, f64)>,
    /// (ms, active flows) — Fig. 1b.
    pub active_flows: Vec<(f64, f64)>,
    /// (ms, ECN-marked ingress Gbps) — Fig. 1c.
    pub marked_gbps: Vec<(f64, f64)>,
    /// (ms, retransmitted Gbps) — Fig. 1d.
    pub retx_gbps: Vec<(f64, f64)>,
}

/// Converts a trace into Figure-1 panel series.
pub fn fig1_panels(trace: &MsTrace) -> Fig1Panels {
    let ms = trace.interval.as_ms_f64();
    let to_gbps = |bytes: u64| bytes as f64 * 8.0 / (ms * 1e6);
    let mut p = Fig1Panels {
        throughput_gbps: Vec::with_capacity(trace.buckets.len()),
        active_flows: Vec::with_capacity(trace.buckets.len()),
        marked_gbps: Vec::with_capacity(trace.buckets.len()),
        retx_gbps: Vec::with_capacity(trace.buckets.len()),
    };
    for (i, b) in trace.buckets.iter().enumerate() {
        let t = i as f64 * ms;
        p.throughput_gbps.push((t, to_gbps(b.bytes)));
        p.active_flows.push((t, b.flows as f64));
        p.marked_gbps.push((t, to_gbps(b.marked_bytes)));
        p.retx_gbps.push((t, to_gbps(b.retx_bytes)));
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(service: ServiceId, contention: bool) -> TraceConfig {
        TraceConfig {
            service,
            duration: SimTime::from_ms(300),
            seed: 42,
            contention,
            queue_sample: SimTime::from_us(100),
        }
    }

    #[test]
    fn aggregator_trace_has_incast_bursts() {
        let r = run_service_trace(&quick_cfg(ServiceId::Aggregator, false));
        assert!(!r.bursts.is_empty(), "no bursts detected");
        // The aggregator's bursts are mostly incasts (>25 flows).
        let incasts = r.bursts.iter().filter(|b| b.is_incast()).count();
        assert!(
            incasts * 2 >= r.bursts.len(),
            "{incasts}/{} incasts",
            r.bursts.len()
        );
        // Low average utilization, bursty traffic (the paper's ~10 %).
        let u = r.trace.mean_utilization();
        assert!((0.01..0.55).contains(&u), "utilization {u}");
    }

    #[test]
    fn bursts_drive_queue_occupancy() {
        let r = run_service_trace(&quick_cfg(ServiceId::Aggregator, false));
        assert!(r.queue_pkts.max() > 0.0, "queue never built");
        assert_eq!(r.queue_capacity_pkts, 1333.0);
    }

    #[test]
    fn contention_creates_retransmissions() {
        // With the shared buffer + neighbor, at least some traces see
        // retransmitted bytes; without, the static 2 MB queue absorbs
        // everything.
        let mut retx_with = 0;
        for seed in 0..4 {
            let mut cfg = quick_cfg(ServiceId::Aggregator, true);
            cfg.seed = seed;
            let r = run_service_trace(&cfg);
            retx_with += r.bursts.iter().map(|b| b.retx_bytes).sum::<u64>();
        }
        assert!(retx_with > 0, "contention produced no retransmissions");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_service_trace(&quick_cfg(ServiceId::Storage, true));
        let b = run_service_trace(&quick_cfg(ServiceId::Storage, true));
        assert_eq!(a.bursts, b.bursts);
        assert_eq!(a.trace.buckets.len(), b.trace.buckets.len());
        for (x, y) in a.trace.buckets.iter().zip(&b.trace.buckets) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn fig1_panels_convert_units() {
        let r = run_service_trace(&quick_cfg(ServiceId::Aggregator, false));
        let p = fig1_panels(&r.trace);
        assert_eq!(p.throughput_gbps.len(), r.trace.buckets.len());
        // Throughput never exceeds line rate (10 Gbps) by more than the
        // bucket-quantization slop.
        for &(_, g) in &p.throughput_gbps {
            assert!(g <= 10.5, "throughput {g} Gbps");
        }
        // Marked <= total in every bucket.
        for (m, t) in p.marked_gbps.iter().zip(&p.throughput_gbps) {
            assert!(m.1 <= t.1 + 1e-9);
        }
        // Flow counts peak above the incast threshold somewhere.
        assert!(p.active_flows.iter().any(|&(_, f)| f > 25.0));
    }
}
