//! Per-flow in-flight skew and cross-burst divergence (Figure 7).
//!
//! The paper samples per-flow in-flight data during a 100-flow Mode-1
//! incast and plots its distribution over time: a long tail (p95/p100)
//! transmits several times the median, and at burst end the stragglers
//! ramp up, "unlearning" the in-burst window and spiking the next burst's
//! queue. [`run_straggler`] reruns that experiment; [`flight_skew`] turns
//! the polled per-flow series into distribution-over-time points.

use crate::cache::RunCache;
use crate::modes::{run_incast, IncastRunResult, ModesConfig};
use crate::sweep::run_incast_cached;
use simnet::SimTime;
use stats::{Cdf, TimeSeries};
use std::sync::Arc;

/// One time point of the per-flow in-flight distribution.
#[derive(Debug, Clone, Copy)]
pub struct FlightSkewPoint {
    /// Time in ms.
    pub t_ms: f64,
    /// Active flows (in-flight > 0) at this point.
    pub active: usize,
    /// Mean in-flight bytes over active flows.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum (the paper's p100).
    pub max: f64,
}

/// Reduces per-flow series to the distribution-over-time of Figure 7,
/// considering only *active* flows (in-flight > 0), as the paper does.
pub fn flight_skew(flights: &[TimeSeries]) -> Vec<FlightSkewPoint> {
    let buckets = flights.iter().map(|f| f.len()).max().unwrap_or(0);
    let interval_ms = flights
        .first()
        .map(|f| f.interval() as f64 / 1e9)
        .unwrap_or(0.0);
    let mut out = Vec::with_capacity(buckets);
    for b in 0..buckets {
        let mut cdf = Cdf::new();
        for f in flights {
            let v = f.get(b);
            if v > 0.0 {
                cdf.add(v);
            }
        }
        if cdf.is_empty() {
            continue;
        }
        out.push(FlightSkewPoint {
            t_ms: b as f64 * interval_ms,
            active: cdf.len(),
            mean: cdf.mean(),
            p50: cdf.percentile(50.0),
            p95: cdf.percentile(95.0),
            max: cdf.percentile(100.0),
        });
    }
    out
}

/// Skew summary over a window of points.
#[derive(Debug, Clone, Copy)]
pub struct SkewSummary {
    /// Mean of p95/p50 across points (tail dominance).
    pub p95_over_median: f64,
    /// Mean of max/p50 across points.
    pub max_over_median: f64,
}

/// Averages tail-dominance ratios over the given points.
pub fn skew_summary(points: &[FlightSkewPoint]) -> Option<SkewSummary> {
    let valid: Vec<_> = points.iter().filter(|p| p.p50 > 0.0).collect();
    if valid.is_empty() {
        return None;
    }
    let n = valid.len() as f64;
    Some(SkewSummary {
        p95_over_median: valid.iter().map(|p| p.p95 / p.p50).sum::<f64>() / n,
        max_over_median: valid.iter().map(|p| p.max / p.p50).sum::<f64>() / n,
    })
}

/// Builds the Figure-7 configuration: a 15 ms cyclic incast with per-flow
/// in-flight polling and an explicit ECN threshold.
///
/// The paper runs 100 flows in its Mode 1; with this reproduction's exact
/// window floor, Mode 1 needs either <90 flows at K=65 or the production
/// threshold K=89 at 100 flows — the bench shows both.
pub fn straggler_config(
    num_flows: usize,
    ecn_threshold_pkts: u32,
    num_bursts: u32,
    seed: u64,
) -> ModesConfig {
    let mut cfg = ModesConfig {
        num_flows,
        burst_duration_ms: 15.0,
        num_bursts,
        flight_sample: Some(SimTime::from_us(100)),
        seed,
        ..ModesConfig::default()
    };
    cfg.tor_queue.ecn_threshold_pkts = Some(ecn_threshold_pkts);
    cfg
}

/// Runs the paper's Figure-7 experiment with the default K=65 threshold.
pub fn run_straggler(num_flows: usize, num_bursts: u32, seed: u64) -> IncastRunResult {
    run_incast(&straggler_config(num_flows, 65, num_bursts, seed))
}

/// [`run_straggler`] through the run cache: the per-flow flight series
/// round-trip the cache bit-exactly, so a warm hit feeds [`flight_skew`]
/// the same input as a cold run.
pub fn run_straggler_cached(
    num_flows: usize,
    num_bursts: u32,
    seed: u64,
    cache: &RunCache,
) -> Arc<IncastRunResult> {
    run_incast_cached(&straggler_config(num_flows, 65, num_bursts, seed), cache)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_math_on_synthetic_series() {
        // Three flows: constant 10, constant 10, and a straggler at 100.
        let mk = |v: f64| {
            let mut t = TimeSeries::new(1000);
            for b in 0..5u64 {
                t.record_max(b * 1000, v);
            }
            t
        };
        let flights = vec![mk(10.0), mk(10.0), mk(100.0)];
        let pts = flight_skew(&flights);
        assert_eq!(pts.len(), 5);
        for p in &pts {
            assert_eq!(p.active, 3);
            assert_eq!(p.p50, 10.0);
            assert_eq!(p.max, 100.0);
            assert!((p.mean - 40.0).abs() < 1e-9);
        }
        let s = skew_summary(&pts).unwrap();
        assert!((s.max_over_median - 10.0).abs() < 1e-9);
    }

    #[test]
    fn inactive_flows_excluded() {
        let mut a = TimeSeries::new(1000);
        a.record_max(0, 5.0);
        let mut b = TimeSeries::new(1000);
        b.record_max(0, 0.0); // inactive
        let pts = flight_skew(&[a, b]);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].active, 1);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(flight_skew(&[]).is_empty());
        assert!(skew_summary(&[]).is_none());
    }

    #[test]
    fn straggler_experiment_shows_skew() {
        // Scaled down for test speed: 40 flows, 3 bursts, 5 ms bursts.
        let cfg = ModesConfig {
            num_flows: 40,
            burst_duration_ms: 5.0,
            num_bursts: 3,
            flight_sample: Some(SimTime::from_us(100)),
            seed: 2,
            ..ModesConfig::default()
        };
        let r = run_incast(&cfg);
        let pts = flight_skew(&r.flights);
        assert!(!pts.is_empty());
        let s = skew_summary(&pts).unwrap();
        // Unfairness means the tail transmits more than the median flow.
        assert!(s.p95_over_median >= 1.0);
        assert!(s.max_over_median > 1.2, "max/median {}", s.max_over_median);
    }
}
