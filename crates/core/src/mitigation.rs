//! The Section-5 mitigation comparison.
//!
//! The paper's discussion sketches three directions; all are implemented
//! here and compared against stock DCTCP on the same cyclic incast:
//!
//! 1. **Cross-burst memory** (§5.1): remember the in-burst window and
//!    resume there at the next burst ([`transport::cca::MemoryDctcp`]).
//! 2. **Ramp guardrail** (§5.1): a hard window ceiling that bounds
//!    straggler ramp-up and slow-start overshoot
//!    ([`transport::cca::GuardrailDctcp`]).
//! 3. **Receiver-side incast scheduling** (§5.2): split the N-flow incast
//!    into staggered groups so only a manageable number of flows are
//!    active at once ([`workload::Grouping`]).

use crate::modes::{run_incast, IncastRunResult, MitigationKind, ModesConfig};
use millisampler::peak_in_window;
use simnet::SimTime;
use transport::CcaKind;
use workload::Grouping;

/// A mitigation under comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mitigation {
    /// Stock DCTCP (the paper's status quo).
    Baseline,
    /// Cross-burst window memory with the given EWMA gain.
    Memory {
        /// EWMA gain for the remembered window.
        gain: f64,
    },
    /// Hard window ceiling in segments.
    Guardrail {
        /// Ceiling in segments.
        max_cwnd_segs: u32,
    },
    /// Receiver-side group scheduling.
    Grouping {
        /// Flows per group.
        group_size: usize,
        /// Gap between groups' request waves.
        group_gap: SimTime,
    },
    /// In-fabric pause notifications from the receiver-ToR downlinks
    /// (explicit notification, Section-5 direction).
    Pulser {
        /// Emission-time notification loss probability.
        notif_loss: f64,
    },
    /// In-fabric cwnd-cut notifications from every fabric tier.
    Distributed {
        /// Emission-time notification loss probability.
        notif_loss: f64,
    },
}

impl Mitigation {
    /// Label for reports.
    pub fn label(&self) -> String {
        match self {
            Mitigation::Baseline => "dctcp (baseline)".into(),
            Mitigation::Memory { gain } => format!("cross-burst memory (gain {gain})"),
            Mitigation::Guardrail { max_cwnd_segs } => {
                format!("guardrail ({max_cwnd_segs} segs)")
            }
            Mitigation::Grouping {
                group_size,
                group_gap,
            } => format!("group scheduling ({group_size} flows / {group_gap})"),
            Mitigation::Pulser { notif_loss } => {
                format!("pulser pause notifications (loss {notif_loss})")
            }
            Mitigation::Distributed { notif_loss } => {
                format!("distributed cwnd-cut notifications (loss {notif_loss})")
            }
        }
    }

    /// Applies the mitigation to a base configuration.
    pub fn apply(&self, mut cfg: ModesConfig) -> ModesConfig {
        let g = 1.0 / 16.0;
        match *self {
            Mitigation::Baseline => {}
            Mitigation::Memory { gain } => {
                cfg.tcp.cca = CcaKind::DctcpMemory {
                    g,
                    memory_gain: gain,
                };
            }
            Mitigation::Guardrail { max_cwnd_segs } => {
                cfg.tcp.cca = CcaKind::DctcpGuardrail { g, max_cwnd_segs };
            }
            Mitigation::Grouping {
                group_size,
                group_gap,
            } => {
                cfg.grouping = Some(Grouping {
                    group_size,
                    group_gap,
                });
            }
            Mitigation::Pulser { notif_loss } => {
                cfg.mitigation.kind = MitigationKind::Pulser;
                cfg.mitigation.notif_loss = notif_loss;
            }
            Mitigation::Distributed { notif_loss } => {
                cfg.mitigation.kind = MitigationKind::Distributed;
                cfg.mitigation.notif_loss = notif_loss;
            }
        }
        cfg
    }
}

/// Comparison metrics for one mitigation run.
#[derive(Debug, Clone)]
pub struct MitigationOutcome {
    /// Which mitigation ran.
    pub label: String,
    /// Mean steady-state burst completion time (ms).
    pub mean_bct_ms: f64,
    /// Peak bottleneck queue during steady-state bursts (packets).
    pub peak_queue_pkts: f64,
    /// Mean of the per-burst queue spike in the first 500 µs of each
    /// steady-state burst — the §4.3 divergence signature.
    pub start_spike_pkts: f64,
    /// Steady-state drops at the bottleneck.
    pub steady_drops: u64,
    /// Steady-state retransmitted bytes.
    pub steady_retx_bytes: u64,
    /// CE marks as a fraction of enqueued packets.
    pub mark_fraction: f64,
}

/// Mean queue spike over the first `window` of each steady-state burst.
pub fn start_spike(result: &IncastRunResult, window: SimTime) -> f64 {
    let mut spikes = Vec::new();
    for &(s_ms, _) in result.burst_windows.iter().skip(1) {
        let t0 = (s_ms * 1e9) as u64;
        let t1 = t0 + window.as_ps();
        spikes.push(peak_in_window(&result.queue_pkts, t0, t1));
    }
    if spikes.is_empty() {
        0.0
    } else {
        spikes.iter().sum::<f64>() / spikes.len() as f64
    }
}

/// Runs one mitigation on the given base config.
pub fn run_mitigation(base: &ModesConfig, mitigation: Mitigation) -> MitigationOutcome {
    let cfg = mitigation.apply(base.clone());
    let r = run_incast(&cfg);
    MitigationOutcome {
        label: mitigation.label(),
        mean_bct_ms: r.mean_bct_ms,
        peak_queue_pkts: r.peak_steady_queue_pkts(),
        start_spike_pkts: start_spike(&r, SimTime::from_us(500)),
        steady_drops: r.steady_drops,
        steady_retx_bytes: r.steady_retx_bytes,
        mark_fraction: if r.enqueued_pkts == 0 {
            0.0
        } else {
            r.marked_pkts as f64 / r.enqueued_pkts as f64
        },
    }
}

/// The default mitigation lineup.
pub fn default_lineup() -> Vec<Mitigation> {
    vec![
        Mitigation::Baseline,
        Mitigation::Memory { gain: 0.25 },
        Mitigation::Guardrail { max_cwnd_segs: 4 },
        Mitigation::Grouping {
            group_size: 50,
            group_gap: SimTime::from_ms(1),
        },
        Mitigation::Pulser { notif_loss: 0.0 },
        Mitigation::Distributed { notif_loss: 0.0 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ModesConfig {
        ModesConfig {
            num_flows: 60,
            burst_duration_ms: 3.0,
            num_bursts: 4,
            seed: 9,
            ..ModesConfig::default()
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = default_lineup().iter().map(|m| m.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn apply_sets_cca_and_grouping() {
        let cfg = Mitigation::Memory { gain: 0.25 }.apply(base());
        assert!(matches!(cfg.tcp.cca, CcaKind::DctcpMemory { .. }));
        let cfg = Mitigation::Guardrail { max_cwnd_segs: 4 }.apply(base());
        assert!(matches!(cfg.tcp.cca, CcaKind::DctcpGuardrail { .. }));
        let cfg = Mitigation::Grouping {
            group_size: 10,
            group_gap: SimTime::from_ms(1),
        }
        .apply(base());
        assert!(cfg.grouping.is_some());
        let cfg = Mitigation::Baseline.apply(base());
        assert!(matches!(cfg.tcp.cca, CcaKind::Dctcp { .. }));
    }

    #[test]
    fn all_mitigations_complete_the_workload() {
        for m in default_lineup() {
            let out = run_mitigation(&base(), m);
            assert!(out.mean_bct_ms > 0.0, "{}: no bursts", out.label);
        }
    }

    #[test]
    fn guardrail_reduces_start_spike_vs_baseline() {
        let baseline = run_mitigation(&base(), Mitigation::Baseline);
        let rail = run_mitigation(&base(), Mitigation::Guardrail { max_cwnd_segs: 2 });
        assert!(
            rail.start_spike_pkts <= baseline.start_spike_pkts,
            "guardrail {} vs baseline {}",
            rail.start_spike_pkts,
            baseline.start_spike_pkts
        );
    }
}
