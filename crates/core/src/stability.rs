//! Flow-count stability over time and across hosts (the paper's Figure 3).
//!
//! The paper measures each service's 20 hosts for 2 s every 10 minutes over
//! 18 hours and finds that the per-burst flow-count distribution is stable
//! (Fig. 3a) — except video, which flips between two operating points — and
//! stable across hosts (Fig. 3b). Here, each (service, time, host) cell is
//! one packet-simulated trace; a service's operating mode at a given time is
//! shared by all its hosts (it is a property of the service's load), and
//! multi-mode services switch modes sluggishly between snapshots, as a
//! scheduler spooling workers up and down would.

use crate::cache::{trace_snapshot_key, RunCache};
use crate::production::{run_trace_with_snapshot, TraceConfig};
use crate::runner::par_reduce;
use millisampler::TraceSummary;
use simnet::SimTime;
use stats::{QuantileSketch, Rng};
use workload::{ServiceId, SnapshotModel};

/// Configuration of the stability study.
#[derive(Debug, Clone)]
pub struct StabilityConfig {
    /// Services to include (Fig. 3a uses all five).
    pub services: Vec<ServiceId>,
    /// Hosts per service (paper: 20).
    pub hosts: usize,
    /// Number of time points (paper: 18 h / 10 min = 108).
    pub snapshots: usize,
    /// Minutes between time points (paper: 10).
    pub interval_minutes: f64,
    /// Trace length per cell.
    pub duration: SimTime,
    /// Per-snapshot probability that a multi-mode service switches mode.
    pub mode_switch_prob: f64,
    /// Worker threads.
    pub threads: usize,
    /// Root seed.
    pub seed: u64,
}

impl StabilityConfig {
    /// A reduced-scale default; `INCAST_FULL=1` benches use paper scale.
    pub fn quick(threads: usize) -> Self {
        StabilityConfig {
            services: ServiceId::ALL.to_vec(),
            hosts: 4,
            snapshots: 12,
            interval_minutes: 10.0,
            duration: SimTime::from_ms(400),
            // High enough that video visits both operating points even in
            // a 12-snapshot quick run.
            mode_switch_prob: 0.5,
            threads,
            seed: 7,
        }
    }

    /// The paper's scale: 20 hosts, 108 snapshots.
    pub fn paper(threads: usize) -> Self {
        StabilityConfig {
            hosts: 20,
            snapshots: 108,
            duration: SimTime::from_ms(500),
            // Sluggish switching: modes persist ~2 hours, as a scheduler
            // resizing worker pools would.
            mode_switch_prob: 0.08,
            ..Self::quick(threads)
        }
    }
}

/// One time point of one service (host-averaged), for Fig. 3a.
#[derive(Debug, Clone, Copy)]
pub struct TimePoint {
    /// Hours since the study began.
    pub hour: f64,
    /// Mean per-burst flow count, pooled over the service's hosts.
    pub mean_flows: f64,
    /// 99th-percentile per-burst flow count, pooled over hosts.
    pub p99_flows: f64,
    /// Bursts observed at this time point.
    pub bursts: usize,
}

/// One host of one service (time-pooled), for Fig. 3b.
#[derive(Debug, Clone, Copy)]
pub struct HostPoint {
    /// Host index.
    pub host: usize,
    /// Mean per-burst flow count across all the host's snapshots.
    pub mean_flows: f64,
    /// 99th-percentile per-burst flow count.
    pub p99_flows: f64,
}

/// Full study output.
#[derive(Debug)]
pub struct StabilityResult {
    /// Per service: the Fig. 3a time series.
    pub over_time: Vec<(ServiceId, Vec<TimePoint>)>,
    /// Per service: the Fig. 3b per-host points.
    pub per_host: Vec<(ServiceId, Vec<HostPoint>)>,
}

impl StabilityResult {
    /// Coefficient of variation of a service's time-series means — the
    /// "stability" headline (small = stable operating point).
    pub fn time_cv(&self, service: ServiceId) -> Option<f64> {
        let series = &self.over_time.iter().find(|(s, _)| *s == service)?.1;
        let means: Vec<f64> = series
            .iter()
            .filter(|p| p.bursts > 0)
            .map(|p| p.mean_flows)
            .collect();
        if means.len() < 2 {
            return None;
        }
        let mean = means.iter().sum::<f64>() / means.len() as f64;
        let var = means.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / means.len() as f64;
        Some(var.sqrt() / mean)
    }
}

/// Pre-samples the operating mode (snapshot model) sequence for a service:
/// mode persists between time points, switching with `switch_prob`.
fn mode_sequence(
    service: ServiceId,
    snapshots: usize,
    switch_prob: f64,
    rng: &mut Rng,
) -> Vec<SnapshotModel> {
    let model = service.model();
    let mut current = model.snapshot(rng);
    let mut out = Vec::with_capacity(snapshots);
    for _ in 0..snapshots {
        if model.modes.len() > 1 && rng.chance(switch_prob) {
            // A switch moves to a *different* operating point (resampling
            // could land on the same mode; insist on a real change).
            for _ in 0..32 {
                let candidate = model.snapshot(rng);
                if (candidate.mean_flows() - current.mean_flows()).abs() > 1.0 {
                    current = candidate;
                    break;
                }
            }
        }
        out.push(current.clone());
    }
    out
}

/// Runs the study with the process-wide run cache.
pub fn run_stability(cfg: &StabilityConfig) -> StabilityResult {
    run_stability_with(cfg, RunCache::global())
}

/// [`run_stability`] against an explicit cache. Each cell's trace reduces
/// to a cached [`TraceSummary`] (content-addressed by config *and*
/// snapshot model, since the snapshot is pinned externally); per-burst
/// flow counts stream into fixed-memory [`QuantileSketch`]es pooled by
/// (service, time) and (service, host). Means are exact (the sketch keeps
/// exact sums), p99s are within the sketch's ~3 % relative error.
pub fn run_stability_with(cfg: &StabilityConfig, cache: &RunCache) -> StabilityResult {
    // Work items: (service_idx, snapshot_idx, host_idx, snapshot model).
    let mut items = Vec::new();
    for (si, &svc) in cfg.services.iter().enumerate() {
        let mut mode_rng = Rng::new(cfg.seed).fork(si as u64);
        let modes = mode_sequence(svc, cfg.snapshots, cfg.mode_switch_prob, &mut mode_rng);
        for (ti, snap) in modes.into_iter().enumerate() {
            for h in 0..cfg.hosts {
                items.push((si, ti, h, snap.clone()));
            }
        }
    }

    // Pool per (service, time) for Fig. 3a and per (service, host) for 3b,
    // streaming: summaries fold in item order as cells finish out of order
    // on the pool, so the sketches are identical for any thread count.
    let ns = cfg.services.len();
    let by_time: Vec<Vec<QuantileSketch>> = vec![vec![QuantileSketch::new(); cfg.snapshots]; ns];
    let by_host: Vec<Vec<QuantileSketch>> = vec![vec![QuantileSketch::new(); cfg.hosts]; ns];
    let (by_time, by_host) = par_reduce(
        items,
        cfg.threads,
        |(si, ti, h, snap)| {
            let trace_cfg = TraceConfig {
                service: cfg.services[*si],
                duration: cfg.duration,
                seed: cfg
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((*si as u64) << 40 | (*ti as u64) << 20 | *h as u64),
                contention: false,
                queue_sample: SimTime::from_ms(1),
            };
            cache.get_or_compute(&trace_snapshot_key(&trace_cfg, snap), || {
                let r = run_trace_with_snapshot(&trace_cfg, snap.clone());
                TraceSummary::from_trace(&r.trace, &r.bursts, None).with_tallies(r.tallies)
            })
        },
        (by_time, by_host),
        |(mut bt, mut bh), (si, ti, h, _), summary| {
            for row in &summary.per_burst {
                bt[*si][*ti].add(row.peak_flows);
                bh[*si][*h].add(row.peak_flows);
            }
            (bt, bh)
        },
    );

    let point = |sk: &QuantileSketch| {
        (
            if sk.is_empty() { 0.0 } else { sk.mean() },
            sk.try_quantile(99.0).unwrap_or(0.0),
        )
    };

    let over_time = cfg
        .services
        .iter()
        .enumerate()
        .map(|(si, &svc)| {
            let pts = by_time[si]
                .iter()
                .enumerate()
                .map(|(ti, sk)| {
                    let (mean_flows, p99_flows) = point(sk);
                    TimePoint {
                        hour: ti as f64 * cfg.interval_minutes / 60.0,
                        mean_flows,
                        p99_flows,
                        bursts: sk.count() as usize,
                    }
                })
                .collect();
            (svc, pts)
        })
        .collect();

    let per_host = cfg
        .services
        .iter()
        .enumerate()
        .map(|(si, &svc)| {
            let pts = by_host[si]
                .iter()
                .enumerate()
                .map(|(h, sk)| {
                    let (mean_flows, p99_flows) = point(sk);
                    HostPoint {
                        host: h,
                        mean_flows,
                        p99_flows,
                    }
                })
                .collect();
            (svc, pts)
        })
        .collect();

    StabilityResult {
        over_time,
        per_host,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StabilityConfig {
        StabilityConfig {
            services: vec![ServiceId::Indexer, ServiceId::Video],
            hosts: 2,
            snapshots: 4,
            interval_minutes: 10.0,
            duration: SimTime::from_ms(150),
            mode_switch_prob: 0.5,
            threads: 2,
            seed: 5,
        }
    }

    #[test]
    fn produces_full_grid() {
        let r = run_stability(&tiny());
        assert_eq!(r.over_time.len(), 2);
        assert_eq!(r.per_host.len(), 2);
        for (_, pts) in &r.over_time {
            assert_eq!(pts.len(), 4);
        }
        for (_, pts) in &r.per_host {
            assert_eq!(pts.len(), 2);
        }
    }

    #[test]
    fn indexer_is_stable_over_time() {
        let r = run_stability(&tiny());
        let cv = r.time_cv(ServiceId::Indexer).expect("enough points");
        assert!(cv < 0.35, "indexer CV {cv}");
    }

    #[test]
    fn mode_sequence_persists_between_switches() {
        let mut rng = Rng::new(3);
        let modes = mode_sequence(ServiceId::Video, 50, 0.0, &mut rng);
        // No switching: all snapshots share one operating point.
        let first = modes[0].mean_flows();
        for m in &modes {
            assert_eq!(m.mean_flows(), first);
        }
    }

    #[test]
    fn single_mode_services_never_switch() {
        let mut rng = Rng::new(3);
        let modes = mode_sequence(ServiceId::Storage, 20, 1.0, &mut rng);
        let first = modes[0].mean_flows();
        for m in &modes {
            assert_eq!(m.mean_flows(), first);
        }
    }
}
