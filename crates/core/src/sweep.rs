//! The sweep engine: persistent pool + run cache + streaming aggregation.
//!
//! A *sweep* is many independent simulations whose results feed one
//! aggregate (a figure, a table row, a regression digest). This module is
//! the one place that wires the three pieces together:
//!
//! - execution on the persistent work-stealing pool ([`crate::pool`],
//!   via [`crate::runner::par_map`] / [`crate::runner::par_reduce`]),
//! - memoization through the content-addressed [`RunCache`],
//! - streaming reduction into fixed-memory summaries
//!   ([`IncastSweepAggregate`]), so reducers never retain every run.
//!
//! Determinism contract: for fixed configs, the aggregate's [`digest`]
//! (and any manifest rendered through [`sweep_manifest`], after
//! [`telemetry::RunManifest::deterministic`]) is byte-identical across
//! thread counts and cache states. The sweep differential test
//! (`tests/sweep_equivalence.rs`) enforces this.
//!
//! [`digest`]: IncastSweepAggregate::digest

use std::sync::Arc;

use crate::cache::{incast_key, RunCache};
use crate::modes::{run_incast, IncastRunResult, ModesConfig};
use crate::runner::par_map;
use stats::{Histogram, QuantileSketch, Summary};
use telemetry::json::write_f64;
use telemetry::{LoopProfile, RunManifest};

/// Runs one incast configuration through the cache: a hit returns the
/// memoized result, a miss computes via [`run_incast`] and stores it.
pub fn run_incast_cached(cfg: &ModesConfig, cache: &RunCache) -> Arc<IncastRunResult> {
    cache.get_or_compute(&incast_key(cfg), || run_incast(cfg))
}

/// Runs a whole sweep on the persistent pool, one cached run per config.
/// Results come back in config order regardless of thread count.
pub fn run_incast_sweep(
    cfgs: &[ModesConfig],
    threads: usize,
    cache: &RunCache,
) -> Vec<Arc<IncastRunResult>> {
    par_map(cfgs.to_vec(), threads, |cfg| run_incast_cached(cfg, cache))
}

/// Streaming, mergeable reduction of an incast sweep: fixed memory
/// regardless of sweep size (the per-run vectors are dropped after
/// [`absorb`](Self::absorb)), deterministic in absorb order.
#[derive(Debug, Clone)]
pub struct IncastSweepAggregate {
    /// Runs absorbed.
    pub runs: usize,
    /// Per-run mean BCT (ms): exact moments across the sweep.
    pub bct: Summary,
    /// Per-burst steady-state BCTs (ms), pooled across runs, in a
    /// fixed-memory mergeable sketch (~3 % relative quantile error).
    pub bct_sketch: QuantileSketch,
    /// Per-burst steady-state BCTs (ms) in a fixed-shape histogram
    /// (0–1000 ms, 200 buckets), mergeable bucket-wise.
    pub bct_hist: Histogram,
    /// Total drops across runs.
    pub drops: u64,
    /// Total RTO expirations across runs.
    pub timeouts: u64,
    /// Total ECN-marked packets across runs.
    pub marked_pkts: u64,
    /// Merged event-loop profile (wall-clock sums; excluded from
    /// [`digest`](Self::digest)).
    pub profile: LoopProfile,
}

impl Default for IncastSweepAggregate {
    fn default() -> Self {
        Self::new()
    }
}

impl IncastSweepAggregate {
    /// An empty aggregate.
    pub fn new() -> Self {
        IncastSweepAggregate {
            runs: 0,
            bct: Summary::new(),
            bct_sketch: QuantileSketch::new(),
            bct_hist: Histogram::new(0.0, 1000.0, 200),
            drops: 0,
            timeouts: 0,
            marked_pkts: 0,
            profile: LoopProfile::new(),
        }
    }

    /// Folds one run into the aggregate. All stats are additive, so
    /// absorbing runs one by one equals absorbing them all at once.
    pub fn absorb(&mut self, r: &IncastRunResult) {
        self.runs += 1;
        self.bct.add(r.mean_bct_ms);
        for &bct in r.bcts_ms.iter().skip(r.warmup_bursts as usize) {
            self.bct_sketch.add(bct);
            self.bct_hist.add(bct);
        }
        self.drops += r.drops;
        self.timeouts += r.timeouts;
        self.marked_pkts += r.marked_pkts;
        self.profile.merge(&r.profile);
    }

    /// Merges another aggregate into this one (for tree reductions).
    pub fn merge(&mut self, other: &IncastSweepAggregate) {
        self.runs += other.runs;
        self.bct.merge(&other.bct);
        self.bct_sketch.merge(&other.bct_sketch);
        self.bct_hist.merge(&other.bct_hist);
        self.drops += other.drops;
        self.timeouts += other.timeouts;
        self.marked_pkts += other.marked_pkts;
        self.profile.merge(&other.profile);
    }

    /// Convenience: absorbs every run of a finished sweep.
    pub fn from_runs<'a>(runs: impl IntoIterator<Item = &'a IncastRunResult>) -> Self {
        let mut agg = Self::new();
        for r in runs {
            agg.absorb(r);
        }
        agg
    }

    /// A deterministic one-line fingerprint of the aggregate: every field
    /// except wall-clock, with floats in shortest-round-trip form. Two
    /// sweeps over the same configs produce byte-identical digests
    /// regardless of thread count or cache state — this string is what
    /// the sweep differential test compares.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("runs={};", self.runs));
        let has_runs = self.runs > 0;
        push_kv(&mut out, "bct_mean", has_runs.then(|| self.bct.mean()));
        push_kv(&mut out, "bct_min", has_runs.then(|| self.bct.min()));
        push_kv(&mut out, "bct_max", has_runs.then(|| self.bct.max()));
        push_kv(&mut out, "burst_p50", self.bct_sketch.try_quantile(50.0));
        push_kv(&mut out, "burst_p99", self.bct_sketch.try_quantile(99.0));
        push_kv(&mut out, "hist_p50", self.bct_hist.try_percentile(50.0));
        push_kv(&mut out, "hist_p99", self.bct_hist.try_percentile(99.0));
        out.push_str(&format!(
            "bursts={};drops={};timeouts={};marked={};events={}",
            self.bct_sketch.count(),
            self.drops,
            self.timeouts,
            self.marked_pkts,
            self.profile.events(),
        ));
        out
    }
}

/// `key=<shortest-round-trip float>;` or `key=none;` — `None` is how an
/// empty histogram/sketch prints (the `try_percentile` call sites the
/// empty-histogram panic fix exists for).
fn push_kv(out: &mut String, key: &str, v: Option<f64>) {
    out.push_str(key);
    out.push('=');
    match v {
        Some(v) => write_f64(v, out),
        None => out.push_str("none"),
    }
    out.push(';');
}

/// A manifest describing one sweep: topology field summarizes the sweep
/// shape, cache statistics ride along in `cache_json` (cleared by
/// [`RunManifest::deterministic`], since hit counts depend on cache
/// state, not inputs).
pub fn sweep_manifest(
    name: &str,
    seed: u64,
    agg: &IncastSweepAggregate,
    threads: usize,
    cache: &RunCache,
) -> RunManifest {
    let mut m = RunManifest::new(
        name,
        seed,
        &format!("sweep:runs={},threads={threads}", agg.runs),
    )
    .with_git_describe();
    m.events_processed = agg.profile.events();
    m.counters_json = {
        let mut out = String::new();
        let mut o = telemetry::json::Obj::new(&mut out);
        o.u64("drops", agg.drops)
            .u64("timeouts", agg.timeouts)
            .u64("marked_pkts", agg.marked_pkts);
        o.finish();
        out
    };
    let wall = agg.profile.wall;
    if !wall.is_zero() {
        m.wall_clock_us = Some(wall.as_micros() as u64);
        m.events_per_sec = Some(agg.profile.events_per_sec() as u64);
    }
    m.cache_json = Some(cache.stats().to_json());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::ModesConfig;

    fn tiny_cfg(seed: u64) -> ModesConfig {
        ModesConfig {
            num_flows: 8,
            num_bursts: 2,
            warmup_bursts: 1,
            seed,
            ..ModesConfig::default()
        }
    }

    fn tiny_sweep(n: u64) -> Vec<ModesConfig> {
        (0..n).map(tiny_cfg).collect()
    }

    #[test]
    fn cached_run_hits_on_second_call() {
        let cache = RunCache::in_memory();
        let cfg = tiny_cfg(1);
        let a = run_incast_cached(&cfg, &cache);
        let b = run_incast_cached(&cfg, &cache);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().mem_hits, 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn sweep_results_are_in_config_order() {
        let cache = RunCache::in_memory();
        let cfgs = tiny_sweep(4);
        let runs = run_incast_sweep(&cfgs, 4, &cache);
        assert_eq!(runs.len(), cfgs.len());
        // Seeds differ, so the runs must differ pairwise; order is checked
        // against a serial pass.
        let serial = run_incast_sweep(&cfgs, 1, &cache);
        for (a, b) in runs.iter().zip(&serial) {
            assert!(Arc::ptr_eq(a, b), "cache must dedupe identical configs");
        }
    }

    #[test]
    fn digest_is_identical_across_threads_and_cache_state() {
        let cfgs = tiny_sweep(3);
        let digests: Vec<String> = [1usize, 4]
            .iter()
            .flat_map(|&threads| {
                // Fresh cache (cold) and reused cache (warm).
                let cache = RunCache::in_memory();
                let cold = IncastSweepAggregate::from_runs(
                    run_incast_sweep(&cfgs, threads, &cache)
                        .iter()
                        .map(|r| &**r),
                );
                let warm = IncastSweepAggregate::from_runs(
                    run_incast_sweep(&cfgs, threads, &cache)
                        .iter()
                        .map(|r| &**r),
                );
                [cold.digest(), warm.digest()]
            })
            .collect();
        for d in &digests[1..] {
            assert_eq!(d, &digests[0]);
        }
    }

    #[test]
    fn empty_aggregate_digest_prints_none_not_panics() {
        let agg = IncastSweepAggregate::new();
        let d = agg.digest();
        assert!(d.contains("bct_mean=none;"));
        assert!(d.contains("hist_p50=none;"));
        assert!(d.contains("runs=0;"));
    }

    #[test]
    fn merge_equals_sequential_absorb() {
        let cache = RunCache::in_memory();
        let cfgs = tiny_sweep(4);
        let runs = run_incast_sweep(&cfgs, 2, &cache);
        let whole = IncastSweepAggregate::from_runs(runs.iter().map(|r| &**r));
        let mut left = IncastSweepAggregate::from_runs(runs[..2].iter().map(|r| &**r));
        let right = IncastSweepAggregate::from_runs(runs[2..].iter().map(|r| &**r));
        left.merge(&right);
        assert_eq!(left.digest(), whole.digest());
    }

    #[test]
    fn sweep_manifest_carries_cache_stats_and_stays_deterministic() {
        let cache = RunCache::in_memory();
        let cfgs = tiny_sweep(2);
        let runs = run_incast_sweep(&cfgs, 2, &cache);
        let agg = IncastSweepAggregate::from_runs(runs.iter().map(|r| &**r));
        let m = sweep_manifest("sweep_test", 0, &agg, 2, &cache);
        assert!(m.to_json().contains(r#""cache":{"hits":"#));
        let det = m.deterministic();
        assert!(!det.to_json().contains("cache"));
        assert!(det
            .to_json()
            .contains(r#""topology":"sweep:runs=2,threads=2""#));
    }
}
