//! The Section-4 incast experiment: N DCTCP flows through the paper's
//! dumbbell, cyclic bursts, queue traces, and the three operating modes.
//!
//! This is the engine behind Figures 5 and 6, the straggler analysis of
//! Figure 7, every ablation, and the mitigation comparison: one
//! configuration struct in, one [`IncastRunResult`] out.

use simnet::{
    build_clos_with, BufferPolicy, ClosConfig, ControlConfig, CtrlAction, FaultPlan, QueueConfig,
    Scheduler, Shared, SimTime, TimingWheel,
};
use stats::{Rng, TimeSeries};
use telemetry::{LoopProfile, RunManifest, SinkRef};
use transport::{TcpConfig, TcpHost};
use workload::{BurstSchedule, CyclicCoordinator, Grouping, IncastConfig, Worker};

/// Infrastructure faults for one incast run, expressed against the incast
/// fabric's well-known elements (the trunk, the bottleneck downlink, the
/// shared receiver-ToR buffer, individual senders) rather than raw link
/// ids. Compiled into a [`FaultPlan`] when the fabric is built. All
/// windows are `[from, until)` in absolute sim time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSpec {
    /// Trunk blackhole window: the trunk drops every frame.
    pub blackhole: Option<(SimTime, SimTime)>,
    /// Extra random loss on the bottleneck downlink: `(from, until, p)`.
    pub loss: Option<(SimTime, SimTime, f64)>,
    /// Frame corruption on the bottleneck downlink: `(from, until, p)`.
    pub corrupt: Option<(SimTime, SimTime, f64)>,
    /// ECN mis-configuration window: marking disabled at the bottleneck,
    /// then restored to the configured thresholds.
    pub ecn_off: Option<(SimTime, SimTime)>,
    /// Shared-buffer squeeze: `(from, until, shrunk_bytes)`; restored to
    /// the configured size at `until`. Ignored unless the run has a shared
    /// receiver-ToR buffer.
    pub buffer_shrink: Option<(SimTime, SimTime, u64)>,
    /// Straggler window: `(from, until, sender_index)` pauses that
    /// sender's host software.
    pub straggler: Option<(SimTime, SimTime, u32)>,
    /// Spine blackhole: `(from, until, spine_index)` downs every rack's
    /// uplink into spine `spine_index % spines`, forcing each leaf's ECMP
    /// to deterministically re-hash the affected flows onto the surviving
    /// spines. On the dumbbell (or a 1-rack Clos) this downs the
    /// corresponding parallel trunk — the only trunk when `spines == 1`,
    /// where it behaves like `blackhole`.
    pub spine_blackhole: Option<(SimTime, SimTime, u32)>,
    /// Extra random loss on one spine uplink:
    /// `(from, until, spine_index, p)`, applied to rack 0's uplink into
    /// spine `spine_index % spines`.
    pub spine_loss: Option<(SimTime, SimTime, u32, f64)>,
}

impl FaultSpec {
    /// True if no fault is configured (the run installs no plan).
    pub fn is_empty(&self) -> bool {
        *self == FaultSpec::default()
    }
}

/// Which in-fabric incast control plane a run installs, if any.
///
/// `Pulser` monitors only the receiver-ToR downlinks (where the paper's
/// incast converges) and multicasts *pause* notifications back to the
/// contributing senders; `Distributed` additionally monitors every rack
/// uplink and spine downlink and requests a *cwnd cut* instead. Both are
/// fully fault-exposed: notification frames ride the same links and queues
/// as data, and `notif_loss` drops them at emission. `Off` installs
/// nothing — and so does `notif_loss >= 1`, byte-identically (graceful
/// degradation; `tests/control_plane.rs` pins this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MitigationKind {
    /// No control plane (the paper's status quo).
    #[default]
    Off,
    /// Pause notifications from the receiver-ToR downlinks.
    Pulser,
    /// Cwnd-cut notifications from every fabric tier.
    Distributed,
}

/// Configuration of the in-fabric incast control plane for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MitigationSpec {
    /// Which control plane to install.
    pub kind: MitigationKind,
    /// Emission-time notification loss probability (`>= 1` blackholes the
    /// control plane entirely — byte-identical to `Off`).
    pub notif_loss: f64,
    /// Distinct data flows in the detection window required to trigger.
    pub flow_threshold: u32,
    /// Detection sliding-window length, µs.
    pub window_us: u64,
    /// Pause duration carried in notifications, µs (senders clamp to
    /// their guard bound).
    pub pause_us: u64,
    /// Base re-fire timeout for unacknowledged notifications, µs.
    pub retry_timeout_us: u64,
    /// Re-fire budget per episode (0 = fire once, never retry).
    pub max_retries: u32,
}

impl Default for MitigationSpec {
    fn default() -> Self {
        MitigationSpec {
            kind: MitigationKind::Off,
            notif_loss: 0.0,
            flow_threshold: 8,
            window_us: 100,
            pause_us: 150,
            retry_timeout_us: 100,
            max_retries: 5,
        }
    }
}

impl MitigationSpec {
    /// True when the run installs no control plane.
    pub fn is_off(&self) -> bool {
        self.kind == MitigationKind::Off
    }

    /// Stable label for manifests and reports.
    pub fn label(&self) -> &'static str {
        match self.kind {
            MitigationKind::Off => "off",
            MitigationKind::Pulser => "pulser",
            MitigationKind::Distributed => "distributed",
        }
    }
}

/// Why a budgeted run was cut short.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncationCause {
    /// The sim-time budget was exhausted.
    SimTime,
    /// The event-count budget was exhausted.
    Events,
    /// The wall-clock watchdog fired.
    WallClock,
}

impl TruncationCause {
    /// Stable manifest label.
    pub fn label(&self) -> &'static str {
        match self {
            TruncationCause::SimTime => "sim_time",
            TruncationCause::Events => "events",
            TruncationCause::WallClock => "wall_clock",
        }
    }

    /// Stable integer code (for the run-cache encoding; 0 means "not
    /// truncated").
    pub fn code(&self) -> u64 {
        match self {
            TruncationCause::SimTime => 1,
            TruncationCause::Events => 2,
            TruncationCause::WallClock => 3,
        }
    }

    /// Inverse of [`TruncationCause::code`].
    pub fn from_code(code: u64) -> Option<TruncationCause> {
        match code {
            1 => Some(TruncationCause::SimTime),
            2 => Some(TruncationCause::Events),
            3 => Some(TruncationCause::WallClock),
            _ => None,
        }
    }
}

/// Resource budgets for one supervised run. Any exceeded budget stops the
/// run gracefully at the next polling step: partial results are collected,
/// the manifest is marked `truncated`, and sweep aggregates exclude it.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunBudget {
    /// Wall-clock watchdog (nondeterministic — runs truncated by it are
    /// not comparable across machines).
    pub wall_clock: Option<std::time::Duration>,
    /// Simulated-time ceiling (checked against `sim.now()`).
    pub sim_time: Option<SimTime>,
    /// Event-count ceiling (checked against `events_processed`).
    pub max_events: Option<u64>,
}

impl RunBudget {
    /// True if no budget is configured.
    pub fn is_unlimited(&self) -> bool {
        self.wall_clock.is_none() && self.sim_time.is_none() && self.max_events.is_none()
    }
}

/// Which fabric a cyclic-incast run is built on.
///
/// `Dumbbell` is the paper's Section-4 two-ToR topology and the historical
/// default; `Clos` spreads the same `num_flows` senders round-robin over
/// `racks` leaf switches whose uplinks are ECMP-balanced across `spines`
/// spine switches (see `simnet::ClosConfig`). A `Clos` with one rack and
/// one spine builds the exact same simulator as `Dumbbell`, byte for byte
/// (`tests/fabric_equivalence.rs` pins this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopologySpec {
    /// The paper's two-ToR dumbbell: every sender in one rack.
    #[default]
    Dumbbell,
    /// A leaf/spine Clos fabric.
    Clos {
        /// Sender racks (leaf switches); senders are assigned round-robin.
        racks: usize,
        /// Spine switches every leaf uplinks to (the ECMP fan-out).
        spines: usize,
    },
}

/// Configuration of one cyclic-incast run.
#[derive(Debug, Clone)]
pub struct ModesConfig {
    /// Number of incast flows (N senders).
    pub num_flows: usize,
    /// Fabric the flows converge across.
    pub topology: TopologySpec,
    /// Nominal burst duration: demand = duration x 10 Gbps / N per flow.
    pub burst_duration_ms: f64,
    /// Bursts to run (the paper uses 11 and discards the first).
    pub num_bursts: u32,
    /// Bursts discarded as warm-up before "steady state". The paper
    /// discards 1; with a Linux-like 200 ms minimum RTO the synchronized
    /// slow-start storm of burst 0 also contaminates burst 1, so the
    /// default here is 2.
    pub warmup_bursts: u32,
    /// Think time between a burst's completion and the next request wave.
    pub gap: SimTime,
    /// Endpoint TCP configuration (DCTCP with the paper's parameters by
    /// default).
    pub tcp: TcpConfig,
    /// Bottleneck (receiver-ToR) queue configuration.
    pub tor_queue: QueueConfig,
    /// Optional shared buffer on the receiving ToR.
    pub receiver_tor_buffer: Option<(u64, BufferPolicy)>,
    /// Queue-depth recording interval.
    pub queue_sample: SimTime,
    /// If set, per-flow in-flight bytes are polled at this interval
    /// (drives Fig. 7).
    pub flight_sample: Option<SimTime>,
    /// Optional receiver-side group scheduling (§5.2 mitigation).
    pub grouping: Option<Grouping>,
    /// Burst scheduling policy.
    pub schedule: BurstSchedule,
    /// Root seed.
    pub seed: u64,
    /// Hard wall-clock limit on simulated time (guards Mode-3 runs).
    pub horizon: SimTime,
    /// Deterministic infrastructure faults injected during the run.
    pub faults: FaultSpec,
    /// In-fabric incast control plane (explicit notifications).
    pub mitigation: MitigationSpec,
}

impl Default for ModesConfig {
    /// The paper's Section 4 defaults (15 ms bursts, 11 bursts, 2 ms gap).
    fn default() -> Self {
        ModesConfig {
            num_flows: 100,
            topology: TopologySpec::Dumbbell,
            burst_duration_ms: 15.0,
            num_bursts: 11,
            warmup_bursts: 2,
            gap: SimTime::from_ms(2),
            tcp: TcpConfig::default(),
            tor_queue: QueueConfig::paper_tor(),
            receiver_tor_buffer: None,
            queue_sample: SimTime::from_us(20),
            flight_sample: None,
            grouping: None,
            schedule: BurstSchedule::AfterCompletion {
                gap: SimTime::from_ms(2),
            },
            seed: 1,
            horizon: SimTime::from_secs(30),
            faults: FaultSpec::default(),
            mitigation: MitigationSpec::default(),
        }
    }
}

/// The paper's three DCTCP operating modes (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperatingMode {
    /// Healthy: the queue oscillates around the marking threshold and
    /// regularly drains below it.
    Mode1Healthy,
    /// Degenerate point: every flow is at the window floor, the queue is
    /// pinned above the threshold, but capacity still absorbs it.
    Mode2Degenerate,
    /// Overflow: drops and RTO-driven recovery dominate.
    Mode3Timeouts,
}

impl OperatingMode {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            OperatingMode::Mode1Healthy => "Mode 1 (healthy)",
            OperatingMode::Mode2Degenerate => "Mode 2 (degenerate)",
            OperatingMode::Mode3Timeouts => "Mode 3 (timeouts)",
        }
    }
}

/// Everything a run produces.
#[derive(Debug)]
pub struct IncastRunResult {
    /// Completion time of every burst, in order.
    pub bcts_ms: Vec<f64>,
    /// Mean BCT over the final bursts (first discarded, per the paper).
    pub mean_bct_ms: f64,
    /// Bottleneck queue depth (packets) per `queue_sample` bucket.
    pub queue_pkts: TimeSeries,
    /// `(start_ms, end_ms)` of each burst.
    pub burst_windows: Vec<(f64, f64)>,
    /// Tail drops + shared-buffer drops at the bottleneck queue.
    pub drops: u64,
    /// CE marks applied at the bottleneck queue.
    pub marked_pkts: u64,
    /// Packets enqueued at the bottleneck.
    pub enqueued_pkts: u64,
    /// Total retransmitted payload bytes across senders.
    pub retx_bytes: u64,
    /// Total RTO events across senders.
    pub timeouts: u64,
    /// Total fast retransmits across senders.
    pub fast_retransmits: u64,
    /// Drops after the warm-up bursts completed (the paper discards the
    /// first burst, whose slow-start losses are not representative; see
    /// [`ModesConfig::warmup_bursts`]).
    pub steady_drops: u64,
    /// RTO events after the warm-up bursts completed.
    pub steady_timeouts: u64,
    /// Retransmitted bytes after the warm-up bursts completed.
    pub steady_retx_bytes: u64,
    /// Number of bursts treated as warm-up.
    pub warmup_bursts: u32,
    /// Peak bottleneck occupancy in packets.
    pub queue_watermark_pkts: u32,
    /// Polled per-flow in-flight bytes (one series per flow), if enabled.
    pub flights: Vec<TimeSeries>,
    /// Time when the run finished (last burst completion).
    pub finished_at: SimTime,
    /// The ECN threshold in effect (packets), for classification.
    pub ecn_threshold_pkts: u32,
    /// Why the run was truncated by a [`RunBudget`] guard, if it was.
    /// Truncated results carry whatever partial data was collected and are
    /// excluded from sweep aggregates.
    pub truncated: Option<TruncationCause>,
    /// Event-loop wall-clock profile (events/sec, per-kind tallies).
    pub profile: LoopProfile,
}

impl IncastRunResult {
    /// Queue-depth samples restricted to the steady-state burst windows
    /// (all bursts after the warm-up).
    pub fn steady_burst_samples(&self) -> Vec<f64> {
        let mut out = Vec::new();
        let interval_ms = self.queue_pkts.interval() as f64 / 1e9;
        for &(s, e) in self.burst_windows.iter().skip(self.warmup_bursts as usize) {
            let first = (s / interval_ms) as usize;
            let last = (e / interval_ms) as usize;
            for i in first..=last.min(self.queue_pkts.len().saturating_sub(1)) {
                out.push(self.queue_pkts.get(i));
            }
        }
        out
    }

    /// Classifies the run into the paper's three modes, using steady-state
    /// (post-first-burst) behavior as the paper does.
    pub fn mode(&self) -> OperatingMode {
        if self.steady_timeouts > 0 && self.steady_drops > 0 {
            return OperatingMode::Mode3Timeouts;
        }
        let samples = self.steady_burst_samples();
        if samples.is_empty() {
            return OperatingMode::Mode1Healthy;
        }
        let below = samples
            .iter()
            .filter(|&&q| q < self.ecn_threshold_pkts as f64)
            .count() as f64
            / samples.len() as f64;
        if below < 0.10 {
            OperatingMode::Mode2Degenerate
        } else {
            OperatingMode::Mode1Healthy
        }
    }

    /// Mean queue depth over steady-state burst windows.
    pub fn mean_steady_queue_pkts(&self) -> f64 {
        let s = self.steady_burst_samples();
        if s.is_empty() {
            0.0
        } else {
            s.iter().sum::<f64>() / s.len() as f64
        }
    }

    /// Peak queue depth over steady-state burst windows.
    pub fn peak_steady_queue_pkts(&self) -> f64 {
        self.steady_burst_samples().into_iter().fold(0.0, f64::max)
    }

    /// The queue trace as `(ms, packets)` points for plotting.
    pub fn queue_points(&self) -> Vec<(f64, f64)> {
        self.queue_pkts
            .iter()
            .map(|(t_ps, v)| (t_ps as f64 / 1e9, v))
            .collect()
    }
}

/// Runs one cyclic-incast experiment.
pub fn run_incast(cfg: &ModesConfig) -> IncastRunResult {
    run_incast_instrumented(cfg, None).0
}

/// Runs one cyclic-incast experiment with an optional telemetry sink, on
/// the default timing-wheel scheduler.
///
/// When a sink is attached, the run streams structured events to it —
/// per-packet trace and queue-depth samples on the bottleneck link,
/// shared-buffer watermarks, per-flow window transitions from every
/// sender, and burst boundary markers — each gated by the sink's
/// [`telemetry::EventSink::accepts`] subscriptions. The returned
/// [`RunManifest`] describes the run (seed, topology, transport config,
/// code version, event counts, wall clock) for replay and diffing.
pub fn run_incast_instrumented(
    cfg: &ModesConfig,
    sink: Option<&SinkRef>,
) -> (IncastRunResult, RunManifest) {
    run_incast_with::<TimingWheel>(cfg, sink)
}

/// [`run_incast_instrumented`] with an explicit event [`Scheduler`].
///
/// The scheduler choice must not change anything but wall-clock time; the
/// differential tests (`tests/scheduler_equivalence.rs`) drive this with
/// [`TimingWheel`] and [`simnet::EventQueue`] from the same seed and
/// require byte-identical telemetry.
pub fn run_incast_with<S: Scheduler>(
    cfg: &ModesConfig,
    sink: Option<&SinkRef>,
) -> (IncastRunResult, RunManifest) {
    run_incast_budgeted_with::<S>(cfg, sink, None)
}

/// [`run_incast_with`] under an optional [`RunBudget`].
///
/// When a budget trips, the run stops at the next polling step instead of
/// completing: whatever bursts finished so far are collected, the result
/// and manifest are marked `truncated` with the cause, and the supervised
/// sweep runner excludes the run from aggregates. The sim-time and
/// event-count guards are deterministic; the wall-clock watchdog is not
/// and exists only to bound runaway runs.
pub fn run_incast_budgeted_with<S: Scheduler>(
    cfg: &ModesConfig,
    sink: Option<&SinkRef>,
    budget: Option<&RunBudget>,
) -> (IncastRunResult, RunManifest) {
    assert!(cfg.num_flows > 0);
    assert!(cfg.burst_duration_ms > 0.0);

    // Each run owns this worker thread's flight-recorder ring: stale
    // history (or a pending dump) from a previous run on the same thread
    // must not leak into a dump captured here.
    simnet::recorder::reset();
    let t_setup = std::time::Instant::now();

    // Every run builds through the Clos builder: the dumbbell is its
    // degenerate 1-rack / 1-spine form, which `build_clos_with` constructs
    // with the exact historical builder-call sequence — node ids, link
    // ids, and the whole event stream are byte-identical to the old
    // `build_fabric` path (`tests/fabric_equivalence.rs` pins this).
    let (racks, spines) = match cfg.topology {
        TopologySpec::Dumbbell => (1, 1),
        TopologySpec::Clos { racks, spines } => (racks, spines),
    };
    let is_clos = matches!(cfg.topology, TopologySpec::Clos { .. });
    let clos_cfg = ClosConfig {
        racks,
        hosts_per_rack: cfg.num_flows.div_ceil(racks.max(1)),
        spines,
        num_receivers: 1,
        tor_queue: cfg.tor_queue.clone(),
        receiver_tor_buffer: cfg.receiver_tor_buffer,
        seed: cfg.seed,
        ..ClosConfig::default()
    };
    let mut fabric = match build_clos_with::<S>(&clos_cfg) {
        Ok(f) => f,
        Err(e) => panic!("invalid topology spec {:?}: {e}", cfg.topology),
    };
    // Flow i sends from `host_for_flow(i)`: round-robin across racks, so
    // an M-rack run converges senders from M racks onto the one receiver.
    // With one rack this is exactly the dumbbell's sender order.
    let senders: Vec<_> = (0..cfg.num_flows)
        .map(|i| fabric.host_for_flow(i))
        .collect();
    let bottleneck = fabric.downlinks[0];
    fabric
        .sim
        .link_mut(bottleneck)
        .queue
        .enable_monitor(cfg.queue_sample);
    if let Some(s) = sink {
        fabric.sim.set_sink(s.clone());
        fabric.sim.enable_depth_probe(bottleneck);
        if is_clos {
            // Per-tier depth telemetry: every rack uplink and spine
            // downlink streams queue_depth samples alongside the
            // bottleneck's.
            for ups in &fabric.rack_uplinks {
                for &l in ups {
                    fabric.sim.enable_depth_probe(l);
                }
            }
            for &l in &fabric.spine_downlinks {
                fabric.sim.enable_depth_probe(l);
            }
        }
    }

    // Compile the fault spec into a concrete plan against this fabric:
    // blackholes hit the trunk (the first rack uplink), spine faults hit
    // rack-to-spine uplinks, loss/corruption/ECN outages hit the
    // bottleneck downlink, squeezes hit the shared receiver-ToR buffer,
    // stragglers pause individual sender hosts.
    let mut plan = FaultPlan::new();
    if let Some((from, until)) = cfg.faults.blackhole {
        plan = plan.blackhole(fabric.rack_uplinks[0][0], from, until);
    }
    if let Some((from, until, k)) = cfg.faults.spine_blackhole {
        for ups in &fabric.rack_uplinks {
            plan = plan.blackhole(ups[k as usize % ups.len()], from, until);
        }
    }
    if let Some((from, until, k, p)) = cfg.faults.spine_loss {
        let ups = &fabric.rack_uplinks[0];
        plan = plan.lossy_window(ups[k as usize % ups.len()], from, until, p);
    }
    if let Some((from, until, p)) = cfg.faults.loss {
        plan = plan.lossy_window(bottleneck, from, until, p);
    }
    if let Some((from, until, p)) = cfg.faults.corrupt {
        plan = plan.corrupt_window(bottleneck, from, until, p);
    }
    if let Some((from, until)) = cfg.faults.ecn_off {
        plan = plan.ecn_outage(
            bottleneck,
            from,
            until,
            cfg.tor_queue.ecn_threshold_pkts,
            cfg.tor_queue.ecn_threshold_bytes,
        );
    }
    if let Some((from, until, shrunk)) = cfg.faults.buffer_shrink {
        if let Some((total, _)) = cfg.receiver_tor_buffer {
            plan = plan.buffer_squeeze(simnet::BufferId(0), from, until, shrunk, total);
        }
    }
    if let Some((from, until, idx)) = cfg.faults.straggler {
        let node = senders[idx as usize % senders.len()];
        plan = plan.straggler(node, from, until);
    }
    let has_faults = !plan.is_empty();
    if has_faults {
        fabric.sim.set_fault_plan(plan);
    }

    // In-fabric incast control plane. Pulser watches only the receiver-ToR
    // downlinks (where the incast converges); Distributed adds every rack
    // uplink and spine downlink and asks for a cwnd cut instead of a pause.
    // A fully blackholed plane (notif_loss >= 1) is still installed: the
    // dead plane is byte-identical to no plane (graceful degradation), and
    // installing it keeps that claim under test in every such run.
    let mit = cfg.mitigation;
    let ctrl_ports: Vec<simnet::LinkId> = match mit.kind {
        MitigationKind::Off => Vec::new(),
        MitigationKind::Pulser => fabric.downlinks.clone(),
        MitigationKind::Distributed => fabric
            .downlinks
            .iter()
            .chain(fabric.rack_uplinks.iter().flatten())
            .chain(fabric.spine_downlinks.iter())
            .copied()
            .collect(),
    };
    if !mit.is_off() {
        fabric.sim.set_control_plane(ControlConfig {
            ports: ctrl_ports.clone(),
            action: match mit.kind {
                MitigationKind::Distributed => CtrlAction::CwndCut,
                _ => CtrlAction::Pause,
            },
            flow_threshold: mit.flow_threshold,
            window: SimTime::from_us(mit.window_us),
            // Arrival-rate leg of the trigger: half the 10 Gbps port rate
            // offered over the window.
            window_bytes: (10_000_000_000 / 8 / 1_000_000) * mit.window_us / 2,
            pause: SimTime::from_us(mit.pause_us),
            cooldown: SimTime::from_us(2 * mit.pause_us),
            retry_timeout: SimTime::from_us(mit.retry_timeout_us),
            max_retries: mit.max_retries,
            notif_loss: mit.notif_loss,
            // Dedicated control RNG, decorrelated from workload draws.
            seed: cfg.seed ^ 0x6374_726c,
        });
    }

    // Workers.
    let root = Rng::new(cfg.seed);
    let mut worker_handles = Vec::with_capacity(cfg.num_flows);
    for (i, &s) in senders.iter().enumerate() {
        let worker = Worker::new(root.fork(1000 + i as u64));
        let mut host = TcpHost::new(cfg.tcp.clone(), Box::new(worker));
        if let Some(sk) = sink {
            host.set_sink(sk.clone());
        }
        let host = Shared::new(host);
        worker_handles.push(host.handle());
        fabric.sim.set_endpoint(s, Box::new(host));
    }

    // Coordinator.
    let mut icfg = IncastConfig::paper(
        senders.clone(),
        cfg.burst_duration_ms,
        cfg.num_bursts,
        cfg.seed,
    );
    icfg.schedule = cfg.schedule;
    icfg.grouping = cfg.grouping;
    let mut coord = CyclicCoordinator::new(icfg);
    if let Some(sk) = sink {
        coord.set_sink(sk.clone());
    }
    let coordinator = Shared::new(coord);
    let coord_handle = coordinator.handle();
    fabric.sim.set_endpoint(
        fabric.receivers[0],
        Box::new(TcpHost::new(cfg.tcp.clone(), Box::new(coordinator))),
    );

    // Drive the simulation in small steps so we can poll flow state and
    // snapshot counters at the first burst boundary.
    let mut flights: Vec<TimeSeries> = Vec::new();
    if let Some(interval) = cfg.flight_sample {
        flights = (0..cfg.num_flows)
            .map(|_| TimeSeries::new(interval.as_ps()))
            .collect();
    }
    let step = cfg.flight_sample.unwrap_or(SimTime::from_ms(1));
    // Counters at the moment the warm-up bursts completed: (drops,
    // timeouts, retx_bytes).
    let mut warmup_counters: Option<(u64, u64, u64)> = None;
    let warmup = cfg.warmup_bursts as usize;
    let mut truncated: Option<TruncationCause> = None;
    let deadline = budget
        .and_then(|b| b.wall_clock)
        .map(|d| std::time::Instant::now() + d);

    let setup_us = t_setup.elapsed().as_micros() as u64;
    let t_sim = std::time::Instant::now();

    while !coord_handle.borrow().finished() && fabric.sim.now() < cfg.horizon {
        if let Some(b) = budget {
            // Deterministic guards first, so a run that trips both a sim
            // budget and the watchdog reports the reproducible cause.
            if let Some(limit) = b.sim_time {
                if fabric.sim.now() >= limit {
                    truncated = Some(TruncationCause::SimTime);
                    break;
                }
            }
            if let Some(max) = b.max_events {
                if fabric.sim.counters().events_processed >= max {
                    truncated = Some(TruncationCause::Events);
                    break;
                }
            }
            if let Some(dl) = deadline {
                if std::time::Instant::now() >= dl {
                    truncated = Some(TruncationCause::WallClock);
                    break;
                }
            }
        }
        let next = (fabric.sim.now() + step).min(cfg.horizon);
        fabric.sim.run_until(next);
        if cfg.flight_sample.is_some() {
            let t = fabric.sim.now().as_ps();
            for (i, h) in worker_handles.iter().enumerate() {
                let inflight = {
                    let host = h.borrow();
                    let v = host.core().senders().next().map(|(_, tx)| tx.in_flight());
                    v
                };
                if let Some(v) = inflight {
                    flights[i].record_max(t, v as f64);
                }
            }
        }
        if warmup_counters.is_none() && coord_handle.borrow().outcomes.len() >= warmup {
            let drops = fabric.sim.link(bottleneck).queue.stats().dropped_pkts;
            let mut to = 0;
            let mut rx = 0;
            for h in &worker_handles {
                let host = h.borrow();
                for (_, tx) in host.core().senders() {
                    to += tx.stats().timeouts;
                    rx += tx.stats().bytes_retx;
                }
            }
            warmup_counters = Some((drops, to, rx));
        }
    }

    let sim_us = t_sim.elapsed().as_micros() as u64;
    let t_aggregate = std::time::Instant::now();
    if let Some(cause) = truncated {
        if simnet::recorder::enabled() {
            simnet::recorder::capture(&format!("run budget exceeded: {}", cause.label()));
        }
    }

    // Collect results.
    let coord = coord_handle.borrow();
    let bcts_ms = coord.bcts_ms();
    let burst_windows: Vec<(f64, f64)> = coord
        .outcomes
        .iter()
        .map(|o| (o.start.as_ms_f64(), o.end.as_ms_f64()))
        .collect();
    let warm = (cfg.warmup_bursts as usize).min(bcts_ms.len().saturating_sub(1));
    let mean_bct_ms = if bcts_ms.len() > warm {
        bcts_ms[warm..].iter().sum::<f64>() / (bcts_ms.len() - warm) as f64
    } else {
        bcts_ms.first().copied().unwrap_or(0.0)
    };

    let link = fabric.sim.link(bottleneck);
    let qstats = link.queue.stats();
    let queue_pkts = link.queue.monitor().expect("monitor enabled above").clone();

    let mut retx_bytes = 0;
    let mut timeouts = 0;
    let mut fast_retransmits = 0;
    for h in &worker_handles {
        let host = h.borrow();
        for (_, tx) in host.core().senders() {
            retx_bytes += tx.stats().bytes_retx;
            timeouts += tx.stats().timeouts;
            fast_retransmits += tx.stats().fast_retransmits;
        }
    }

    let (d0, t0, r0) = warmup_counters.unwrap_or((0, 0, 0));
    let profile = fabric.sim.profile();

    let topology_label = match cfg.topology {
        TopologySpec::Dumbbell => format!("dumbbell:senders={},receivers=1", cfg.num_flows),
        TopologySpec::Clos { racks, spines } => format!(
            "clos:racks={racks},hosts_per_rack={},spines={spines},senders={},receivers=1",
            clos_cfg.hosts_per_rack, cfg.num_flows
        ),
    };
    let mut manifest = RunManifest::new("incast", cfg.seed, &topology_label).with_git_describe();
    manifest.config_json = cfg.tcp.to_json();
    manifest.event_count = sink.map(|s| s.event_count()).unwrap_or(0);
    manifest.events_processed = fabric.sim.counters().events_processed;
    manifest.sim_time_ps = fabric.sim.now().as_ps();
    manifest.counters_json = fabric.sim.counters().to_json();
    manifest.scheduler = fabric.sim.scheduler_name().to_string();
    if is_clos {
        // Per-tier queue statistics, aggregated over the rack-uplink tier,
        // the spine-downlink tier, and the receiver downlinks. All derived
        // from seeded queue counters, so the field is deterministic and
        // survives `RunManifest::deterministic()`.
        let tier = |links: &[simnet::LinkId]| {
            let (mut wm, mut drops, mut marks) = (0u32, 0u64, 0u64);
            for &l in links {
                let s = fabric.sim.link(l).queue.stats();
                wm = wm.max(s.watermark_pkts);
                drops += s.dropped_pkts;
                marks += s.marked_pkts;
            }
            let mut out = String::new();
            let mut o = telemetry::json::Obj::new(&mut out);
            o.u64("links", links.len() as u64)
                .u64("watermark_pkts", wm as u64)
                .u64("dropped_pkts", drops)
                .u64("marked_pkts", marks);
            o.finish();
            out
        };
        let uplinks: Vec<_> = fabric.rack_uplinks.iter().flatten().copied().collect();
        let mut out = String::new();
        let mut o = telemetry::json::Obj::new(&mut out);
        o.raw("uplink", &tier(&uplinks))
            .raw("spine", &tier(&fabric.spine_downlinks))
            .raw("downlink", &tier(&fabric.downlinks));
        o.finish();
        manifest.tiers_json = Some(out);
    }
    if has_faults {
        manifest.faults_injected = Some(fabric.sim.counters().faults_applied);
    }
    if !mit.is_off() {
        // Control-plane lifecycle summary: configuration alongside the
        // notification tallies, all deterministic for a fixed seed.
        let c = fabric.sim.counters();
        let mut out = String::new();
        let mut o = telemetry::json::Obj::new(&mut out);
        o.str("mitigation", mit.label())
            .u64("ports", ctrl_ports.len() as u64)
            .f64("notif_loss", mit.notif_loss)
            .u64("notif_sent", c.notif_sent)
            .u64("notif_acked", c.notif_acked)
            .u64("notif_retries", c.notif_retries)
            .u64("notif_lost", c.notif_lost);
        o.finish();
        manifest.control_json = Some(out);
    }
    manifest.truncated = truncated.map(|c| c.label().to_string());
    manifest.wall_clock_us = Some(profile.wall.as_micros() as u64);
    let wall_s = profile.wall.as_secs_f64();
    if wall_s > 0.0 {
        manifest.events_per_sec = Some((profile.events() as f64 / wall_s) as u64);
    }
    #[cfg(feature = "check")]
    {
        // End-of-run conservation audit; the running total includes any
        // violations the per-event hooks recorded along the way. The caller
        // (e.g. the simcheck fuzzer) owns resetting/draining the log.
        fabric.sim.audit_conservation();
        let violations = simnet::check::violation_count();
        if violations > 0 && simnet::recorder::enabled() {
            simnet::recorder::capture(&format!(
                "simcheck: {violations} invariant violation(s) on record"
            ));
        }
        manifest.invariant_violations = Some(violations);
    }
    manifest.timing_json = Some({
        let mut out = String::new();
        let mut o = telemetry::json::Obj::new(&mut out);
        o.u64("setup_us", setup_us)
            .u64("sim_us", sim_us)
            .u64("aggregate_us", t_aggregate.elapsed().as_micros() as u64);
        o.finish();
        out
    });

    let result = IncastRunResult {
        bcts_ms,
        mean_bct_ms,
        queue_pkts,
        burst_windows,
        drops: qstats.dropped_pkts,
        marked_pkts: qstats.marked_pkts,
        enqueued_pkts: qstats.enqueued_pkts,
        retx_bytes,
        timeouts,
        fast_retransmits,
        steady_drops: qstats.dropped_pkts.saturating_sub(d0),
        steady_timeouts: timeouts.saturating_sub(t0),
        steady_retx_bytes: retx_bytes.saturating_sub(r0),
        queue_watermark_pkts: qstats.watermark_pkts,
        flights,
        finished_at: fabric.sim.now(),
        ecn_threshold_pkts: cfg.tor_queue.ecn_threshold_pkts.unwrap_or(0),
        warmup_bursts: cfg.warmup_bursts,
        truncated,
        profile,
    };
    (result, manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(num_flows: usize, burst_ms: f64, bursts: u32) -> ModesConfig {
        ModesConfig {
            num_flows,
            burst_duration_ms: burst_ms,
            num_bursts: bursts,
            ..ModesConfig::default()
        }
    }

    #[test]
    fn small_healthy_incast_is_mode1() {
        let r = run_incast(&quick(20, 2.0, 3));
        assert_eq!(r.bcts_ms.len(), 3);
        assert_eq!(r.mode(), OperatingMode::Mode1Healthy);
        assert_eq!(r.drops, 0);
        assert_eq!(r.timeouts, 0);
        // Near-optimal BCT: 2 ms of data, finished within 4x.
        assert!(r.mean_bct_ms < 8.0, "bct {}", r.mean_bct_ms);
        // Data actually moved through the bottleneck.
        assert!(r.enqueued_pkts > 1000);
    }

    #[test]
    fn degenerate_incast_pins_queue() {
        // The paper's Fig. 5b setup: 500 flows, 15 ms bursts. At the window
        // floor the in-flight floor is 500 pkts >> K=65: the queue pins.
        let r = run_incast(&quick(500, 15.0, 3));
        assert_eq!(r.mode(), OperatingMode::Mode2Degenerate);
        assert_eq!(
            r.steady_timeouts, 0,
            "deep queue absorbs the degenerate point in steady state"
        );
        // Queue pinned near flows - BDP (the paper's §4.1.2 relation says
        // ~475 pkts; the start-of-burst spike and completion drain pull the
        // mean around it).
        let mean_q = r.mean_steady_queue_pkts();
        assert!(
            (330.0..640.0).contains(&mean_q),
            "steady queue {mean_q} pkts"
        );
    }

    #[test]
    fn massive_incast_times_out() {
        // 1600 flows exceed queue capacity + BDP even at the window floor,
        // so every burst (warm-up or not) drops and times out.
        let r = run_incast(&quick(1600, 2.0, 3));
        assert_eq!(r.mode(), OperatingMode::Mode3Timeouts);
        assert!(r.drops > 0);
        assert!(r.timeouts > 0);
        // Timeouts push the BCT to RTO scale (>= 200 ms).
        assert!(r.mean_bct_ms >= 100.0, "bct {}", r.mean_bct_ms);
    }

    #[test]
    fn flight_polling_produces_per_flow_series() {
        let mut cfg = quick(10, 1.0, 2);
        cfg.flight_sample = Some(SimTime::from_us(100));
        let r = run_incast(&cfg);
        assert_eq!(r.flights.len(), 10);
        assert!(r.flights.iter().any(|f| f.max() > 0.0));
    }

    #[test]
    fn burst_windows_align_with_bcts() {
        let r = run_incast(&quick(20, 1.0, 3));
        assert_eq!(r.burst_windows.len(), 3);
        for ((s, e), bct) in r.burst_windows.iter().zip(&r.bcts_ms) {
            assert!((e - s - bct).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_incast(&quick(30, 1.0, 2));
        let b = run_incast(&quick(30, 1.0, 2));
        assert_eq!(a.bcts_ms, b.bcts_ms);
        assert_eq!(a.drops, b.drops);
        assert_eq!(a.marked_pkts, b.marked_pkts);
    }

    #[test]
    fn profile_reflects_event_loop_work() {
        let r = run_incast(&quick(10, 0.5, 2));
        assert!(r.profile.events() > 1000, "{}", r.profile.events());
        assert!(r.profile.tallies.delivery > 0);
        assert!(r.profile.tallies.timer > 0);
        assert!(r.profile.summary().contains("events"));
    }

    #[test]
    fn instrumented_run_streams_events_and_manifest() {
        let (jsonl, sref) = telemetry::JsonlSink::new().shared();
        let cfg = quick(10, 0.5, 2);
        let (r, manifest) = run_incast_instrumented(&cfg, Some(&sref));
        assert!(r.enqueued_pkts > 0);

        let out = jsonl.borrow().render().to_string();
        assert!(out.contains(r#""ev":"queue_depth""#), "queue probe silent");
        assert!(out.contains(r#""ev":"flow_window""#), "flow probes silent");
        assert!(out.contains(r#""ev":"burst_start""#));
        assert!(out.contains(r#""ev":"burst_end""#));
        assert!(out.contains(r#""ev":"pkt_enq""#));

        assert_eq!(manifest.event_count, jsonl.borrow().events_written());
        assert!(manifest.event_count > 0);
        assert_eq!(manifest.seed, cfg.seed);
        assert_eq!(manifest.topology, "dumbbell:senders=10,receivers=1");
        assert!(manifest.config_json.contains(r#""cca":"dctcp""#));
        assert!(manifest.events_processed > 0);
        assert!(manifest.counters_json.contains("delivered_pkts"));
        assert!(manifest.wall_clock_us.is_some());
        // Phase timing rides along (nondeterministic, so the determinism
        // view drops it).
        let timing = manifest.timing_json.as_deref().expect("timing breakdown");
        assert!(timing.starts_with(r#"{"setup_us":"#), "{timing}");
        assert!(timing.contains(r#""sim_us":"#), "{timing}");
        assert!(timing.contains(r#""aggregate_us":"#), "{timing}");
        assert!(manifest.deterministic().timing_json.is_none());
    }

    #[test]
    fn instrumented_run_matches_bare_run() {
        let cfg = quick(20, 1.0, 2);
        let bare = run_incast(&cfg);
        let sref = telemetry::SinkRef::new(telemetry::NullSink::new());
        let (instr, _) = run_incast_instrumented(&cfg, Some(&sref));
        // Telemetry observes; it must not perturb the simulation.
        assert_eq!(bare.bcts_ms, instr.bcts_ms);
        assert_eq!(bare.drops, instr.drops);
        assert_eq!(bare.marked_pkts, instr.marked_pkts);
        assert_eq!(bare.enqueued_pkts, instr.enqueued_pkts);
    }

    #[test]
    fn fault_free_run_reports_no_faults_or_truncation() {
        let (r, m) = run_incast_instrumented(&quick(10, 0.5, 2), None);
        assert!(r.truncated.is_none());
        assert_eq!(m.faults_injected, None);
        assert_eq!(m.truncated, None);
    }

    #[test]
    fn loss_window_injects_faults_and_stays_deterministic() {
        let mut cfg = quick(15, 1.0, 3);
        cfg.faults.loss = Some((SimTime::from_ms(1), SimTime::from_ms(4), 0.3));
        let (a, ma) = run_incast_instrumented(&cfg, None);
        let (b, mb) = run_incast_instrumented(&cfg, None);
        // Loss/restore = 2 applied fault events.
        assert_eq!(ma.faults_injected, Some(2));
        assert!(ma.counters_json.contains(r#""fault_drops":"#));
        assert!(
            a.retx_bytes > 0,
            "0.3 loss over 3 ms must force retransmits"
        );
        assert_eq!(a.bcts_ms, b.bcts_ms);
        assert_eq!(a.retx_bytes, b.retx_bytes);
        assert_eq!(ma.deterministic(), mb.deterministic());
    }

    #[test]
    fn straggler_window_slows_its_burst() {
        let healthy = run_incast(&quick(10, 1.0, 2));
        let mut cfg = quick(10, 1.0, 2);
        // Pause sender 3 while the first burst is still in flight; packets
        // destined to it (ACKs, the next request) defer until resume at
        // 40 ms, inflating that burst's completion time.
        cfg.faults.straggler = Some((SimTime::from_us(100), SimTime::from_ms(40), 3));
        let r = run_incast(&cfg);
        assert!(
            r.bcts_ms[0] > healthy.bcts_ms[0] + 10.0,
            "straggler burst {} vs healthy {}",
            r.bcts_ms[0],
            healthy.bcts_ms[0]
        );
    }

    #[test]
    fn event_budget_truncates_gracefully() {
        let budget = RunBudget {
            max_events: Some(2_000),
            ..RunBudget::default()
        };
        let cfg = quick(20, 2.0, 5);
        let (r, m) = run_incast_budgeted_with::<TimingWheel>(&cfg, None, Some(&budget));
        assert_eq!(r.truncated, Some(TruncationCause::Events));
        assert_eq!(m.truncated.as_deref(), Some("events"));
        // Partial data was still collected and the run ended early.
        assert!(r.bcts_ms.len() < 5);
        assert!(m.events_processed >= 2_000);
    }

    #[test]
    fn sim_time_budget_truncates_before_horizon() {
        let budget = RunBudget {
            sim_time: Some(SimTime::from_ms(3)),
            ..RunBudget::default()
        };
        let cfg = quick(20, 2.0, 5);
        let (r, _) = run_incast_budgeted_with::<TimingWheel>(&cfg, None, Some(&budget));
        assert_eq!(r.truncated, Some(TruncationCause::SimTime));
        assert!(r.finished_at >= SimTime::from_ms(3));
        assert!(r.finished_at < SimTime::from_ms(10));
    }

    #[test]
    fn cross_rack_clos_run_completes_with_tier_telemetry() {
        let mut cfg = quick(12, 0.5, 2);
        cfg.topology = TopologySpec::Clos {
            racks: 3,
            spines: 2,
        };
        let (r, m) = run_incast_instrumented(&cfg, None);
        assert_eq!(r.bcts_ms.len(), 2);
        assert!(r.enqueued_pkts > 0);
        assert_eq!(
            m.topology,
            "clos:racks=3,hosts_per_rack=4,spines=2,senders=12,receivers=1"
        );
        let tiers = m.tiers_json.as_deref().expect("clos runs report tiers");
        assert!(tiers.contains(r#""uplink":{"links":6"#), "{tiers}");
        assert!(tiers.contains(r#""spine":{"links":2"#), "{tiers}");
        assert!(tiers.contains(r#""downlink":{"links":1"#), "{tiers}");
        // The fan-in actually crossed the spine tier.
        assert!(tiers.contains(r#""watermark_pkts":"#));
        // Dumbbell runs stay tier-free (and keep their manifest label).
        let (_, md) = run_incast_instrumented(&quick(12, 0.5, 2), None);
        assert_eq!(md.topology, "dumbbell:senders=12,receivers=1");
        assert!(md.tiers_json.is_none());
    }

    #[test]
    fn clos_run_is_deterministic_given_seed() {
        let mut cfg = quick(10, 0.5, 2);
        cfg.topology = TopologySpec::Clos {
            racks: 2,
            spines: 3,
        };
        let (a, ma) = run_incast_instrumented(&cfg, None);
        let (b, mb) = run_incast_instrumented(&cfg, None);
        assert_eq!(a.bcts_ms, b.bcts_ms);
        assert_eq!(a.drops, b.drops);
        assert_eq!(ma.deterministic(), mb.deterministic());
    }

    #[test]
    fn spine_blackhole_injects_faults_and_recovers() {
        let mut cfg = quick(12, 0.5, 3);
        cfg.topology = TopologySpec::Clos {
            racks: 3,
            spines: 2,
        };
        // No warmup: the default two warmup bursts (excluded from every
        // measured observable) would put all measured traffic after the
        // fault window.
        cfg.warmup_bursts = 0;
        let (healthy_jsonl, healthy_sink) = telemetry::JsonlSink::new().shared();
        let (healthy, _) = run_incast_instrumented(&cfg, Some(&healthy_sink));
        cfg.faults.spine_blackhole = Some((SimTime::from_us(200), SimTime::from_ms(2), 1));
        let (jsonl, sink) = telemetry::JsonlSink::new().shared();
        let (r, m) = run_incast_instrumented(&cfg, Some(&sink));
        // One down + one restore event per rack uplink into spine 1.
        assert_eq!(m.faults_injected, Some(6));
        // Surviving spine keeps the run alive: every burst completes with
        // the same completion times — the spine tier is non-blocking at
        // this scale, so ECMP re-hash moves flows without delaying them.
        assert_eq!(r.bcts_ms.len(), 3);
        assert_eq!(r.bcts_ms, healthy.bcts_ms);
        // But the re-hash is visible in the fabric: the per-link depth
        // probes on the rack uplinks record a different traffic pattern
        // once spine 1 is unreachable.
        let healthy_out = healthy_jsonl.borrow().render().to_string();
        let out = jsonl.borrow().render().to_string();
        assert!(out.contains(r#""ev":"fault""#), "fault events not streamed");
        let depths = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| l.contains(r#""ev":"queue_depth""#))
                .map(str::to_string)
                .collect()
        };
        assert_ne!(
            depths(&healthy_out),
            depths(&out),
            "spine blackhole left no trace in uplink depth probes"
        );
    }

    #[test]
    fn spine_loss_on_dumbbell_hits_the_trunk() {
        // On the degenerate topology the "spine uplink" is the single
        // trunk, so spine-targeted loss behaves like trunk loss.
        let mut cfg = quick(10, 0.5, 2);
        cfg.faults.spine_loss = Some((SimTime::from_us(100), SimTime::from_ms(3), 0, 0.3));
        let (r, m) = run_incast_instrumented(&cfg, None);
        assert_eq!(m.faults_injected, Some(2));
        assert!(r.retx_bytes > 0, "0.3 trunk loss must force retransmits");
    }

    #[test]
    fn truncation_cause_codes_round_trip() {
        for c in [
            TruncationCause::SimTime,
            TruncationCause::Events,
            TruncationCause::WallClock,
        ] {
            assert_eq!(TruncationCause::from_code(c.code()), Some(c));
        }
        assert_eq!(TruncationCause::from_code(0), None);
        assert_eq!(TruncationCause::from_code(9), None);
    }
}
