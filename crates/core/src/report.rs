//! Report formatting: ASCII tables and plots for bench output.
//!
//! Every bench target prints the paper's reported values next to the
//! measured ones; these helpers keep that output consistent.

/// A simple fixed-width ASCII table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row, padded with empty cells up to the header width.
    ///
    /// A row with *more* cells than the table has columns would silently
    /// lose data in [`Table::render`]; that is a caller bug, caught here
    /// in debug builds (release keeps the old drop-the-excess behavior).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        debug_assert!(
            r.len() <= self.header.len(),
            "table row has {} cells but only {} columns: {r:?}",
            r.len(),
            self.header.len(),
        );
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (i, cell) in cells.iter().enumerate().take(cols) {
                s.push(' ');
                s.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    s.push(' ');
                }
                s.push_str(" |");
            }
            s
        };
        let sep = {
            let mut s = String::from("+");
            for w in &widths {
                for _ in 0..w + 2 {
                    s.push('-');
                }
                s.push('+');
            }
            s
        };
        let mut out = String::new();
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out
    }
}

/// Renders an ASCII line plot of `(x, y)` series.
///
/// Multiple series get distinct glyphs; axes are linear. Good enough to eyeball
/// the shape of a queue trace or a CDF in bench output.
pub fn ascii_plot(
    title: &str,
    series: &[(&str, &[(f64, f64)])],
    width: usize,
    height: usize,
) -> String {
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let mut xmin = f64::INFINITY;
    let mut xmax = f64::NEG_INFINITY;
    let mut ymin = f64::INFINITY;
    let mut ymax = f64::NEG_INFINITY;
    for (_, pts) in series {
        for &(x, y) in *pts {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
    }
    if !xmin.is_finite() || xmax <= xmin {
        return format!("{title}\n(no data)");
    }
    if ymax <= ymin {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in *pts {
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{ymax:>10.1} ")
        } else if i == height - 1 {
            format!("{ymin:>10.1} ")
        } else {
            " ".repeat(11)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(11));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{}{:<12.3}{:>w$.3}\n",
        " ".repeat(12),
        xmin,
        xmax,
        w = width.saturating_sub(12)
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", GLYPHS[i % GLYPHS.len()], name))
        .collect();
    out.push_str(&format!("            legend: {}\n", legend.join("   ")));
    out
}

/// Formats a fraction as a percent with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["service", "flows"]);
        t.row(["storage", "60"]);
        t.row(["aggregator", "160"]);
        let s = t.render();
        assert!(s.contains("| service    | flows |"));
        assert!(s.contains("| aggregator | 160   |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        let s = t.render();
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "only 2 columns"))]
    fn over_wide_rows_are_a_debug_panic() {
        let mut t = Table::new(["a", "b"]);
        // Three cells into two columns: data would vanish from the render.
        t.row(["1", "2", "3"]);
        // Release builds keep the legacy truncation; make that explicit.
        assert!(t.render().contains("| 1 | 2 |"));
    }

    #[test]
    fn plot_contains_series_glyphs_and_bounds() {
        let s1: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, (i * i) as f64)).collect();
        let s2: Vec<(f64, f64)> = (0..50)
            .map(|i| (i as f64, 2500.0 - (i * i) as f64))
            .collect();
        let out = ascii_plot("test", &[("up", &s1), ("down", &s2)], 40, 10);
        assert!(out.contains('*'));
        assert!(out.contains('o'));
        assert!(out.contains("legend: * up   o down"));
        assert!(out.contains("2500.0"));
    }

    #[test]
    fn plot_empty_series_is_graceful() {
        let out = ascii_plot("empty", &[("none", &[])], 40, 10);
        assert!(out.contains("(no data)"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
