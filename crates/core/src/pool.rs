//! The persistent worker pool behind [`crate::runner::par_map`].
//!
//! PR 2 made a single simulation ~1.5× faster, which promoted the sweep
//! layer itself to the bottleneck: the old `par_map` spawned (and joined) a
//! fresh set of OS threads on *every* call, and a fleet study makes hundreds
//! of calls. [`SweepPool`] spawns the workers once per process; between jobs
//! they park on a condvar, so an idle pool costs nothing and a sweep phase
//! pays thread-startup exactly once.
//!
//! Work distribution is index-range stealing rather than a shared counter:
//! a job's `0..n` item range is split into one contiguous *lane* per
//! participant, each with an atomic cursor, and participants claim fixed
//! chunks from their own lane first (cache-friendly, contention-free in the
//! common case) then steal from the fullest remaining lane. Results still
//! land at their item's index, so output order — and every downstream
//! aggregate — is independent of thread scheduling.
//!
//! The submitter of a [`par_map`-shaped job](JobHandle::participate) always
//! participates in its own job. That guarantees progress even if every pool
//! worker is busy with other jobs, which also makes nested submissions
//! deadlock-free: a job can always be completed by its submitter alone.
//!
//! # Safety model
//!
//! Jobs erase their item/closure types behind a raw context pointer and an
//! `unsafe fn` trampoline, because the pool is process-global and `'static`
//! while callers borrow stack-local data. This is sound for the same reason
//! `std::thread::scope` is: the submitting call blocks until the job's
//! `remaining` count hits zero, and workers only dereference the context
//! between claiming an index and decrementing `remaining` for it. After the
//! final decrement (observed under the `done` mutex), no worker touches the
//! context again, so it never outlives the submitting stack frame.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Process-wide work-distribution counters, accumulated over every job the
/// global pool has run. Readers take a [`PoolStats::snapshot`] before a
/// sweep and [`PoolStats::delta`] after, so one sweep's share can be
/// attributed in its manifest even though the pool is shared.
static JOBS: AtomicU64 = AtomicU64::new(0);
static ITEMS: AtomicU64 = AtomicU64::new(0);
static LOCAL_CLAIMS: AtomicU64 = AtomicU64::new(0);
static STEAL_CLAIMS: AtomicU64 = AtomicU64::new(0);
static PARTICIPANTS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the pool's cumulative work-distribution counters.
///
/// `local_claims` counts chunks a participant claimed from its own lane
/// (the cache-friendly, contention-free path); `steal_claims` counts
/// chunks taken from another participant's lane. `participants` counts
/// lane occupancies: every worker admission plus the submitter, per job —
/// together they describe how evenly a sweep's work spread across lanes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs submitted to the pool.
    pub jobs: u64,
    /// Items across all jobs.
    pub items: u64,
    /// Chunks claimed from the claimant's own lane.
    pub local_claims: u64,
    /// Chunks stolen from another lane.
    pub steal_claims: u64,
    /// Participants admitted across all jobs (workers + submitters).
    pub participants: u64,
}

impl PoolStats {
    /// Current cumulative counters.
    pub fn snapshot() -> PoolStats {
        PoolStats {
            jobs: JOBS.load(Ordering::Relaxed),
            items: ITEMS.load(Ordering::Relaxed),
            local_claims: LOCAL_CLAIMS.load(Ordering::Relaxed),
            steal_claims: STEAL_CLAIMS.load(Ordering::Relaxed),
            participants: PARTICIPANTS.load(Ordering::Relaxed),
        }
    }

    /// Counters accumulated since `earlier` (a prior snapshot).
    pub fn delta(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            jobs: self.jobs - earlier.jobs,
            items: self.items - earlier.items,
            local_claims: self.local_claims - earlier.local_claims,
            steal_claims: self.steal_claims - earlier.steal_claims,
            participants: self.participants - earlier.participants,
        }
    }

    /// Fraction of claims that were steals, in `[0, 1]`.
    pub fn steal_fraction(&self) -> f64 {
        let claims = self.local_claims + self.steal_claims;
        if claims == 0 {
            0.0
        } else {
            self.steal_claims as f64 / claims as f64
        }
    }

    /// Fixed-order JSON object for run manifests.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let mut o = telemetry::json::Obj::new(&mut out);
        o.u64("jobs", self.jobs)
            .u64("items", self.items)
            .u64("local_claims", self.local_claims)
            .u64("steal_claims", self.steal_claims)
            .f64("steal_fraction", self.steal_fraction())
            .u64("participants", self.participants);
        o.finish();
        out
    }
}

/// Type-erased per-item entry point: `(ctx, item_index)`.
///
/// # Safety
/// `ctx` must point to the submitter's live context struct for the matching
/// job, and each index must be passed at most once per job.
pub(crate) type Trampoline = unsafe fn(*const (), usize);

/// One contiguous index range with a claim cursor. The cursor can overshoot
/// `end` (lost `fetch_add` races); readers clamp.
struct Lane {
    cursor: AtomicUsize,
    end: usize,
}

impl Lane {
    fn remaining(&self) -> usize {
        self.end
            .saturating_sub(self.cursor.load(Ordering::Relaxed).min(self.end))
    }
}

/// One submitted job: the erased work function plus claiming, panic, and
/// completion state.
struct Job {
    run: Trampoline,
    ctx: *const (),
    lanes: Box<[Lane]>,
    chunk: usize,
    /// Worker admission tickets; hitting zero caps participation at the
    /// caller's `threads` argument even though the pool is larger.
    tickets: AtomicUsize,
    /// Items not yet finished (run or skipped). The last decrement fires the
    /// `done` latch.
    remaining: AtomicUsize,
    panicked: AtomicBool,
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// The context pointer is only dereferenced while the submitter provably
// blocks in `wait()` (see the module-level safety model), and the closure /
// item types it erases are constrained `Send + Sync` by `par_map`'s bounds.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// True while some index is still unclaimed (drained jobs are dropped
    /// from the pool queue).
    fn has_claimable(&self) -> bool {
        self.lanes.iter().any(|l| l.remaining() > 0)
    }

    /// Takes one admission ticket; the returned value doubles as the
    /// participant's ordinal for lane assignment.
    fn take_ticket(&self) -> Option<usize> {
        let mut t = self.tickets.load(Ordering::Relaxed);
        loop {
            if t == 0 {
                return None;
            }
            match self
                .tickets
                .compare_exchange_weak(t, t - 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    PARTICIPANTS.fetch_add(1, Ordering::Relaxed);
                    return Some(t);
                }
                Err(cur) => t = cur,
            }
        }
    }

    /// Claims the next chunk from lane `li`, if any remains.
    fn claim_from(&self, li: usize) -> Option<(usize, usize)> {
        let lane = &self.lanes[li];
        if lane.cursor.load(Ordering::Relaxed) >= lane.end {
            return None;
        }
        let a = lane.cursor.fetch_add(self.chunk, Ordering::Relaxed);
        (a < lane.end).then(|| (a, (a + self.chunk).min(lane.end)))
    }

    /// Claims a chunk from the preferred lane, else steals from the lane
    /// with the most remaining work, rescanning on races until all dry.
    fn claim(&self, preferred: usize) -> Option<(usize, usize)> {
        if let Some(c) = self.claim_from(preferred) {
            LOCAL_CLAIMS.fetch_add(1, Ordering::Relaxed);
            return Some(c);
        }
        loop {
            let victim = (0..self.lanes.len())
                .filter(|&i| i != preferred)
                .max_by_key(|&i| self.lanes[i].remaining())
                .filter(|&i| self.lanes[i].remaining() > 0)?;
            if let Some(c) = self.claim_from(victim) {
                STEAL_CLAIMS.fetch_add(1, Ordering::Relaxed);
                return Some(c);
            }
        }
    }

    /// Runs claimed items until the job drains. Each claimed index is
    /// decremented from `remaining` exactly once, whether it ran, panicked,
    /// or was skipped because an earlier item panicked.
    fn participate(&self, ordinal: usize) {
        let preferred = ordinal % self.lanes.len();
        while let Some((a, b)) = self.claim(preferred) {
            for i in a..b {
                if !self.panicked.load(Ordering::Relaxed) {
                    // The closure runs outside every lock, so our mutexes
                    // cannot be poisoned by a panicking item.
                    if let Err(p) =
                        catch_unwind(AssertUnwindSafe(|| unsafe { (self.run)(self.ctx, i) }))
                    {
                        let mut first = self.panic_payload.lock().expect("panic slot");
                        if first.is_none() {
                            *first = Some(p);
                        }
                        drop(first);
                        self.panicked.store(true, Ordering::Release);
                    }
                }
                if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    *self.done.lock().expect("done latch") = true;
                    self.done_cv.notify_all();
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        *self.done.lock().expect("done latch")
    }

    fn wait(&self) {
        let mut d = self.done.lock().expect("done latch");
        while !*d {
            d = self.done_cv.wait(d).expect("done latch");
        }
    }
}

/// A live submission. Dropping the handle without calling [`Self::finish`]
/// would be unsound (the job may still reference the submitter's stack), so
/// the runner's wrappers always drive it to completion.
pub(crate) struct JobHandle {
    job: Arc<Job>,
}

impl JobHandle {
    /// The submitter works on its own job until no chunk is claimable.
    pub(crate) fn participate(&self) {
        // Ordinal 0: tickets count down from `workers`, so lane 0 is the
        // one no worker prefers first.
        PARTICIPANTS.fetch_add(1, Ordering::Relaxed);
        self.job.participate(0);
    }

    /// True once every item has been run or skipped.
    pub(crate) fn is_done(&self) -> bool {
        self.job.is_done()
    }

    /// Blocks until the job completes, detaches it from the pool queue, and
    /// returns the first panic payload, if any item panicked.
    pub(crate) fn finish(self) -> Option<Box<dyn Any + Send>> {
        self.job.wait();
        SweepPool::global().retire(&self.job);
        self.job.panic_payload.lock().expect("panic slot").take()
    }
}

/// The process-wide persistent pool.
pub struct SweepPool {
    inner: Arc<PoolInner>,
    workers: usize,
}

struct PoolInner {
    queue: Mutex<VecDeque<Arc<Job>>>,
    cv: Condvar,
}

impl SweepPool {
    /// The global pool, spawned on first use with
    /// [`crate::runner::default_threads`] workers.
    pub fn global() -> &'static SweepPool {
        static POOL: OnceLock<SweepPool> = OnceLock::new();
        POOL.get_or_init(|| SweepPool::with_workers(crate::runner::default_threads()))
    }

    /// Number of worker threads (excluding submitters).
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn with_workers(workers: usize) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        });
        for i in 0..workers {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("sweep-worker-{i}"))
                .spawn(move || worker_loop(inner))
                .expect("spawn sweep worker");
        }
        Self { inner, workers }
    }

    /// Submits a job over `n` items. Up to `workers` pool threads join in;
    /// the caller decides whether to also participate before `finish()`.
    ///
    /// # Safety
    /// `ctx` must stay valid until `finish()` returns on the handle, and
    /// `run` must tolerate concurrent invocations on distinct indices.
    pub(crate) unsafe fn submit(
        &self,
        run: Trampoline,
        ctx: *const (),
        n: usize,
        workers: usize,
        participants: usize,
    ) -> JobHandle {
        debug_assert!(n > 0 && participants > 0);
        JOBS.fetch_add(1, Ordering::Relaxed);
        ITEMS.fetch_add(n as u64, Ordering::Relaxed);
        let lanes = participants.min(n);
        let per = n / lanes;
        let extra = n % lanes;
        let mut start = 0usize;
        let lanes: Box<[Lane]> = (0..lanes)
            .map(|i| {
                let len = per + usize::from(i < extra);
                let lane = Lane {
                    cursor: AtomicUsize::new(start),
                    end: start + len,
                };
                start += len;
                lane
            })
            .collect();
        // Chunks trade claim traffic against stealability: aim for ~8
        // claims per lane so a straggler's lane can still be stolen.
        let chunk = (n / (participants * 8)).max(1);
        let job = Arc::new(Job {
            run,
            ctx,
            lanes,
            chunk,
            tickets: AtomicUsize::new(workers),
            remaining: AtomicUsize::new(n),
            panicked: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        if workers > 0 {
            let mut q = self.inner.queue.lock().expect("pool queue");
            q.push_back(Arc::clone(&job));
            drop(q);
            self.inner.cv.notify_all();
        }
        JobHandle { job }
    }

    /// Removes a completed job from the queue if workers haven't already.
    fn retire(&self, job: &Arc<Job>) {
        let mut q = self.inner.queue.lock().expect("pool queue");
        q.retain(|j| !Arc::ptr_eq(j, job));
    }
}

/// Worker threads live for the whole process: pick a job with both an
/// admission ticket and claimable work, help until it drains, repeat.
fn worker_loop(inner: Arc<PoolInner>) {
    loop {
        let (job, ordinal) = {
            let mut q = inner.queue.lock().expect("pool queue");
            loop {
                // Jobs that are drained or fully ticketed are dead weight
                // for every worker; drop them (submitters hold their own
                // Arc until finish()).
                q.retain(|j| j.has_claimable() && j.tickets.load(Ordering::Relaxed) > 0);
                let picked = q
                    .iter()
                    .find_map(|j| j.take_ticket().map(|ord| (Arc::clone(j), ord)));
                match picked {
                    Some(p) => break p,
                    None => q = inner.cv.wait(q).expect("pool queue"),
                }
            }
        };
        job.participate(ordinal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_count_jobs_claims_and_participants() {
        // Counters are process-global and other tests run par_map
        // concurrently, so assert only this job's guaranteed contribution.
        let before = PoolStats::snapshot();
        let out = crate::runner::par_map(vec![1u64, 2, 3, 4, 5], 4, |x| x * 2);
        assert_eq!(out, vec![2, 4, 6, 8, 10]);
        let d = PoolStats::snapshot().delta(&before);
        assert!(d.jobs >= 1, "{d:?}");
        assert!(d.items >= 5, "{d:?}");
        assert!(d.local_claims + d.steal_claims >= 1, "{d:?}");
        assert!(d.participants >= 1, "{d:?}");
        assert!((0.0..=1.0).contains(&d.steal_fraction()), "{d:?}");
    }

    #[test]
    fn stats_render_fixed_order_json() {
        let s = PoolStats {
            jobs: 2,
            items: 10,
            local_claims: 3,
            steal_claims: 1,
            participants: 4,
        };
        assert_eq!(
            s.to_json(),
            r#"{"jobs":2,"items":10,"local_claims":3,"steal_claims":1,"steal_fraction":0.25,"participants":4}"#
        );
        assert_eq!(PoolStats::default().steal_fraction(), 0.0);
    }
}
