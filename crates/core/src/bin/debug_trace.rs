//! Developer tool: run one aggregator service trace and dump calibration
//! statistics (utilization, burst counts, marking, retransmissions, drop
//! locations). Pass `off` to disable rack contention.
//!
//! ```sh
//! cargo run --release -p incast-core --bin debug_trace [-- off]
//! ```

use incast_core::production::{run_service_trace, TraceConfig};
use simnet::SimTime;
use workload::ServiceId;

fn main() {
    let t0 = std::time::Instant::now();
    let mut cfg = TraceConfig::new(ServiceId::Aggregator, 1);
    cfg.duration = SimTime::from_secs(2);
    cfg.contention = std::env::args().nth(1).as_deref() != Some("off");
    let r = run_service_trace(&cfg);
    let bursts = &r.bursts;
    println!(
        "wall {:?} | util {:.3} | bursts {} | incast frac {:.2} | max flows {} | marked bursts {} | retx bursts {}",
        t0.elapsed(),
        r.trace.mean_utilization(),
        bursts.len(),
        bursts.iter().filter(|b| b.is_incast()).count() as f64 / bursts.len().max(1) as f64,
        bursts.iter().map(|b| b.peak_flows).max().unwrap_or(0),
        bursts.iter().filter(|b| b.marked_bytes > 0).count(),
        bursts.iter().filter(|b| b.retx_bytes > 0).count(),
    );
    println!(
        "downlink drops {} marks {} | trunk drops {} marks {} | contender drops {} | retx bytes {}",
        r.downlink_drops, r.downlink_marks, r.trunk_drops, r.trunk_marks, r.contender_drops,
        bursts.iter().map(|b| b.retx_bytes).sum::<u64>()
    );
    let mut durs: Vec<usize> = bursts.iter().map(|b| b.len_buckets).collect();
    durs.sort_unstable();
    println!("duration buckets: min {:?} p50 {:?} p90 {:?} max {:?}",
        durs.first(), durs.get(durs.len()/2), durs.get(durs.len()*9/10), durs.last());
}
