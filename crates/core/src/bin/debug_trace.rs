//! Developer tool and telemetry worked example: run a small dumbbell
//! incast with a JSONL sink attached and dump the event stream, the run
//! manifest, and the event-loop profile.
//!
//! ```sh
//! # Everything (packet trace, queue depth, flow windows, burst markers):
//! cargo run --release -p incast-core --bin debug_trace
//! # One flow's congestion-window trajectory only:
//! cargo run --release -p incast-core --bin debug_trace -- flow 3
//! # Human-readable tcpdump-style text instead of JSONL:
//! cargo run --release -p incast-core --bin debug_trace -- text
//! ```
//!
//! The JSONL stream is grep-friendly: `"ev":"flow_window"` lines carry
//! cwnd/ssthresh/inflight per transition, `"ev":"queue_depth"` the
//! bottleneck occupancy, `"ev":"burst_start"`/`"burst_end"` the workload
//! boundaries. Two runs with the same seed produce byte-identical streams.

use incast_core::modes::{run_incast_instrumented, ModesConfig};
use simnet::{SimTime, TextTracer};
use std::io::Write;
use telemetry::{EventClass, JsonlSink, SinkRef};

/// Writes the trace to stdout, ignoring a closed pipe (`head`, `grep -m`).
fn dump(text: &str) {
    let _ = std::io::stdout().lock().write_all(text.as_bytes());
}

fn small_cfg() -> ModesConfig {
    ModesConfig {
        num_flows: 8,
        burst_duration_ms: 0.5,
        num_bursts: 2,
        warmup_bursts: 1,
        queue_sample: SimTime::from_us(50),
        seed: 7,
        ..ModesConfig::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = small_cfg();

    if args.first().map(String::as_str) == Some("text") {
        // TextTracer is a formatter over the same event stream: attach it
        // as a sink and it renders tcpdump-style lines for packet events.
        let tracer = std::rc::Rc::new(std::cell::RefCell::new(TextTracer::new(1 << 20)));
        let sink = SinkRef::from_rc(tracer.clone());
        let (r, manifest) = run_incast_instrumented(&cfg, Some(&sink));
        dump(&tracer.borrow().render());
        eprintln!("# mean BCT {:.3} ms", r.mean_bct_ms);
        eprintln!("# {}", manifest.to_json());
        return;
    }

    // JSONL mode, optionally filtered to one flow's events.
    let sink = match args.first().map(String::as_str) {
        Some("flow") => {
            let flow: u32 = match args.get(1).and_then(|s| s.parse().ok()) {
                Some(f) => f,
                None => {
                    eprintln!("usage: debug_trace [text | flow <id>]");
                    std::process::exit(2);
                }
            };
            JsonlSink::new()
                .with_flow_filter(flow)
                .with_classes(&[EventClass::Flow, EventClass::App])
        }
        _ => JsonlSink::new(),
    };
    let (jsonl, sref) = sink.shared();
    let (r, manifest) = run_incast_instrumented(&cfg, Some(&sref));

    dump(jsonl.borrow().render());
    eprintln!("# events: {}", jsonl.borrow().events_written());
    eprintln!("# profile: {}", r.profile.summary());
    eprintln!("# manifest: {}", manifest.to_json());
}
