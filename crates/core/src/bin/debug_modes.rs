//! Developer tool: run one cyclic-incast configuration and dump its
//! headline numbers (per-burst BCTs, drops, timeouts, queue statistics).
//!
//! ```sh
//! cargo run --release -p incast-core --bin debug_modes -- <flows> <burst_ms> <bursts>
//! ```

use incast_core::modes::{run_incast, ModesConfig};

fn main() {
    let flows: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let burst_ms: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15.0);
    let bursts: u32 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let cfg = ModesConfig {
        num_flows: flows,
        burst_duration_ms: burst_ms,
        num_bursts: bursts,
        ..ModesConfig::default()
    };
    let r = run_incast(&cfg);
    println!(
        "bcts_ms: {:?}",
        r.bcts_ms
            .iter()
            .map(|b| (b * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "windows: {:?}",
        r.burst_windows
            .iter()
            .map(|(s, e)| ((s * 10.0).round() / 10.0, (e * 10.0).round() / 10.0))
            .collect::<Vec<_>>()
    );
    println!(
        "drops total {} steady {} | timeouts total {} steady {} | retx {} steady {}",
        r.drops, r.steady_drops, r.timeouts, r.steady_timeouts, r.retx_bytes, r.steady_retx_bytes
    );
    println!(
        "marked {} / enq {} | watermark {} | mean steady q {:.0} peak steady q {:.0} | mode {:?}",
        r.marked_pkts,
        r.enqueued_pkts,
        r.queue_watermark_pkts,
        r.mean_steady_queue_pkts(),
        r.peak_steady_queue_pkts(),
        r.mode()
    );
}
