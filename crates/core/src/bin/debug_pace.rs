//! Developer tool: compare window-mode DCTCP against Swift-like pacing at
//! 2000 flows (the `swift_pacing` bench scenario, with per-burst BCTs).
//!
//! ```sh
//! cargo run --release -p incast-core --bin debug_pace
//! ```

use incast_core::modes::{run_incast, ModesConfig};
use transport::config::PacingConfig;

fn main() {
    for paced in [false, true] {
        let mut cfg = ModesConfig {
            num_flows: 2000,
            burst_duration_ms: 50.0,
            num_bursts: 14,
            seed: 53,
            horizon: simnet::SimTime::from_secs(60),
            ..ModesConfig::default()
        };
        if paced {
            cfg.tcp.pacing = Some(PacingConfig::default());
            cfg.tcp.cca = transport::CcaKind::SwiftLike { target_us: 60 };
        }
        let r = run_incast(&cfg);
        println!(
            "paced={paced} bcts={:?} drops={} steady_drops={} timeouts={} steady_to={} meanq={:.0} peak={:.0}",
            r.bcts_ms.iter().map(|b| b.round()).collect::<Vec<_>>(),
            r.drops, r.steady_drops, r.timeouts, r.steady_timeouts,
            r.mean_steady_queue_pkts(), r.peak_steady_queue_pkts()
        );
    }
}
