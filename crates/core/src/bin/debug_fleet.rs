//! Developer tool: run the quick fleet study and print one calibration row
//! per service (frequency, utilization, flows, marking, retransmissions).
//!
//! ```sh
//! cargo run --release -p incast-core --bin debug_fleet
//! ```

use incast_core::default_threads;
use incast_core::production::{run_fleet, FleetConfig};

fn main() {
    let t0 = std::time::Instant::now();
    let cfg = FleetConfig::quick(default_threads());
    let fleet = run_fleet(&cfg);
    println!(
        "{:<11} {:>7} {:>6} {:>7} {:>5} {:>5} {:>5} {:>7} {:>7} {:>7} {:>8} {:>8}",
        "service",
        "bursts",
        "freq",
        "util%",
        "p50fl",
        "p99fl",
        "inc%",
        "mark%",
        "p95mark",
        "retx%",
        "p99retx",
        "p50qpeak"
    );
    for (svc, mut acc) in fleet {
        let n = acc.total_bursts();
        if n == 0 {
            // A short/quiet trace may record no bursts at all; every CDF is
            // empty then, so print a placeholder row instead of panicking.
            println!("{:<11} {:>7} (no bursts observed)", svc.name(), n);
            continue;
        }
        let marked_frac = 1.0 - acc.marked_fraction.fraction_at_or_below(0.0);
        let retx_frac = 1.0 - acc.retx_fraction.fraction_at_or_below(0.0);
        let pct = |c: &mut stats::Cdf, p: f64| c.try_percentile(p).unwrap_or(f64::NAN);
        println!(
            "{:<11} {:>7} {:>6.1} {:>7.1} {:>5.0} {:>5.0} {:>5.0} {:>7.0} {:>7.2} {:>7.1} {:>8.3} {:>8.2}",
            svc.name(),
            n,
            acc.burst_frequency.mean(),
            acc.utilization.mean() * 100.0,
            pct(&mut acc.burst_flows, 50.0),
            pct(&mut acc.burst_flows, 99.0),
            acc.incast_fraction() * 100.0,
            marked_frac * 100.0,
            pct(&mut acc.marked_fraction, 95.0),
            retx_frac * 100.0,
            pct(&mut acc.retx_fraction, 99.0),
            pct(&mut acc.queue_peak_fraction, 50.0),
        );
    }
    println!("wall {:?}", t0.elapsed());
}
