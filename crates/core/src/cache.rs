//! The content-addressed run cache.
//!
//! A sweep is hundreds of *pure* simulations: the result is a function of
//! the configuration and seed alone. The benches, examples, and study
//! modules share large config overlaps (fig5 and simperf both run the
//! 100-flow/15 ms point; production and stability revisit the same service
//! cells across processes), so recomputing is pure waste. [`RunCache`]
//! memoizes by *content address*: the canonical key of a run is the full
//! `Debug` rendering of its config (every field, in declaration order, so
//! two configs differing in any one field get different keys), prefixed
//! with a kind + schema version; the 64-bit FNV-1a hash of that key names
//! the on-disk entry.
//!
//! Two layers:
//! - **in-memory** — always on; `Arc`-shared values per process.
//! - **on-disk** — optional JSONL files under `target/run-cache/` (two
//!   lines per entry: a metadata line carrying schema version, build id,
//!   and the full key; then the encoded value). The full key is compared
//!   verbatim on load, so an FNV collision or a stale build degrades to a
//!   miss, never a wrong result. Enabled for [`RunCache::global`] with
//!   `INCAST_RUN_CACHE=1` (directory override: `INCAST_RUN_CACHE_DIR`).
//!
//! Values round-trip bit-exactly: floats are written with Rust's shortest
//! round-trip formatting (the same encoder the telemetry JSONL stream
//! uses) and parsed back with `str::parse`, so a warm sweep's aggregates
//! are byte-identical to a cold one — the sweep differential test holds
//! across cache states.

use std::any::Any;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::modes::{IncastRunResult, ModesConfig, TruncationCause};
use crate::production::TraceConfig;
use millisampler::{BurstRow, CtrlTallies, TraceSummary};
use simnet::SimTime;
use stats::TimeSeries;
use telemetry::json::{write_f64, Obj};
use telemetry::{EventTallies, LoopProfile, MetricsRegistry};
use workload::SnapshotModel;

/// Bumped whenever an encoding or a simulation-visible default changes, so
/// stale disk entries from older schemas miss instead of decode.
///
/// v2: `ModesConfig` gained the `faults` spec (part of the `Debug` key) and
/// `IncastRunResult` gained the truncation cause and fault tallies.
///
/// v3: `ModesConfig` gained the `mitigation` spec (part of the `Debug`
/// key), the profile tallies gained the `ctrl` event class, and
/// `TraceSummary` gained the fault/notification tallies.
pub const CACHE_SCHEMA_VERSION: u32 = 3;

/// 64-bit FNV-1a over the canonical key; names the on-disk entry file.
pub fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical key of an incast run (`crates/core/src/modes.rs`). The
/// `Debug` rendering covers every `ModesConfig` field — topology (flows,
/// queue, buffer), `TcpConfig`, workload (bursts, schedule, grouping), and
/// seed — so any single-field change produces a different key.
pub fn incast_key(cfg: &ModesConfig) -> String {
    format!("incast/v{CACHE_SCHEMA_VERSION}|{cfg:?}")
}

/// Canonical key of a service host-trace where the snapshot model is
/// derived from the seed ([`crate::production::run_service_trace`]).
pub fn trace_key(cfg: &TraceConfig) -> String {
    format!("trace/v{CACHE_SCHEMA_VERSION}|{cfg:?}")
}

/// Canonical key of a host-trace with an explicitly pinned snapshot model
/// ([`crate::production::run_trace_with_snapshot`], used by the stability
/// study); the snapshot is part of the content address.
pub fn trace_snapshot_key(cfg: &TraceConfig, snapshot: &SnapshotModel) -> String {
    format!("tracesnap/v{CACHE_SCHEMA_VERSION}|{cfg:?}|{snapshot:?}")
}

/// A value the cache can persist: a one-line JSON encoding that decodes
/// back bit-exactly (floats use shortest-round-trip formatting).
pub trait CacheValue: Send + Sync + Sized + 'static {
    /// Encodes as a single line (no interior newlines).
    fn encode(&self) -> String;
    /// Decodes an [`Self::encode`] line; `None` on any mismatch (treated
    /// as a cache miss).
    fn decode(s: &str) -> Option<Self>;
}

/// Counters snapshot; see [`RunCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Hits served from the in-memory map.
    pub mem_hits: u64,
    /// Hits served by decoding a disk entry.
    pub disk_hits: u64,
    /// Keys that had to be computed.
    pub misses: u64,
    /// Entries currently resident in memory.
    pub entries: u64,
    /// Entries written to disk.
    pub disk_writes: u64,
    /// Disk writes that needed at least one retry after a transient IO
    /// error (each retried write counts once per extra attempt).
    pub disk_retries: u64,
}

impl CacheStats {
    /// Total hits across both layers.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }

    /// Fraction of lookups served from either layer, in `[0, 1]`; `0.0`
    /// before any lookup has happened.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits() + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits() as f64 / lookups as f64
        }
    }

    /// Renders as a JSON object (for run manifests).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let mut o = Obj::new(&mut out);
        o.u64("hits", self.hits())
            .f64("hit_rate", self.hit_rate())
            .u64("mem_hits", self.mem_hits)
            .u64("disk_hits", self.disk_hits)
            .u64("misses", self.misses)
            .u64("entries", self.entries)
            .u64("disk_writes", self.disk_writes)
            .u64("disk_retries", self.disk_retries);
        o.finish();
        out
    }

    /// One stable human-readable line (grepped by the CI warm-cache check).
    pub fn summary(&self) -> String {
        format!(
            "cache: hits={} (mem {}, disk {}), misses={}, entries={}",
            self.hits(),
            self.mem_hits,
            self.disk_hits,
            self.misses,
            self.entries
        )
    }

    /// Publishes the counters into a metrics registry under the `sweep`
    /// component.
    pub fn publish(&self, reg: &mut MetricsRegistry) {
        reg.count("sweep", "cache_mem_hits", 0, self.mem_hits);
        reg.count("sweep", "cache_disk_hits", 0, self.disk_hits);
        reg.count("sweep", "cache_misses", 0, self.misses);
        reg.count("sweep", "cache_disk_writes", 0, self.disk_writes);
        reg.count("sweep", "cache_disk_retries", 0, self.disk_retries);
        reg.gauge("sweep", "cache_entries", 0, self.entries as f64);
    }
}

/// The memoization store: a typed in-memory map plus the optional disk
/// layer. Thread-safe; sweep workers call [`Self::get_or_compute`]
/// concurrently.
pub struct RunCache {
    mem: Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>>,
    disk_dir: Option<PathBuf>,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    disk_writes: AtomicU64,
    disk_retries: AtomicU64,
}

impl RunCache {
    /// A cache with only the in-memory layer.
    pub fn in_memory() -> Self {
        RunCache {
            mem: Mutex::new(HashMap::new()),
            disk_dir: None,
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disk_writes: AtomicU64::new(0),
            disk_retries: AtomicU64::new(0),
        }
    }

    /// A cache that also persists entries as JSONL files under `dir`.
    pub fn with_disk(dir: impl Into<PathBuf>) -> Self {
        let mut c = Self::in_memory();
        c.disk_dir = Some(dir.into());
        c
    }

    /// The process-wide cache used by the sweep engine: in-memory always;
    /// the disk layer under `target/run-cache/` when `INCAST_RUN_CACHE=1`
    /// (path override: `INCAST_RUN_CACHE_DIR`).
    pub fn global() -> &'static RunCache {
        static CACHE: OnceLock<RunCache> = OnceLock::new();
        CACHE.get_or_init(|| {
            let enabled = std::env::var("INCAST_RUN_CACHE")
                .map(|v| v == "1")
                .unwrap_or(false);
            if enabled {
                let dir = std::env::var("INCAST_RUN_CACHE_DIR")
                    .unwrap_or_else(|_| "target/run-cache".to_string());
                RunCache::with_disk(dir)
            } else {
                RunCache::in_memory()
            }
        })
    }

    /// Returns the cached value for `key`, or computes, stores, and
    /// returns it. Two threads racing on a cold key may both compute; the
    /// first insert wins and both observe the same pure result.
    pub fn get_or_compute<V: CacheValue>(&self, key: &str, compute: impl FnOnce() -> V) -> Arc<V> {
        if let Some(hit) = self.lookup::<V>(key) {
            return hit;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(compute());
        self.disk_put(key, &*value);
        self.intern(key, value)
    }

    /// Cache-only probe: both layers, no compute. Used by the supervised
    /// runner, which must decide *after* a miss whether the freshly
    /// computed result is cacheable (truncated runs are not).
    pub fn get<V: CacheValue>(&self, key: &str) -> Option<Arc<V>> {
        self.lookup(key)
    }

    /// Both layers, promoting disk hits into memory.
    fn lookup<V: CacheValue>(&self, key: &str) -> Option<Arc<V>> {
        {
            let mem = self.mem.lock().expect("cache map");
            if let Some(e) = mem.get(key) {
                let v = e
                    .clone()
                    .downcast::<V>()
                    .expect("cache key reused with a different value type");
                self.mem_hits.fetch_add(1, Ordering::Relaxed);
                return Some(v);
            }
        }
        let v = self.disk_get::<V>(key)?;
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        Some(self.intern(key, v))
    }

    /// Inserts unless another thread won the race; returns the resident
    /// value either way.
    fn intern<V: CacheValue>(&self, key: &str, value: Arc<V>) -> Arc<V> {
        let mut mem = self.mem.lock().expect("cache map");
        mem.entry(key.to_string())
            .or_insert(value)
            .clone()
            .downcast::<V>()
            .expect("cache key reused with a different value type")
    }

    fn disk_get<V: CacheValue>(&self, key: &str) -> Option<Arc<V>> {
        let dir = self.disk_dir.as_ref()?;
        let body = std::fs::read_to_string(dir.join(entry_name(key))).ok()?;
        let (meta, rest) = body.split_once('\n')?;
        // Verbatim meta comparison: schema, build, and the *full* key must
        // match, so hash collisions and stale builds miss.
        if meta != meta_line(key) {
            return None;
        }
        Some(Arc::new(V::decode(rest.trim_end_matches('\n'))?))
    }

    /// Best effort: persistent IO errors silently leave the entry
    /// memory-only. The write is crash-safe — the body goes to a
    /// process-unique `.tmp` file first and is published with an atomic
    /// rename, so a reader never observes a half-written entry (a process
    /// killed mid-write leaves only an ignored `.tmp` behind) — and
    /// transient errors are retried with backoff (counted in
    /// [`CacheStats::disk_retries`]).
    fn disk_put<V: CacheValue>(&self, key: &str, value: &V) {
        let Some(dir) = self.disk_dir.as_ref() else {
            return;
        };
        let name = entry_name(key);
        let tmp = dir.join(format!(".{name}.{}.tmp", std::process::id()));
        let dst = dir.join(name);
        let body = format!("{}\n{}\n", meta_line(key), value.encode());
        let (outcome, retries) = stats::retry_with_backoff(
            3,
            std::time::Duration::from_millis(5),
            || -> std::io::Result<()> {
                std::fs::create_dir_all(dir)?;
                std::fs::write(&tmp, &body)?;
                std::fs::rename(&tmp, &dst)
            },
        );
        self.disk_retries.fetch_add(retries, Ordering::Relaxed);
        if outcome.is_ok() {
            self.disk_writes.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.mem.lock().expect("cache map").len() as u64,
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            disk_retries: self.disk_retries.load(Ordering::Relaxed),
        }
    }

    /// Drops every in-memory entry (disk entries persist). Counters keep
    /// accumulating.
    pub fn clear_memory(&self) {
        self.mem.lock().expect("cache map").clear();
    }
}

fn entry_name(key: &str) -> String {
    format!("{:016x}.jsonl", fnv1a64(key))
}

fn meta_line(key: &str) -> String {
    let mut out = String::new();
    let mut o = Obj::new(&mut out);
    o.u64("v", CACHE_SCHEMA_VERSION as u64)
        .str("build", build_id())
        .str("key", key);
    o.finish();
    out
}

/// `git describe` once per process (it shells out).
fn build_id() -> &'static str {
    static BUILD: OnceLock<String> = OnceLock::new();
    BUILD.get_or_init(telemetry::git_describe)
}

// ---------------------------------------------------------------------------
// Encoding helpers (the decoder is a hand-rolled scanner: the workspace is
// air-gapped, so no serde).

/// Renders a `[v0,v1,…]` JSON array with shortest-round-trip floats.
fn f64_array(vals: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_f64(*v, &mut out);
    }
    out.push(']');
    out
}

/// A strict cursor over an encoded value: every helper consumes exactly
/// the expected production or fails the whole decode (=> cache miss).
struct Scan<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Scan<'a> {
    fn new(s: &'a str) -> Self {
        Scan { s, pos: 0 }
    }

    fn lit(&mut self, l: &str) -> Option<()> {
        if self.s[self.pos..].starts_with(l) {
            self.pos += l.len();
            Some(())
        } else {
            None
        }
    }

    fn number_str(&mut self) -> Option<&'a str> {
        let rest = &self.s[self.pos..];
        let end = rest
            .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
            .unwrap_or(rest.len());
        if end == 0 {
            return None;
        }
        self.pos += end;
        Some(&rest[..end])
    }

    fn u64(&mut self) -> Option<u64> {
        self.number_str()?.parse().ok()
    }

    fn u32(&mut self) -> Option<u32> {
        self.number_str()?.parse().ok()
    }

    fn f64(&mut self) -> Option<f64> {
        self.number_str()?.parse().ok()
    }

    /// A float or JSON `null` (how the encoder spells a `None`).
    fn f64_or_null(&mut self) -> Option<Option<f64>> {
        if self.lit("null").is_some() {
            return Some(None);
        }
        Some(Some(self.f64()?))
    }

    fn f64_array(&mut self) -> Option<Vec<f64>> {
        self.lit("[")?;
        let mut out = Vec::new();
        if self.lit("]").is_some() {
            return Some(out);
        }
        loop {
            out.push(self.f64()?);
            if self.lit(",").is_some() {
                continue;
            }
            self.lit("]")?;
            return Some(out);
        }
    }

    fn f64_arrays(&mut self) -> Option<Vec<Vec<f64>>> {
        self.lit("[")?;
        let mut out = Vec::new();
        if self.lit("]").is_some() {
            return Some(out);
        }
        loop {
            out.push(self.f64_array()?);
            if self.lit(",").is_some() {
                continue;
            }
            self.lit("]")?;
            return Some(out);
        }
    }

    fn end(&self) -> Option<()> {
        (self.pos == self.s.len()).then_some(())
    }
}

impl CacheValue for IncastRunResult {
    fn encode(&self) -> String {
        let windows: Vec<f64> = self
            .burst_windows
            .iter()
            .flat_map(|&(s, e)| [s, e])
            .collect();
        let mut out = String::new();
        let mut o = Obj::new(&mut out);
        o.raw("bcts", &f64_array(&self.bcts_ms))
            .f64("mean", self.mean_bct_ms)
            .u64("q_iv", self.queue_pkts.interval())
            .raw("q_v", &f64_array(self.queue_pkts.values()))
            .raw("win", &f64_array(&windows))
            .u64("drops", self.drops)
            .u64("marked", self.marked_pkts)
            .u64("enq", self.enqueued_pkts)
            .u64("retx", self.retx_bytes)
            .u64("to", self.timeouts)
            .u64("fr", self.fast_retransmits)
            .u64("s_drops", self.steady_drops)
            .u64("s_to", self.steady_timeouts)
            .u64("s_retx", self.steady_retx_bytes)
            .u64("warm", self.warmup_bursts as u64)
            .u64("wmark", self.queue_watermark_pkts as u64)
            .u64(
                "f_iv",
                self.flights.first().map(|f| f.interval()).unwrap_or(0),
            )
            .raw(
                "flights",
                &telemetry::json::array_of_raw(self.flights.iter().map(|f| f64_array(f.values()))),
            )
            .u64("fin_ps", self.finished_at.as_ps())
            .u64("k", self.ecn_threshold_pkts as u64)
            .u64("trunc", self.truncated.map(|c| c.code()).unwrap_or(0))
            .u64("p_tx", self.profile.tallies.tx_complete)
            .u64("p_dl", self.profile.tallies.delivery)
            .u64("p_tm", self.profile.tallies.timer)
            .u64("p_ft", self.profile.tallies.fault)
            .u64("p_ct", self.profile.tallies.ctrl)
            .u64("p_wall_ns", self.profile.wall.as_nanos() as u64);
        o.finish();
        out
    }

    fn decode(s: &str) -> Option<Self> {
        let mut sc = Scan::new(s);
        sc.lit("{\"bcts\":")?;
        let bcts_ms = sc.f64_array()?;
        sc.lit(",\"mean\":")?;
        let mean_bct_ms = sc.f64()?;
        sc.lit(",\"q_iv\":")?;
        let q_iv = sc.u64()?;
        sc.lit(",\"q_v\":")?;
        let q_v = sc.f64_array()?;
        sc.lit(",\"win\":")?;
        let win = sc.f64_array()?;
        if win.len() % 2 != 0 {
            return None;
        }
        sc.lit(",\"drops\":")?;
        let drops = sc.u64()?;
        sc.lit(",\"marked\":")?;
        let marked_pkts = sc.u64()?;
        sc.lit(",\"enq\":")?;
        let enqueued_pkts = sc.u64()?;
        sc.lit(",\"retx\":")?;
        let retx_bytes = sc.u64()?;
        sc.lit(",\"to\":")?;
        let timeouts = sc.u64()?;
        sc.lit(",\"fr\":")?;
        let fast_retransmits = sc.u64()?;
        sc.lit(",\"s_drops\":")?;
        let steady_drops = sc.u64()?;
        sc.lit(",\"s_to\":")?;
        let steady_timeouts = sc.u64()?;
        sc.lit(",\"s_retx\":")?;
        let steady_retx_bytes = sc.u64()?;
        sc.lit(",\"warm\":")?;
        let warmup_bursts = sc.u32()?;
        sc.lit(",\"wmark\":")?;
        let queue_watermark_pkts = sc.u32()?;
        sc.lit(",\"f_iv\":")?;
        let f_iv = sc.u64()?;
        sc.lit(",\"flights\":")?;
        let flight_vals = sc.f64_arrays()?;
        sc.lit(",\"fin_ps\":")?;
        let fin_ps = sc.u64()?;
        sc.lit(",\"k\":")?;
        let ecn_threshold_pkts = sc.u32()?;
        sc.lit(",\"trunc\":")?;
        let trunc_code = sc.u64()?;
        if trunc_code > 3 {
            return None;
        }
        sc.lit(",\"p_tx\":")?;
        let tx_complete = sc.u64()?;
        sc.lit(",\"p_dl\":")?;
        let delivery = sc.u64()?;
        sc.lit(",\"p_tm\":")?;
        let timer = sc.u64()?;
        sc.lit(",\"p_ft\":")?;
        let fault = sc.u64()?;
        sc.lit(",\"p_ct\":")?;
        let ctrl = sc.u64()?;
        sc.lit(",\"p_wall_ns\":")?;
        let wall_ns = sc.u64()?;
        sc.lit("}")?;
        sc.end()?;
        if !flight_vals.is_empty() && f_iv == 0 {
            return None;
        }
        Some(IncastRunResult {
            bcts_ms,
            mean_bct_ms,
            queue_pkts: TimeSeries::from_values(q_iv, q_v),
            burst_windows: win.chunks_exact(2).map(|c| (c[0], c[1])).collect(),
            drops,
            marked_pkts,
            enqueued_pkts,
            retx_bytes,
            timeouts,
            fast_retransmits,
            steady_drops,
            steady_timeouts,
            steady_retx_bytes,
            warmup_bursts,
            queue_watermark_pkts,
            flights: flight_vals
                .into_iter()
                .map(|v| TimeSeries::from_values(f_iv, v))
                .collect(),
            finished_at: SimTime::from_ps(fin_ps),
            ecn_threshold_pkts,
            truncated: TruncationCause::from_code(trunc_code),
            profile: LoopProfile {
                tallies: EventTallies {
                    tx_complete,
                    delivery,
                    timer,
                    fault,
                    ctrl,
                },
                wall: std::time::Duration::from_nanos(wall_ns),
            },
        })
    }
}

impl CacheValue for TraceSummary {
    fn encode(&self) -> String {
        let rows = self.per_burst.iter().map(|r| {
            let mut s = String::from("[");
            write_f64(r.duration_ms, &mut s);
            s.push(',');
            write_f64(r.peak_flows, &mut s);
            s.push(',');
            write_f64(r.marked_fraction, &mut s);
            s.push(',');
            write_f64(r.retx_fraction, &mut s);
            s.push(',');
            match r.queue_peak_fraction {
                Some(q) => write_f64(q, &mut s),
                None => s.push_str("null"),
            }
            s.push(']');
            s
        });
        let mut out = String::new();
        let mut o = Obj::new(&mut out);
        o.f64("bps", self.bursts_per_sec)
            .f64("util", self.mean_utilization)
            .raw("rows", &telemetry::json::array_of_raw(rows))
            .u64("fa", self.tallies.faults_applied)
            .u64("ns", self.tallies.notif_sent)
            .u64("na", self.tallies.notif_acked)
            .u64("nr", self.tallies.notif_retries)
            .u64("nl", self.tallies.notif_lost);
        o.finish();
        out
    }

    fn decode(s: &str) -> Option<Self> {
        let mut sc = Scan::new(s);
        sc.lit("{\"bps\":")?;
        let bursts_per_sec = sc.f64()?;
        sc.lit(",\"util\":")?;
        let mean_utilization = sc.f64()?;
        sc.lit(",\"rows\":[")?;
        let mut per_burst = Vec::new();
        if sc.lit("]").is_none() {
            loop {
                sc.lit("[")?;
                let duration_ms = sc.f64()?;
                sc.lit(",")?;
                let peak_flows = sc.f64()?;
                sc.lit(",")?;
                let marked_fraction = sc.f64()?;
                sc.lit(",")?;
                let retx_fraction = sc.f64()?;
                sc.lit(",")?;
                let queue_peak_fraction = sc.f64_or_null()?;
                sc.lit("]")?;
                per_burst.push(BurstRow {
                    duration_ms,
                    peak_flows,
                    marked_fraction,
                    retx_fraction,
                    queue_peak_fraction,
                });
                if sc.lit(",").is_some() {
                    continue;
                }
                sc.lit("]")?;
                break;
            }
        }
        sc.lit(",\"fa\":")?;
        let faults_applied = sc.u64()?;
        sc.lit(",\"ns\":")?;
        let notif_sent = sc.u64()?;
        sc.lit(",\"na\":")?;
        let notif_acked = sc.u64()?;
        sc.lit(",\"nr\":")?;
        let notif_retries = sc.u64()?;
        sc.lit(",\"nl\":")?;
        let notif_lost = sc.u64()?;
        sc.lit("}")?;
        sc.end()?;
        Some(TraceSummary {
            bursts_per_sec,
            mean_utilization,
            per_burst,
            tallies: CtrlTallies {
                faults_applied,
                notif_sent,
                notif_acked,
                notif_retries,
                notif_lost,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn keys_carry_kind_version_and_fields() {
        let cfg = ModesConfig::default();
        let k = incast_key(&cfg);
        assert!(k.starts_with("incast/v3|ModesConfig"));
        assert!(k.contains("faults: FaultSpec"));
        assert!(k.contains("mitigation: MitigationSpec"));
        assert!(k.contains("num_flows: 100"));
        assert!(k.contains("seed: 1"));
    }

    #[test]
    fn mem_layer_hits_and_counts() {
        let cache = RunCache::in_memory();
        let mut computed = 0u32;
        for _ in 0..3 {
            let v = cache.get_or_compute("k1", || {
                computed += 1;
                TraceSummary {
                    bursts_per_sec: 1.5,
                    mean_utilization: 0.1,
                    per_burst: vec![],
                    tallies: CtrlTallies::default(),
                }
            });
            assert_eq!(v.bursts_per_sec, 1.5);
        }
        assert_eq!(computed, 1);
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.mem_hits, 2);
        assert_eq!(s.disk_hits, 0);
        assert_eq!(s.entries, 1);
        assert!(s.summary().contains("hits=2"));
        // 2 hits over 3 lookups.
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12, "{}", s.hit_rate());
        let j = s.to_json();
        assert!(
            j.starts_with(r#"{"hits":2,"hit_rate":0.6666666666666666"#),
            "{j}"
        );
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn disk_layer_round_trips_and_verifies_key() {
        let dir = std::env::temp_dir().join(format!("incast-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let value = TraceSummary {
            bursts_per_sec: 2.25,
            mean_utilization: 0.125,
            per_burst: vec![BurstRow {
                duration_ms: 3.0,
                peak_flows: 50.0,
                marked_fraction: 0.5,
                retx_fraction: 0.0,
                queue_peak_fraction: None,
            }],
            tallies: CtrlTallies::default(),
        };
        {
            let cache = RunCache::with_disk(&dir);
            let _ = cache.get_or_compute("key-a", || value.clone());
            assert_eq!(cache.stats().disk_writes, 1);
        }
        // A fresh cache (empty memory) must hit the disk entry…
        let cache = RunCache::with_disk(&dir);
        let v = cache.get_or_compute::<TraceSummary>("key-a", || panic!("must not recompute"));
        assert_eq!(*v, value);
        assert_eq!(cache.stats().disk_hits, 1);
        // …and a *different* key whose file name would collide is refused
        // by the verbatim meta comparison (simulate by renaming).
        let from = dir.join(entry_name("key-a"));
        let to = dir.join(entry_name("key-b"));
        std::fs::rename(from, to).unwrap();
        let cache = RunCache::with_disk(&dir);
        let mut recomputed = false;
        let _ = cache.get_or_compute("key-b", || {
            recomputed = true;
            value.clone()
        });
        assert!(recomputed, "stale/colliding entry must miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_summary_round_trips_bit_exactly() {
        let s = TraceSummary {
            bursts_per_sec: 1.0 / 3.0,
            mean_utilization: 0.1 + 0.2, // deliberately ugly float
            per_burst: vec![
                BurstRow {
                    duration_ms: 2.5,
                    peak_flows: 120.0,
                    marked_fraction: 1.0 / 7.0,
                    retx_fraction: 1e-9,
                    queue_peak_fraction: Some(0.499999999999),
                },
                BurstRow {
                    duration_ms: 1.0,
                    peak_flows: 2.0,
                    marked_fraction: 0.0,
                    retx_fraction: 0.0,
                    queue_peak_fraction: None,
                },
            ],
            tallies: CtrlTallies {
                faults_applied: 3,
                notif_sent: 41,
                notif_acked: 40,
                notif_retries: 5,
                notif_lost: 1,
            },
        };
        let d = TraceSummary::decode(&s.encode()).expect("decode");
        assert_eq!(d.bursts_per_sec.to_bits(), s.bursts_per_sec.to_bits());
        assert_eq!(d, s);
        // Empty rows also round-trip.
        let empty = TraceSummary {
            bursts_per_sec: 0.0,
            mean_utilization: 0.0,
            per_burst: vec![],
            tallies: CtrlTallies::default(),
        };
        assert_eq!(TraceSummary::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn corrupt_lines_decode_to_none() {
        assert!(TraceSummary::decode("").is_none());
        assert!(TraceSummary::decode("{}").is_none());
        assert!(TraceSummary::decode("{\"bps\":1,\"util\":nope,\"rows\":[]}").is_none());
        assert!(IncastRunResult::decode("{\"bcts\":[1,2]").is_none());
    }
}
