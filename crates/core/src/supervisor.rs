//! Supervised, failure-tolerant sweep execution.
//!
//! A plain [`crate::sweep::run_incast_sweep`] is all-or-nothing: one
//! panicking configuration aborts the whole sweep, and one runaway run
//! (a pathological config that never converges) holds the pool hostage.
//! The supervisor wraps each run with
//!
//! - **panic isolation** — a panic in one run is caught on its worker,
//!   recorded, and quarantined; every other run still completes and
//!   aggregates,
//! - **budget guards** — a [`RunBudget`] truncates runaway runs at the
//!   next polling step; truncated runs are marked in the manifest and
//!   excluded from aggregates,
//! - **quarantine reproducers** — each failed or truncated run writes a
//!   ready-to-paste `#[test]` under `target/quarantine/` that replays the
//!   exact configuration (the `Debug` rendering of every config type in
//!   the tree is valid construction syntax, which is what makes the
//!   emitted source compile as-is; `tests/quarantine_reproducer.rs` pins
//!   the emitter to a checked-in compiled copy),
//! - **coverage accounting** — a [`RunCoverage`] reports
//!   ran/failed/truncated/retried so a partial aggregate is never
//!   mistaken for a complete one.
//!
//! Determinism: for a fixed config list and sim-side budgets, the
//! surviving set and the aggregate digest are identical across thread
//! counts and cache states (the wall-clock watchdog is the one
//! intentionally nondeterministic guard).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::cache::{fnv1a64, incast_key, RunCache};
use crate::modes::{
    run_incast_budgeted_with, IncastRunResult, ModesConfig, RunBudget, TruncationCause,
};
use crate::pool::PoolStats;
use crate::runner::{panic_message, par_map};
use crate::sweep::{sweep_manifest, IncastSweepAggregate};
use millisampler::RunCoverage;
use simnet::TimingWheel;
use telemetry::RunManifest;

/// How a supervised sweep executes its runs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Pool participants (see [`crate::runner::par_map`]).
    pub threads: usize,
    /// Per-run budgets; [`RunBudget::default`] means unlimited.
    pub budget: RunBudget,
    /// Where quarantine reproducers land; `None` disables emission.
    pub quarantine_dir: Option<PathBuf>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            threads: crate::runner::default_threads(),
            budget: RunBudget::default(),
            quarantine_dir: Some(PathBuf::from("target/quarantine")),
        }
    }
}

/// What happened to one run of a supervised sweep.
#[derive(Debug)]
pub enum RunOutcome {
    /// Completed within budget; the result was aggregated (and cached).
    Completed(Arc<IncastRunResult>),
    /// Cut short by a budget guard; partial result retained but excluded
    /// from aggregates and never cached.
    Truncated(TruncationCause, Box<IncastRunResult>),
    /// Panicked; the payload text (as labeled by the runner).
    Failed(String),
}

impl RunOutcome {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RunOutcome::Completed(_) => "completed",
            RunOutcome::Truncated(..) => "truncated",
            RunOutcome::Failed(_) => "failed",
        }
    }
}

/// Everything a supervised sweep produces.
#[derive(Debug)]
pub struct SupervisedSweep {
    /// Aggregate over the surviving (completed) runs, in config order.
    pub aggregate: IncastSweepAggregate,
    /// Per-config outcomes, in config order.
    pub outcomes: Vec<RunOutcome>,
    /// Coverage accounting over the whole sweep.
    pub coverage: RunCoverage,
    /// Reproducer files written for failed/truncated runs.
    pub quarantined: Vec<PathBuf>,
    /// Pool work-distribution counters this sweep accumulated (delta over
    /// the process-global pool, so concurrent sweeps each see their own
    /// share plus any overlap).
    pub pool: PoolStats,
}

impl SupervisedSweep {
    /// A sweep manifest with the coverage object attached (cleared by
    /// [`RunManifest::deterministic`], since retry counts depend on
    /// transient IO). When any run was truncated, the manifest is marked
    /// with the first truncation cause.
    pub fn manifest(&self, name: &str, seed: u64, cache: &RunCache) -> RunManifest {
        let mut m = sweep_manifest(name, seed, &self.aggregate, 0, cache);
        m.topology = format!(
            "sweep:runs={}/{},threads=supervised",
            self.coverage.ran, self.coverage.total
        );
        m.coverage_json = Some(self.coverage.to_json());
        m.pool_json = Some(self.pool.to_json());
        m.truncated = self.outcomes.iter().find_map(|o| match o {
            RunOutcome::Truncated(cause, _) => Some(cause.label().to_string()),
            _ => None,
        });
        m
    }
}

/// Runs every config under supervision: panics are isolated per run,
/// budgets truncate runaways, survivors aggregate in config order, and
/// failures quarantine reproducers. See the module docs for the contract.
pub fn supervised_incast_sweep(
    cfgs: &[ModesConfig],
    sup: &SupervisorConfig,
    cache: &RunCache,
) -> SupervisedSweep {
    let retries_before = cache.stats().disk_retries;
    let pool_before = PoolStats::snapshot();
    let budget = (!sup.budget.is_unlimited()).then_some(&sup.budget);
    let results = par_map(cfgs.to_vec(), sup.threads, |cfg| {
        supervised_run(cfg, cache, budget)
    });
    let pool = PoolStats::snapshot().delta(&pool_before);

    let mut aggregate = IncastSweepAggregate::new();
    let mut coverage = RunCoverage {
        total: cfgs.len() as u64,
        ..RunCoverage::default()
    };
    let mut quarantined = Vec::new();
    for (cfg, (outcome, flight_dump)) in cfgs.iter().zip(&results) {
        let cause = match outcome {
            RunOutcome::Completed(r) => {
                aggregate.absorb(r);
                coverage.ran += 1;
                None
            }
            RunOutcome::Truncated(cause, _) => {
                coverage.truncated += 1;
                Some(format!("budget exceeded: {}", cause.label()))
            }
            RunOutcome::Failed(msg) => {
                coverage.failed += 1;
                Some(format!("panic: {msg}"))
            }
        };
        if let (Some(cause), Some(dir)) = (cause, sup.quarantine_dir.as_deref()) {
            if let Some(path) = quarantine(dir, cfg, &cause, flight_dump.as_deref()) {
                quarantined.push(path);
            }
        }
    }
    coverage.retried = cache.stats().disk_retries - retries_before;
    let outcomes = results.into_iter().map(|(o, _)| o).collect();
    SupervisedSweep {
        aggregate,
        outcomes,
        coverage,
        quarantined,
        pool,
    }
}

/// One supervised run: cache probe, then a budgeted run under
/// `catch_unwind`. Only complete runs enter the cache.
///
/// The second element is the flight-recorder dump, if the run captured one
/// (fault applied, budget truncation, invariant violation, or panic; always
/// `None` without the `recorder` feature). The recorder's state is
/// thread-local and survives the unwind, so the dump must be taken here —
/// on the worker thread that ran the simulation — before the outcome
/// crosses to the submitter.
fn supervised_run(
    cfg: &ModesConfig,
    cache: &RunCache,
    budget: Option<&RunBudget>,
) -> (RunOutcome, Option<String>) {
    let key = incast_key(cfg);
    if let Some(hit) = cache.get::<IncastRunResult>(&key) {
        return (RunOutcome::Completed(hit), None);
    }
    let outcome = match catch_unwind(AssertUnwindSafe(|| {
        run_incast_budgeted_with::<TimingWheel>(cfg, None, budget).0
    })) {
        Ok(r) => match r.truncated {
            Some(cause) => RunOutcome::Truncated(cause, Box::new(r)),
            None => RunOutcome::Completed(cache.get_or_compute(&key, move || r)),
        },
        Err(p) => {
            let msg = panic_message(&*p);
            // The ring still holds the events leading up to the panic;
            // capture them before the payload leaves the thread.
            if simnet::recorder::enabled() {
                simnet::recorder::capture(&format!("worker panic: {msg}"));
            }
            RunOutcome::Failed(msg)
        }
    };
    (outcome, simnet::recorder::take_dump())
}

/// Renders a failed run as a ready-to-paste `#[test]` that replays the
/// exact configuration. The `Debug` rendering of `ModesConfig` (and every
/// type it contains) is valid construction syntax given the glob imports
/// below; `tests/quarantine_reproducer.rs` keeps a compiled copy of one
/// emission and asserts the emitter still produces it byte-for-byte.
pub fn reproducer_source(test_name: &str, cfg: &ModesConfig, cause: &str) -> String {
    let cause = cause.replace('\n', "; ");
    format!(
        r#"// Quarantined by the supervised sweep runner.
// cause: {cause}
// Paste into crates/core/tests/<file>.rs and run:
//   cargo test -p incast-core --test <file>
#[test]
fn {test_name}() {{
    #[allow(unused_imports)]
    use incast_core::modes::{{FaultSpec, MitigationKind::*, MitigationSpec, ModesConfig, TopologySpec::*}};
    #[allow(unused_imports)]
    use simnet::{{BufferPolicy::*, QueueConfig, SimTime}};
    #[allow(unused_imports)]
    use transport::{{CcaKind::*, DelayedAckConfig, PacingConfig, TcpConfig, TransportKind::*}};
    #[allow(unused_imports)]
    use workload::{{BurstSchedule::*, Grouping}};
    let cfg = {cfg:?};
    let _ = incast_core::run_incast(&cfg);
}}
"#
    )
}

/// Writes the reproducer for one failed/truncated run, plus — when the
/// flight recorder captured one — a sibling `<name>.flight.txt` with the
/// causal dump; best effort (an unwritable quarantine dir must not fail
/// the sweep).
fn quarantine(
    dir: &Path,
    cfg: &ModesConfig,
    cause: &str,
    flight_dump: Option<&str>,
) -> Option<PathBuf> {
    let hash = fnv1a64(&incast_key(cfg));
    let name = format!("quarantine_run_{hash:016x}");
    let src = reproducer_source(&name, cfg, cause);
    let path = dir.join(format!("{name}.rs"));
    let (outcome, _retries) = stats::retry_with_backoff(
        3,
        std::time::Duration::from_millis(5),
        || -> std::io::Result<()> {
            std::fs::create_dir_all(dir)?;
            std::fs::write(&path, &src)?;
            if let Some(dump) = flight_dump {
                std::fs::write(dir.join(format!("{name}.flight.txt")), dump)?;
            }
            Ok(())
        },
    );
    outcome.ok().map(|_| path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimTime;

    fn tiny(seed: u64) -> ModesConfig {
        ModesConfig {
            num_flows: 8,
            burst_duration_ms: 1.0,
            num_bursts: 2,
            warmup_bursts: 1,
            seed,
            ..ModesConfig::default()
        }
    }

    /// A config that panics inside the run: `run_incast` asserts
    /// `burst_duration_ms > 0`.
    fn poisoned() -> ModesConfig {
        ModesConfig {
            burst_duration_ms: -1.0,
            ..tiny(99)
        }
    }

    fn tmp_quarantine(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("incast-quarantine-{tag}-{}", std::process::id()))
    }

    #[test]
    fn poisoned_and_runaway_configs_do_not_abort_the_sweep() {
        let dir = tmp_quarantine("mixed");
        let _ = std::fs::remove_dir_all(&dir);
        let cfgs = vec![
            tiny(1),
            poisoned(),
            tiny(2),
            // Runaway: 2000 bursts can't finish inside the event budget.
            ModesConfig {
                num_bursts: 2000,
                ..tiny(3)
            },
            tiny(4),
        ];
        let sup = SupervisorConfig {
            threads: 4,
            budget: RunBudget {
                max_events: Some(20_000),
                ..RunBudget::default()
            },
            quarantine_dir: Some(dir.clone()),
        };
        let cache = RunCache::in_memory();
        let sweep = supervised_incast_sweep(&cfgs, &sup, &cache);

        assert_eq!(sweep.coverage.total, 5);
        assert_eq!(sweep.coverage.failed, 1);
        assert_eq!(sweep.coverage.truncated, 1);
        assert_eq!(sweep.coverage.ran, 3);
        assert!(!sweep.coverage.complete());
        assert_eq!(sweep.aggregate.runs, 3);
        assert_eq!(sweep.outcomes[1].label(), "failed");
        assert_eq!(sweep.outcomes[3].label(), "truncated");

        // Both casualties left compiling reproducers behind.
        assert_eq!(sweep.quarantined.len(), 2);
        for p in &sweep.quarantined {
            let src = std::fs::read_to_string(p).expect("reproducer written");
            assert!(src.contains("#[test]"), "{src}");
            assert!(src.contains("let cfg = ModesConfig {"), "{src}");
        }
        // The failed run's payload names the scenario (satellite: labeled
        // panic payloads).
        match &sweep.outcomes[1] {
            RunOutcome::Failed(msg) => {
                assert!(msg.contains("burst_duration_ms"), "{msg}")
            }
            o => panic!("expected failure, got {}", o.label()),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_reports_coverage_and_truncation() {
        let dir = tmp_quarantine("manifest");
        let _ = std::fs::remove_dir_all(&dir);
        let cfgs = vec![tiny(1), poisoned()];
        let sup = SupervisorConfig {
            threads: 2,
            quarantine_dir: Some(dir.clone()),
            ..SupervisorConfig::default()
        };
        let cache = RunCache::in_memory();
        let sweep = supervised_incast_sweep(&cfgs, &sup, &cache);
        let m = sweep.manifest("fault_matrix", 1, &cache);
        let j = m.to_json();
        assert!(
            j.contains(r#""coverage":{"total":2,"ran":1,"failed":1"#),
            "{j}"
        );
        // Pool work-distribution counters ride along for introspection.
        assert!(j.contains(r#""pool":{"jobs":"#), "{j}");
        assert!(sweep.pool.jobs >= 1, "{:?}", sweep.pool);
        assert!(sweep.pool.items >= 2, "{:?}", sweep.pool);
        // No truncated runs here, so no truncation marker.
        assert!(m.truncated.is_none());
        // Coverage and pool counters depend on cache/IO/scheduling state;
        // the determinism view drops both.
        let det = m.deterministic().to_json();
        assert!(!det.contains("coverage"));
        assert!(!det.contains("pool"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "recorder")]
    #[test]
    fn quarantined_truncation_carries_a_flight_dump() {
        let dir = tmp_quarantine("flight");
        let _ = std::fs::remove_dir_all(&dir);
        let cfgs = vec![ModesConfig {
            num_bursts: 2000,
            ..tiny(11)
        }];
        let sup = SupervisorConfig {
            threads: 1,
            budget: RunBudget {
                max_events: Some(20_000),
                ..RunBudget::default()
            },
            quarantine_dir: Some(dir.clone()),
        };
        let cache = RunCache::in_memory();
        let sweep = supervised_incast_sweep(&cfgs, &sup, &cache);
        assert_eq!(sweep.coverage.truncated, 1);
        assert_eq!(sweep.quarantined.len(), 1);
        let flight = sweep.quarantined[0].with_extension("flight.txt");
        let dump = std::fs::read_to_string(&flight).expect("flight dump beside reproducer");
        assert!(
            dump.starts_with("flight recorder: run budget exceeded: events"),
            "{dump}"
        );
        // The causal history is non-empty: ring lines render as
        // "<t> ps  <tag> ...".
        assert!(dump.contains(" ps  "), "dump has no events: {dump}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn surviving_set_is_deterministic_across_threads() {
        let cfgs = vec![
            tiny(1),
            poisoned(),
            ModesConfig {
                num_bursts: 2000,
                ..tiny(2)
            },
            tiny(3),
        ];
        let digests: Vec<String> = [1usize, 4]
            .iter()
            .map(|&threads| {
                let sup = SupervisorConfig {
                    threads,
                    budget: RunBudget {
                        max_events: Some(20_000),
                        ..RunBudget::default()
                    },
                    quarantine_dir: None,
                };
                let cache = RunCache::in_memory();
                supervised_incast_sweep(&cfgs, &sup, &cache)
                    .aggregate
                    .digest()
            })
            .collect();
        assert_eq!(digests[0], digests[1]);
    }

    #[test]
    fn completed_runs_enter_the_cache_but_truncated_ones_do_not() {
        let cache = RunCache::in_memory();
        let good = tiny(7);
        let runaway = ModesConfig {
            num_bursts: 2000,
            ..tiny(8)
        };
        let sup = SupervisorConfig {
            threads: 1,
            budget: RunBudget {
                max_events: Some(20_000),
                ..RunBudget::default()
            },
            quarantine_dir: None,
        };
        supervised_incast_sweep(&[good.clone(), runaway.clone()], &sup, &cache);
        assert!(cache.get::<IncastRunResult>(&incast_key(&good)).is_some());
        assert!(cache
            .get::<IncastRunResult>(&incast_key(&runaway))
            .is_none());
        // A second supervised pass serves the good run from cache.
        let sweep = supervised_incast_sweep(std::slice::from_ref(&good), &sup, &cache);
        assert_eq!(sweep.coverage.ran, 1);
        assert!(cache.stats().hits() >= 1);
    }

    #[test]
    fn truncated_outcome_keeps_the_partial_result() {
        let sup = SupervisorConfig {
            threads: 1,
            budget: RunBudget {
                sim_time: Some(SimTime::from_ms(2)),
                ..RunBudget::default()
            },
            quarantine_dir: None,
        };
        let cache = RunCache::in_memory();
        let cfgs = vec![ModesConfig {
            num_bursts: 50,
            ..tiny(5)
        }];
        let sweep = supervised_incast_sweep(&cfgs, &sup, &cache);
        match &sweep.outcomes[0] {
            RunOutcome::Truncated(cause, partial) => {
                assert_eq!(*cause, TruncationCause::SimTime);
                assert!(partial.finished_at >= SimTime::from_ms(2));
            }
            o => panic!("expected truncation, got {}", o.label()),
        }
    }
}
