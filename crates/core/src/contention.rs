//! Rack-level contention: simultaneous cross-rack incasts on one Clos.
//!
//! The paper's production observations (§3.4) include rack-level
//! contention — several aggregation jobs incasting at once, their fan-in
//! traffic sharing the spine tier. This runner builds one Clos fabric and
//! starts one incast group per rack: group `g`'s coordinator lives on
//! `rack_hosts[g][0]` and queries one worker in every *other* rack
//! (`rack_hosts[r][1 + g]`, `r != g`), so all groups' responses traverse
//! the spines concurrently while each group keeps a private receiver
//! downlink. Flow ids are partitioned per group (`flow_base = g * 1000`),
//! keeping traces and the ECMP flow hash unambiguous.

use simnet::{build_clos_with, ClosConfig, ClosError, QueueConfig, Scheduler, Shared, SimTime};
use stats::Rng;
use telemetry::RunManifest;
use transport::{TcpConfig, TcpHost};
use workload::{CyclicCoordinator, IncastConfig};

/// Configuration of one all-to-all rack-contention run.
#[derive(Debug, Clone)]
pub struct ContentionConfig {
    /// Racks, and therefore simultaneous incast groups (one per rack).
    /// Needs `racks >= 2` for any cross-rack traffic.
    pub racks: usize,
    /// Spine switches shared by every group's fan-in.
    pub spines: usize,
    /// Nominal burst duration per group (sizes per-flow demand as in
    /// [`IncastConfig::paper`]).
    pub burst_duration_ms: f64,
    /// Bursts per group.
    pub num_bursts: u32,
    /// Endpoint TCP configuration.
    pub tcp: TcpConfig,
    /// Egress queue config for leaf/ToR ports.
    pub tor_queue: QueueConfig,
    /// Root seed (fabric, jitter, and worker payload RNGs fork from it).
    pub seed: u64,
    /// Hard limit on simulated time.
    pub horizon: SimTime,
}

impl Default for ContentionConfig {
    fn default() -> Self {
        ContentionConfig {
            racks: 4,
            spines: 4,
            burst_duration_ms: 1.0,
            num_bursts: 3,
            tcp: TcpConfig::default(),
            tor_queue: QueueConfig::paper_tor(),
            seed: 1,
            horizon: SimTime::from_secs(30),
        }
    }
}

/// Everything a contention run produces.
#[derive(Debug)]
pub struct ContentionResult {
    /// Per-group burst completion times, in group (= rack) order.
    pub group_bcts_ms: Vec<Vec<f64>>,
    /// Mean BCT across all groups and bursts.
    pub mean_bct_ms: f64,
    /// Peak occupancy across all rack-uplink queues (packets).
    pub uplink_watermark_pkts: u32,
    /// Peak occupancy across all spine-downlink queues (packets).
    pub spine_watermark_pkts: u32,
    /// Drops summed over the uplink and spine tiers.
    pub fabric_drops: u64,
    /// Final simulated time.
    pub finished_at: SimTime,
}

/// Runs one all-to-all rack-contention experiment on the wheel scheduler.
pub fn run_contention(
    cfg: &ContentionConfig,
) -> Result<(ContentionResult, RunManifest), ClosError> {
    run_contention_with::<simnet::TimingWheel>(cfg)
}

/// [`run_contention`] with an explicit event [`Scheduler`] (for the
/// differential wheel-vs-heap gate).
pub fn run_contention_with<S: Scheduler>(
    cfg: &ContentionConfig,
) -> Result<(ContentionResult, RunManifest), ClosError> {
    assert!(cfg.racks >= 2, "contention needs at least two racks");
    assert!(cfg.burst_duration_ms > 0.0);
    // Host 0 of each rack is its group's coordinator; host `1 + g` of
    // every other rack serves group `g` — so each rack needs one
    // coordinator slot plus one worker slot per foreign group.
    let clos_cfg = ClosConfig {
        racks: cfg.racks,
        hosts_per_rack: cfg.racks + 1,
        spines: cfg.spines,
        num_receivers: 1,
        tor_queue: cfg.tor_queue.clone(),
        seed: cfg.seed,
        ..ClosConfig::default()
    };
    let mut fabric = build_clos_with::<S>(&clos_cfg)?;

    let root = Rng::new(cfg.seed);
    let mut coord_handles = Vec::with_capacity(cfg.racks);
    for g in 0..cfg.racks {
        let workers: Vec<_> = (0..cfg.racks)
            .filter(|&r| r != g)
            .map(|r| fabric.rack_hosts[r][1 + g])
            .collect();
        for (i, &w) in workers.iter().enumerate() {
            let worker = workload::Worker::new(root.fork(10_000 + (g * 1000 + i) as u64));
            fabric
                .sim
                .set_endpoint(w, Box::new(TcpHost::new(cfg.tcp.clone(), Box::new(worker))));
        }
        let mut icfg =
            IncastConfig::paper(workers, cfg.burst_duration_ms, cfg.num_bursts, cfg.seed);
        icfg.flow_base = (g as u32) * 1000;
        let coord = Shared::new(CyclicCoordinator::new(icfg));
        coord_handles.push(coord.handle());
        fabric.sim.set_endpoint(
            fabric.rack_hosts[g][0],
            Box::new(TcpHost::new(cfg.tcp.clone(), Box::new(coord))),
        );
    }

    let step = SimTime::from_ms(1);
    while coord_handles.iter().any(|h| !h.borrow().finished()) && fabric.sim.now() < cfg.horizon {
        let next = (fabric.sim.now() + step).min(cfg.horizon);
        fabric.sim.run_until(next);
    }

    let group_bcts_ms: Vec<Vec<f64>> = coord_handles.iter().map(|h| h.borrow().bcts_ms()).collect();
    let all: Vec<f64> = group_bcts_ms.iter().flatten().copied().collect();
    let mean_bct_ms = if all.is_empty() {
        0.0
    } else {
        all.iter().sum::<f64>() / all.len() as f64
    };

    let tier_peak = |links: &[simnet::LinkId]| {
        links.iter().fold((0u32, 0u64), |(wm, drops), &l| {
            let s = fabric.sim.link(l).queue.stats();
            (wm.max(s.watermark_pkts), drops + s.dropped_pkts)
        })
    };
    let uplinks: Vec<_> = fabric.rack_uplinks.iter().flatten().copied().collect();
    let (uplink_wm, uplink_drops) = tier_peak(&uplinks);
    let (spine_wm, spine_drops) = tier_peak(&fabric.spine_downlinks);

    let mut manifest = RunManifest::new(
        "contention",
        cfg.seed,
        &format!(
            "clos:racks={},hosts_per_rack={},spines={},groups={}",
            cfg.racks, clos_cfg.hosts_per_rack, cfg.spines, cfg.racks
        ),
    )
    .with_git_describe();
    manifest.config_json = cfg.tcp.to_json();
    manifest.events_processed = fabric.sim.counters().events_processed;
    manifest.sim_time_ps = fabric.sim.now().as_ps();
    manifest.counters_json = fabric.sim.counters().to_json();
    manifest.scheduler = fabric.sim.scheduler_name().to_string();
    manifest.tiers_json = Some({
        let mut out = String::new();
        let mut o = telemetry::json::Obj::new(&mut out);
        let tier_json = |wm: u32, drops: u64, n: usize| {
            let mut s = String::new();
            let mut t = telemetry::json::Obj::new(&mut s);
            t.u64("links", n as u64)
                .u64("watermark_pkts", wm as u64)
                .u64("dropped_pkts", drops);
            t.finish();
            s
        };
        o.raw("uplink", &tier_json(uplink_wm, uplink_drops, uplinks.len()))
            .raw(
                "spine",
                &tier_json(spine_wm, spine_drops, fabric.spine_downlinks.len()),
            );
        o.finish();
        out
    });

    let result = ContentionResult {
        group_bcts_ms,
        mean_bct_ms,
        uplink_watermark_pkts: uplink_wm,
        spine_watermark_pkts: spine_wm,
        fabric_drops: uplink_drops + spine_drops,
        finished_at: fabric.sim.now(),
    };
    Ok((result, manifest))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(racks: usize, spines: usize) -> ContentionConfig {
        ContentionConfig {
            racks,
            spines,
            burst_duration_ms: 0.5,
            num_bursts: 2,
            ..ContentionConfig::default()
        }
    }

    #[test]
    fn all_groups_complete_their_bursts() {
        let (r, m) = run_contention(&quick(3, 2)).unwrap();
        assert_eq!(r.group_bcts_ms.len(), 3);
        for bcts in &r.group_bcts_ms {
            assert_eq!(bcts.len(), 2, "every group finishes every burst");
            for &b in bcts {
                assert!(b > 0.0);
            }
        }
        assert!(r.mean_bct_ms > 0.0);
        // Cross-rack traffic actually crossed the fabric tiers.
        assert!(r.uplink_watermark_pkts > 0 || r.spine_watermark_pkts > 0);
        assert_eq!(
            m.topology,
            "clos:racks=3,hosts_per_rack=4,spines=2,groups=3"
        );
        let tiers = m.tiers_json.as_deref().expect("per-tier stats");
        assert!(tiers.contains(r#""uplink":{"links":6"#), "{tiers}");
        assert!(tiers.contains(r#""spine":{"links":2"#), "{tiers}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, ma) = run_contention(&quick(3, 2)).unwrap();
        let (b, mb) = run_contention(&quick(3, 2)).unwrap();
        assert_eq!(a.group_bcts_ms, b.group_bcts_ms);
        assert_eq!(a.fabric_drops, b.fabric_drops);
        assert_eq!(ma.deterministic(), mb.deterministic());
    }

    #[test]
    fn contention_inflates_bcts_versus_a_lone_group() {
        // One group running alone on the same fabric shape vs all racks
        // incasting at once: shared spines must not make the lone run
        // slower than the contended mean.
        let contended = run_contention(&quick(4, 2)).unwrap().0;
        // A single-group baseline: same shape, but the "contention" of
        // only 2 racks means 1 group of 1 worker per foreign rack.
        let lone = run_contention(&quick(2, 2)).unwrap().0;
        assert!(
            contended.mean_bct_ms >= lone.mean_bct_ms * 0.5,
            "contended {} lone {}",
            contended.mean_bct_ms,
            lone.mean_bct_ms
        );
    }
}
