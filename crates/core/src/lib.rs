//! # incast-core — experiment suite for the IMC '24 incast-bursts paper
//!
//! One module per experiment family, each with a config struct and a `run`
//! function, so the bench targets are thin wrappers:
//!
//! - [`modes`]: the Section-4 cyclic-incast engine (Figures 5–7, ablations),
//! - [`contention`]: simultaneous cross-rack incasts sharing a Clos spine
//!   tier (the §3.4 rack-level contention observation),
//! - [`production`]: the Section-3 fleet study (Figures 1, 2, 4; Table 1),
//! - [`stability`]: flow-count stability over time and hosts (Figure 3),
//! - [`straggler`]: per-flow in-flight skew (Figure 7),
//! - [`mitigation`]: the Section-5 mitigation comparison,
//! - [`runner`]: parallel execution of independent simulations,
//! - [`pool`]: the persistent work-stealing thread pool behind the runner,
//! - [`cache`]: the content-addressed run cache shared by sweeps,
//! - [`sweep`]: the sweep engine tying pool + cache + streaming reducers,
//! - [`supervisor`]: failure-tolerant sweep execution (panic isolation,
//!   run budgets, quarantine reproducers, coverage accounting),
//! - [`report`]: ASCII tables/plots for bench output.

pub mod cache;
pub mod contention;
pub mod mitigation;
pub mod modes;
pub mod pool;
pub mod production;
pub mod report;
pub mod runner;
pub mod stability;
pub mod straggler;
pub mod supervisor;
pub mod sweep;

pub use cache::RunCache;
pub use contention::{run_contention, ContentionConfig, ContentionResult};
pub use modes::{
    run_incast, FaultSpec, IncastRunResult, ModesConfig, OperatingMode, RunBudget, TopologySpec,
    TruncationCause,
};
pub use pool::PoolStats;
pub use runner::{default_threads, par_map, par_reduce};
pub use supervisor::{supervised_incast_sweep, RunOutcome, SupervisedSweep, SupervisorConfig};
pub use sweep::{run_incast_cached, run_incast_sweep, IncastSweepAggregate};

/// True when paper-scale parameters were requested via `INCAST_FULL=1`.
pub fn full_scale() -> bool {
    std::env::var("INCAST_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}
