//! # incast-core — experiment suite for the IMC '24 incast-bursts paper
//!
//! One module per experiment family, each with a config struct and a `run`
//! function, so the bench targets are thin wrappers:
//!
//! - [`modes`]: the Section-4 cyclic-incast engine (Figures 5–7, ablations),
//! - [`production`]: the Section-3 fleet study (Figures 1, 2, 4; Table 1),
//! - [`stability`]: flow-count stability over time and hosts (Figure 3),
//! - [`straggler`]: per-flow in-flight skew (Figure 7),
//! - [`mitigation`]: the Section-5 mitigation comparison,
//! - [`runner`]: parallel execution of independent simulations,
//! - [`report`]: ASCII tables/plots for bench output.

pub mod mitigation;
pub mod modes;
pub mod production;
pub mod report;
pub mod runner;
pub mod stability;
pub mod straggler;

pub use modes::{run_incast, IncastRunResult, ModesConfig, OperatingMode};
pub use runner::{default_threads, par_map};

/// True when paper-scale parameters were requested via `INCAST_FULL=1`.
pub fn full_scale() -> bool {
    std::env::var("INCAST_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}
