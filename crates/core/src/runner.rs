//! Parallel experiment execution.
//!
//! A simulation is single-threaded and deterministic; experiments
//! parallelize by running many independent simulations. [`par_map`] is a
//! tiny scoped-thread work queue: items are claimed atomically, results
//! land at their item's index, so the output order (and therefore every
//! downstream aggregate) is independent of thread scheduling.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on up to `threads` worker threads, preserving
/// input order in the output.
///
/// If `f` panics on any item, the first panic's payload is re-raised on the
/// calling thread (`std::thread::scope` alone would replace it with a
/// generic "a scoped thread panicked"), and workers stop claiming further
/// items.
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                    Ok(r) => *slots[i].lock().expect("poisoned result slot") = Some(r),
                    Err(p) => {
                        let mut first = panic_payload.lock().expect("poisoned panic slot");
                        if first.is_none() {
                            *first = Some(p);
                        }
                        // Park the claim counter past the end so every
                        // worker winds down instead of starting new items.
                        next.store(n, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });
    if let Some(p) = panic_payload.into_inner().expect("poisoned panic slot") {
        resume_unwind(p);
    }
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("poisoned result slot")
                .expect("worker thread skipped an item")
        })
        .collect()
}

/// A default thread count: available parallelism minus one, at least one.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(4)
}

/// Merges event-loop profiles from a batch of runs into one footer line to
/// print beside report tables, e.g.
/// `"perf: 3 runs, 1234567 events in 0.41s (3.0M ev/s; ...)"`.
///
/// Wall-clock times add up across runs, so for a parallel batch the ev/s
/// figure is per-core throughput, not the batch's elapsed time.
pub fn profile_footer<'a, I>(profiles: I) -> String
where
    I: IntoIterator<Item = &'a telemetry::LoopProfile>,
{
    let mut merged = telemetry::LoopProfile::new();
    let mut runs = 0usize;
    for p in profiles {
        merged.merge(p);
        runs += 1;
    }
    format!(
        "perf: {} run{}, {}",
        runs,
        if runs == 1 { "" } else { "s" },
        merged.summary()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(items, 8, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn single_thread_path() {
        let out = par_map(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map(vec![5], 64, |&x| x * 2);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn results_match_serial_regardless_of_threads() {
        let items: Vec<u64> = (0..50).collect();
        let serial = par_map(items.clone(), 1, |&x| x.wrapping_mul(0x9E3779B9));
        let parallel = par_map(items, 7, |&x| x.wrapping_mul(0x9E3779B9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn worker_panic_propagates_original_payload() {
        let result = std::panic::catch_unwind(|| {
            par_map((0..64u64).collect::<Vec<_>>(), 4, |&x| {
                if x == 7 {
                    panic!("boom on item {x}");
                }
                x * 2
            })
        });
        let payload = result.expect_err("par_map must panic");
        let msg = payload
            .downcast_ref::<String>()
            .expect("original String payload lost");
        assert_eq!(msg, "boom on item 7");
    }

    #[test]
    fn every_worker_panicking_still_reports_one_payload() {
        let result = std::panic::catch_unwind(|| {
            par_map(vec![1u64, 2, 3, 4, 5, 6, 7, 8], 4, |_| -> u64 {
                panic!("all fail")
            })
        });
        let payload = result.expect_err("par_map must panic");
        let msg = payload.downcast_ref::<&str>().expect("payload lost");
        assert_eq!(*msg, "all fail");
    }

    #[test]
    fn profile_footer_merges_runs() {
        let p = telemetry::LoopProfile {
            tallies: telemetry::EventTallies {
                tx_complete: 10,
                delivery: 20,
                timer: 5,
            },
            wall: std::time::Duration::from_millis(100),
        };
        let s = profile_footer([&p, &p]);
        assert!(s.starts_with("perf: 2 runs, 70 events"), "{s}");
        let s = profile_footer([&p]);
        assert!(s.starts_with("perf: 1 run, 35 events"), "{s}");
    }
}
