//! Parallel experiment execution.
//!
//! A simulation is single-threaded and deterministic; experiments
//! parallelize by running many independent simulations. [`par_map`] is a
//! tiny scoped-thread work queue: items are claimed atomically, results
//! land at their item's index, so the output order (and therefore every
//! downstream aggregate) is independent of thread scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on up to `threads` worker threads, preserving
/// input order in the output.
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("poisoned result slot") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("poisoned result slot")
                .expect("worker thread skipped an item")
        })
        .collect()
}

/// A default thread count: available parallelism minus one, at least one.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(4)
}

/// Merges event-loop profiles from a batch of runs into one footer line to
/// print beside report tables, e.g.
/// `"perf: 3 runs, 1234567 events in 0.41s (3.0M ev/s; ...)"`.
///
/// Wall-clock times add up across runs, so for a parallel batch the ev/s
/// figure is per-core throughput, not the batch's elapsed time.
pub fn profile_footer<'a, I>(profiles: I) -> String
where
    I: IntoIterator<Item = &'a telemetry::LoopProfile>,
{
    let mut merged = telemetry::LoopProfile::new();
    let mut runs = 0usize;
    for p in profiles {
        merged.merge(p);
        runs += 1;
    }
    format!(
        "perf: {} run{}, {}",
        runs,
        if runs == 1 { "" } else { "s" },
        merged.summary()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(items, 8, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn single_thread_path() {
        let out = par_map(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map(vec![5], 64, |&x| x * 2);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn results_match_serial_regardless_of_threads() {
        let items: Vec<u64> = (0..50).collect();
        let serial = par_map(items.clone(), 1, |&x| x.wrapping_mul(0x9E3779B9));
        let parallel = par_map(items, 7, |&x| x.wrapping_mul(0x9E3779B9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn profile_footer_merges_runs() {
        let p = telemetry::LoopProfile {
            tallies: telemetry::EventTallies {
                tx_complete: 10,
                delivery: 20,
                timer: 5,
            },
            wall: std::time::Duration::from_millis(100),
        };
        let s = profile_footer([&p, &p]);
        assert!(s.starts_with("perf: 2 runs, 70 events"), "{s}");
        let s = profile_footer([&p]);
        assert!(s.starts_with("perf: 1 run, 35 events"), "{s}");
    }
}
