//! Parallel experiment execution.
//!
//! A simulation is single-threaded and deterministic; experiments
//! parallelize by running many independent simulations. [`par_map`] keeps
//! its original contract — results land at their item's index, so the
//! output order (and therefore every downstream aggregate) is independent
//! of thread scheduling — but now executes on the persistent
//! [`crate::pool::SweepPool`] instead of spawning fresh threads per call,
//! and writes results into index-disjoint slots instead of per-item
//! mutexes. [`par_reduce`] is the streaming variant: per-item results are
//! folded into an accumulator *in item-index order* as they arrive, so
//! sweep reducers consume summaries incrementally instead of materializing
//! the whole result vector first.

use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::fmt::Debug;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::pool::{SweepPool, Trampoline};

/// Best-effort text of a panic payload (`&str` / `String`, else a marker).
pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The item's `Debug` rendering, truncated so a pathological config can't
/// blow up the panic message (the quarantine reproducer carries the full
/// config; the payload only needs to identify the scenario).
fn debug_key<T: Debug>(item: &T) -> String {
    let mut s = format!("{item:?}");
    if s.len() > 256 {
        let mut cut = 253;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        s.truncate(cut);
        s.push_str("...");
    }
    s
}

/// Runs `f` on item `i`, re-raising any panic with the failing item's
/// index and scenario key prepended — a sweep over hundreds of configs
/// otherwise surfaces a bare "index out of bounds" with no hint of which
/// scenario hit it.
fn run_item<T: Debug, R, F: Fn(&T) -> R>(f: &F, items: &[T], i: usize) -> R {
    match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
        Ok(r) => r,
        Err(p) => std::panic::panic_any(format!(
            "sweep item {i} ({}): {}",
            debug_key(&items[i]),
            panic_message(&*p)
        )),
    }
}

/// One result slot, written by exactly one worker (the one that claimed the
/// slot's index) and read by the submitter after the job's completion latch.
struct Slot<R> {
    value: UnsafeCell<MaybeUninit<R>>,
    written: AtomicBool,
}

// Distinct indices are written by distinct workers and never aliased; the
// submitter only reads after the job latch establishes happens-before.
unsafe impl<R: Send> Sync for Slot<R> {}

struct MapCtx<'a, T, R, F> {
    items: &'a [T],
    f: &'a F,
    slots: &'a [Slot<R>],
}

/// # Safety
/// Called with a `ctx` pointing at the matching `MapCtx` and a unique,
/// in-bounds index per job (the pool guarantees both).
unsafe fn map_one<T: Debug, R, F: Fn(&T) -> R>(ctx: *const (), i: usize) {
    let ctx = &*(ctx as *const MapCtx<'_, T, R, F>);
    let r = run_item(ctx.f, ctx.items, i);
    (*ctx.slots[i].value.get()).write(r);
    ctx.slots[i].written.store(true, Ordering::Release);
}

/// Applies `f` to every item on up to `threads` participants (the calling
/// thread plus persistent pool workers), preserving input order in the
/// output.
///
/// If `f` panics on any item, the first panic's payload is re-raised on the
/// calling thread (`std::thread::scope` alone would replace it with a
/// generic "a scoped thread panicked"), and workers stop claiming further
/// items. The payload is a `String` prefixed with the failing item's index
/// and `Debug` key, so a sweep failure names its scenario.
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync + Debug,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return (0..n).map(|i| run_item(&f, &items, i)).collect();
    }
    let slots: Vec<Slot<R>> = (0..n)
        .map(|_| Slot {
            value: UnsafeCell::new(MaybeUninit::uninit()),
            written: AtomicBool::new(false),
        })
        .collect();
    let ctx = MapCtx {
        items: &items,
        f: &f,
        slots: &slots,
    };
    // Safety: `ctx` outlives `finish()` below, and `map_one` writes only
    // the claimed index's slot.
    let handle = unsafe {
        SweepPool::global().submit(
            map_one::<T, R, F> as Trampoline,
            &ctx as *const MapCtx<'_, T, R, F> as *const (),
            n,
            threads - 1,
            threads,
        )
    };
    handle.participate();
    if let Some(p) = handle.finish() {
        // Drop whatever results landed before the panic, then re-raise.
        for s in &slots {
            if s.written.load(Ordering::Acquire) {
                unsafe { (*s.value.get()).assume_init_drop() };
            }
        }
        resume_unwind(p);
    }
    slots
        .into_iter()
        .map(|s| {
            assert!(s.written.into_inner(), "worker thread skipped an item");
            unsafe { s.value.into_inner().assume_init() }
        })
        .collect()
}

/// The reorder channel between pool workers and the folding submitter.
struct Channel<R> {
    q: Mutex<Vec<(usize, R)>>,
    cv: Condvar,
}

struct ReduceCtx<'a, T, R, F> {
    items: &'a [T],
    map: &'a F,
    chan: &'a Channel<R>,
}

/// # Safety
/// Same contract as `map_one`.
unsafe fn reduce_one<T: Debug, R, F: Fn(&T) -> R>(ctx: *const (), i: usize) {
    let ctx = &*(ctx as *const ReduceCtx<'_, T, R, F>);
    let r = run_item(ctx.map, ctx.items, i);
    let mut q = ctx.chan.q.lock().expect("reduce channel");
    q.push((i, r));
    drop(q);
    ctx.chan.cv.notify_one();
}

/// Streaming map-reduce: `map` runs on pool workers, and the calling thread
/// folds each result into `acc` strictly in item-index order as results
/// arrive (a small reorder buffer bridges out-of-order completion). The
/// fixed fold order makes the accumulator byte-identical across thread
/// counts, while memory stays at `O(in-flight results)` instead of
/// `O(items)`.
///
/// With `threads <= 1` the whole reduction runs inline on the caller.
/// Panics from `map` re-raise their original payload on the caller.
pub fn par_reduce<T, R, A, F, G>(items: Vec<T>, threads: usize, map: F, init: A, mut fold: G) -> A
where
    T: Send + Sync + Debug,
    R: Send,
    F: Fn(&T) -> R + Sync,
    G: FnMut(A, &T, R) -> A,
{
    let n = items.len();
    if n == 0 {
        return init;
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        let mut acc = init;
        for i in 0..n {
            let r = run_item(&map, &items, i);
            acc = fold(acc, &items[i], r);
        }
        return acc;
    }
    let chan = Channel {
        q: Mutex::new(Vec::new()),
        cv: Condvar::new(),
    };
    let ctx = ReduceCtx {
        items: &items,
        map: &map,
        chan: &chan,
    };
    // Safety: `ctx` outlives `finish()`, and the channel push is the only
    // shared write (guarded by its mutex). All `threads` participants are
    // pool workers; the caller folds instead of computing, so progress
    // relies on the pool's >= 1 worker threads.
    let handle = unsafe {
        SweepPool::global().submit(
            reduce_one::<T, R, F> as Trampoline,
            &ctx as *const ReduceCtx<'_, T, R, F> as *const (),
            n,
            threads,
            threads,
        )
    };
    let mut acc = init;
    let mut reorder: BTreeMap<usize, R> = BTreeMap::new();
    let mut next = 0usize;
    let mut received = 0usize;
    while received < n {
        let batch = {
            let mut q = chan.q.lock().expect("reduce channel");
            loop {
                if !q.is_empty() {
                    break std::mem::take(&mut *q);
                }
                // `is_done` while holding the channel lock: sends happen
                // before their item's completion decrement, so done + empty
                // means no further sends can arrive (items were skipped
                // after a panic).
                if handle.is_done() {
                    break Vec::new();
                }
                let (g, _) = chan
                    .cv
                    .wait_timeout(q, Duration::from_millis(10))
                    .expect("reduce channel");
                q = g;
            }
        };
        if batch.is_empty() {
            break;
        }
        received += batch.len();
        for (i, r) in batch {
            reorder.insert(i, r);
        }
        while let Some(r) = reorder.remove(&next) {
            acc = fold(acc, &items[next], r);
            next += 1;
        }
    }
    if let Some(p) = handle.finish() {
        resume_unwind(p);
    }
    acc
}

/// A default thread count: available parallelism minus one, at least one.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(4)
}

/// Merges event-loop profiles from a batch of runs into one footer line to
/// print beside report tables, e.g.
/// `"perf: 3 runs, 1234567 events in 0.41s (3.0M ev/s; ...)"`.
///
/// Wall-clock times add up across runs, so for a parallel batch the ev/s
/// figure is per-core throughput, not the batch's elapsed time.
pub fn profile_footer<'a, I>(profiles: I) -> String
where
    I: IntoIterator<Item = &'a telemetry::LoopProfile>,
{
    let mut merged = telemetry::LoopProfile::new();
    let mut runs = 0usize;
    for p in profiles {
        merged.merge(p);
        runs += 1;
    }
    format!(
        "perf: {} run{}, {}",
        runs,
        if runs == 1 { "" } else { "s" },
        merged.summary()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(items, 8, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn single_thread_path() {
        let out = par_map(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map(vec![5], 64, |&x| x * 2);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn results_match_serial_regardless_of_threads() {
        let items: Vec<u64> = (0..50).collect();
        let serial = par_map(items.clone(), 1, |&x| x.wrapping_mul(0x9E3779B9));
        let parallel = par_map(items, 7, |&x| x.wrapping_mul(0x9E3779B9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn worker_panic_propagates_labeled_payload() {
        let result = std::panic::catch_unwind(|| {
            par_map((0..64u64).collect::<Vec<_>>(), 4, |&x| {
                if x == 7 {
                    panic!("boom on item {x}");
                }
                x * 2
            })
        });
        let payload = result.expect_err("par_map must panic");
        let msg = payload
            .downcast_ref::<String>()
            .expect("String payload lost");
        assert_eq!(msg, "sweep item 7 (7): boom on item 7");
    }

    #[test]
    fn inline_path_labels_panics_too() {
        let result = std::panic::catch_unwind(|| {
            par_map(vec![10u64, 11, 12], 1, |&x| {
                if x == 11 {
                    panic!("inline boom");
                }
                x
            })
        });
        let payload = result.expect_err("par_map must panic");
        let msg = payload.downcast_ref::<String>().expect("payload lost");
        assert_eq!(msg, "sweep item 1 (11): inline boom");
    }

    #[test]
    fn oversized_item_keys_are_truncated() {
        let big = vec!["x"; 300];
        let result =
            std::panic::catch_unwind(|| par_map(vec![big], 1, |_| -> u64 { panic!("heavy") }));
        let msg_owner = result.expect_err("par_map must panic");
        let msg = msg_owner.downcast_ref::<String>().expect("payload lost");
        assert!(msg.contains("..."), "{msg}");
        assert!(msg.ends_with(": heavy"), "{msg}");
        assert!(msg.len() < 300, "{}", msg.len());
    }

    #[test]
    fn every_worker_panicking_still_reports_one_payload() {
        let result = std::panic::catch_unwind(|| {
            par_map(vec![1u64, 2, 3, 4, 5, 6, 7, 8], 4, |_| -> u64 {
                panic!("all fail")
            })
        });
        let payload = result.expect_err("par_map must panic");
        let msg = payload.downcast_ref::<String>().expect("payload lost");
        assert!(msg.contains("all fail"), "{msg}");
        assert!(msg.starts_with("sweep item "), "{msg}");
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        // A panicking job must not poison the persistent pool for later
        // submissions from the same process.
        let _ = std::panic::catch_unwind(|| {
            par_map(vec![1u64, 2, 3, 4], 4, |_| -> u64 { panic!("one-shot") })
        });
        let out = par_map((0..32u64).collect::<Vec<_>>(), 4, |&x| x + 1);
        assert_eq!(out[31], 32);
    }

    #[test]
    fn nested_par_map_does_not_deadlock() {
        // Submitters participate in their own jobs, so even if every pool
        // worker is parked on outer jobs, the inner maps complete.
        let out = par_map((0..8u64).collect::<Vec<_>>(), 4, |&x| {
            par_map((0..8u64).collect::<Vec<_>>(), 4, |&y| x * 10 + y)
                .into_iter()
                .sum::<u64>()
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (0..8).map(|y| i as u64 * 10 + y).sum::<u64>());
        }
    }

    #[test]
    fn heavy_types_drop_cleanly() {
        // Results with heap payloads exercise slot initialization and drop.
        let out = par_map((0..100u64).collect::<Vec<_>>(), 8, |&x| vec![x; 3]);
        assert_eq!(out[99], vec![99, 99, 99]);
        // And on the panic path, already-written Vec results are dropped.
        let _ = std::panic::catch_unwind(|| {
            par_map((0..100u64).collect::<Vec<_>>(), 8, |&x| {
                if x == 50 {
                    panic!("mid-job");
                }
                vec![x; 3]
            })
        });
    }

    #[test]
    fn par_reduce_folds_in_index_order() {
        let items: Vec<u64> = (0..200).collect();
        let folded = par_reduce(
            items.clone(),
            8,
            |&x| x * 2,
            Vec::new(),
            |mut acc: Vec<u64>, _item, r| {
                acc.push(r);
                acc
            },
        );
        let serial: Vec<u64> = items.iter().map(|&x| x * 2).collect();
        assert_eq!(folded, serial);
    }

    #[test]
    fn par_reduce_matches_serial_accumulator() {
        let items: Vec<u64> = (0..64).collect();
        let sum = |acc: u64, item: &u64, r: u64| acc.wrapping_add(r ^ item);
        let serial = par_reduce(items.clone(), 1, |&x| x * 3, 0u64, sum);
        let parallel = par_reduce(items, 6, |&x| x * 3, 0u64, sum);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_reduce_empty_returns_init() {
        let acc = par_reduce(Vec::<u32>::new(), 4, |&x| x, 42u32, |a, _, _| a + 1);
        assert_eq!(acc, 42);
    }

    #[test]
    fn par_reduce_panic_propagates_payload() {
        let result = std::panic::catch_unwind(|| {
            par_reduce(
                (0..64u64).collect::<Vec<_>>(),
                4,
                |&x| {
                    if x == 9 {
                        panic!("reduce boom {x}");
                    }
                    x
                },
                0u64,
                |a, _, r| a + r,
            )
        });
        let payload = result.expect_err("par_reduce must panic");
        let msg = payload.downcast_ref::<String>().expect("payload lost");
        assert_eq!(msg, "sweep item 9 (9): reduce boom 9");
    }

    #[test]
    fn profile_footer_merges_runs() {
        let p = telemetry::LoopProfile {
            tallies: telemetry::EventTallies {
                tx_complete: 10,
                delivery: 20,
                timer: 5,
                fault: 0,
                ctrl: 0,
            },
            wall: std::time::Duration::from_millis(100),
        };
        let s = profile_footer([&p, &p]);
        assert!(s.starts_with("perf: 2 runs, 70 events"), "{s}");
        let s = profile_footer([&p]);
        assert!(s.starts_with("perf: 1 run, 35 events"), "{s}");
    }
}
