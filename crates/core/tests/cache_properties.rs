//! Cache-correctness properties:
//!
//! 1. The canonical key is injective over config fields: two configs
//!    differing in exactly one field — any field, including nested ones —
//!    never collide into the same key string.
//! 2. A cache hit is byte-identical to the cold run: the disk encoding of
//!    a decoded entry equals the encoding of the freshly computed result,
//!    so warm aggregates cannot drift.

use incast_core::cache::{fnv1a64, incast_key, trace_key, CacheValue, RunCache};
use incast_core::modes::{run_incast, MitigationKind, ModesConfig};
use incast_core::production::TraceConfig;
use simnet::{BufferPolicy, SimTime};
use workload::{BurstSchedule, Grouping, ServiceId};

/// The base config plus one variant per `ModesConfig` field (nested
/// structs perturbed through a representative inner field).
fn one_field_variants() -> Vec<(&'static str, ModesConfig)> {
    let base = ModesConfig::default;
    let mut v: Vec<(&'static str, ModesConfig)> = Vec::new();
    v.push(("num_flows", {
        let mut c = base();
        c.num_flows += 1;
        c
    }));
    v.push(("burst_duration_ms", {
        let mut c = base();
        c.burst_duration_ms += 0.5;
        c
    }));
    v.push(("num_bursts", {
        let mut c = base();
        c.num_bursts += 1;
        c
    }));
    v.push(("warmup_bursts", {
        let mut c = base();
        c.warmup_bursts += 1;
        c
    }));
    v.push(("gap", {
        let mut c = base();
        c.gap = SimTime::from_ms(3);
        c
    }));
    v.push(("tcp.mss", {
        let mut c = base();
        c.tcp.mss -= 6;
        c
    }));
    v.push(("tcp.init_cwnd_segs", {
        let mut c = base();
        c.tcp.init_cwnd_segs += 1;
        c
    }));
    v.push(("tor_queue.ecn_threshold_pkts", {
        let mut c = base();
        c.tor_queue.ecn_threshold_pkts = Some(66);
        c
    }));
    v.push(("receiver_tor_buffer", {
        let mut c = base();
        c.receiver_tor_buffer = Some((4_000_000, BufferPolicy::DynamicThreshold { alpha: 1.0 }));
        c
    }));
    v.push(("queue_sample", {
        let mut c = base();
        c.queue_sample = SimTime::from_us(21);
        c
    }));
    v.push(("flight_sample", {
        let mut c = base();
        c.flight_sample = Some(SimTime::from_us(100));
        c
    }));
    v.push(("grouping", {
        let mut c = base();
        c.grouping = Some(Grouping {
            group_size: 10,
            group_gap: SimTime::from_us(500),
        });
        c
    }));
    v.push(("schedule", {
        let mut c = base();
        c.schedule = BurstSchedule::Periodic {
            period: SimTime::from_ms(17),
        };
        c
    }));
    v.push(("seed", {
        let mut c = base();
        c.seed += 1;
        c
    }));
    v.push(("horizon", {
        let mut c = base();
        c.horizon = SimTime::from_secs(31);
        c
    }));
    v.push(("faults.straggler", {
        let mut c = base();
        c.faults.straggler = Some((SimTime::from_ms(1), SimTime::from_ms(5), 0));
        c
    }));
    v.push(("faults.blackhole", {
        let mut c = base();
        c.faults.blackhole = Some((SimTime::from_ms(1), SimTime::from_ms(5)));
        c
    }));
    // Every control-plane field: flipping any one of them must produce a
    // distinct run, so each must perturb the key on its own.
    v.push(("mitigation.kind", {
        let mut c = base();
        c.mitigation.kind = MitigationKind::Pulser;
        c
    }));
    v.push(("mitigation.kind (distributed)", {
        let mut c = base();
        c.mitigation.kind = MitigationKind::Distributed;
        c
    }));
    v.push(("mitigation.notif_loss", {
        let mut c = base();
        c.mitigation.notif_loss = 0.5;
        c
    }));
    v.push(("mitigation.flow_threshold", {
        let mut c = base();
        c.mitigation.flow_threshold += 1;
        c
    }));
    v.push(("mitigation.window_us", {
        let mut c = base();
        c.mitigation.window_us += 50;
        c
    }));
    v.push(("mitigation.pause_us", {
        let mut c = base();
        c.mitigation.pause_us += 50;
        c
    }));
    v.push(("mitigation.retry_timeout_us", {
        let mut c = base();
        c.mitigation.retry_timeout_us += 50;
        c
    }));
    v.push(("mitigation.max_retries", {
        let mut c = base();
        c.mitigation.max_retries += 1;
        c
    }));
    v
}

#[test]
fn one_field_difference_never_collides() {
    let base_key = incast_key(&ModesConfig::default());
    let variants = one_field_variants();
    let mut keys = vec![("base", base_key)];
    for (name, cfg) in &variants {
        keys.push((name, incast_key(cfg)));
    }
    for (i, (ni, ki)) in keys.iter().enumerate() {
        for (nj, kj) in keys.iter().skip(i + 1) {
            assert_ne!(ki, kj, "configs '{ni}' and '{nj}' collided: {ki}");
        }
    }
}

#[test]
fn trace_keys_separate_every_field() {
    let base = || TraceConfig::new(ServiceId::Aggregator, 1);
    let variants = [
        {
            let mut c = base();
            c.service = ServiceId::Storage;
            c
        },
        {
            let mut c = base();
            c.duration = SimTime::from_secs(1);
            c
        },
        {
            let mut c = base();
            c.seed = 2;
            c
        },
        {
            let mut c = base();
            c.contention = false;
            c
        },
        {
            let mut c = base();
            c.queue_sample = SimTime::from_us(101);
            c
        },
    ];
    let base_key = trace_key(&base());
    let keys: Vec<String> = variants.iter().map(trace_key).collect();
    for (i, k) in keys.iter().enumerate() {
        assert_ne!(k, &base_key, "variant {i} collided with base");
        for other in keys.iter().skip(i + 1) {
            assert_ne!(k, other);
        }
    }
}

#[test]
fn warm_hit_is_byte_identical_to_cold_run() {
    let dir = std::env::temp_dir().join(format!(
        "incast-cache-prop-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ModesConfig {
        num_flows: 10,
        burst_duration_ms: 1.0,
        num_bursts: 3,
        warmup_bursts: 1,
        flight_sample: Some(SimTime::from_us(200)),
        seed: 9,
        ..ModesConfig::default()
    };
    let cold = run_incast(&cfg);

    let cache = RunCache::with_disk(&dir);
    let first = incast_core::run_incast_cached(&cfg, &cache);
    assert_eq!(cache.stats().misses, 1);
    // Fresh cache over the same dir: forces the disk decode path.
    let cache2 = RunCache::with_disk(&dir);
    let decoded = incast_core::run_incast_cached(&cfg, &cache2);
    assert_eq!(cache2.stats().disk_hits, 1);

    // Byte identity through the full encode/decode cycle, and against a
    // plain uncached run (wall-clock is the one field allowed to differ
    // between two separate executions; everything before it must match).
    let strip_wall = |s: &str| s.split(",\"p_wall_ns\":").next().unwrap().to_string();
    assert_eq!(first.encode(), decoded.encode());
    assert_eq!(strip_wall(&cold.encode()), strip_wall(&decoded.encode()));
    // Spot-check decoded structure (not just the encoding): per-burst
    // BCTs, flight series, and the profile survive exactly.
    assert_eq!(cold.bcts_ms, decoded.bcts_ms);
    assert_eq!(cold.flights.len(), decoded.flights.len());
    assert_eq!(cold.profile.tallies, decoded.profile.tallies);
    assert_eq!(cold.finished_at, decoded.finished_at);

    let _ = std::fs::remove_dir_all(&dir);
}

/// 3. A damaged on-disk entry — truncated, garbled, or outright binary
///    noise — is a cache *miss*, never a panic or a wrong decode: the
///    strict scanner rejects it and the value is recomputed and rewritten.
#[test]
fn corrupted_disk_entries_miss_instead_of_panicking() {
    let dir = std::env::temp_dir().join(format!(
        "incast-cache-corrupt-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ModesConfig {
        num_flows: 4,
        burst_duration_ms: 0.5,
        num_bursts: 1,
        warmup_bursts: 0,
        seed: 3,
        ..ModesConfig::default()
    };
    let key = incast_key(&cfg);
    let entry = dir.join(format!("{:016x}.jsonl", fnv1a64(&key)));

    // Seed the directory with one valid entry.
    let seed_cache = RunCache::with_disk(&dir);
    let reference = incast_core::run_incast_cached(&cfg, &seed_cache);
    assert_eq!(seed_cache.stats().disk_writes, 1);
    let pristine = std::fs::read_to_string(&entry).expect("entry written");
    let (meta, payload) = pristine.split_once('\n').expect("meta line");

    let corruptions: Vec<(&str, String)> = vec![
        // Payload cut mid-record: the scanner runs off the end.
        (
            "truncated payload",
            format!("{meta}\n{}", &payload[..payload.len() / 2]),
        ),
        // Meta line survives but the payload is not JSON at all.
        ("garbled payload", format!("{meta}\nnot json {{]!\n")),
        // A digit swapped for a letter deep inside an otherwise-valid body.
        (
            "flipped byte",
            format!("{meta}\n{}", payload.replacen(':', ":x", 1)),
        ),
        // Nothing after the meta line.
        ("missing payload", format!("{meta}\n")),
        // Zero-length file.
        ("empty file", String::new()),
        // Meta mismatch (wrong schema/key) must miss even with a valid body.
        ("garbled meta", format!("{{\"v\":999}}\n{payload}")),
        // Binary noise, including an invalid-UTF-8 decoy handled below.
        ("binary noise", "\u{1}\u{2}\u{3}\n[1,2,".to_string()),
    ];

    for (name, body) in &corruptions {
        std::fs::write(&entry, body).expect("inject corruption");
        let cache = RunCache::with_disk(&dir);
        let recomputed = incast_core::run_incast_cached(&cfg, &cache);
        let stats = cache.stats();
        assert_eq!(stats.disk_hits, 0, "'{name}' decoded as a hit");
        assert_eq!(stats.misses, 1, "'{name}' did not fall through to a miss");
        assert_eq!(
            recomputed.bcts_ms, reference.bcts_ms,
            "'{name}' recompute diverged"
        );
        // The recompute must also have repaired the entry on disk (byte
        // identical up to the wall-clock field, which varies per execution).
        let strip_wall = |s: &str| s.split(",\"p_wall_ns\":").next().unwrap().to_string();
        let repaired = std::fs::read_to_string(&entry).expect("entry rewritten");
        assert_eq!(
            strip_wall(&repaired),
            strip_wall(&pristine),
            "'{name}' left a bad entry behind"
        );
    }

    // Mid-write kill: a writer died after creating its temp file but
    // before the atomic rename. The stale `.tmp` must be invisible to
    // readers (the published entry is still the pristine one), and a
    // subsequent write must publish cleanly alongside it.
    std::fs::write(&entry, &pristine).expect("restore entry");
    let stale_tmp = dir.join(format!(".{:016x}.jsonl.999999.tmp", fnv1a64(&key)));
    std::fs::write(&stale_tmp, &pristine[..pristine.len() / 3]).expect("stale tmp");
    {
        let cache = RunCache::with_disk(&dir);
        let warmed = incast_core::run_incast_cached(&cfg, &cache);
        assert_eq!(cache.stats().disk_hits, 1, "stale tmp shadowed the entry");
        assert_eq!(warmed.bcts_ms, reference.bcts_ms);
    }
    // Kill the published entry too: only the half-written tmp remains.
    // That is a miss, and the recompute republishes a valid entry.
    std::fs::remove_file(&entry).expect("drop entry");
    {
        let cache = RunCache::with_disk(&dir);
        let recomputed = incast_core::run_incast_cached(&cfg, &cache);
        let stats = cache.stats();
        assert_eq!(stats.disk_hits, 0, "orphan tmp decoded as a hit");
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.disk_writes, 1);
        assert_eq!(recomputed.bcts_ms, reference.bcts_ms);
        let strip_wall = |s: &str| s.split(",\"p_wall_ns\":").next().unwrap().to_string();
        let republished = std::fs::read_to_string(&entry).expect("entry republished");
        assert_eq!(strip_wall(&republished), strip_wall(&pristine));
    }
    let _ = std::fs::remove_file(&stale_tmp);

    // Invalid UTF-8 bytes (read_to_string fails entirely).
    std::fs::write(&entry, [0xFF, 0xFE, 0x00, 0xC3]).expect("inject corruption");
    let cache = RunCache::with_disk(&dir);
    let recomputed = incast_core::run_incast_cached(&cfg, &cache);
    assert_eq!(cache.stats().disk_hits, 0);
    assert_eq!(recomputed.bcts_ms, reference.bcts_ms);

    let _ = std::fs::remove_dir_all(&dir);
}
