//! Cache-correctness properties:
//!
//! 1. The canonical key is injective over config fields: two configs
//!    differing in exactly one field — any field, including nested ones —
//!    never collide into the same key string.
//! 2. A cache hit is byte-identical to the cold run: the disk encoding of
//!    a decoded entry equals the encoding of the freshly computed result,
//!    so warm aggregates cannot drift.

use incast_core::cache::{incast_key, trace_key, CacheValue, RunCache};
use incast_core::modes::{run_incast, ModesConfig};
use incast_core::production::TraceConfig;
use simnet::{BufferPolicy, SimTime};
use workload::{BurstSchedule, Grouping, ServiceId};

/// The base config plus one variant per `ModesConfig` field (nested
/// structs perturbed through a representative inner field).
fn one_field_variants() -> Vec<(&'static str, ModesConfig)> {
    let base = ModesConfig::default;
    let mut v: Vec<(&'static str, ModesConfig)> = Vec::new();
    v.push(("num_flows", {
        let mut c = base();
        c.num_flows += 1;
        c
    }));
    v.push(("burst_duration_ms", {
        let mut c = base();
        c.burst_duration_ms += 0.5;
        c
    }));
    v.push(("num_bursts", {
        let mut c = base();
        c.num_bursts += 1;
        c
    }));
    v.push(("warmup_bursts", {
        let mut c = base();
        c.warmup_bursts += 1;
        c
    }));
    v.push(("gap", {
        let mut c = base();
        c.gap = SimTime::from_ms(3);
        c
    }));
    v.push(("tcp.mss", {
        let mut c = base();
        c.tcp.mss -= 6;
        c
    }));
    v.push(("tcp.init_cwnd_segs", {
        let mut c = base();
        c.tcp.init_cwnd_segs += 1;
        c
    }));
    v.push(("tor_queue.ecn_threshold_pkts", {
        let mut c = base();
        c.tor_queue.ecn_threshold_pkts = Some(66);
        c
    }));
    v.push(("receiver_tor_buffer", {
        let mut c = base();
        c.receiver_tor_buffer = Some((4_000_000, BufferPolicy::DynamicThreshold { alpha: 1.0 }));
        c
    }));
    v.push(("queue_sample", {
        let mut c = base();
        c.queue_sample = SimTime::from_us(21);
        c
    }));
    v.push(("flight_sample", {
        let mut c = base();
        c.flight_sample = Some(SimTime::from_us(100));
        c
    }));
    v.push(("grouping", {
        let mut c = base();
        c.grouping = Some(Grouping {
            group_size: 10,
            group_gap: SimTime::from_us(500),
        });
        c
    }));
    v.push(("schedule", {
        let mut c = base();
        c.schedule = BurstSchedule::Periodic {
            period: SimTime::from_ms(17),
        };
        c
    }));
    v.push(("seed", {
        let mut c = base();
        c.seed += 1;
        c
    }));
    v.push(("horizon", {
        let mut c = base();
        c.horizon = SimTime::from_secs(31);
        c
    }));
    v
}

#[test]
fn one_field_difference_never_collides() {
    let base_key = incast_key(&ModesConfig::default());
    let variants = one_field_variants();
    let mut keys = vec![("base", base_key)];
    for (name, cfg) in &variants {
        keys.push((name, incast_key(cfg)));
    }
    for (i, (ni, ki)) in keys.iter().enumerate() {
        for (nj, kj) in keys.iter().skip(i + 1) {
            assert_ne!(ki, kj, "configs '{ni}' and '{nj}' collided: {ki}");
        }
    }
}

#[test]
fn trace_keys_separate_every_field() {
    let base = || TraceConfig::new(ServiceId::Aggregator, 1);
    let variants = [
        {
            let mut c = base();
            c.service = ServiceId::Storage;
            c
        },
        {
            let mut c = base();
            c.duration = SimTime::from_secs(1);
            c
        },
        {
            let mut c = base();
            c.seed = 2;
            c
        },
        {
            let mut c = base();
            c.contention = false;
            c
        },
        {
            let mut c = base();
            c.queue_sample = SimTime::from_us(101);
            c
        },
    ];
    let base_key = trace_key(&base());
    let keys: Vec<String> = variants.iter().map(trace_key).collect();
    for (i, k) in keys.iter().enumerate() {
        assert_ne!(k, &base_key, "variant {i} collided with base");
        for other in keys.iter().skip(i + 1) {
            assert_ne!(k, other);
        }
    }
}

#[test]
fn warm_hit_is_byte_identical_to_cold_run() {
    let dir = std::env::temp_dir().join(format!(
        "incast-cache-prop-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ModesConfig {
        num_flows: 10,
        burst_duration_ms: 1.0,
        num_bursts: 3,
        warmup_bursts: 1,
        flight_sample: Some(SimTime::from_us(200)),
        seed: 9,
        ..ModesConfig::default()
    };
    let cold = run_incast(&cfg);

    let cache = RunCache::with_disk(&dir);
    let first = incast_core::run_incast_cached(&cfg, &cache);
    assert_eq!(cache.stats().misses, 1);
    // Fresh cache over the same dir: forces the disk decode path.
    let cache2 = RunCache::with_disk(&dir);
    let decoded = incast_core::run_incast_cached(&cfg, &cache2);
    assert_eq!(cache2.stats().disk_hits, 1);

    // Byte identity through the full encode/decode cycle, and against a
    // plain uncached run (wall-clock is the one field allowed to differ
    // between two separate executions; everything before it must match).
    let strip_wall = |s: &str| s.split(",\"p_wall_ns\":").next().unwrap().to_string();
    assert_eq!(first.encode(), decoded.encode());
    assert_eq!(strip_wall(&cold.encode()), strip_wall(&decoded.encode()));
    // Spot-check decoded structure (not just the encoding): per-burst
    // BCTs, flight series, and the profile survive exactly.
    assert_eq!(cold.bcts_ms, decoded.bcts_ms);
    assert_eq!(cold.flights.len(), decoded.flights.len());
    assert_eq!(cold.profile.tallies, decoded.profile.tallies);
    assert_eq!(cold.finished_at, decoded.finished_at);

    let _ = std::fs::remove_dir_all(&dir);
}
