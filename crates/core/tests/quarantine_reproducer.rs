//! Proof that quarantine reproducers compile: the module below holds one
//! verbatim emission of `supervisor::reproducer_source`, checked in as a
//! real test, plus a guard asserting the emitter still produces exactly
//! this text. If the emitter drifts (new config fields, changed imports),
//! the guard fails and this file must be regenerated — keeping the
//! "ready-to-paste" promise honest.

#[rustfmt::skip]
mod emitted {
// Quarantined by the supervised sweep runner.
// cause: panic: example cause
// Paste into crates/core/tests/<file>.rs and run:
//   cargo test -p incast-core --test <file>
#[test]
fn quarantined_config_still_reproduces() {
    #[allow(unused_imports)]
    use incast_core::modes::{FaultSpec, MitigationKind::*, MitigationSpec, ModesConfig, TopologySpec::*};
    #[allow(unused_imports)]
    use simnet::{BufferPolicy::*, QueueConfig, SimTime};
    #[allow(unused_imports)]
    use transport::{CcaKind::*, DelayedAckConfig, PacingConfig, TcpConfig, TransportKind::*};
    #[allow(unused_imports)]
    use workload::{BurstSchedule::*, Grouping};
    let cfg = ModesConfig { num_flows: 4, topology: Dumbbell, burst_duration_ms: 0.25, num_bursts: 1, warmup_bursts: 2, gap: SimTime(2000000000), tcp: TcpConfig { transport: Tcp, mss: 1446, init_cwnd_segs: 10, min_cwnd_segs: 1, cca: Dctcp { g: 0.0625 }, initial_rto: SimTime(1000000000000), min_rto: SimTime(200000000000), max_rto: SimTime(60000000000000), pto_granularity: SimTime(1000000000), delayed_ack: None, flight_sample_interval: None, pacing: None, idle_restart_after: None }, tor_queue: QueueConfig { capacity_bytes: 2000000, capacity_pkts: Some(1333), ecn_threshold_pkts: Some(65), ecn_threshold_bytes: None }, receiver_tor_buffer: None, queue_sample: SimTime(20000000), flight_sample: None, grouping: None, schedule: AfterCompletion { gap: SimTime(2000000000) }, seed: 1, horizon: SimTime(30000000000000), faults: FaultSpec { blackhole: None, loss: None, corrupt: None, ecn_off: None, buffer_shrink: None, straggler: None, spine_blackhole: None, spine_loss: None }, mitigation: MitigationSpec { kind: Off, notif_loss: 0.0, flow_threshold: 8, window_us: 100, pause_us: 150, retry_timeout_us: 100, max_retries: 5 } };
    let _ = incast_core::run_incast(&cfg);
}
}

#[test]
fn emitter_output_matches_checked_in_reproducer() {
    let cfg = incast_core::ModesConfig {
        num_flows: 4,
        burst_duration_ms: 0.25,
        num_bursts: 1,
        ..incast_core::ModesConfig::default()
    };
    let emitted = incast_core::supervisor::reproducer_source(
        "quarantined_config_still_reproduces",
        &cfg,
        "panic: example cause",
    );
    let this_file = include_str!("quarantine_reproducer.rs");
    assert!(
        this_file.contains(&emitted),
        "reproducer emitter drifted from the checked-in copy; \
         regenerate the block above from reproducer_source"
    );
}
