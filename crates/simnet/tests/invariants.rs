//! Simulator-level invariants under randomized inputs.
//!
//! Formerly proptest-based; rewritten as seeded `stats::Rng` case loops so
//! the workspace carries no external dev-dependencies (the build containers
//! are air-gapped). The invariants checked are unchanged.

use simnet::{EcnQueue, EnqueueOutcome, FlowId, NodeId, Packet, QueueConfig, SimTime};

fn pkt(payload: u32) -> Packet {
    Packet::data(
        FlowId(0),
        NodeId(0),
        NodeId(1),
        0,
        payload,
        false,
        SimTime::ZERO,
    )
}

/// Conservation: everything offered is either dequeued, dropped, or
/// still queued; byte counters agree with packet counters.
#[test]
fn queue_conserves_packets_and_bytes() {
    let mut rng = stats::Rng::new(0x1BAD_CAFE);
    for _ in 0..64 {
        let n = rng.range_u64(1, 300) as usize;
        let sizes: Vec<u32> = (0..n).map(|_| rng.range_u64(1, 1459) as u32).collect();
        let cap_pkts = rng.range_u64(1, 63) as u32;
        let deq_every = rng.range_u64(1, 7) as usize;

        let cfg = QueueConfig {
            capacity_bytes: u64::MAX / 2,
            capacity_pkts: Some(cap_pkts),
            ecn_threshold_pkts: Some(cap_pkts / 2 + 1),
            ecn_threshold_bytes: None,
        };
        let mut q = EcnQueue::new(cfg);
        let mut dequeued = 0u64;
        let mut dequeued_bytes = 0u64;
        for (i, &payload) in sizes.iter().enumerate() {
            let _ = q.enqueue(SimTime::from_us(i as u64), pkt(payload));
            if i % deq_every == 0 {
                if let Some(p) = q.dequeue(SimTime::from_us(i as u64)) {
                    dequeued += 1;
                    dequeued_bytes += p.wire_size as u64;
                }
            }
        }
        let stats = q.stats().clone();
        // Packet conservation.
        assert_eq!(stats.enqueued_pkts + stats.dropped_pkts, sizes.len() as u64);
        assert_eq!(stats.enqueued_pkts, dequeued + q.pkts() as u64);
        // Byte conservation.
        assert_eq!(stats.dequeued_bytes, dequeued_bytes);
        assert_eq!(stats.enqueued_bytes, stats.dequeued_bytes + q.bytes());
        // Capacity never exceeded.
        assert!(stats.watermark_pkts <= cap_pkts);
        // Marks only on enqueued packets.
        assert!(stats.marked_pkts <= stats.enqueued_pkts);
    }
}

/// Draining the queue after arbitrary churn always yields FIFO order
/// of the accepted packets.
#[test]
fn fifo_order_survives_churn() {
    let mut rng = stats::Rng::new(0xF1F0);
    for _ in 0..64 {
        let n = rng.range_u64(1, 200) as usize;
        let ops: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();

        let cfg = QueueConfig {
            capacity_bytes: 1 << 20,
            capacity_pkts: Some(16),
            ecn_threshold_pkts: None,
            ecn_threshold_bytes: None,
        };
        let mut q = EcnQueue::new(cfg);
        let mut next_id = 0u64;
        let mut expected = std::collections::VecDeque::new();
        for (i, &push) in ops.iter().enumerate() {
            if push {
                let mut p = pkt(100);
                p.id = next_id;
                if matches!(
                    q.enqueue(SimTime::from_us(i as u64), p),
                    EnqueueOutcome::Queued { .. }
                ) {
                    expected.push_back(next_id);
                }
                next_id += 1;
            } else if let Some(p) = q.dequeue(SimTime::from_us(i as u64)) {
                assert_eq!(Some(p.id), expected.pop_front());
            }
        }
        while let Some(p) = q.dequeue(SimTime::ZERO) {
            assert_eq!(Some(p.id), expected.pop_front());
        }
        assert!(expected.is_empty());
    }
}
