//! Simulator-level invariants under randomized inputs.

use proptest::prelude::*;
use simnet::{
    EcnQueue, EnqueueOutcome, FlowId, NodeId, Packet, QueueConfig, SimTime,
};

fn pkt(payload: u32) -> Packet {
    Packet::data(FlowId(0), NodeId(0), NodeId(1), 0, payload, false, SimTime::ZERO)
}

proptest! {
    /// Conservation: everything offered is either dequeued, dropped, or
    /// still queued; byte counters agree with packet counters.
    #[test]
    fn queue_conserves_packets_and_bytes(
        sizes in proptest::collection::vec(1u32..1460, 1..300),
        cap_pkts in 1u32..64,
        deq_every in 1usize..8,
    ) {
        let cfg = QueueConfig {
            capacity_bytes: u64::MAX / 2,
            capacity_pkts: Some(cap_pkts),
            ecn_threshold_pkts: Some(cap_pkts / 2 + 1),
            ecn_threshold_bytes: None,
        };
        let mut q = EcnQueue::new(cfg);
        let mut dequeued = 0u64;
        let mut dequeued_bytes = 0u64;
        for (i, &payload) in sizes.iter().enumerate() {
            let _ = q.enqueue(SimTime::from_us(i as u64), pkt(payload));
            if i % deq_every == 0 {
                if let Some(p) = q.dequeue(SimTime::from_us(i as u64)) {
                    dequeued += 1;
                    dequeued_bytes += p.wire_size as u64;
                }
            }
        }
        let stats = q.stats().clone();
        // Packet conservation.
        prop_assert_eq!(
            stats.enqueued_pkts + stats.dropped_pkts,
            sizes.len() as u64
        );
        prop_assert_eq!(
            stats.enqueued_pkts,
            dequeued + q.pkts() as u64
        );
        // Byte conservation.
        prop_assert_eq!(stats.dequeued_bytes, dequeued_bytes);
        prop_assert_eq!(
            stats.enqueued_bytes,
            stats.dequeued_bytes + q.bytes()
        );
        // Capacity never exceeded.
        prop_assert!(stats.watermark_pkts <= cap_pkts);
        // Marks only on enqueued packets.
        prop_assert!(stats.marked_pkts <= stats.enqueued_pkts);
    }

    /// Draining the queue after arbitrary churn always yields FIFO order
    /// of the accepted packets.
    #[test]
    fn fifo_order_survives_churn(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let cfg = QueueConfig {
            capacity_bytes: 1 << 20,
            capacity_pkts: Some(16),
            ecn_threshold_pkts: None,
            ecn_threshold_bytes: None,
        };
        let mut q = EcnQueue::new(cfg);
        let mut next_id = 0u64;
        let mut expected = std::collections::VecDeque::new();
        for (i, &push) in ops.iter().enumerate() {
            if push {
                let mut p = pkt(100);
                p.id = next_id;
                if matches!(
                    q.enqueue(SimTime::from_us(i as u64), p),
                    EnqueueOutcome::Queued { .. }
                ) {
                    expected.push_back(next_id);
                }
                next_id += 1;
            } else if let Some(p) = q.dequeue(SimTime::from_us(i as u64)) {
                prop_assert_eq!(Some(p.id), expected.pop_front());
            }
        }
        while let Some(p) = q.dequeue(SimTime::ZERO) {
            prop_assert_eq!(Some(p.id), expected.pop_front());
        }
        prop_assert!(expected.is_empty());
    }
}
