//! Structural invariants of the Clos builder: full any-to-any
//! reachability through the forwarding tables, graceful (non-panicking)
//! rejection of degenerate shapes, and the promised isomorphism between
//! the 1-rack/1-spine Clos and the historical dumbbell fabric.

use simnet::{
    build_clos, build_fabric, ClosConfig, ClosError, FabricConfig, LinkId, Node, NodeId, Scheduler,
    Simulator,
};

/// Walks the forwarding tables from `from` toward `to`, returning the hop
/// count, or `None` if the walk dead-ends or exceeds `limit` hops. Uses
/// the primary (lowest-id) candidate at each switch; any candidate would
/// do for reachability since all are shortest paths.
fn walk<S: Scheduler>(sim: &Simulator<S>, from: NodeId, to: NodeId, limit: usize) -> Option<usize> {
    let mut at = from;
    for hop in 0..=limit {
        if at == to {
            return Some(hop);
        }
        let link = match sim.node(at) {
            Node::Host { uplink, .. } => (*uplink)?,
            sw => sw.next_hop(to)?,
        };
        at = sim.link(link).dst;
    }
    None
}

#[test]
fn every_host_pair_is_mutually_reachable() {
    let cfg = ClosConfig {
        racks: 3,
        hosts_per_rack: 3,
        spines: 2,
        num_receivers: 2,
        ..ClosConfig::default()
    };
    let f = build_clos(&cfg).unwrap();
    let mut hosts: Vec<NodeId> = f.rack_hosts.iter().flatten().copied().collect();
    hosts.extend(&f.receivers);
    assert_eq!(hosts.len(), 11);
    for &a in &hosts {
        for &b in &hosts {
            if a == b {
                continue;
            }
            let hops = walk(&f.sim, a, b, 8);
            assert!(hops.is_some(), "{a:?} cannot reach {b:?}");
            // Host -> leaf -> spine -> tor -> host is the diameter.
            assert!(hops.unwrap() <= 4, "{a:?} -> {b:?} took {hops:?} hops");
        }
    }
}

#[test]
fn degenerate_shapes_are_rejected_with_errors_not_panics() {
    let shape = |racks, hosts_per_rack, spines, num_receivers| ClosConfig {
        racks,
        hosts_per_rack,
        spines,
        num_receivers,
        ..ClosConfig::default()
    };
    assert!(matches!(
        build_clos(&shape(0, 4, 2, 1)),
        Err(ClosError::ZeroRacks)
    ));
    assert!(matches!(
        build_clos(&shape(2, 0, 2, 1)),
        Err(ClosError::ZeroHosts)
    ));
    assert!(matches!(
        build_clos(&shape(2, 4, 0, 1)),
        Err(ClosError::ZeroSpines)
    ));
    assert!(matches!(
        build_clos(&shape(2, 4, 2, 0)),
        Err(ClosError::ZeroReceivers)
    ));
    // The errors render as sentences (they surface in CLI output).
    assert_eq!(
        build_clos(&shape(0, 4, 2, 1)).err().unwrap().to_string(),
        "clos config has zero racks"
    );
}

#[test]
fn one_rack_one_spine_clos_is_isomorphic_to_the_dumbbell_fabric() {
    let fabric_cfg = FabricConfig {
        num_senders: 6,
        num_receivers: 2,
        seed: 9,
        ..FabricConfig::default()
    };
    let clos_cfg = ClosConfig {
        racks: 1,
        hosts_per_rack: 6,
        spines: 1,
        num_receivers: 2,
        seed: 9,
        ..ClosConfig::default()
    };
    let a = build_fabric(&fabric_cfg);
    let b = build_clos(&clos_cfg).unwrap();

    assert_eq!(a.sim.num_nodes(), b.sim.num_nodes());
    assert_eq!(a.sim.num_links(), b.sim.num_links());
    for i in 0..a.sim.num_nodes() {
        let (na, nb) = (a.sim.node(NodeId(i as u32)), b.sim.node(NodeId(i as u32)));
        assert_eq!(na.name(), nb.name(), "node {i} named differently");
        assert_eq!(na.is_host(), nb.is_host());
    }
    for i in 0..a.sim.num_links() {
        let (la, lb) = (a.sim.link(LinkId(i as u32)), b.sim.link(LinkId(i as u32)));
        assert_eq!((la.src, la.dst), (lb.src, lb.dst), "link {i} differs");
    }
    assert_eq!(a.per_link_propagation, b.per_link_propagation);
    assert_eq!(a.senders, b.rack_hosts[0]);
    assert_eq!(a.receivers, b.receivers);
    assert_eq!(vec![a.trunk], b.rack_uplinks[0]);
    assert_eq!(a.downlinks, b.downlinks);
    // Flow-to-host assignment reduces to the dumbbell's sender order.
    for i in 0..6 {
        assert_eq!(b.host_for_flow(i), a.senders[i]);
    }
}

#[test]
fn one_rack_multi_spine_collapses_to_parallel_trunks_with_full_ecmp() {
    let cfg = ClosConfig {
        racks: 1,
        hosts_per_rack: 4,
        spines: 3,
        ..ClosConfig::default()
    };
    let f = build_clos(&cfg).unwrap();
    assert_eq!(f.rack_uplinks.len(), 1);
    assert_eq!(f.rack_uplinks[0].len(), 3, "one parallel trunk per spine");
    // The sending ToR sees all three trunks as equal-cost candidates.
    let leaf = f.leaves[0];
    let hops = f.sim.node(leaf).next_hops(f.receivers[0]);
    assert_eq!(hops, f.rack_uplinks[0].as_slice());
    // No spine switches exist in the collapsed form.
    assert!(f.spines.is_empty());
}
