//! Properties of the flow-level ECMP layer: rendezvous hashing must be
//! deterministic (same flow, same path — across runs and schedulers),
//! reasonably uniform across equal-cost candidates, and *local* under
//! candidate removal (only flows whose link vanished move, the HRW
//! guarantee that makes link failures cheap). The end-to-end tests pin the
//! same behavior through a live Clos fabric, including the fault-driven
//! re-hash onto surviving spines.

use simnet::{
    build_clos, build_clos_with, ecmp_pick, ecmp_score, ClosConfig, Ctx, Endpoint, EventQueue,
    FaultPlan, FlowId, LinkId, NodeId, Packet, Scheduler, SimTime, TimingWheel,
};

#[test]
fn pick_is_a_pure_function_of_its_inputs() {
    let candidates = [LinkId(10), LinkId(11), LinkId(12), LinkId(13)];
    for flow in 0..256u32 {
        let a = ecmp_pick(7, 3, 99, flow, &candidates);
        let b = ecmp_pick(7, 3, 99, flow, &candidates);
        assert_eq!(a, b, "same inputs, same path (flow {flow})");
        // Candidate order must not matter: the argmax is over scores, not
        // positions.
        let reversed: Vec<LinkId> = candidates.iter().rev().copied().collect();
        assert_eq!(
            a,
            ecmp_pick(7, 3, 99, flow, &reversed),
            "candidate order changed the pick (flow {flow})"
        );
    }
    // The seed, the endpoints, and the flow id all matter.
    let spread = |f: &dyn Fn(u32) -> Option<LinkId>| {
        let picks: Vec<_> = (0..64).map(f).collect();
        picks.windows(2).any(|w| w[0] != w[1])
    };
    assert!(spread(&|f| ecmp_pick(7, 3, 99, f, &candidates)));
    assert!(spread(&|s| ecmp_pick(s as u64, 3, 99, 5, &candidates)));
    assert!(spread(&|src| ecmp_pick(7, src, 99, 5, &candidates)));
}

#[test]
fn hashing_is_reasonably_uniform_over_a_thousand_flows() {
    let candidates = [LinkId(0), LinkId(1), LinkId(2), LinkId(3)];
    for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
        let mut counts = [0u64; 4];
        let flows = 2000u32;
        for flow in 0..flows {
            // Vary the endpoints too, as a real fabric would.
            let src = 100 + (flow % 16);
            let pick = ecmp_pick(seed, src, 7, flow, &candidates).unwrap();
            counts[candidates.iter().position(|&l| l == pick).unwrap()] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max < 2 * min,
            "seed {seed}: buckets too skewed over {flows} flows: {counts:?}"
        );
    }
}

#[test]
fn removing_one_candidate_only_moves_the_flows_that_used_it() {
    let full = [LinkId(20), LinkId(21), LinkId(22), LinkId(23)];
    let lost = LinkId(22);
    let survivors: Vec<LinkId> = full.iter().copied().filter(|&l| l != lost).collect();
    let mut moved = 0u32;
    for flow in 0..1000u32 {
        let before = ecmp_pick(11, 5, 6, flow, &full).unwrap();
        let after = ecmp_pick(11, 5, 6, flow, &survivors).unwrap();
        if before == lost {
            moved += 1;
            assert_ne!(after, lost);
        } else {
            // The HRW property: flows whose link survived keep their path.
            assert_eq!(
                before, after,
                "flow {flow} moved although its link survived"
            );
        }
    }
    assert!(moved > 0, "no flow used the removed link");
}

#[test]
fn scores_break_ties_toward_the_lowest_link_id() {
    // Duplicate candidates force exact score ties; the argmax must keep
    // the first (lowest-id, since candidate slices are sorted) entry.
    let dup = [LinkId(4), LinkId(4)];
    assert_eq!(ecmp_pick(1, 2, 3, 9, &dup), Some(LinkId(4)));
    assert_eq!(ecmp_pick(1, 2, 3, 9, &[]), None);
    // And scores really are 64-bit avalanche outputs, not tiny counters.
    let s = ecmp_score(1, 2, 3, 9, 4);
    assert_ne!(s, ecmp_score(2, 2, 3, 9, 4));
}

/// Open-loop sender used by the end-to-end tests: a stream of data packets
/// on one flow, spaced so part of the stream falls inside a fault window.
struct Blaster {
    to: NodeId,
    flow: u32,
    n: u32,
}

impl Endpoint for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx) {
        for k in 0..self.n {
            ctx.set_timer(k as u64, SimTime::from_us(100 * k as u64));
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx, key: u64) {
        let pkt = Packet::data(
            FlowId(self.flow),
            ctx.node(),
            self.to,
            (key as u32) * 1446,
            1446,
            false,
            ctx.now(),
        );
        ctx.send(pkt);
    }
    fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {}
}

/// Per-uplink enqueue counts for rack 0 after streaming `flows` one-flow
/// senders from rack 0's hosts to the receiver.
fn rack0_uplink_spread<S: Scheduler>(spines: usize, flows: usize, seed: u64) -> Vec<u64> {
    let cfg = ClosConfig {
        racks: 2,
        hosts_per_rack: flows.max(2),
        spines,
        seed,
        ..ClosConfig::default()
    };
    let mut f = build_clos_with::<S>(&cfg).unwrap();
    let rx = f.receivers[0];
    for i in 0..flows {
        let tx = f.rack_hosts[0][i];
        f.sim.set_endpoint(
            tx,
            Box::new(Blaster {
                to: rx,
                flow: i as u32,
                n: 10,
            }),
        );
    }
    f.sim.run();
    f.rack_uplinks[0]
        .iter()
        .map(|&l| f.sim.link(l).queue.stats().enqueued_pkts)
        .collect()
}

#[test]
fn flows_spread_across_spines_and_identically_on_both_schedulers() {
    let wheel = rack0_uplink_spread::<TimingWheel>(4, 16, 3);
    let heap = rack0_uplink_spread::<EventQueue>(4, 16, 3);
    assert_eq!(wheel, heap, "schedulers saw different ECMP placements");
    assert_eq!(wheel, rack0_uplink_spread::<TimingWheel>(4, 16, 3));
    let used = wheel.iter().filter(|&&c| c > 0).count();
    assert!(used >= 2, "16 flows all hashed onto one spine: {wheel:?}");
    assert_eq!(
        wheel.iter().sum::<u64>(),
        16 * 10,
        "every packet crossed exactly one rack-0 uplink"
    );
}

#[test]
fn spine_blackhole_rehashes_flows_onto_surviving_uplinks() {
    // Probe which uplink a lone flow uses, then blackhole exactly that
    // uplink for the middle of the stream: packets sent during the window
    // must re-hash to another spine, and none may be lost.
    let cfg = ClosConfig {
        racks: 2,
        hosts_per_rack: 4,
        spines: 2,
        seed: 0,
        ..ClosConfig::default()
    };
    let healthy = {
        let mut f = build_clos(&cfg).unwrap();
        let rx = f.receivers[0];
        let tx = f.rack_hosts[0][0];
        f.sim.set_endpoint(
            tx,
            Box::new(Blaster {
                to: rx,
                flow: 0,
                n: 30,
            }),
        );
        f.sim.run();
        let counts: Vec<u64> = f.rack_uplinks[0]
            .iter()
            .map(|&l| f.sim.link(l).queue.stats().enqueued_pkts)
            .collect();
        assert_eq!(f.sim.counters().delivered_pkts, 30);
        counts
    };
    let loaded = healthy.iter().position(|&c| c > 0).unwrap();
    assert_eq!(
        healthy.iter().sum::<u64>(),
        30,
        "single flow must stay on one uplink when healthy: {healthy:?}"
    );

    let mut f = build_clos(&cfg).unwrap();
    let rx = f.receivers[0];
    let tx = f.rack_hosts[0][0];
    f.sim.set_fault_plan(FaultPlan::new().blackhole(
        f.rack_uplinks[0][loaded],
        SimTime::from_us(500),
        SimTime::from_ms(2),
    ));
    f.sim.set_endpoint(
        tx,
        Box::new(Blaster {
            to: rx,
            flow: 0,
            n: 30,
        }),
    );
    f.sim.run();
    let faulted: Vec<u64> = f.rack_uplinks[0]
        .iter()
        .map(|&l| f.sim.link(l).queue.stats().enqueued_pkts)
        .collect();
    assert!(
        faulted[loaded] < healthy[loaded],
        "downed uplink kept its full load: {faulted:?} vs {healthy:?}"
    );
    let other: u64 = faulted
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != loaded)
        .map(|(_, &c)| c)
        .sum();
    assert!(other > 0, "no packet re-hashed onto the surviving spine");
    assert_eq!(
        f.sim.counters().delivered_pkts,
        30,
        "re-hash must be lossless for packets sent inside the window"
    );
}
