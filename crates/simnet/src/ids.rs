//! Typed identifiers for network elements.
//!
//! Plain `u32` indices into the simulator's element vectors, wrapped in
//! newtypes so a link id can never be passed where a node id is expected.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Index into the owning vector.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A node (host or switch) in the simulated network.
    NodeId,
    "n"
);
id_type!(
    /// A unidirectional link. Full-duplex cables are two `LinkId`s.
    LinkId,
    "l"
);
id_type!(
    /// A transport flow (one TCP connection).
    FlowId,
    "f"
);
id_type!(
    /// A shared-buffer pool on a switch.
    BufferId,
    "b"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes() {
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(format!("{}", LinkId(0)), "l0");
        assert_eq!(format!("{}", FlowId(12)), "f12");
        assert_eq!(format!("{}", BufferId(1)), "b1");
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(LinkId(u32::MAX).index(), u32::MAX as usize);
    }

    #[test]
    fn ordering_by_value() {
        assert!(FlowId(1) < FlowId(2));
    }
}
