//! A fast, deterministic hasher for hot-path lookup tables.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of cycles per
//! small key — measurable when the event loop consults the timer
//! generation table several times per ACK. Simulation tables hash
//! simulator-assigned integer keys (node ids, timer keys, flow ids), so
//! there is no adversarial input to defend against; what matters is that
//! the hash is cheap and *stable across runs and platforms*, keeping runs
//! bit-reproducible.
//!
//! [`FxHasher`] is the Firefox/rustc polynomial hash: fold each 8-byte
//! word in with a rotate, xor, and one multiply by a constant derived
//! from the golden ratio. None of the tables using it iterate in hash
//! order (iteration order would leak the hash into observable output), so
//! swapping the hasher cannot change any simulation result — only the
//! cycles spent per lookup.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the golden ratio, as used by rustc's FxHash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/Firefox "Fx" polynomial hasher. Not DoS-resistant; only for
/// tables keyed by simulator-assigned integers.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One word of FNV-1a-style folding. Word-at-a-time rather than
/// byte-at-a-time: the inputs are fixed-width simulator ids, so there is
/// no framing to preserve, and one multiply per word keeps the per-packet
/// ECMP decision cheap.
#[inline]
fn fnv1a_word(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

/// Finalizing avalanche (the splitmix64 mixer). FNV's low bits diffuse
/// slowly for small integer inputs; ECMP compares full 64-bit scores, so
/// every input bit must influence high bits too.
#[inline]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Rendezvous (highest-random-weight) score of candidate egress link
/// `link` for the flow identified by `(src, dst, flow)` under `seed`: an
/// FNV fold of the flow tuple and the candidate, finalized with an
/// avalanche mix.
///
/// Deterministic and platform-stable, so ECMP decisions are part of the
/// reproducible simulation output. Scoring each *(flow, link)* pair
/// independently and forwarding on the argmax gives the classic
/// rendezvous-hashing locality property: removing one candidate only
/// remaps the flows whose argmax it was — every other flow keeps its
/// path (see `tests/ecmp_properties.rs`).
#[inline]
pub fn ecmp_score(seed: u64, src: u32, dst: u32, flow: u32, link: u32) -> u64 {
    let mut h = fnv1a_word(FNV_OFFSET, seed);
    h = fnv1a_word(h, ((src as u64) << 32) | dst as u64);
    h = fnv1a_word(h, ((flow as u64) << 32) | link as u64);
    avalanche(h)
}

/// The highest-scoring link among `candidates` for this flow tuple (ties
/// break toward the lowest link id; `None` on an empty slate). This is
/// the pure selection function behind the simulator's ECMP forwarding —
/// the engine applies it to the live subset of a switch's equal-cost set.
pub fn ecmp_pick(
    seed: u64,
    src: u32,
    dst: u32,
    flow: u32,
    candidates: &[crate::ids::LinkId],
) -> Option<crate::ids::LinkId> {
    let mut best: Option<(u64, crate::ids::LinkId)> = None;
    for &l in candidates {
        let score = ecmp_score(seed, src, dst, flow, l.0);
        // Strict `>` keeps the first (lowest-id, since candidate sets are
        // built in ascending link-id order) of any tied pair.
        if best.is_none_or(|(s, _)| score > s) {
            best = Some((score, l));
        }
    }
    best.map(|(_, l)| l)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of<T: std::hash::Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&(3u32, 17u64)), hash_of(&(3u32, 17u64)));
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
    }

    #[test]
    fn distinguishes_small_keys() {
        // Timer-table keys: (node, key) pairs differing in either field.
        let a = hash_of(&(1u32, 4u64));
        let b = hash_of(&(2u32, 4u64));
        let c = hash_of(&(1u32, 5u64));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn byte_stream_matches_word_writes_for_exact_chunks() {
        let mut via_bytes = FxHasher::default();
        via_bytes.write(&7u64.to_le_bytes());
        let mut via_word = FxHasher::default();
        via_word.write_u64(7);
        assert_eq!(via_bytes.finish(), via_word.finish());
    }

    #[test]
    fn ecmp_score_is_deterministic_and_input_sensitive() {
        let base = ecmp_score(9, 1, 2, 3, 4);
        assert_eq!(base, ecmp_score(9, 1, 2, 3, 4));
        assert_ne!(base, ecmp_score(10, 1, 2, 3, 4), "seed ignored");
        assert_ne!(base, ecmp_score(9, 5, 2, 3, 4), "src ignored");
        assert_ne!(base, ecmp_score(9, 1, 5, 3, 4), "dst ignored");
        assert_ne!(base, ecmp_score(9, 1, 2, 5, 4), "flow ignored");
        assert_ne!(base, ecmp_score(9, 1, 2, 3, 5), "link ignored");
    }

    #[test]
    fn ecmp_pick_returns_a_candidate_and_handles_empty() {
        use crate::ids::LinkId;
        let cands = [LinkId(3), LinkId(7), LinkId(9)];
        let picked = ecmp_pick(1, 2, 3, 4, &cands).unwrap();
        assert!(cands.contains(&picked));
        assert_eq!(ecmp_pick(1, 2, 3, 4, &[]), None);
        assert_eq!(ecmp_pick(1, 2, 3, 4, &[LinkId(5)]), Some(LinkId(5)));
    }

    #[test]
    fn map_roundtrips() {
        let mut m: FxHashMap<(u32, u64), u64> = FxHashMap::default();
        for node in 0..50u32 {
            for key in 0..4u64 {
                m.insert((node, key), (node as u64) * 10 + key);
            }
        }
        assert_eq!(m.len(), 200);
        assert_eq!(m.get(&(7, 3)), Some(&73));
        assert_eq!(m.get(&(49, 0)), Some(&490));
        assert_eq!(m.get(&(50, 0)), None);
    }
}
