//! A fast, deterministic hasher for hot-path lookup tables.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of cycles per
//! small key — measurable when the event loop consults the timer
//! generation table several times per ACK. Simulation tables hash
//! simulator-assigned integer keys (node ids, timer keys, flow ids), so
//! there is no adversarial input to defend against; what matters is that
//! the hash is cheap and *stable across runs and platforms*, keeping runs
//! bit-reproducible.
//!
//! [`FxHasher`] is the Firefox/rustc polynomial hash: fold each 8-byte
//! word in with a rotate, xor, and one multiply by a constant derived
//! from the golden ratio. None of the tables using it iterate in hash
//! order (iteration order would leak the hash into observable output), so
//! swapping the hasher cannot change any simulation result — only the
//! cycles spent per lookup.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the golden ratio, as used by rustc's FxHash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/Firefox "Fx" polynomial hasher. Not DoS-resistant; only for
/// tables keyed by simulator-assigned integers.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of<T: std::hash::Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&(3u32, 17u64)), hash_of(&(3u32, 17u64)));
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
    }

    #[test]
    fn distinguishes_small_keys() {
        // Timer-table keys: (node, key) pairs differing in either field.
        let a = hash_of(&(1u32, 4u64));
        let b = hash_of(&(2u32, 4u64));
        let c = hash_of(&(1u32, 5u64));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn byte_stream_matches_word_writes_for_exact_chunks() {
        let mut via_bytes = FxHasher::default();
        via_bytes.write(&7u64.to_le_bytes());
        let mut via_word = FxHasher::default();
        via_word.write_u64(7);
        assert_eq!(via_bytes.finish(), via_word.finish());
    }

    #[test]
    fn map_roundtrips() {
        let mut m: FxHashMap<(u32, u64), u64> = FxHashMap::default();
        for node in 0..50u32 {
            for key in 0..4u64 {
                m.insert((node, key), (node as u64) * 10 + key);
            }
        }
        assert_eq!(m.len(), 200);
        assert_eq!(m.get(&(7, 3)), Some(&73));
        assert_eq!(m.get(&(49, 0)), Some(&490));
        assert_eq!(m.get(&(50, 0)), None);
    }
}
