//! Packets on the simulated wire.
//!
//! A [`Packet`] models one Ethernet frame. Sizes are wire sizes (payload plus
//! [`HEADER_BYTES`] of Ethernet/IP/TCP headers), so queue occupancy in bytes
//! matches what a real switch would count. Sequence and acknowledgment
//! numbers are 32-bit wrapping values exactly as on a real TCP wire; the
//! transport crate owns the unwrap logic.

use crate::ids::{FlowId, NodeId};
use crate::time::SimTime;

/// Ethernet + IPv4 + TCP header bytes carried by every segment.
pub const HEADER_BYTES: u32 = 54;
/// Minimum Ethernet frame size; pure ACKs are padded up to this.
pub const MIN_FRAME_BYTES: u32 = 64;
/// Default maximum segment size (payload bytes) for a 1500 B frame.
pub const DEFAULT_MSS: u32 = 1500 - HEADER_BYTES;

/// ECN codepoint in the IP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ecn {
    /// Not ECN-capable transport.
    NotEct,
    /// ECN-capable transport (ECT(0)).
    Ect0,
    /// Congestion Experienced — set by a switch whose queue exceeded the
    /// marking threshold.
    Ce,
}

impl Ecn {
    /// True if a switch may mark this packet instead of relying on loss.
    pub fn is_capable(self) -> bool {
        matches!(self, Ecn::Ect0 | Ecn::Ce)
    }
}

/// Maximum ACK ranges carried by one QUIC-style acknowledgment frame.
pub const MAX_ACK_BLOCKS: usize = 3;

/// The packet-number ranges carried by a QUIC-style ACK: inclusive
/// `(lo, hi)` wire packet numbers, **descending and disjoint**, so
/// `ranges()[0].1` is the largest acknowledged packet number. Fixed-size
/// and `Copy` so packets keep parking in the [`PacketPool`] slab without
/// heap allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckBlocks {
    ranges: [(u32, u32); MAX_ACK_BLOCKS],
    len: u8,
}

impl AckBlocks {
    /// Builds a block set from up to [`MAX_ACK_BLOCKS`] inclusive wire
    /// ranges in descending order. Panics on overflow or a malformed range
    /// (`lo > hi` under wrapping is not detectable here; callers pass
    /// already-wrapped values from a sorted range set).
    pub fn new(ranges: &[(u32, u32)]) -> Self {
        assert!(ranges.len() <= MAX_ACK_BLOCKS, "too many ACK blocks");
        assert!(!ranges.is_empty(), "empty ACK frame");
        let mut fixed = [(0u32, 0u32); MAX_ACK_BLOCKS];
        fixed[..ranges.len()].copy_from_slice(ranges);
        AckBlocks {
            ranges: fixed,
            len: ranges.len() as u8,
        }
    }

    /// Largest acknowledged wire packet number.
    pub fn largest(&self) -> u32 {
        self.ranges[0].1
    }

    /// The inclusive wire ranges, descending.
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges[..self.len as usize]
    }

    /// Number of ranges carried.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no ranges are carried (never constructed by `new`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The transport-visible contents of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A TCP data segment.
    Data {
        /// Wire sequence number of the first payload byte (wrapping u32).
        seq: u32,
        /// Payload bytes carried.
        payload: u32,
        /// True if this is a retransmission (diagnostic only; receivers must
        /// not rely on it for protocol decisions).
        retx: bool,
        /// Send timestamp, echoed by the ACK for RTT sampling (models the
        /// TCP timestamp option).
        ts: SimTime,
    },
    /// A pure TCP acknowledgment.
    Ack {
        /// Cumulative acknowledgment number (wrapping u32).
        ack: u32,
        /// ECN-Echo: the receiver saw Congestion Experienced.
        ece: bool,
        /// Echo of the newest acknowledged segment's `ts` (zero if unknown).
        ts_echo: SimTime,
    },
    /// A QUIC-style data packet: every transmission — including a
    /// retransmission of previously sent stream bytes — carries a fresh
    /// monotonic packet number, and the stream offset locates the payload.
    QuicData {
        /// Wire packet number (wrapping u32; never reused within a flow).
        pn: u32,
        /// Wire stream offset of the first payload byte (wrapping u32).
        offset: u32,
        /// Payload bytes carried.
        payload: u32,
        /// True if the stream bytes were sent before under another packet
        /// number (diagnostic only).
        retx: bool,
        /// Send timestamp, echoed by the ACK for RTT sampling.
        ts: SimTime,
    },
    /// A QUIC-style acknowledgment carrying packet-number ranges.
    QuicAck {
        /// Acknowledged packet-number ranges, descending.
        blocks: AckBlocks,
        /// ECN-Echo: the receiver saw Congestion Experienced.
        ece: bool,
        /// Echo of the triggering packet's `ts` (zero if unknown).
        ts_echo: SimTime,
    },
    /// An application control message: the coordinator's request to a worker,
    /// carrying how many response bytes to send. Models the
    /// partition/aggregate request leg; delivered directly to the
    /// application, bypassing TCP.
    Ctrl {
        /// Response bytes the worker should send.
        demand: u64,
        /// Burst index, for bookkeeping at the worker.
        burst: u64,
    },
    /// A switch-originated incast notification (Pulser-style): the detecting
    /// switch asks a sender host to pause new transmissions (or cut its
    /// congestion window) for the carried duration. Travels the ordinary
    /// data path, so it is subject to every queue and fault a data frame is.
    Notif {
        /// Episode epoch at the detecting port. Senders ignore epochs they
        /// have already acted on, making duplicated/reordered/stale
        /// notifications idempotent.
        epoch: u32,
        /// Requested pause duration (senders clamp to their guard bound).
        pause: SimTime,
        /// True to cut the congestion window instead of pausing.
        cut: bool,
    },
    /// A host's acknowledgment of a [`PacketKind::Notif`], addressed to the
    /// detecting switch so it stops re-firing the episode at this sender.
    NotifAck {
        /// Epoch being acknowledged.
        epoch: u32,
    },
}

/// One frame in flight or queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Globally unique packet id (assigned by the simulator at send time).
    pub id: u64,
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Originating host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Total bytes on the wire (headers included).
    pub wire_size: u32,
    /// ECN codepoint.
    pub ecn: Ecn,
    /// Transport contents.
    pub kind: PacketKind,
}

impl Packet {
    /// Builds a data segment with the conventional wire size.
    pub fn data(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        seq: u32,
        payload: u32,
        retx: bool,
        ts: SimTime,
    ) -> Self {
        Packet {
            id: 0,
            flow,
            src,
            dst,
            wire_size: (payload + HEADER_BYTES).max(MIN_FRAME_BYTES),
            ecn: Ecn::Ect0,
            kind: PacketKind::Data {
                seq,
                payload,
                retx,
                ts,
            },
        }
    }

    /// Builds a pure ACK (minimum frame size, not ECN-capable — like Linux,
    /// which sends ACKs as non-ECT).
    pub fn ack(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        ack: u32,
        ece: bool,
        ts_echo: SimTime,
    ) -> Self {
        Packet {
            id: 0,
            flow,
            src,
            dst,
            wire_size: MIN_FRAME_BYTES,
            ecn: Ecn::NotEct,
            kind: PacketKind::Ack { ack, ece, ts_echo },
        }
    }

    /// Builds a QUIC-style data packet with the conventional wire size.
    #[allow(clippy::too_many_arguments)]
    pub fn quic_data(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        pn: u32,
        offset: u32,
        payload: u32,
        retx: bool,
        ts: SimTime,
    ) -> Self {
        Packet {
            id: 0,
            flow,
            src,
            dst,
            wire_size: (payload + HEADER_BYTES).max(MIN_FRAME_BYTES),
            ecn: Ecn::Ect0,
            kind: PacketKind::QuicData {
                pn,
                offset,
                payload,
                retx,
                ts,
            },
        }
    }

    /// Builds a QUIC-style ACK (minimum frame size, not ECN-capable).
    pub fn quic_ack(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        blocks: AckBlocks,
        ece: bool,
        ts_echo: SimTime,
    ) -> Self {
        Packet {
            id: 0,
            flow,
            src,
            dst,
            wire_size: MIN_FRAME_BYTES,
            ecn: Ecn::NotEct,
            kind: PacketKind::QuicAck {
                blocks,
                ece,
                ts_echo,
            },
        }
    }

    /// Builds a control (request) message.
    pub fn ctrl(flow: FlowId, src: NodeId, dst: NodeId, demand: u64, burst: u64) -> Self {
        Packet {
            id: 0,
            flow,
            src,
            dst,
            wire_size: MIN_FRAME_BYTES * 2, // a small RPC request
            ecn: Ecn::NotEct,
            kind: PacketKind::Ctrl { demand, burst },
        }
    }

    /// Builds an incast notification frame (minimum frame size, not
    /// ECN-capable — control frames are never marked, only lost).
    pub fn notif(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        epoch: u32,
        pause: SimTime,
        cut: bool,
    ) -> Self {
        Packet {
            id: 0,
            flow,
            src,
            dst,
            wire_size: MIN_FRAME_BYTES,
            ecn: Ecn::NotEct,
            kind: PacketKind::Notif { epoch, pause, cut },
        }
    }

    /// Builds a notification acknowledgment (minimum frame size, not
    /// ECN-capable), addressed back to the detecting switch.
    pub fn notif_ack(flow: FlowId, src: NodeId, dst: NodeId, epoch: u32) -> Self {
        Packet {
            id: 0,
            flow,
            src,
            dst,
            wire_size: MIN_FRAME_BYTES,
            ecn: Ecn::NotEct,
            kind: PacketKind::NotifAck { epoch },
        }
    }

    /// Payload bytes if this is a data segment (either stack), else 0.
    pub fn payload_bytes(&self) -> u32 {
        match self.kind {
            PacketKind::Data { payload, .. } | PacketKind::QuicData { payload, .. } => payload,
            _ => 0,
        }
    }

    /// True for data segments of either transport stack.
    pub fn is_data(&self) -> bool {
        matches!(
            self.kind,
            PacketKind::Data { .. } | PacketKind::QuicData { .. }
        )
    }

    /// True if marked Congestion Experienced.
    pub fn is_ce(&self) -> bool {
        self.ecn == Ecn::Ce
    }
}

/// An index into a [`PacketPool`], carried by in-flight `Delivery` events in
/// place of the packet itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketSlot(pub u32);

/// A queued packet's residence card: the pool slot plus the only fields an
/// egress queue reads (wire size, ECN capability). Link FIFOs move these
/// 12-byte cards instead of full packets, so queue occupancy is split away
/// from packet contents (struct-of-arrays) and a packet is written into the
/// pool exactly once per send, not copied per hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedFrame {
    /// Where the packet itself is parked.
    pub slot: PacketSlot,
    /// Total bytes on the wire (headers included); mirrors the pooled
    /// packet's `wire_size` so byte accounting needs no pool lookup.
    pub wire: u32,
    /// Mirrors the pooled packet's ECN capability at enqueue time.
    pub ecn_capable: bool,
    /// Set when the queue CE-marked this frame (the simulator applies the
    /// mark to the pooled packet; this records the queue's own decision).
    pub ce: bool,
}

/// A slab of in-flight packets with a LIFO free list.
///
/// Every packet propagating on a wire parks here between `TxComplete` and
/// `Delivery`; the scheduler moves only a 4-byte [`PacketSlot`]. After the
/// warm-up frames of a run the pool stops growing (capacity tracks the peak
/// number of frames simultaneously in flight), so the steady-state packet
/// path performs no heap allocation.
///
/// Slot reuse is LIFO, which keeps slot assignment deterministic: two runs
/// of the same seed insert and take in the same order and therefore see the
/// same slot numbers.
#[derive(Debug, Default)]
pub struct PacketPool {
    slots: Vec<Packet>,
    free: Vec<u32>,
    live: u32,
    high_water: u32,
}

impl PacketPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks `pkt` and returns its slot.
    pub fn insert(&mut self, pkt: Packet) -> PacketSlot {
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = pkt;
                PacketSlot(i)
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("packet pool overflow");
                self.slots.push(pkt);
                PacketSlot(i)
            }
        }
    }

    /// Read access to the packet parked in `slot`.
    #[inline]
    pub fn get(&self, slot: PacketSlot) -> &Packet {
        debug_assert!(
            !self.free.contains(&slot.0),
            "get of freed packet slot {}",
            slot.0
        );
        &self.slots[slot.0 as usize]
    }

    /// Mutable access to the packet parked in `slot` (e.g. to apply a CE
    /// mark decided by a queue while the packet stays pooled).
    #[inline]
    pub fn get_mut(&mut self, slot: PacketSlot) -> &mut Packet {
        debug_assert!(
            !self.free.contains(&slot.0),
            "get_mut of freed packet slot {}",
            slot.0
        );
        &mut self.slots[slot.0 as usize]
    }

    /// Removes and returns the packet parked in `slot`, freeing it for
    /// reuse. Each slot handed out by [`PacketPool::insert`] must be taken
    /// exactly once.
    pub fn take(&mut self, slot: PacketSlot) -> Packet {
        debug_assert!(
            !self.free.contains(&slot.0),
            "double take of packet slot {}",
            slot.0
        );
        self.live -= 1;
        self.free.push(slot.0);
        self.slots[slot.0 as usize]
    }

    /// Packets currently parked.
    pub fn live(&self) -> usize {
        self.live as usize
    }

    /// Peak simultaneous occupancy over the pool's lifetime.
    pub fn high_water(&self) -> usize {
        self.high_water as usize
    }

    /// Slots ever allocated — the pool's total heap footprint in packets.
    /// Equals [`PacketPool::high_water`] by construction; reported
    /// separately as the allocs-per-run baseline in `simperf`.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (FlowId, NodeId, NodeId) {
        (FlowId(1), NodeId(0), NodeId(9))
    }

    #[test]
    fn data_wire_size_includes_headers() {
        let (f, s, d) = ids();
        let p = Packet::data(f, s, d, 0, DEFAULT_MSS, false, SimTime::ZERO);
        assert_eq!(p.wire_size, 1500);
        assert_eq!(p.payload_bytes(), DEFAULT_MSS);
        assert!(p.is_data());
        assert_eq!(p.ecn, Ecn::Ect0);
    }

    #[test]
    fn tiny_data_padded_to_min_frame() {
        let (f, s, d) = ids();
        let p = Packet::data(f, s, d, 0, 1, false, SimTime::ZERO);
        assert_eq!(p.wire_size, MIN_FRAME_BYTES);
    }

    #[test]
    fn ack_is_min_frame_and_not_ect() {
        let (f, s, d) = ids();
        let p = Packet::ack(f, s, d, 42, true, SimTime::from_us(3));
        assert_eq!(p.wire_size, MIN_FRAME_BYTES);
        assert!(!p.ecn.is_capable());
        assert!(!p.is_data());
        assert_eq!(p.payload_bytes(), 0);
    }

    #[test]
    fn ce_detection() {
        let (f, s, d) = ids();
        let mut p = Packet::data(f, s, d, 0, 100, false, SimTime::ZERO);
        assert!(!p.is_ce());
        p.ecn = Ecn::Ce;
        assert!(p.is_ce());
        assert!(p.ecn.is_capable());
    }

    #[test]
    fn pool_reuses_slots_lifo() {
        let (f, s, d) = ids();
        let pkt = |n| Packet::data(f, s, d, n, 100, false, SimTime::ZERO);
        let mut pool = PacketPool::new();
        let a = pool.insert(pkt(0));
        let b = pool.insert(pkt(1));
        assert_eq!((a, b), (PacketSlot(0), PacketSlot(1)));
        assert_eq!(pool.take(a).payload_bytes(), 100);
        // Freed slot 0 is reused before the slab grows.
        let c = pool.insert(pkt(2));
        assert_eq!(c, PacketSlot(0));
        assert_eq!(pool.capacity(), 2);
        assert_eq!(pool.high_water(), 2);
        assert_eq!(pool.live(), 2);
        pool.take(b);
        pool.take(c);
        assert_eq!(pool.live(), 0);
        assert_eq!(pool.capacity(), 2, "capacity tracks peak, not total");
    }

    #[test]
    fn pool_round_trips_contents() {
        let (f, s, d) = ids();
        let mut pool = PacketPool::new();
        let sent = Packet::ctrl(f, s, d, 187_500, 7);
        let slot = pool.insert(sent);
        assert_eq!(pool.take(slot), sent);
    }

    #[test]
    fn quic_data_wire_size_matches_tcp_framing() {
        let (f, s, d) = ids();
        let p = Packet::quic_data(f, s, d, 3, 0, DEFAULT_MSS, false, SimTime::ZERO);
        assert_eq!(p.wire_size, 1500);
        assert_eq!(p.payload_bytes(), DEFAULT_MSS);
        assert!(p.is_data());
        assert_eq!(p.ecn, Ecn::Ect0);
    }

    #[test]
    fn quic_ack_is_min_frame_and_carries_descending_blocks() {
        let (f, s, d) = ids();
        let blocks = AckBlocks::new(&[(9, 12), (2, 5)]);
        assert_eq!(blocks.largest(), 12);
        assert_eq!(blocks.len(), 2);
        assert!(!blocks.is_empty());
        assert_eq!(blocks.ranges(), &[(9, 12), (2, 5)]);
        let p = Packet::quic_ack(f, s, d, blocks, true, SimTime::from_us(3));
        assert_eq!(p.wire_size, MIN_FRAME_BYTES);
        assert!(!p.ecn.is_capable());
        assert!(!p.is_data());
        assert_eq!(p.payload_bytes(), 0);
    }

    #[test]
    fn notif_frames_are_min_frame_and_not_ect() {
        let (f, s, d) = ids();
        let n = Packet::notif(f, s, d, 3, SimTime::from_us(150), false);
        assert_eq!(n.wire_size, MIN_FRAME_BYTES);
        assert!(!n.ecn.is_capable());
        assert!(!n.is_data());
        match n.kind {
            PacketKind::Notif { epoch, pause, cut } => {
                assert_eq!(epoch, 3);
                assert_eq!(pause, SimTime::from_us(150));
                assert!(!cut);
            }
            _ => panic!("wrong kind"),
        }
        let a = Packet::notif_ack(f, d, s, 3);
        assert_eq!(a.wire_size, MIN_FRAME_BYTES);
        assert!(!a.ecn.is_capable());
        assert_eq!(a.kind, PacketKind::NotifAck { epoch: 3 });
    }

    #[test]
    fn ctrl_carries_demand() {
        let (f, s, d) = ids();
        let p = Packet::ctrl(f, s, d, 187_500, 7);
        match p.kind {
            PacketKind::Ctrl { demand, burst } => {
                assert_eq!(demand, 187_500);
                assert_eq!(burst, 7);
            }
            _ => panic!("wrong kind"),
        }
    }
}
