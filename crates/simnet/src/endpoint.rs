//! The host/application boundary.
//!
//! An [`Endpoint`] is the software running on a host: the transport crate's
//! TCP demux, a workload coordinator, or a test stub. Endpoints react to
//! packet deliveries and timers and emit commands (send a packet, arm a
//! timer) through a [`Ctx`]. Commands are buffered and applied by the
//! simulator after the callback returns, which keeps the event loop free of
//! re-entrancy.

use crate::ids::NodeId;
use crate::packet::Packet;
use crate::time::SimTime;
use std::cell::{Ref, RefCell, RefMut};
use std::rc::Rc;

/// A deferred action requested by an endpoint.
#[derive(Debug, Clone)]
pub enum Cmd {
    /// Transmit a packet out of this host's uplink. The simulator assigns
    /// the packet id and stamps `src` with the sending node.
    Send(Packet),
    /// Arm (or re-arm) the one-shot timer identified by `key` to fire at
    /// `at`. Re-arming supersedes any pending firing for the same key.
    SetTimer { key: u64, at: SimTime },
    /// Disarm the timer identified by `key`.
    CancelTimer { key: u64 },
}

/// The endpoint's view of the simulator during a callback.
#[derive(Debug)]
pub struct Ctx<'a> {
    now: SimTime,
    node: NodeId,
    cmds: &'a mut Vec<Cmd>,
}

impl<'a> Ctx<'a> {
    /// Creates a context (used by the simulator and by unit tests).
    pub fn new(now: SimTime, node: NodeId, cmds: &'a mut Vec<Cmd>) -> Self {
        Ctx { now, node, cmds }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The host this endpoint runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Queues a packet for transmission from this host.
    pub fn send(&mut self, mut pkt: Packet) {
        pkt.src = self.node;
        self.cmds.push(Cmd::Send(pkt));
    }

    /// Arms one-shot timer `key` at absolute time `at`.
    pub fn set_timer(&mut self, key: u64, at: SimTime) {
        self.cmds.push(Cmd::SetTimer { key, at });
    }

    /// Arms one-shot timer `key` to fire `delay` from now.
    pub fn set_timer_after(&mut self, key: u64, delay: SimTime) {
        let at = self.now + delay;
        self.set_timer(key, at);
    }

    /// Disarms timer `key` (no-op if not armed).
    pub fn cancel_timer(&mut self, key: u64) {
        self.cmds.push(Cmd::CancelTimer { key });
    }
}

/// Software running on a host.
pub trait Endpoint {
    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Ctx) {}

    /// Called for every packet delivered to this host.
    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet);

    /// Called when a timer armed via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx, _key: u64) {}
}

/// A passive observer of packets delivered to a host, invoked before the
/// endpoint sees the packet. This is the hook the Millisampler substitute
/// attaches to — like an eBPF tc filter, it sees headers only and cannot
/// influence delivery.
pub trait IngressTap {
    /// Observes one delivered packet.
    fn on_packet(&mut self, now: SimTime, pkt: &Packet);
}

/// Shared ownership wrapper so callers can keep a handle to an endpoint or
/// tap that the simulator owns, and read its state after (or during) a run.
///
/// The simulator is single-threaded, so `Rc<RefCell>` is sound here; the
/// usual discipline applies: don't hold a borrow across a `sim.run_*` call.
#[derive(Debug, Default)]
pub struct Shared<T>(Rc<RefCell<T>>);

impl<T> Shared<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Shared(Rc::new(RefCell::new(value)))
    }

    /// A second handle to the same value.
    pub fn handle(&self) -> Shared<T> {
        Shared(Rc::clone(&self.0))
    }

    /// Immutable access.
    pub fn borrow(&self) -> Ref<'_, T> {
        self.0.borrow()
    }

    /// Mutable access.
    pub fn borrow_mut(&self) -> RefMut<'_, T> {
        self.0.borrow_mut()
    }
}

impl<T: Endpoint> Endpoint for Shared<T> {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.0.borrow_mut().on_start(ctx);
    }
    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
        self.0.borrow_mut().on_packet(ctx, pkt);
    }
    fn on_timer(&mut self, ctx: &mut Ctx, key: u64) {
        self.0.borrow_mut().on_timer(ctx, key);
    }
}

impl<T: IngressTap> IngressTap for Shared<T> {
    fn on_packet(&mut self, now: SimTime, pkt: &Packet) {
        self.0.borrow_mut().on_packet(now, pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FlowId;

    #[test]
    fn ctx_records_commands() {
        let mut cmds = Vec::new();
        let mut ctx = Ctx::new(SimTime::from_us(5), NodeId(3), &mut cmds);
        assert_eq!(ctx.now(), SimTime::from_us(5));
        assert_eq!(ctx.node(), NodeId(3));
        let pkt = Packet::ack(FlowId(0), NodeId(9), NodeId(1), 10, false, SimTime::ZERO);
        ctx.send(pkt);
        ctx.set_timer_after(7, SimTime::from_us(10));
        ctx.cancel_timer(7);
        assert_eq!(cmds.len(), 3);
        match &cmds[0] {
            Cmd::Send(p) => assert_eq!(p.src, NodeId(3)), // src rewritten
            _ => panic!(),
        }
        match &cmds[1] {
            Cmd::SetTimer { key, at } => {
                assert_eq!(*key, 7);
                assert_eq!(*at, SimTime::from_us(15));
            }
            _ => panic!(),
        }
        assert!(matches!(cmds[2], Cmd::CancelTimer { key: 7 }));
    }

    #[test]
    fn shared_handles_alias() {
        struct Counter(u32);
        impl Endpoint for Counter {
            fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {
                self.0 += 1;
            }
        }
        let shared = Shared::new(Counter(0));
        let mut as_endpoint = shared.handle();
        let mut cmds = Vec::new();
        let mut ctx = Ctx::new(SimTime::ZERO, NodeId(0), &mut cmds);
        let pkt = Packet::ack(FlowId(0), NodeId(0), NodeId(0), 0, false, SimTime::ZERO);
        as_endpoint.on_packet(&mut ctx, pkt);
        as_endpoint.on_packet(&mut ctx, pkt);
        assert_eq!(shared.borrow().0, 2);
    }
}
