//! Link-rate and byte-size units.
//!
//! [`Rate`] is stored in bits per second and converts byte counts to exact
//! picosecond serialization times (see [`crate::time::SimTime`] for why
//! picoseconds).

use crate::time::{SimTime, PS_PER_SEC};
use std::fmt;

/// A link rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rate(pub u64);

impl Rate {
    /// From gigabits per second.
    pub const fn gbps(g: u64) -> Self {
        Rate(g * 1_000_000_000)
    }

    /// From megabits per second.
    pub const fn mbps(m: u64) -> Self {
        Rate(m * 1_000_000)
    }

    /// Bits per second.
    pub const fn bps(self) -> u64 {
        self.0
    }

    /// Bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0 as f64 / 8.0
    }

    /// Exact time to serialize `bytes` onto the wire at this rate.
    ///
    /// Rounded up to a whole picosecond so a packet never finishes "early".
    /// The numerator `bytes * 8 * PS_PER_SEC` fits u64 for any frame under
    /// ~2.3 MB — every packet this simulator ships — so the hot path is one
    /// u64 division; larger byte counts fall back to u128 with the same
    /// result.
    pub fn serialize_time(self, bytes: u64) -> SimTime {
        assert!(self.0 > 0, "zero-rate link");
        match bytes.checked_mul(8 * PS_PER_SEC) {
            Some(num) => SimTime(num.div_ceil(self.0)),
            None => {
                let bits = bytes as u128 * 8;
                let ps = (bits * PS_PER_SEC as u128).div_ceil(self.0 as u128);
                SimTime(ps as u64)
            }
        }
    }

    /// Bytes that can be transmitted in `dur` at this rate (truncating).
    pub fn bytes_in(self, dur: SimTime) -> u64 {
        ((dur.as_ps() as u128 * self.0 as u128) / (8 * PS_PER_SEC as u128)) as u64
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1_000_000_000) {
            write!(f, "{}Gbps", self.0 / 1_000_000_000)
        } else if self.0.is_multiple_of(1_000_000) {
            write!(f, "{}Mbps", self.0 / 1_000_000)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

/// Bytes in one kibibyte/mebibyte, for queue capacity configs.
pub const KIB: u64 = 1024;
pub const MIB: u64 = 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_time_exact() {
        assert_eq!(Rate::gbps(10).serialize_time(1500), SimTime::from_ns(1200));
        assert_eq!(Rate::gbps(100).serialize_time(1500), SimTime::from_ns(120));
        assert_eq!(Rate::gbps(25).serialize_time(1500), SimTime::from_ns(480));
        assert_eq!(Rate::gbps(10).serialize_time(60), SimTime::from_ns(48));
    }

    #[test]
    fn serialize_time_rounds_up() {
        // 1 byte at 3 bps: 8/3 s = 2.666..s -> rounds up.
        let t = Rate(3).serialize_time(1);
        assert_eq!(t.as_ps(), (8 * PS_PER_SEC).div_ceil(3));
    }

    #[test]
    fn bytes_in_inverts_serialize() {
        let r = Rate::gbps(10);
        let t = r.serialize_time(150_000);
        assert_eq!(r.bytes_in(t), 150_000);
    }

    #[test]
    fn bdp_matches_paper() {
        // 10 Gbps x 30 us = 37.5 KB, i.e. 25 x 1500 B packets (paper section 4).
        let bdp = Rate::gbps(10).bytes_in(SimTime::from_us(30));
        assert_eq!(bdp, 37_500);
        assert_eq!(bdp / 1500, 25);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Rate::gbps(100)), "100Gbps");
        assert_eq!(format!("{}", Rate::mbps(250)), "250Mbps");
        assert_eq!(format!("{}", Rate(7)), "7bps");
    }

    #[test]
    #[should_panic]
    fn zero_rate_serialize_panics() {
        Rate(0).serialize_time(1);
    }
}
