//! Topology construction.
//!
//! [`NetworkBuilder`] accumulates hosts, switches, shared buffers, and
//! full-duplex cables, then computes shortest-path forwarding tables and
//! produces a ready [`Simulator`]. Routing is deterministic: BFS visits
//! links in id order, so equal-cost ties always resolve the same way.

use crate::buffer::BufferPolicy;
use crate::event::Scheduler;
use crate::ids::{BufferId, LinkId, NodeId};
use crate::link::{Link, LinkConfig};
use crate::node::Node;
use crate::sim::Simulator;
use crate::wheel::TimingWheel;
use crate::SharedBuffer;

struct LinkSpec {
    src: NodeId,
    dst: NodeId,
    cfg: LinkConfig,
}

struct SwitchSpec {
    buffer: Option<BufferId>,
}

enum NodeSpec {
    Host { name: String },
    Switch { name: String, spec: SwitchSpec },
}

/// Incremental network description; call [`NetworkBuilder::build`] to get a
/// runnable [`Simulator`].
#[derive(Default)]
pub struct NetworkBuilder {
    nodes: Vec<NodeSpec>,
    links: Vec<LinkSpec>,
    buffers: Vec<SharedBuffer>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an end host.
    pub fn add_host(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSpec::Host { name: name.into() });
        id
    }

    /// Adds a switch with per-port (unshared) buffering.
    pub fn add_switch(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSpec::Switch {
            name: name.into(),
            spec: SwitchSpec { buffer: None },
        });
        id
    }

    /// Adds a switch whose egress queues all charge one shared memory pool.
    pub fn add_switch_with_buffer(
        &mut self,
        name: &str,
        total_bytes: u64,
        policy: BufferPolicy,
    ) -> NodeId {
        let bid = BufferId(self.buffers.len() as u32);
        self.buffers.push(SharedBuffer::new(total_bytes, policy));
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSpec::Switch {
            name: name.into(),
            spec: SwitchSpec { buffer: Some(bid) },
        });
        id
    }

    /// Cables `a` and `b` with a full-duplex link: `a_to_b` configures the
    /// `a -> b` direction, `b_to_a` the reverse. Returns the two link ids in
    /// that order.
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        a_to_b: LinkConfig,
        b_to_a: LinkConfig,
    ) -> (LinkId, LinkId) {
        assert!(a != b, "self-loop link");
        let l0 = LinkId(self.links.len() as u32);
        self.links.push(LinkSpec {
            src: a,
            dst: b,
            cfg: a_to_b,
        });
        let l1 = LinkId(self.links.len() as u32);
        self.links.push(LinkSpec {
            src: b,
            dst: a,
            cfg: b_to_a,
        });
        (l0, l1)
    }

    /// Finalizes the topology: computes forwarding tables and returns a
    /// simulator seeded with `seed` (used only for fault injection),
    /// running on the default [`TimingWheel`] scheduler.
    ///
    /// Panics on malformed topologies (host with zero or multiple uplinks).
    pub fn build(self, seed: u64) -> Simulator {
        self.build_with_scheduler::<TimingWheel>(seed)
    }

    /// Like [`NetworkBuilder::build`], but with an explicit [`Scheduler`] —
    /// used by the differential tests and benchmarks to run the same
    /// topology on the reference heap.
    pub fn build_with_scheduler<S: Scheduler>(self, seed: u64) -> Simulator<S> {
        let n = self.nodes.len();

        // Host uplinks and switch port lists.
        let mut uplinks: Vec<Vec<LinkId>> = vec![Vec::new(); n];
        for (i, spec) in self.links.iter().enumerate() {
            uplinks[spec.src.index()].push(LinkId(i as u32));
        }

        // Reverse adjacency for BFS: incoming links per node.
        let mut incoming: Vec<Vec<LinkId>> = vec![Vec::new(); n];
        for (i, spec) in self.links.iter().enumerate() {
            incoming[spec.dst.index()].push(LinkId(i as u32));
        }

        // Forwarding: for each destination node, BFS backwards from it to
        // get hop distances, then collect *every* link that starts a
        // shortest path as an equal-cost candidate. Iterating links in id
        // order keeps each candidate set ascending, which is what makes the
        // primary route (set member 0) and ECMP tie-breaks deterministic.
        // Switch destinations get routes too (control-plane acknowledgments
        // are addressed to switches); host candidate sets are unchanged by
        // their presence, so pre-control-plane traces stay byte-identical.
        // Hosts never become transit: a host's only neighbor is its ToR, so
        // a path through it is never shortest.
        let mut fwd: Vec<Vec<Vec<LinkId>>> = vec![Vec::new(); n];
        for (i, spec) in self.nodes.iter().enumerate() {
            if matches!(spec, NodeSpec::Switch { .. }) {
                fwd[i] = vec![Vec::new(); n];
            }
        }
        let mut dist = vec![u32::MAX; n];
        for d in 0..n {
            dist.fill(u32::MAX);
            dist[d] = 0;
            let mut frontier = std::collections::VecDeque::from([d]);
            while let Some(cur) = frontier.pop_front() {
                for &lid in &incoming[cur] {
                    let s = self.links[lid.index()].src.index();
                    if dist[s] == u32::MAX {
                        dist[s] = dist[cur] + 1;
                        frontier.push_back(s);
                    }
                }
            }
            for (i, spec) in self.links.iter().enumerate() {
                let s = spec.src.index();
                if !fwd[s].is_empty()
                    && dist[s] != u32::MAX
                    && dist[spec.dst.index()].wrapping_add(1) == dist[s]
                {
                    fwd[s][d].push(LinkId(i as u32));
                }
            }
        }

        // Materialize nodes.
        let mut nodes = Vec::with_capacity(n);
        for (i, spec) in self.nodes.into_iter().enumerate() {
            match spec {
                NodeSpec::Host { name } => {
                    let ups = &uplinks[i];
                    assert!(
                        ups.len() <= 1,
                        "host {name} has {} uplinks (max 1)",
                        ups.len()
                    );
                    nodes.push(Node::Host {
                        name,
                        uplink: ups.first().copied(),
                    });
                }
                NodeSpec::Switch { name, spec } => {
                    // Flatten this switch's candidate sets into CSR form.
                    let sets = std::mem::take(&mut fwd[i]);
                    let mut fwd_index = Vec::with_capacity(sets.len());
                    let mut fwd_links = Vec::new();
                    for set in sets {
                        fwd_index.push((fwd_links.len() as u32, set.len() as u32));
                        fwd_links.extend(set);
                    }
                    nodes.push(Node::Switch {
                        name,
                        ports: uplinks[i].clone(),
                        fwd_index,
                        fwd_links,
                        buffer: spec.buffer,
                    });
                }
            }
        }

        // Materialize links; egress queues of buffered switches charge the
        // switch's pool.
        let links: Vec<Link> = self
            .links
            .into_iter()
            .map(|spec| {
                let shared = match &nodes[spec.src.index()] {
                    Node::Switch { buffer, .. } => *buffer,
                    Node::Host { .. } => None,
                };
                Link::new(spec.src, spec.dst, spec.cfg, shared)
            })
            .collect();

        Simulator::assemble(nodes, links, self.buffers, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueConfig;
    use crate::time::SimTime;
    use crate::units::Rate;

    fn cfg() -> LinkConfig {
        LinkConfig::new(Rate::gbps(10), SimTime::from_us(1), QueueConfig::host_nic())
    }

    #[test]
    fn routes_through_two_tiers() {
        // h0 - tor0 - spine - tor1 - h1
        let mut b = NetworkBuilder::new();
        let h0 = b.add_host("h0");
        let tor0 = b.add_switch("tor0");
        let spine = b.add_switch("spine");
        let tor1 = b.add_switch("tor1");
        let h1 = b.add_host("h1");
        b.connect(h0, tor0, cfg(), cfg());
        b.connect(tor0, spine, cfg(), cfg());
        b.connect(spine, tor1, cfg(), cfg());
        b.connect(tor1, h1, cfg(), cfg());
        let sim = b.build(0);

        // tor0 must have routes toward both hosts.
        let t0 = sim.node(tor0);
        let to_h1 = t0.next_hop(h1).expect("route to h1");
        assert_eq!(sim.link(to_h1).dst, spine);
        let to_h0 = t0.next_hop(h0).expect("route to h0");
        assert_eq!(sim.link(to_h0).dst, h0);

        // spine routes toward each side's host.
        let sp = sim.node(spine);
        assert_eq!(sim.link(sp.next_hop(h0).unwrap()).dst, tor0);
        assert_eq!(sim.link(sp.next_hop(h1).unwrap()).dst, tor1);
    }

    #[test]
    fn shortest_path_wins_over_longer() {
        // h0 - s0 - s1 - s2 - h1, plus a direct s0-s2 shortcut: the route
        // from s0 to h1 must skip s1.
        let mut b = NetworkBuilder::new();
        let h0 = b.add_host("h0");
        let s0 = b.add_switch("s0");
        let s1 = b.add_switch("s1");
        let s2 = b.add_switch("s2");
        let h1 = b.add_host("h1");
        b.connect(h0, s0, cfg(), cfg());
        b.connect(s0, s1, cfg(), cfg());
        b.connect(s1, s2, cfg(), cfg());
        b.connect(s2, h1, cfg(), cfg());
        b.connect(s0, s2, cfg(), cfg()); // shortcut
        let sim = b.build(0);
        let hop = sim.node(s0).next_hop(h1).unwrap();
        assert_eq!(sim.link(hop).dst, s2, "must take the shortcut port");
    }

    #[test]
    fn parallel_equal_cost_paths_all_become_candidates() {
        // h0 - s0 = s1 - h1 with two parallel s0-s1 cables: both forward
        // links are equal-cost candidates, in ascending link-id order, and
        // the primary route is the lower id.
        let mut b = NetworkBuilder::new();
        let h0 = b.add_host("h0");
        let s0 = b.add_switch("s0");
        let s1 = b.add_switch("s1");
        let h1 = b.add_host("h1");
        b.connect(h0, s0, cfg(), cfg());
        let (t0, _) = b.connect(s0, s1, cfg(), cfg());
        let (t1, _) = b.connect(s0, s1, cfg(), cfg());
        b.connect(s1, h1, cfg(), cfg());
        let sim = b.build(0);
        assert_eq!(sim.node(s0).next_hops(h1), &[t0, t1]);
        assert_eq!(sim.node(s0).next_hop(h1), Some(t0));
        // Toward h0 there is a single candidate (the h0 cable).
        assert_eq!(sim.node(s0).next_hops(h0).len(), 1);
    }

    #[test]
    fn longer_paths_are_not_candidates() {
        // Two-hop alternative s0-s1-s2 must not join the one-hop s0-s2
        // shortcut in the candidate set.
        let mut b = NetworkBuilder::new();
        let h0 = b.add_host("h0");
        let s0 = b.add_switch("s0");
        let s1 = b.add_switch("s1");
        let s2 = b.add_switch("s2");
        let h1 = b.add_host("h1");
        b.connect(h0, s0, cfg(), cfg());
        b.connect(s0, s1, cfg(), cfg());
        b.connect(s1, s2, cfg(), cfg());
        b.connect(s2, h1, cfg(), cfg());
        let (short, _) = b.connect(s0, s2, cfg(), cfg());
        let sim = b.build(0);
        assert_eq!(sim.node(s0).next_hops(h1), &[short]);
    }

    #[test]
    fn switch_destinations_get_routes() {
        // h0 - tor0 - spine - tor1 - h1: every switch can reach every other
        // switch (control acknowledgments are addressed to switches), and
        // host candidate sets are unaffected.
        let mut b = NetworkBuilder::new();
        let h0 = b.add_host("h0");
        let tor0 = b.add_switch("tor0");
        let spine = b.add_switch("spine");
        let tor1 = b.add_switch("tor1");
        let h1 = b.add_host("h1");
        b.connect(h0, tor0, cfg(), cfg());
        b.connect(tor0, spine, cfg(), cfg());
        b.connect(spine, tor1, cfg(), cfg());
        b.connect(tor1, h1, cfg(), cfg());
        let sim = b.build(0);
        // tor0 reaches tor1 via the spine.
        let hop = sim.node(tor0).next_hop(tor1).expect("route to tor1");
        assert_eq!(sim.link(hop).dst, spine);
        // spine reaches both ToRs directly.
        assert_eq!(sim.link(sim.node(spine).next_hop(tor0).unwrap()).dst, tor0);
        assert_eq!(sim.link(sim.node(spine).next_hop(tor1).unwrap()).dst, tor1);
        // No switch ever forwards through a host: the route tor1 -> tor0
        // goes via the spine, not via h1.
        let back = sim.node(tor1).next_hop(tor0).unwrap();
        assert_eq!(sim.link(back).dst, spine);
        // A switch has no route to itself.
        assert!(sim.node(spine).next_hop(spine).is_none());
    }

    #[test]
    fn host_uplink_is_recorded() {
        let mut b = NetworkBuilder::new();
        let h = b.add_host("h");
        let s = b.add_switch("s");
        let (up, _down) = b.connect(h, s, cfg(), cfg());
        let sim = b.build(0);
        match sim.node(h) {
            Node::Host { uplink, .. } => assert_eq!(*uplink, Some(up)),
            _ => panic!(),
        }
    }

    #[test]
    fn buffered_switch_links_share_pool() {
        let mut b = NetworkBuilder::new();
        let h0 = b.add_host("h0");
        let h1 = b.add_host("h1");
        let s = b.add_switch_with_buffer("s", 1_000_000, BufferPolicy::StaticPool);
        let (_, s_to_h0) = b.connect(h0, s, cfg(), cfg());
        let (_, s_to_h1) = b.connect(h1, s, cfg(), cfg());
        let sim = b.build(0);
        assert_eq!(sim.link(s_to_h0).shared, Some(BufferId(0)));
        assert_eq!(sim.link(s_to_h1).shared, Some(BufferId(0)));
        assert_eq!(sim.buffers().len(), 1);
        // Host egress never charges a pool.
        match sim.node(h0) {
            Node::Host { uplink, .. } => {
                assert_eq!(sim.link(uplink.unwrap()).shared, None)
            }
            _ => panic!(),
        }
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let mut b = NetworkBuilder::new();
        let h = b.add_host("h");
        b.connect(h, h, cfg(), cfg());
    }

    #[test]
    #[should_panic]
    fn multi_uplink_host_rejected() {
        let mut b = NetworkBuilder::new();
        let h = b.add_host("h");
        let s0 = b.add_switch("s0");
        let s1 = b.add_switch("s1");
        b.connect(h, s0, cfg(), cfg());
        b.connect(h, s1, cfg(), cfg());
        b.build(0);
    }
}
