//! Hierarchical timing wheel: the production [`Scheduler`].
//!
//! The event mix of an incast run is dominated by near-future events —
//! `TxComplete` one serialization time out, `Delivery` one propagation time
//! out, TCP timers a few hundred microseconds to milliseconds out. A binary
//! heap pays `O(log n)` and a cache-hostile sift for every one of them. The
//! wheel instead hashes each event into a slot by its due time:
//!
//! - Time is bucketed into **ticks** of `2^18` ps (≈ 262 ns). Ordering
//!   within a tick is exact — due events are kept `(time, seq)`-sorted in
//!   the ready buffer — so tick size trades refill frequency against
//!   ready-buffer length, not correctness. 262 ns spans a couple of events
//!   of an incast run's steady state, which measured fastest: one refill
//!   amortizes over a small batch without the ready inserts getting long.
//! - Four **levels** of 64 slots each cover `64^4` ticks ≈ 4.4 s of future:
//!   level 0 resolves single ticks, each higher level resolves 64× coarser.
//!   Insertion is O(1): pick the level whose resolution still separates the
//!   event from the cursor, index by the tick's digits.
//! - Events beyond the wheel's span — RTO exponential backoffs reach the
//!   60 s `max_rto` ceiling — go to a small **overflow heap** and are pulled
//!   into the wheel when the cursor gets within range.
//! - A per-level **occupancy bitmap** lets the cursor jump over empty time
//!   in a few `trailing_zeros` instructions instead of stepping slot by
//!   slot, which matters because simulated time is mostly empty even at
//!   262 ns resolution.
//! - A one-slot **front cache** catches the hottest schedule of all: an
//!   event that is provably the next pop (sub-tick serialization and
//!   propagation hops — an ACK crossing a 100 Gbps link schedules its next
//!   hop a few ns out, ahead of everything pending). Roughly a third of a
//!   fig5 run's schedules would otherwise sort-insert at the very *front*
//!   of the ready buffer, the position that memmoves the whole live tail.
//!
//! Events whose tick has come due sit in a small `ready` heap ordered by
//! `(time, seq)` — exactly the reference [`EventQueue`] order — so the wheel
//! pops the same sequence the heap would, event for event. That equivalence
//! is enforced by the property tests below and by the differential harness
//! in `tests/scheduler_equivalence.rs`.
//!
//! Timer cancellation stays lazy: the simulator's generation check drops
//! stale timers when they fire, so the wheel never needs to find and remove
//! an event ([`crate::sim::Simulator`] bumps the generation instead). This
//! keeps cancel O(1) and — more importantly — keeps the popped event stream
//! byte-identical between schedulers.
//!
//! [`EventQueue`]: crate::event::EventQueue

use crate::event::{Event, EventKind, Scheduler};
use crate::ids::{LinkId, NodeId};
use crate::packet::PacketSlot;
use crate::time::SimTime;
use std::collections::BinaryHeap;

/// A wheel-internal compressed event: 24 bytes against [`Event`]'s 40.
///
/// Slot vectors, the ready buffer, and the overflow heap all move events
/// around constantly — every byte shows up in the insert/refill profile.
/// The kind tag is stolen from the two low bits of the sequence number
/// (`st = seq << 2 | tag`; seq stays unique, so `(time, st)` orders
/// exactly like `(time, seq)`), and the variant payloads all fit one u64:
/// link and pool slot are u32 ids, and the rare `Timer` (hundreds per run
/// against hundreds of thousands of packet events) parks its
/// `(node, key, gen)` triple in a side table and carries the index.
/// Packing and unpacking happen only at the schedule/pop boundary, so the
/// public [`Event`] API and the reference heap are untouched.
#[derive(Debug, Clone, Copy)]
struct Packed {
    time: SimTime,
    /// `seq << 2 | tag`.
    st: u64,
    payload: u64,
}

const TAG_TX: u64 = 0;
const TAG_DELIVERY: u64 = 1;
const TAG_FAULT: u64 = 2;
const TAG_TIMER: u64 = 3;

impl Packed {
    #[inline]
    fn seq(&self) -> u64 {
        self.st >> 2
    }
}

impl PartialEq for Packed {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.st == other.st
    }
}
impl Eq for Packed {}

impl Ord for Packed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed, matching `Event`: min-first through a max-heap.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.st.cmp(&self.st))
    }
}

impl PartialOrd for Packed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The due-event staging buffer: a vector in ascending `(time, seq)` pop
/// order with a consuming head cursor.
///
/// Storing pop order front-to-back makes the hot due-insert cheap: a
/// freshly scheduled due event almost always pops *after* everything
/// already staged (its time is ≥ now and its seq is the newest), so the
/// binary search lands at the end and the insert is an O(1) push. Back-
/// to-front storage would put that same event at index 0 and memmove the
/// whole buffer every time. Popping advances `head` instead of shifting;
/// the vector is cleared (capacity kept) once drained. A heap here costs a
/// cache-hostile sift on every one of the run's million-plus pops; sorting
/// each refill's bulk drain once is measurably cheaper on the fig5 mix.
#[derive(Debug, Default)]
struct ReadyVec {
    v: Vec<Packed>,
    head: usize,
}

impl ReadyVec {
    #[inline]
    fn is_empty(&self) -> bool {
        self.head >= self.v.len()
    }

    #[inline]
    fn pop(&mut self) -> Option<Packed> {
        let ev = *self.v.get(self.head)?;
        self.head += 1;
        if self.head == self.v.len() {
            self.v.clear();
            self.head = 0;
        }
        Some(ev)
    }

    #[inline]
    fn peek(&self) -> Option<&Packed> {
        self.v.get(self.head)
    }

    /// Inserts `ev` keeping pop order; O(log n) search plus a memmove of
    /// everything later-popping than `ev`. The worst case — an event
    /// beating the head, which would move the entire live tail — is
    /// siphoned off by the wheel's front cache before it gets here.
    #[inline]
    fn push(&mut self, ev: Packed) {
        let key = (ev.time, ev.st);
        let i = self.v[self.head..].partition_point(|e| (e.time, e.st) < key);
        self.v.insert(self.head + i, ev);
    }

    /// Appends without ordering; the caller must [`ReadyVec::sort`] before
    /// the next pop/peek/push.
    #[inline]
    fn append_unsorted(&mut self, events: std::vec::Drain<'_, Packed>) {
        self.v.extend(events);
    }

    #[inline]
    fn sort(&mut self) {
        self.v[self.head..].sort_unstable_by_key(|e| (e.time, e.st));
    }
}

/// log2 of the tick length in picoseconds.
const TICK_BITS: u32 = 18;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Wheel levels. Four levels cover `64^4` ticks ≈ 4.4 s; anything farther
/// out (RTO backoffs up to 60 s) overflows to a heap.
const LEVELS: usize = 4;
/// Ticks covered by the wheel before the overflow heap takes over.
const SPAN_TICKS: u64 = 1 << (SLOT_BITS * LEVELS as u32);

#[inline]
fn tick_of(t: SimTime) -> u64 {
    t.as_ps() >> TICK_BITS
}

/// Where the candidate scan found the earliest pending tick.
#[derive(Clone, Copy, Debug)]
enum Cand {
    Slot { level: usize, idx: usize },
    Overflow,
}

/// The hierarchical timing wheel scheduler. See the module docs.
#[derive(Debug)]
pub struct TimingWheel {
    /// Current tick: no pending event's tick is below it.
    cursor: u64,
    /// One-slot front cache: a freshly scheduled event that provably
    /// precedes everything pending (its `(time, seq)` beats the ready
    /// head, which is the global minimum whenever `ready` is non-empty)
    /// parks here instead of sort-inserting at the very front of the
    /// ready buffer — the most expensive position, a memmove of the whole
    /// live tail. Incast hot loops hit this constantly: an event chain
    /// hopping ns-scale links schedules its own continuation as the next
    /// global event. While occupied, the cache is the pop source and the
    /// cursor never advances, so parked events re-insert safely on
    /// demotion.
    front: Option<Packed>,
    /// Events of the tick the cursor sits on, in `(time, seq)` pop order.
    ready: ReadyVec,
    /// `LEVELS x SLOTS` buckets, level-major. Slot vectors keep their
    /// capacity across reuse, so the steady state allocates nothing.
    slots: Vec<Vec<Packed>>,
    /// One occupancy bit per slot, per level.
    occ: [u64; LEVELS],
    /// Per level, the cursor prefix (`cursor >> (6·level)`) whose slot was
    /// already partitioned by [`TimingWheel::cascade_entered_slots`].
    entered: [u64; LEVELS],
    /// Events beyond the wheel's span, min-first by `(time, seq)`.
    overflow: BinaryHeap<Packed>,
    /// Spare vector swapped in during cascades to avoid re-entrancy on the
    /// slot being drained.
    scratch: Vec<Packed>,
    /// `(node, key, gen)` of pending `Timer` events, indexed by the packed
    /// payload; entries recycle through `timer_free` when the timer pops.
    timers: Vec<(NodeId, u64, u64)>,
    timer_free: Vec<u32>,
    len: usize,
    next_seq: u64,
    cascades: u64,
}

impl Default for TimingWheel {
    fn default() -> Self {
        TimingWheel {
            cursor: 0,
            front: None,
            ready: ReadyVec::default(),
            // Pre-size every slot past the typical steady-state population
            // (lazily cancelled timer re-arms pile ~15 deep per slot on
            // ACK-clocked workloads, right at a Vec growth boundary).
            // ~200 KiB up front buys an allocation-free steady state: a
            // slot that never outgrows this never touches the allocator.
            slots: (0..LEVELS * SLOTS)
                .map(|_| Vec::with_capacity(32))
                .collect(),
            occ: [0; LEVELS],
            entered: [u64::MAX; LEVELS],
            overflow: BinaryHeap::new(),
            scratch: Vec::new(),
            timers: Vec::new(),
            timer_free: Vec::new(),
            len: 0,
            next_seq: 0,
            cascades: 0,
        }
    }
}

impl TimingWheel {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cascades performed so far (diagnostic: each is one slot re-hashed to
    /// finer resolution as the cursor caught up with it).
    pub fn cascades(&self) -> u64 {
        self.cascades
    }

    /// Compresses a freshly scheduled event into the wheel's internal
    /// 24-byte form; `Timer` payloads park in the side table.
    #[inline]
    fn pack(&mut self, time: SimTime, seq: u64, kind: EventKind) -> Packed {
        debug_assert!(seq < 1 << 62, "sequence number overflows the tag bits");
        let (tag, payload) = match kind {
            EventKind::TxComplete { link } => (TAG_TX, link.0 as u64),
            EventKind::Delivery { link, slot } => {
                (TAG_DELIVERY, link.0 as u64 | ((slot.0 as u64) << 32))
            }
            EventKind::Fault { index } => (TAG_FAULT, index as u64),
            EventKind::Timer { node, key, gen } => {
                let idx = match self.timer_free.pop() {
                    Some(i) => {
                        self.timers[i as usize] = (node, key, gen);
                        i
                    }
                    None => {
                        self.timers.push((node, key, gen));
                        (self.timers.len() - 1) as u32
                    }
                };
                (TAG_TIMER, idx as u64)
            }
        };
        Packed {
            time,
            st: (seq << 2) | tag,
            payload,
        }
    }

    /// Expands a popped event back to the public form, releasing any
    /// `Timer` side-table entry.
    #[inline]
    fn unpack(&mut self, p: Packed) -> Event {
        let kind = match p.st & 3 {
            TAG_TX => EventKind::TxComplete {
                link: LinkId(p.payload as u32),
            },
            TAG_DELIVERY => EventKind::Delivery {
                link: LinkId(p.payload as u32),
                slot: PacketSlot((p.payload >> 32) as u32),
            },
            TAG_FAULT => EventKind::Fault {
                index: p.payload as u32,
            },
            _ => {
                let idx = p.payload as u32;
                let (node, key, gen) = self.timers[idx as usize];
                self.timer_free.push(idx);
                EventKind::Timer { node, key, gen }
            }
        };
        Event {
            time: p.time,
            seq: p.seq(),
            kind,
        }
    }

    /// Routes a freshly scheduled event through the front cache: an event
    /// that provably pops before everything pending parks in the one-slot
    /// register, everything else takes the ordinary [`TimingWheel::insert`]
    /// path. Only schedule-time entry points come through here — internal
    /// re-hashes (cascades, overflow pull-ins) bypass the cache, their
    /// events are never the global minimum mid-refill.
    ///
    /// Safety of the demotion (`insert(f)` below): while the cache is
    /// occupied every pop/peek path serves it first and never calls
    /// `refill`, so the cursor cannot have advanced since `f` parked and
    /// `f` still hashes at or ahead of the cursor.
    #[inline]
    fn front_or_insert(&mut self, p: Packed) {
        match self.front {
            Some(f) => {
                if (p.time, p.st) < (f.time, f.st) {
                    self.front = Some(p);
                    self.insert(f);
                } else {
                    self.insert(p);
                }
            }
            // The ready head is the global minimum whenever it exists (the
            // cursor sits on the earliest pending tick); with ready empty
            // there is no O(1) bound to beat, so don't park.
            None => match self.ready.peek() {
                Some(h) if (p.time, p.st) < (h.time, h.st) => self.front = Some(p),
                _ => self.insert(p),
            },
        }
    }

    /// Places `ev` relative to the cursor: due ticks go to `ready`, the
    /// near future into the finest level that still separates it from the
    /// cursor, the far future into the overflow heap.
    fn insert(&mut self, ev: Packed) {
        let tick = tick_of(ev.time);
        if tick <= self.cursor {
            self.ready.push(ev);
            return;
        }
        let delta = tick - self.cursor;
        for l in 0..LEVELS {
            if delta < 1u64 << (SLOT_BITS * (l as u32 + 1)) {
                let idx = ((tick >> (SLOT_BITS * l as u32)) & SLOT_MASK) as usize;
                self.slots[l * SLOTS + idx].push(ev);
                self.occ[l] |= 1u64 << idx;
                return;
            }
        }
        self.overflow.push(ev);
    }

    /// Advances the cursor to the earliest pending tick and gathers every
    /// event of that tick into `ready`. Returns false only when nothing is
    /// pending at all.
    ///
    /// Conservative candidates (a higher-level slot's start, which may
    /// undershoot the slot's actual minimum) are resolved by cascading the
    /// slot and rescanning; the loop returns once the scan proves all
    /// remaining wheel/overflow events lie strictly after the cursor.
    /// Re-hashes to finer resolution the current-frame events of any
    /// coarse slot the cursor has moved inside of. Those events now
    /// resolve at a lower level (same coarse digit, so the delta shrank
    /// below the level's span); leaving them put would force the
    /// candidate scan to take the slot's minimum — an O(slot) walk
    /// repeated on every refill while the cursor crosses the slot's
    /// 64^level ticks.
    ///
    /// A slot can also hold events one full revolution out (same digit,
    /// next frame — e.g. cursor at tick 63, event at tick 64·64). Those
    /// stay put, the occupancy bit stays set, and the candidate scan
    /// prices the slot at its next-revolution start. `entered[l]`
    /// remembers the cursor prefix already partitioned so the walk runs
    /// once per slot entry, not once per refill.
    fn cascade_entered_slots(&mut self) {
        'rescan: loop {
            for l in 1..LEVELS {
                if self.occ[l] == 0 {
                    continue;
                }
                let shift = SLOT_BITS * l as u32;
                let prefix = self.cursor >> shift;
                if self.entered[l] == prefix {
                    continue;
                }
                let il = (prefix & SLOT_MASK) as usize;
                if self.occ[l] & (1u64 << il) == 0 {
                    continue;
                }
                self.entered[l] = prefix;
                self.cascades += 1;
                // Copy the slot out and clear it in place: the slot vector
                // keeps its high-water capacity (steady state must not
                // re-grow slots it has already seen full), and `scratch`
                // gives `insert` a free hand on `self` during the re-hash.
                let mut tmp = std::mem::take(&mut self.scratch);
                tmp.extend_from_slice(&self.slots[l * SLOTS + il]);
                self.slots[l * SLOTS + il].clear();
                let mut kept = false;
                for ev in tmp.drain(..) {
                    if tick_of(ev.time) >> shift == prefix {
                        // Current frame: re-hashes strictly finer.
                        self.insert(ev);
                    } else {
                        // Next revolution: not due for another pass.
                        self.slots[l * SLOTS + il].push(ev);
                        kept = true;
                    }
                }
                self.scratch = tmp;
                if !kept {
                    self.occ[l] &= !(1u64 << il);
                }
                // A level-l drain can land events in a lower level's
                // cursor slot; rescan from the finest level.
                continue 'rescan;
            }
            return;
        }
    }

    fn refill(&mut self) -> bool {
        loop {
            self.cascade_entered_slots();

            // Lower bound over everything coarser than level 0: the
            // earliest possible tick in levels 1.. and the overflow heap.
            let mut best_tick = u64::MAX;
            let mut best: Option<Cand> = None;

            for l in 1..LEVELS {
                if self.occ[l] == 0 {
                    continue;
                }
                let shift = SLOT_BITS * l as u32;
                let span = 1u64 << shift;
                let il = ((self.cursor >> shift) & SLOT_MASK) as u32;
                let frame = self.cursor & !((span << SLOT_BITS) - 1);
                // Slots ahead in this frame: their start tick is a lower
                // bound (cheap, and safe — undershoot just causes a cascade
                // plus rescan).
                let ahead = (self.occ[l] >> il) >> 1;
                if ahead != 0 {
                    let idx = ahead.trailing_zeros() + il + 1;
                    let t = frame + idx as u64 * span;
                    if t < best_tick {
                        best_tick = t;
                        best = Some(Cand::Slot {
                            level: l,
                            idx: idx as usize,
                        });
                    }
                }
                // Slots at or behind the cursor wrapped into the next
                // frame. The cursor's own slot belongs here too: its
                // current-frame events were cascaded away on entry, so
                // anything left in it is a revolution out.
                let behind = if il == SLOT_MASK as u32 {
                    self.occ[l]
                } else {
                    self.occ[l] & !(u64::MAX << (il + 1))
                };
                if behind != 0 {
                    let idx = behind.trailing_zeros();
                    let t = frame + (span << SLOT_BITS) + idx as u64 * span;
                    if t < best_tick {
                        best_tick = t;
                        best = Some(Cand::Slot {
                            level: l,
                            idx: idx as usize,
                        });
                    }
                }
            }

            if let Some(e) = self.overflow.peek() {
                let t = tick_of(e.time);
                if t < best_tick {
                    best_tick = t;
                    best = Some(Cand::Overflow);
                }
            }

            // Bulk-drain the level-0 frame: every tick from the cursor up
            // to the coarse bound is exactly resolved, so all of them move
            // to `ready` in one pass and the scan amortizes over up to 64
            // pops. The cursor lands on the last tick proven clear, so
            // late inserts into the drained range go straight to `ready`.
            let c0 = (self.cursor & SLOT_MASK) as u32;
            let frame = self.cursor & !SLOT_MASK;
            let limit = best_tick.min(frame + SLOTS as u64); // exclusive
            let mut ahead0 = self.occ[0] >> c0;
            let mut drained = false;
            while ahead0 != 0 {
                let idx = ahead0.trailing_zeros() + c0;
                let tick = frame | idx as u64;
                if tick >= limit {
                    break;
                }
                self.occ[0] &= !(1u64 << idx);
                self.ready
                    .append_unsorted(self.slots[idx as usize].drain(..));
                ahead0 &= ahead0 - 1;
                // The cursor lands on the last *occupied* tick drained, not
                // `limit - 1`: ticks between the two are proven clear, but
                // keeping the cursor low routes later inserts into level-0
                // slots (a plain push) instead of the ready buffer (a
                // binary insert paying a memmove), and the occupancy bitmap
                // makes rescanning the cleared gap free.
                self.cursor = tick;
                drained = true;
            }
            if drained {
                self.ready.sort();
                return true;
            }

            // Nothing due in this frame before the coarse bound; consider
            // the level-0 bits that wrapped into the next frame, then jump
            // to the best candidate and resolve it.
            let behind0 = self.occ[0] & !(u64::MAX << c0);
            if behind0 != 0 {
                let idx = behind0.trailing_zeros();
                let t = frame + SLOTS as u64 + idx as u64;
                if t < best_tick {
                    best_tick = t;
                    best = Some(Cand::Slot {
                        level: 0,
                        idx: idx as usize,
                    });
                }
            }
            let Some(cand) = best else {
                return !self.ready.is_empty();
            };
            if !self.ready.is_empty() && best_tick > self.cursor {
                // `ready` already holds everything up to the cursor;
                // the rest is strictly later.
                return true;
            }
            debug_assert!(best_tick >= self.cursor, "wheel scanned past an event");
            self.cursor = best_tick;
            self.act(cand);
        }
    }

    /// Drains the candidate the cursor just advanced to: a slot re-hashes
    /// through [`TimingWheel::insert`] (due events land in `ready`), the
    /// overflow heap spills everything now within the wheel's span.
    fn act(&mut self, cand: Cand) {
        match cand {
            Cand::Slot { level, idx } => {
                self.occ[level] &= !(1u64 << idx);
                // Draining a level-0 slot moves events straight to
                // `ready`; only coarser slots are true cascades.
                self.cascades += (level > 0) as u64;
                // Same capacity-preserving copy-out as the cascade above;
                // `insert` may legitimately push back into this very slot
                // (an event a full revolution out re-hashes to the same
                // index), which is why the iteration runs over `scratch`.
                let mut tmp = std::mem::take(&mut self.scratch);
                tmp.extend_from_slice(&self.slots[level * SLOTS + idx]);
                self.slots[level * SLOTS + idx].clear();
                for ev in tmp.drain(..) {
                    self.insert(ev);
                }
                self.scratch = tmp;
            }
            Cand::Overflow => {
                // Pull everything now within the wheel's span; the first
                // item lands in `ready` (its tick is the cursor).
                while let Some(e) = self.overflow.peek() {
                    if tick_of(e.time) - self.cursor >= SPAN_TICKS {
                        break;
                    }
                    let e = *e;
                    self.overflow.pop();
                    self.insert(e);
                }
            }
        }
    }
}

impl Scheduler for TimingWheel {
    const NAME: &'static str = "wheel";

    fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let p = self.pack(time, seq, kind);
        self.front_or_insert(p);
    }

    fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    fn schedule_reserved(&mut self, time: SimTime, seq: u64, kind: EventKind) {
        self.len += 1;
        let p = self.pack(time, seq, kind);
        self.front_or_insert(p);
    }

    fn pop(&mut self) -> Option<Event> {
        if let Some(p) = self.front.take() {
            self.len -= 1;
            return Some(self.unpack(p));
        }
        if self.ready.is_empty() && !self.refill() {
            return None;
        }
        self.len -= 1;
        let p = self.ready.pop()?;
        Some(self.unpack(p))
    }

    fn pop_due(&mut self, deadline: SimTime) -> Option<Event> {
        // The front cache, when occupied, is the global minimum: past the
        // deadline means nothing else is due either.
        if let Some(p) = self.front {
            if p.time > deadline {
                return None;
            }
            self.front = None;
            self.len -= 1;
            return Some(self.unpack(p));
        }
        if self.ready.is_empty() && !self.refill() {
            return None;
        }
        if self.ready.peek()?.time > deadline {
            return None;
        }
        self.len -= 1;
        let p = self.ready.pop()?;
        Some(self.unpack(p))
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        if let Some(p) = &self.front {
            return Some(p.time);
        }
        if self.ready.is_empty() && !self.refill() {
            return None;
        }
        self.ready.peek().map(|e| e.time)
    }

    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if let Some(p) = &self.front {
            return Some((p.time, p.seq()));
        }
        if self.ready.is_empty() && !self.refill() {
            return None;
        }
        self.ready.peek().map(|e| (e.time, e.seq()))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LinkId, NodeId};
    use stats::Rng;

    fn kind(tag: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(0),
            key: tag,
            gen: 0,
        }
    }

    fn tag_of(ev: &Event) -> u64 {
        match ev.kind {
            EventKind::Timer { key, .. } => key,
            _ => unreachable!(),
        }
    }

    /// The model the wheel is checked against: a plain vector, sorted on
    /// every pop. Brutally slow, obviously correct.
    #[derive(Default)]
    struct SortedVecModel {
        pending: Vec<(u64, u64, u64)>, // (time_ps, seq, tag)
        next_seq: u64,
    }

    impl SortedVecModel {
        fn schedule(&mut self, t: u64, tag: u64) {
            self.pending.push((t, self.next_seq, tag));
            self.next_seq += 1;
        }
        fn pop(&mut self) -> Option<(u64, u64, u64)> {
            let i = self
                .pending
                .iter()
                .enumerate()
                .min_by_key(|(_, &(t, s, _))| (t, s))
                .map(|(i, _)| i)?;
            Some(self.pending.swap_remove(i))
        }
    }

    /// Drives the wheel and the model through the same schedule/pop script
    /// and asserts identical pop streams.
    fn check_script(script: &[(bool, u64)]) {
        let mut wheel = TimingWheel::new();
        let mut model = SortedVecModel::default();
        let mut tag = 0u64;
        let mut now = 0u64;
        for &(is_pop, t) in script {
            if is_pop {
                let got = wheel.pop();
                let want = model.pop();
                match (got, want) {
                    (Some(g), Some(w)) => {
                        assert_eq!((g.time.as_ps(), g.seq, tag_of(&g)), w, "pop diverged");
                        now = g.time.as_ps();
                    }
                    (None, None) => {}
                    (g, w) => panic!("presence diverged: wheel={g:?} model={w:?}"),
                }
            } else {
                let at = now + t;
                wheel.schedule(SimTime::from_ps(at), kind(tag));
                model.schedule(at, tag);
                tag += 1;
            }
        }
        // Drain both to the end.
        loop {
            let got = wheel.pop();
            let want = model.pop();
            match (got, want) {
                (Some(g), Some(w)) => {
                    assert_eq!((g.time.as_ps(), g.seq, tag_of(&g)), w, "drain diverged")
                }
                (None, None) => break,
                (g, w) => panic!("drain presence diverged: wheel={g:?} model={w:?}"),
            }
        }
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn random_ops_match_sorted_vec_model() {
        let tick = 1u64 << TICK_BITS;
        for seed in 0..25u64 {
            let mut rng = Rng::new(seed);
            let mut script = Vec::new();
            for _ in 0..1500 {
                if rng.chance(0.4) {
                    script.push((true, 0));
                } else {
                    // Delta profile spanning every level and the overflow.
                    let delta = match rng.below(6) {
                        0 => rng.below(tick),                                       // same tick
                        1 => rng.below(64 * tick),                                  // level 0
                        2 => rng.below(64 * 64 * tick),                             // level 1
                        3 => rng.below(SPAN_TICKS * tick),                          // whole wheel
                        4 => SPAN_TICKS * tick + rng.below(60 * SPAN_TICKS * tick), // overflow
                        _ => 0, // due immediately
                    };
                    script.push((false, delta));
                }
            }
            check_script(&script);
        }
    }

    #[test]
    fn same_tick_orders_by_time_then_seq() {
        // Many events inside one tick, scheduled in shuffled time
        // order: pops must come back sorted by (time, seq), not insertion.
        let mut wheel = TimingWheel::new();
        let offsets = [9u64, 3, 3, 65_535, 0, 17, 3, 9, 0];
        for (i, &off) in offsets.iter().enumerate() {
            wheel.schedule(SimTime::from_ps(off), kind(i as u64));
        }
        let mut popped = Vec::new();
        while let Some(e) = wheel.pop() {
            popped.push((e.time.as_ps(), e.seq));
        }
        let mut want = popped.clone();
        want.sort();
        assert_eq!(popped, want);
        assert_eq!(popped.len(), offsets.len());
    }

    #[test]
    fn cascade_boundaries_at_level_rollover() {
        // Events pinned to the exact slot and level boundaries: last tick of
        // level 0, first of level 1, the level-2 and level-3 edges, and one
        // tick short of the overflow span. Each ± one tick and ± one ps.
        let tick = 1u64 << TICK_BITS;
        let edges = [
            63 * tick,
            64 * tick,
            (64 * 64 - 1) * tick,
            64 * 64 * tick,
            64 * 64 * 64 * tick,
            (SPAN_TICKS - 1) * tick,
            SPAN_TICKS * tick,     // first overflow tick
            SPAN_TICKS * tick * 3, // deep overflow
        ];
        let mut script = Vec::new();
        for &e in &edges {
            for d in [
                e.saturating_sub(tick),
                e.saturating_sub(1),
                e,
                e + 1,
                e + tick,
            ] {
                script.push((false, d));
            }
        }
        // Interleave pops so the cursor crosses the rollovers mid-script.
        for i in (0..script.len()).rev().step_by(3) {
            script.insert(i, (true, 0));
        }
        check_script(&script);
    }

    #[test]
    fn cross_revolution_events_do_not_fire_early() {
        // Two events one full level-1 revolution apart land in the same
        // slot; the later one must wait for the next pass.
        let tick = 1u64 << TICK_BITS;
        let mut wheel = TimingWheel::new();
        wheel.schedule(SimTime::from_ps(70 * tick), kind(0));
        // Pop it so the cursor advances to tick 70.
        assert_eq!(tag_of(&wheel.pop().unwrap()), 0);
        // Same level-1 slot digit, one revolution later, plus a nearer event.
        wheel.schedule(SimTime::from_ps((70 + 64 * 64) * tick), kind(1));
        wheel.schedule(SimTime::from_ps(80 * tick), kind(2));
        assert_eq!(tag_of(&wheel.pop().unwrap()), 2);
        let last = wheel.pop().unwrap();
        assert_eq!(tag_of(&last), 1);
        assert_eq!(last.time.as_ps(), (70 + 64 * 64) * tick);
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn overflow_events_cascade_into_wheel() {
        let mut wheel = TimingWheel::new();
        // A 60 s RTO ceiling event: far beyond the ~1.1 s span.
        wheel.schedule(SimTime::from_secs(60), kind(0));
        wheel.schedule(SimTime::from_ms(1), kind(1));
        assert_eq!(wheel.len(), 2);
        assert_eq!(tag_of(&wheel.pop().unwrap()), 1);
        let rto = wheel.pop().unwrap();
        assert_eq!(tag_of(&rto), 0);
        assert_eq!(rto.time, SimTime::from_secs(60));
        assert!(wheel.pop().is_none());
        assert!(wheel.is_empty());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut rng = Rng::new(7);
        let mut wheel = TimingWheel::new();
        for i in 0..200 {
            wheel.schedule(SimTime::from_ps(rng.below(1 << 44)), kind(i));
        }
        while let Some(t) = wheel.peek_time() {
            assert_eq!(wheel.pop().unwrap().time, t);
        }
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn matches_reference_heap_on_mixed_kinds() {
        use crate::event::EventQueue;
        let mut rng = Rng::new(11);
        let mut wheel = TimingWheel::new();
        let mut heap = EventQueue::new();
        let mut now = 0u64;
        for step in 0..3000u64 {
            if rng.chance(0.45) {
                let (g, w) = (Scheduler::pop(&mut wheel), heap.pop());
                match (g, w) {
                    (Some(g), Some(w)) => {
                        assert_eq!((g.time, g.seq), (w.time, w.seq));
                        now = g.time.as_ps();
                    }
                    (None, None) => {}
                    _ => panic!("presence diverged at step {step}"),
                }
            } else {
                let t = SimTime::from_ps(now + rng.below(1u64 << 42));
                let k = match rng.below(3) {
                    0 => EventKind::TxComplete {
                        link: LinkId(step as u32),
                    },
                    1 => EventKind::Delivery {
                        link: LinkId(step as u32),
                        slot: crate::packet::PacketSlot(0),
                    },
                    _ => kind(step),
                };
                Scheduler::schedule(&mut wheel, t, k);
                heap.schedule(t, k);
            }
        }
        loop {
            match (Scheduler::pop(&mut wheel), heap.pop()) {
                (Some(g), Some(w)) => assert_eq!((g.time, g.seq), (w.time, w.seq)),
                (None, None) => break,
                _ => panic!("drain presence diverged"),
            }
        }
    }

    #[test]
    fn steady_state_cascades_stay_bounded() {
        // A metronome of near-future events: the cursor should mostly ride
        // the level-0 bitmap; cascades stay far below one per event.
        let mut wheel = TimingWheel::new();
        let mut fired = 0u64;
        wheel.schedule(SimTime::from_ps(1200), kind(0));
        while let Some(e) = Scheduler::pop(&mut wheel) {
            let now = e.time.as_ps();
            fired += 1;
            if fired < 10_000 {
                wheel.schedule(SimTime::from_ps(now + 1_200_000), kind(fired));
            }
        }
        assert_eq!(fired, 10_000);
        assert!(
            wheel.cascades() < fired / 4,
            "{} cascades for {} events",
            wheel.cascades(),
            fired
        );
    }
}
