//! Canonical topologies from the paper.
//!
//! Section 4 of the paper evaluates incast on a dumbbell: N senders, each
//! with a 10 Gbps link to their ToR, a 100 Gbps trunk between ToRs, and a
//! 10 Gbps downlink to the single receiver — a 10:1 oversubscription at the
//! receiving ToR. [`IncastFabric`] generalizes this to R receivers on the
//! receiving ToR (used for the rack-contention experiments) and computes
//! per-link propagation delays so the base RTT matches a target (30 µs in
//! the paper).

use crate::buffer::BufferPolicy;
use crate::builder::NetworkBuilder;
use crate::event::Scheduler;
use crate::ids::{LinkId, NodeId};
use crate::link::LinkConfig;
use crate::packet::MIN_FRAME_BYTES;
use crate::queue::QueueConfig;
use crate::sim::Simulator;
use crate::time::SimTime;
use crate::units::Rate;
use crate::wheel::TimingWheel;

/// Configuration for [`build_fabric`].
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of sending hosts (behind the sending ToR).
    pub num_senders: usize,
    /// Number of receiving hosts (on the receiving ToR).
    pub num_receivers: usize,
    /// Host NIC rate (paper: 10 Gbps).
    pub host_rate: Rate,
    /// ToR-to-ToR trunk rate (paper: 100 Gbps).
    pub trunk_rate: Rate,
    /// Target base round-trip time including serialization of one MTU data
    /// packet and its ACK (paper: 30 µs).
    pub target_rtt: SimTime,
    /// Wire MTU used for the RTT budget calculation.
    pub mtu_wire: u32,
    /// Egress queue config for ToR ports (paper: 2 MB / 1333 pkts, K = 65).
    pub tor_queue: QueueConfig,
    /// Egress queue config for host NICs (deep, unmarked).
    pub host_queue: QueueConfig,
    /// Shared buffer on the *receiving* ToR: `(total_bytes, policy)`.
    /// `None` gives the paper's per-port static queues.
    pub receiver_tor_buffer: Option<(u64, BufferPolicy)>,
    /// Seed for the simulator's fault-injection RNG.
    pub seed: u64,
}

impl Default for FabricConfig {
    /// The paper's Section 4 setup with one receiver.
    fn default() -> Self {
        FabricConfig {
            num_senders: 100,
            num_receivers: 1,
            host_rate: Rate::gbps(10),
            trunk_rate: Rate::gbps(100),
            target_rtt: SimTime::from_us(30),
            mtu_wire: 1500,
            tor_queue: QueueConfig::paper_tor(),
            host_queue: QueueConfig::host_nic(),
            receiver_tor_buffer: None,
            seed: 0,
        }
    }
}

/// A built incast fabric.
pub struct IncastFabric<S: Scheduler = TimingWheel> {
    /// The runnable simulator.
    pub sim: Simulator<S>,
    /// Sending hosts, in index order.
    pub senders: Vec<NodeId>,
    /// Receiving hosts, in index order.
    pub receivers: Vec<NodeId>,
    /// Sending-side ToR.
    pub tor_s: NodeId,
    /// Receiving-side ToR.
    pub tor_r: NodeId,
    /// Receiver downlinks `tor_r -> receivers[i]`: the bottleneck queues.
    pub downlinks: Vec<LinkId>,
    /// The `tor_s -> tor_r` trunk.
    pub trunk: LinkId,
    /// One-way propagation delay assigned to every link.
    pub per_link_propagation: SimTime,
}

/// Computes the per-link propagation delay such that the base RTT (one MTU
/// data packet sender->receiver plus one minimum-size ACK back, across
/// host-ToR-ToR-host) equals `target`, given serialization costs.
fn per_link_propagation(cfg: &FabricConfig) -> SimTime {
    let data_ser = cfg.host_rate.serialize_time(cfg.mtu_wire as u64)
        + cfg.trunk_rate.serialize_time(cfg.mtu_wire as u64)
        + cfg.host_rate.serialize_time(cfg.mtu_wire as u64);
    let ack = MIN_FRAME_BYTES as u64;
    let ack_ser = cfg.host_rate.serialize_time(ack)
        + cfg.trunk_rate.serialize_time(ack)
        + cfg.host_rate.serialize_time(ack);
    let fixed = data_ser + ack_ser;
    let remaining = cfg.target_rtt.saturating_sub(fixed);
    SimTime::from_ps(remaining.as_ps() / 6)
}

/// Builds the paper's incast fabric.
pub fn build_fabric(cfg: &FabricConfig) -> IncastFabric {
    build_fabric_with::<TimingWheel>(cfg)
}

/// [`build_fabric`] with an explicit [`Scheduler`] (for the differential
/// wheel-vs-heap tests and benchmarks).
pub fn build_fabric_with<S: Scheduler>(cfg: &FabricConfig) -> IncastFabric<S> {
    assert!(cfg.num_senders > 0, "need at least one sender");
    assert!(cfg.num_receivers > 0, "need at least one receiver");
    let prop = per_link_propagation(cfg);
    let mut b = NetworkBuilder::new();

    let tor_s = b.add_switch("tor-s");
    let tor_r = match cfg.receiver_tor_buffer {
        Some((total, policy)) => b.add_switch_with_buffer("tor-r", total, policy),
        None => b.add_switch("tor-r"),
    };

    let host_link = |rate: Rate, q: &QueueConfig| LinkConfig::new(rate, prop, q.clone());

    let mut senders = Vec::with_capacity(cfg.num_senders);
    for i in 0..cfg.num_senders {
        let h = b.add_host(&format!("sender-{i}"));
        // Host egress uses the deep NIC queue; the ToR's reverse port uses
        // the ToR queue config.
        b.connect(
            h,
            tor_s,
            host_link(cfg.host_rate, &cfg.host_queue),
            host_link(cfg.host_rate, &cfg.tor_queue),
        );
        senders.push(h);
    }

    let (trunk, _back) = b.connect(
        tor_s,
        tor_r,
        LinkConfig::new(cfg.trunk_rate, prop, cfg.tor_queue.clone()),
        LinkConfig::new(cfg.trunk_rate, prop, cfg.tor_queue.clone()),
    );

    let mut receivers = Vec::with_capacity(cfg.num_receivers);
    let mut downlinks = Vec::with_capacity(cfg.num_receivers);
    for i in 0..cfg.num_receivers {
        let h = b.add_host(&format!("receiver-{i}"));
        let (_up, down) = b.connect(
            h,
            tor_r,
            host_link(cfg.host_rate, &cfg.host_queue),
            host_link(cfg.host_rate, &cfg.tor_queue),
        );
        receivers.push(h);
        downlinks.push(down);
    }

    IncastFabric {
        sim: b.build_with_scheduler::<S>(cfg.seed),
        senders,
        receivers,
        tor_s,
        tor_r,
        downlinks,
        trunk,
        per_link_propagation: prop,
    }
}

/// The single-receiver dumbbell of the paper's Section 4.
pub fn build_dumbbell(num_senders: usize, seed: u64) -> IncastFabric {
    build_fabric(&FabricConfig {
        num_senders,
        seed,
        ..FabricConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let cfg = FabricConfig::default();
        assert_eq!(cfg.host_rate, Rate::gbps(10));
        assert_eq!(cfg.trunk_rate, Rate::gbps(100));
        assert_eq!(cfg.target_rtt, SimTime::from_us(30));
        assert_eq!(cfg.tor_queue.ecn_threshold_pkts, Some(65));
    }

    #[test]
    fn propagation_budget_fills_target_rtt() {
        let cfg = FabricConfig::default();
        let prop = per_link_propagation(&cfg);
        // Data serialization: 1.2 + 0.12 + 1.2 us; ACK: 51.2 + 5.12 + 51.2 ns.
        let fixed_ps = (1_200_000 + 120_000 + 1_200_000) + (51_200 + 5_120 + 51_200);
        let expected = (30_000_000u64 - fixed_ps) / 6;
        assert_eq!(prop.as_ps(), expected);
        // Round trip = 6 props + fixed ~= 30 us (within integer division).
        let rtt = prop.as_ps() * 6 + fixed_ps;
        assert!((rtt as i64 - 30_000_000).unsigned_abs() < 6);
    }

    #[test]
    fn propagation_clamps_when_target_too_small() {
        let cfg = FabricConfig {
            target_rtt: SimTime::from_ns(100),
            ..FabricConfig::default()
        };
        assert_eq!(per_link_propagation(&cfg), SimTime::ZERO);
    }

    #[test]
    fn fabric_shape() {
        let f = build_fabric(&FabricConfig {
            num_senders: 3,
            num_receivers: 2,
            ..FabricConfig::default()
        });
        assert_eq!(f.senders.len(), 3);
        assert_eq!(f.receivers.len(), 2);
        assert_eq!(f.downlinks.len(), 2);
        // 3 sender cables + 1 trunk + 2 receiver cables = 6 duplex = 12 links.
        assert_eq!(f.sim.num_links(), 12);
        // Downlinks start at tor_r and end at receivers.
        for (i, &dl) in f.downlinks.iter().enumerate() {
            assert_eq!(f.sim.link(dl).src, f.tor_r);
            assert_eq!(f.sim.link(dl).dst, f.receivers[i]);
        }
        // The bottleneck queue uses the paper's ToR parameters.
        assert_eq!(
            f.sim.link(f.downlinks[0]).queue.config().ecn_threshold_pkts,
            Some(65)
        );
    }

    #[test]
    fn shared_buffer_applies_to_receiver_tor_only() {
        let f = build_fabric(&FabricConfig {
            num_senders: 2,
            num_receivers: 2,
            receiver_tor_buffer: Some((1_000_000, BufferPolicy::DynamicThreshold { alpha: 1.0 })),
            ..FabricConfig::default()
        });
        assert!(f.sim.link(f.downlinks[0]).shared.is_some());
        assert!(f.sim.link(f.downlinks[1]).shared.is_some());
        assert!(f.sim.link(f.trunk).shared.is_none(), "tor_s is unbuffered");
        assert_eq!(f.sim.buffers().len(), 1);
    }

    #[test]
    fn dumbbell_is_single_receiver() {
        let f = build_dumbbell(5, 7);
        assert_eq!(f.senders.len(), 5);
        assert_eq!(f.receivers.len(), 1);
    }
}
