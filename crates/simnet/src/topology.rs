//! Canonical topologies from the paper.
//!
//! Section 4 of the paper evaluates incast on a dumbbell: N senders, each
//! with a 10 Gbps link to their ToR, a 100 Gbps trunk between ToRs, and a
//! 10 Gbps downlink to the single receiver — a 10:1 oversubscription at the
//! receiving ToR. [`IncastFabric`] generalizes this to R receivers on the
//! receiving ToR (used for the rack-contention experiments) and computes
//! per-link propagation delays so the base RTT matches a target (30 µs in
//! the paper).

use crate::buffer::BufferPolicy;
use crate::builder::NetworkBuilder;
use crate::event::Scheduler;
use crate::ids::{LinkId, NodeId};
use crate::link::LinkConfig;
use crate::packet::MIN_FRAME_BYTES;
use crate::queue::QueueConfig;
use crate::sim::Simulator;
use crate::time::SimTime;
use crate::units::Rate;
use crate::wheel::TimingWheel;

/// Configuration for [`build_fabric`].
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of sending hosts (behind the sending ToR).
    pub num_senders: usize,
    /// Number of receiving hosts (on the receiving ToR).
    pub num_receivers: usize,
    /// Host NIC rate (paper: 10 Gbps).
    pub host_rate: Rate,
    /// ToR-to-ToR trunk rate (paper: 100 Gbps).
    pub trunk_rate: Rate,
    /// Target base round-trip time including serialization of one MTU data
    /// packet and its ACK (paper: 30 µs).
    pub target_rtt: SimTime,
    /// Wire MTU used for the RTT budget calculation.
    pub mtu_wire: u32,
    /// Egress queue config for ToR ports (paper: 2 MB / 1333 pkts, K = 65).
    pub tor_queue: QueueConfig,
    /// Egress queue config for host NICs (deep, unmarked).
    pub host_queue: QueueConfig,
    /// Shared buffer on the *receiving* ToR: `(total_bytes, policy)`.
    /// `None` gives the paper's per-port static queues.
    pub receiver_tor_buffer: Option<(u64, BufferPolicy)>,
    /// Seed for the simulator's fault-injection RNG.
    pub seed: u64,
}

impl Default for FabricConfig {
    /// The paper's Section 4 setup with one receiver.
    fn default() -> Self {
        FabricConfig {
            num_senders: 100,
            num_receivers: 1,
            host_rate: Rate::gbps(10),
            trunk_rate: Rate::gbps(100),
            target_rtt: SimTime::from_us(30),
            mtu_wire: 1500,
            tor_queue: QueueConfig::paper_tor(),
            host_queue: QueueConfig::host_nic(),
            receiver_tor_buffer: None,
            seed: 0,
        }
    }
}

/// A built incast fabric.
pub struct IncastFabric<S: Scheduler = TimingWheel> {
    /// The runnable simulator.
    pub sim: Simulator<S>,
    /// Sending hosts, in index order.
    pub senders: Vec<NodeId>,
    /// Receiving hosts, in index order.
    pub receivers: Vec<NodeId>,
    /// Sending-side ToR.
    pub tor_s: NodeId,
    /// Receiving-side ToR.
    pub tor_r: NodeId,
    /// Receiver downlinks `tor_r -> receivers[i]`: the bottleneck queues.
    pub downlinks: Vec<LinkId>,
    /// The `tor_s -> tor_r` trunk.
    pub trunk: LinkId,
    /// One-way propagation delay assigned to every link.
    pub per_link_propagation: SimTime,
}

/// Computes the per-link propagation delay such that the base RTT (one MTU
/// data packet sender->receiver plus one minimum-size ACK back, across
/// host-ToR-ToR-host) equals `target`, given serialization costs.
fn per_link_propagation(cfg: &FabricConfig) -> SimTime {
    let data_ser = cfg.host_rate.serialize_time(cfg.mtu_wire as u64)
        + cfg.trunk_rate.serialize_time(cfg.mtu_wire as u64)
        + cfg.host_rate.serialize_time(cfg.mtu_wire as u64);
    let ack = MIN_FRAME_BYTES as u64;
    let ack_ser = cfg.host_rate.serialize_time(ack)
        + cfg.trunk_rate.serialize_time(ack)
        + cfg.host_rate.serialize_time(ack);
    let fixed = data_ser + ack_ser;
    let remaining = cfg.target_rtt.saturating_sub(fixed);
    SimTime::from_ps(remaining.as_ps() / 6)
}

/// Builds the paper's incast fabric.
pub fn build_fabric(cfg: &FabricConfig) -> IncastFabric {
    build_fabric_with::<TimingWheel>(cfg)
}

/// [`build_fabric`] with an explicit [`Scheduler`] (for the differential
/// wheel-vs-heap tests and benchmarks).
pub fn build_fabric_with<S: Scheduler>(cfg: &FabricConfig) -> IncastFabric<S> {
    build_two_tor_with(cfg, 1).0
}

/// The two-ToR fabric with `trunks` parallel `tor_s <-> tor_r` cables.
/// With `trunks == 1` the builder-call sequence is exactly the historical
/// `build_fabric` one, so node ids, link ids, and every downstream
/// observable are byte-identical to it — the degenerate 1-rack Clos rides
/// this path. With more trunks the extra cables become an equal-cost set
/// at each ToR, resolved per flow by ECMP. Returns the fabric plus all
/// forward trunk links in link-id order.
fn build_two_tor_with<S: Scheduler>(
    cfg: &FabricConfig,
    trunks: usize,
) -> (IncastFabric<S>, Vec<LinkId>) {
    assert!(cfg.num_senders > 0, "need at least one sender");
    assert!(cfg.num_receivers > 0, "need at least one receiver");
    assert!(trunks > 0, "need at least one trunk");
    let prop = per_link_propagation(cfg);
    let mut b = NetworkBuilder::new();

    let tor_s = b.add_switch("tor-s");
    let tor_r = match cfg.receiver_tor_buffer {
        Some((total, policy)) => b.add_switch_with_buffer("tor-r", total, policy),
        None => b.add_switch("tor-r"),
    };

    let host_link = |rate: Rate, q: &QueueConfig| LinkConfig::new(rate, prop, q.clone());

    let mut senders = Vec::with_capacity(cfg.num_senders);
    for i in 0..cfg.num_senders {
        let h = b.add_host(&format!("sender-{i}"));
        // Host egress uses the deep NIC queue; the ToR's reverse port uses
        // the ToR queue config.
        b.connect(
            h,
            tor_s,
            host_link(cfg.host_rate, &cfg.host_queue),
            host_link(cfg.host_rate, &cfg.tor_queue),
        );
        senders.push(h);
    }

    let mut trunk_links = Vec::with_capacity(trunks);
    for _ in 0..trunks {
        let (trunk, _back) = b.connect(
            tor_s,
            tor_r,
            LinkConfig::new(cfg.trunk_rate, prop, cfg.tor_queue.clone()),
            LinkConfig::new(cfg.trunk_rate, prop, cfg.tor_queue.clone()),
        );
        trunk_links.push(trunk);
    }

    let mut receivers = Vec::with_capacity(cfg.num_receivers);
    let mut downlinks = Vec::with_capacity(cfg.num_receivers);
    for i in 0..cfg.num_receivers {
        let h = b.add_host(&format!("receiver-{i}"));
        let (_up, down) = b.connect(
            h,
            tor_r,
            host_link(cfg.host_rate, &cfg.host_queue),
            host_link(cfg.host_rate, &cfg.tor_queue),
        );
        receivers.push(h);
        downlinks.push(down);
    }

    let fabric = IncastFabric {
        sim: b.build_with_scheduler::<S>(cfg.seed),
        senders,
        receivers,
        tor_s,
        tor_r,
        downlinks,
        trunk: trunk_links[0],
        per_link_propagation: prop,
    };
    (fabric, trunk_links)
}

/// The single-receiver dumbbell of the paper's Section 4.
pub fn build_dumbbell(num_senders: usize, seed: u64) -> IncastFabric {
    build_fabric(&FabricConfig {
        num_senders,
        seed,
        ..FabricConfig::default()
    })
}

// ---- multi-rack Clos ------------------------------------------------------

/// Configuration for [`build_clos`]: a leaf/spine Clos with `racks` leaf
/// switches of `hosts_per_rack` hosts each, every leaf cabled to every
/// spine, and the receiving ToR (carrying `num_receivers` hosts) likewise
/// cabled to every spine — so cross-rack traffic takes
/// `host -> leaf -> spine -> tor_r -> receiver` and the leaf's spine
/// uplinks form an equal-cost set spread by flow-level ECMP.
#[derive(Debug, Clone)]
pub struct ClosConfig {
    /// Number of sender racks (leaf switches).
    pub racks: usize,
    /// Hosts behind each leaf.
    pub hosts_per_rack: usize,
    /// Number of spine switches every leaf uplinks to.
    pub spines: usize,
    /// Receiving hosts on the receiving ToR.
    pub num_receivers: usize,
    /// Host NIC rate (paper: 10 Gbps).
    pub host_rate: Rate,
    /// Leaf-to-spine and spine-to-ToR fabric link rate (paper trunk:
    /// 100 Gbps).
    pub fabric_rate: Rate,
    /// Target base round-trip time across the 4-hop path, including
    /// serialization of one MTU data packet and its ACK.
    pub target_rtt: SimTime,
    /// Wire MTU used for the RTT budget calculation.
    pub mtu_wire: u32,
    /// Egress queue config for leaf/ToR ports.
    pub tor_queue: QueueConfig,
    /// Egress queue config for host NICs (deep, unmarked).
    pub host_queue: QueueConfig,
    /// Egress queue config for spine ports.
    pub spine_queue: QueueConfig,
    /// Shared buffer on the receiving ToR: `(total_bytes, policy)`.
    pub receiver_tor_buffer: Option<(u64, BufferPolicy)>,
    /// Shared buffer on each spine: `(total_bytes, policy)`. Ignored in
    /// the degenerate 1-rack form, which has no spine tier.
    pub spine_buffer: Option<(u64, BufferPolicy)>,
    /// Seed for the simulator's fault-injection RNG *and* the flow-level
    /// ECMP rendezvous hash.
    pub seed: u64,
}

impl Default for ClosConfig {
    /// A small paper-parameterized Clos: 4 racks x 25 hosts over 4 spines.
    fn default() -> Self {
        ClosConfig {
            racks: 4,
            hosts_per_rack: 25,
            spines: 4,
            num_receivers: 1,
            host_rate: Rate::gbps(10),
            fabric_rate: Rate::gbps(100),
            target_rtt: SimTime::from_us(30),
            mtu_wire: 1500,
            tor_queue: QueueConfig::paper_tor(),
            host_queue: QueueConfig::host_nic(),
            spine_queue: QueueConfig::paper_tor(),
            receiver_tor_buffer: None,
            spine_buffer: None,
            seed: 0,
        }
    }
}

/// Rejected [`ClosConfig`] shapes. The builder returns these instead of
/// panicking so sweep/fuzz layers can report a bad config as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClosError {
    /// `racks == 0`.
    ZeroRacks,
    /// `hosts_per_rack == 0`.
    ZeroHosts,
    /// `spines == 0`.
    ZeroSpines,
    /// `num_receivers == 0`.
    ZeroReceivers,
}

impl std::fmt::Display for ClosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClosError::ZeroRacks => write!(f, "clos config has zero racks"),
            ClosError::ZeroHosts => write!(f, "clos config has zero hosts per rack"),
            ClosError::ZeroSpines => write!(f, "clos config has zero spines"),
            ClosError::ZeroReceivers => write!(f, "clos config has zero receivers"),
        }
    }
}

impl std::error::Error for ClosError {}

/// A built Clos fabric.
pub struct ClosFabric<S: Scheduler = TimingWheel> {
    /// The runnable simulator.
    pub sim: Simulator<S>,
    /// Hosts per rack, rack-major: `rack_hosts[r][i]` is host `i` of
    /// rack `r`.
    pub rack_hosts: Vec<Vec<NodeId>>,
    /// Receiving hosts on the receiving ToR, in index order.
    pub receivers: Vec<NodeId>,
    /// Leaf (rack ToR) switches, in rack order. One entry (the shared
    /// sending ToR) in the degenerate 1-rack form.
    pub leaves: Vec<NodeId>,
    /// Spine switches. Empty in the degenerate 1-rack form, where the
    /// "spines" collapse to parallel ToR-to-ToR trunks.
    pub spines: Vec<NodeId>,
    /// The receiving ToR.
    pub tor_r: NodeId,
    /// Per-rack spine uplinks: `rack_uplinks[r][k]` carries rack `r`'s
    /// traffic to spine `k` (or, in the 1-rack form, is the `k`-th
    /// parallel trunk). These are the ECMP candidate sets.
    pub rack_uplinks: Vec<Vec<LinkId>>,
    /// `spines[k] -> tor_r` links. Empty in the 1-rack form.
    pub spine_downlinks: Vec<LinkId>,
    /// Receiver downlinks `tor_r -> receivers[i]`: the bottleneck queues.
    pub downlinks: Vec<LinkId>,
    /// One-way propagation delay assigned to every link.
    pub per_link_propagation: SimTime,
}

impl<S: Scheduler> ClosFabric<S> {
    /// Total sender hosts across all racks.
    pub fn num_hosts(&self) -> usize {
        self.rack_hosts.iter().map(Vec::len).sum()
    }

    /// Deterministic sender assignment for flow `i`: round-robin across
    /// racks, then down each rack — `rack_hosts[i % racks][i / racks]`.
    /// With one rack this is exactly the dumbbell's `senders[i]` order,
    /// so flow-to-host maps are identical across the degenerate pair.
    pub fn host_for_flow(&self, i: usize) -> NodeId {
        let r = i % self.rack_hosts.len();
        self.rack_hosts[r][i / self.rack_hosts.len()]
    }
}

/// Per-link propagation for the 4-hop Clos path: the base RTT budget is
/// one MTU data packet plus its minimum-frame ACK crossing
/// `host -> leaf -> spine -> tor_r -> host` (8 one-way link traversals
/// round trip), so the residual after serialization splits 8 ways.
fn clos_per_link_propagation(cfg: &ClosConfig) -> SimTime {
    let data_ser = cfg.host_rate.serialize_time(cfg.mtu_wire as u64)
        + cfg.fabric_rate.serialize_time(cfg.mtu_wire as u64)
        + cfg.fabric_rate.serialize_time(cfg.mtu_wire as u64)
        + cfg.host_rate.serialize_time(cfg.mtu_wire as u64);
    let ack = MIN_FRAME_BYTES as u64;
    let ack_ser = cfg.host_rate.serialize_time(ack)
        + cfg.fabric_rate.serialize_time(ack)
        + cfg.fabric_rate.serialize_time(ack)
        + cfg.host_rate.serialize_time(ack);
    let fixed = data_ser + ack_ser;
    let remaining = cfg.target_rtt.saturating_sub(fixed);
    SimTime::from_ps(remaining.as_ps() / 8)
}

/// Builds a leaf/spine Clos fabric (wheel scheduler).
pub fn build_clos(cfg: &ClosConfig) -> Result<ClosFabric, ClosError> {
    build_clos_with::<TimingWheel>(cfg)
}

/// [`build_clos`] with an explicit [`Scheduler`].
///
/// The degenerate `racks == 1` form collapses the spine tier to `spines`
/// parallel ToR-to-ToR trunks via the same internal builder as
/// [`build_fabric`]; with `spines == 1` too, the built simulator is
/// byte-identical to `build_fabric` of the corresponding [`FabricConfig`]
/// (same builder-call sequence, hence same node ids, link ids, and
/// event stream — `tests/fabric_equivalence.rs` pins this).
pub fn build_clos_with<S: Scheduler>(cfg: &ClosConfig) -> Result<ClosFabric<S>, ClosError> {
    if cfg.racks == 0 {
        return Err(ClosError::ZeroRacks);
    }
    if cfg.hosts_per_rack == 0 {
        return Err(ClosError::ZeroHosts);
    }
    if cfg.spines == 0 {
        return Err(ClosError::ZeroSpines);
    }
    if cfg.num_receivers == 0 {
        return Err(ClosError::ZeroReceivers);
    }

    if cfg.racks == 1 {
        let fcfg = FabricConfig {
            num_senders: cfg.hosts_per_rack,
            num_receivers: cfg.num_receivers,
            host_rate: cfg.host_rate,
            trunk_rate: cfg.fabric_rate,
            target_rtt: cfg.target_rtt,
            mtu_wire: cfg.mtu_wire,
            tor_queue: cfg.tor_queue.clone(),
            host_queue: cfg.host_queue.clone(),
            receiver_tor_buffer: cfg.receiver_tor_buffer,
            seed: cfg.seed,
        };
        let (f, trunks) = build_two_tor_with::<S>(&fcfg, cfg.spines);
        return Ok(ClosFabric {
            sim: f.sim,
            rack_hosts: vec![f.senders],
            receivers: f.receivers,
            leaves: vec![f.tor_s],
            spines: Vec::new(),
            tor_r: f.tor_r,
            rack_uplinks: vec![trunks],
            spine_downlinks: Vec::new(),
            downlinks: f.downlinks,
            per_link_propagation: f.per_link_propagation,
        });
    }

    let prop = clos_per_link_propagation(cfg);
    let mut b = NetworkBuilder::new();

    let leaves: Vec<NodeId> = (0..cfg.racks)
        .map(|r| b.add_switch(&format!("leaf-{r}")))
        .collect();
    let tor_r = match cfg.receiver_tor_buffer {
        Some((total, policy)) => b.add_switch_with_buffer("tor-r", total, policy),
        None => b.add_switch("tor-r"),
    };
    let spines: Vec<NodeId> = (0..cfg.spines)
        .map(|k| match cfg.spine_buffer {
            Some((total, policy)) => b.add_switch_with_buffer(&format!("spine-{k}"), total, policy),
            None => b.add_switch(&format!("spine-{k}")),
        })
        .collect();

    let host_link = |rate: Rate, q: &QueueConfig| LinkConfig::new(rate, prop, q.clone());

    let mut rack_hosts = Vec::with_capacity(cfg.racks);
    for (r, &leaf) in leaves.iter().enumerate() {
        let mut hosts = Vec::with_capacity(cfg.hosts_per_rack);
        for i in 0..cfg.hosts_per_rack {
            let h = b.add_host(&format!("rack{r}-host{i}"));
            b.connect(
                h,
                leaf,
                host_link(cfg.host_rate, &cfg.host_queue),
                host_link(cfg.host_rate, &cfg.tor_queue),
            );
            hosts.push(h);
        }
        rack_hosts.push(hosts);
    }

    // Leaf uplink ports use the ToR queue; spine egress ports (both back
    // toward leaves and down toward the receiving ToR) use the spine
    // queue. Per-rack uplinks land in ascending link-id order, matching
    // the order of the switch's equal-cost candidate sets.
    let mut rack_uplinks = Vec::with_capacity(cfg.racks);
    for &leaf in &leaves {
        let mut ups = Vec::with_capacity(cfg.spines);
        for &spine in &spines {
            let (up, _back) = b.connect(
                leaf,
                spine,
                LinkConfig::new(cfg.fabric_rate, prop, cfg.tor_queue.clone()),
                LinkConfig::new(cfg.fabric_rate, prop, cfg.spine_queue.clone()),
            );
            ups.push(up);
        }
        rack_uplinks.push(ups);
    }
    let mut spine_downlinks = Vec::with_capacity(cfg.spines);
    for &spine in &spines {
        let (down, _back) = b.connect(
            spine,
            tor_r,
            LinkConfig::new(cfg.fabric_rate, prop, cfg.spine_queue.clone()),
            LinkConfig::new(cfg.fabric_rate, prop, cfg.tor_queue.clone()),
        );
        spine_downlinks.push(down);
    }

    let mut receivers = Vec::with_capacity(cfg.num_receivers);
    let mut downlinks = Vec::with_capacity(cfg.num_receivers);
    for i in 0..cfg.num_receivers {
        let h = b.add_host(&format!("receiver-{i}"));
        let (_up, down) = b.connect(
            h,
            tor_r,
            host_link(cfg.host_rate, &cfg.host_queue),
            host_link(cfg.host_rate, &cfg.tor_queue),
        );
        receivers.push(h);
        downlinks.push(down);
    }

    Ok(ClosFabric {
        sim: b.build_with_scheduler::<S>(cfg.seed),
        rack_hosts,
        receivers,
        leaves,
        spines,
        tor_r,
        rack_uplinks,
        spine_downlinks,
        downlinks,
        per_link_propagation: prop,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let cfg = FabricConfig::default();
        assert_eq!(cfg.host_rate, Rate::gbps(10));
        assert_eq!(cfg.trunk_rate, Rate::gbps(100));
        assert_eq!(cfg.target_rtt, SimTime::from_us(30));
        assert_eq!(cfg.tor_queue.ecn_threshold_pkts, Some(65));
    }

    #[test]
    fn propagation_budget_fills_target_rtt() {
        let cfg = FabricConfig::default();
        let prop = per_link_propagation(&cfg);
        // Data serialization: 1.2 + 0.12 + 1.2 us; ACK: 51.2 + 5.12 + 51.2 ns.
        let fixed_ps = (1_200_000 + 120_000 + 1_200_000) + (51_200 + 5_120 + 51_200);
        let expected = (30_000_000u64 - fixed_ps) / 6;
        assert_eq!(prop.as_ps(), expected);
        // Round trip = 6 props + fixed ~= 30 us (within integer division).
        let rtt = prop.as_ps() * 6 + fixed_ps;
        assert!((rtt as i64 - 30_000_000).unsigned_abs() < 6);
    }

    #[test]
    fn propagation_clamps_when_target_too_small() {
        let cfg = FabricConfig {
            target_rtt: SimTime::from_ns(100),
            ..FabricConfig::default()
        };
        assert_eq!(per_link_propagation(&cfg), SimTime::ZERO);
    }

    #[test]
    fn fabric_shape() {
        let f = build_fabric(&FabricConfig {
            num_senders: 3,
            num_receivers: 2,
            ..FabricConfig::default()
        });
        assert_eq!(f.senders.len(), 3);
        assert_eq!(f.receivers.len(), 2);
        assert_eq!(f.downlinks.len(), 2);
        // 3 sender cables + 1 trunk + 2 receiver cables = 6 duplex = 12 links.
        assert_eq!(f.sim.num_links(), 12);
        // Downlinks start at tor_r and end at receivers.
        for (i, &dl) in f.downlinks.iter().enumerate() {
            assert_eq!(f.sim.link(dl).src, f.tor_r);
            assert_eq!(f.sim.link(dl).dst, f.receivers[i]);
        }
        // The bottleneck queue uses the paper's ToR parameters.
        assert_eq!(
            f.sim.link(f.downlinks[0]).queue.config().ecn_threshold_pkts,
            Some(65)
        );
    }

    #[test]
    fn shared_buffer_applies_to_receiver_tor_only() {
        let f = build_fabric(&FabricConfig {
            num_senders: 2,
            num_receivers: 2,
            receiver_tor_buffer: Some((1_000_000, BufferPolicy::DynamicThreshold { alpha: 1.0 })),
            ..FabricConfig::default()
        });
        assert!(f.sim.link(f.downlinks[0]).shared.is_some());
        assert!(f.sim.link(f.downlinks[1]).shared.is_some());
        assert!(f.sim.link(f.trunk).shared.is_none(), "tor_s is unbuffered");
        assert_eq!(f.sim.buffers().len(), 1);
    }

    #[test]
    fn dumbbell_is_single_receiver() {
        let f = build_dumbbell(5, 7);
        assert_eq!(f.senders.len(), 5);
        assert_eq!(f.receivers.len(), 1);
    }

    #[test]
    fn clos_rejects_degenerate_shapes_with_errors() {
        let zero = |f: fn(&mut ClosConfig)| {
            let mut cfg = ClosConfig::default();
            f(&mut cfg);
            build_clos(&cfg)
        };
        assert_eq!(
            zero(|c| c.racks = 0).err(),
            Some(ClosError::ZeroRacks),
            "zero racks"
        );
        assert_eq!(
            zero(|c| c.hosts_per_rack = 0).err(),
            Some(ClosError::ZeroHosts)
        );
        assert_eq!(zero(|c| c.spines = 0).err(), Some(ClosError::ZeroSpines));
        assert_eq!(
            zero(|c| c.num_receivers = 0).err(),
            Some(ClosError::ZeroReceivers)
        );
        assert_eq!(
            ClosError::ZeroSpines.to_string(),
            "clos config has zero spines"
        );
    }

    #[test]
    fn clos_shape_and_ecmp_candidate_sets() {
        let cfg = ClosConfig {
            racks: 3,
            hosts_per_rack: 4,
            spines: 2,
            num_receivers: 2,
            ..ClosConfig::default()
        };
        let f = build_clos(&cfg).unwrap();
        assert_eq!(f.leaves.len(), 3);
        assert_eq!(f.spines.len(), 2);
        assert_eq!(f.num_hosts(), 12);
        assert_eq!(f.receivers.len(), 2);
        // Cables: 12 host + 3*2 leaf-spine + 2 spine-torR + 2 receiver,
        // each duplex.
        assert_eq!(f.sim.num_links(), 2 * (12 + 6 + 2 + 2));
        // Uplinks run leaf -> spine in spine order.
        for (r, ups) in f.rack_uplinks.iter().enumerate() {
            assert_eq!(ups.len(), 2);
            for (k, &up) in ups.iter().enumerate() {
                assert_eq!(f.sim.link(up).src, f.leaves[r]);
                assert_eq!(f.sim.link(up).dst, f.spines[k]);
            }
        }
        // Each leaf sees every spine uplink as an equal-cost candidate
        // toward every receiver; each spine has a single path onward.
        for (r, &leaf) in f.leaves.iter().enumerate() {
            assert_eq!(
                f.sim.node(leaf).next_hops(f.receivers[0]),
                f.rack_uplinks[r].as_slice()
            );
        }
        for (k, &spine) in f.spines.iter().enumerate() {
            assert_eq!(
                f.sim.node(spine).next_hops(f.receivers[1]),
                &[f.spine_downlinks[k]]
            );
        }
        // host_for_flow round-robins across racks.
        assert_eq!(f.host_for_flow(0), f.rack_hosts[0][0]);
        assert_eq!(f.host_for_flow(1), f.rack_hosts[1][0]);
        assert_eq!(f.host_for_flow(3), f.rack_hosts[0][1]);
    }

    #[test]
    fn one_rack_clos_collapses_to_parallel_trunks() {
        let cfg = ClosConfig {
            racks: 1,
            hosts_per_rack: 5,
            spines: 3,
            ..ClosConfig::default()
        };
        let f = build_clos(&cfg).unwrap();
        assert!(f.spines.is_empty());
        assert!(f.spine_downlinks.is_empty());
        assert_eq!(f.rack_uplinks[0].len(), 3);
        // The parallel trunks are the sending ToR's equal-cost set.
        assert_eq!(
            f.sim.node(f.leaves[0]).next_hops(f.receivers[0]),
            f.rack_uplinks[0].as_slice()
        );
        for i in 0..5 {
            assert_eq!(f.host_for_flow(i), f.rack_hosts[0][i]);
        }
    }

    #[test]
    fn clos_propagation_budget_fills_target_rtt() {
        let cfg = ClosConfig::default();
        let prop = clos_per_link_propagation(&cfg);
        // Data: 1.2 + 0.12 + 0.12 + 1.2 us; ACK: 51.2 + 5.12 + 5.12 + 51.2 ns.
        let fixed_ps =
            (1_200_000 + 120_000 + 120_000 + 1_200_000) + (51_200 + 5_120 + 5_120 + 51_200);
        assert_eq!(prop.as_ps(), (30_000_000u64 - fixed_ps) / 8);
        let rtt = prop.as_ps() * 8 + fixed_ps;
        assert!((rtt as i64 - 30_000_000).unsigned_abs() < 8);
    }
}
