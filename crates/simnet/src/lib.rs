//! # simnet — a deterministic datacenter network simulator
//!
//! The NS3 substitute for the incast-bursts reproduction: a discrete-event,
//! packet-level simulator of datacenter fabrics. It models exactly what the
//! paper's Section 4 experiments need — fixed-rate links with propagation
//! delay, output-queued switches with drop-tail FIFO queues and threshold
//! ECN marking, optional shared switch buffers (Dynamic Threshold), end
//! hosts running pluggable software ([`Endpoint`]s, e.g. the `transport`
//! crate's TCP stack), passive host taps for measurement, and deterministic
//! seeded fault injection.
//!
//! Design notes:
//!
//! - **Determinism.** Time is integer picoseconds; simultaneous events fire
//!   in scheduling order; the only randomness is a seeded RNG. Two runs of
//!   the same configuration are bit-identical.
//! - **Single-threaded.** A simulation is one CPU-bound event loop;
//!   experiments parallelize by running many independent simulations (see
//!   `incast-core`'s runner), not by threading one.
//! - **Command-buffered endpoints.** Host software communicates with the
//!   engine through buffered commands, keeping the event loop re-entrancy
//!   free (the smoltcp school of simple, robust event-driven design).
//!
//! ```
//! use simnet::{build_dumbbell, Endpoint, Ctx, Packet, FlowId};
//!
//! // Two-sender dumbbell; send one frame from sender 0 to the receiver.
//! let mut fabric = build_dumbbell(2, 42);
//! struct OneShot { to: simnet::NodeId }
//! impl Endpoint for OneShot {
//!     fn on_start(&mut self, ctx: &mut Ctx) {
//!         let pkt = Packet::data(FlowId(0), ctx.node(), self.to, 0, 1446, false, ctx.now());
//!         ctx.send(pkt);
//!     }
//!     fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {}
//! }
//! let rx = fabric.receivers[0];
//! fabric.sim.set_endpoint(fabric.senders[0], Box::new(OneShot { to: rx }));
//! fabric.sim.run();
//! assert_eq!(fabric.sim.counters().delivered_pkts, 1);
//! ```

pub mod buffer;
pub mod builder;
pub mod check;
pub mod control;
pub mod endpoint;
pub mod event;
pub mod fault;
pub mod hash;
pub mod ids;
pub mod link;
pub mod node;
pub mod packet;
pub mod queue;
pub mod recorder;
pub mod sim;
pub mod time;
pub mod topology;
pub mod trace;
pub mod units;
pub mod wheel;

pub use buffer::{BufferPolicy, SharedBuffer};
pub use builder::NetworkBuilder;
pub use control::{ControlConfig, ControlPlane, CtrlAction, RetryPlan, CTRL_FLOW_BASE};
pub use endpoint::{Cmd, Ctx, Endpoint, IngressTap, Shared};
pub use event::{Event, EventKind, EventQueue, Scheduler};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use hash::{ecmp_pick, ecmp_score, FxHashMap, FxHasher};
pub use ids::{BufferId, FlowId, LinkId, NodeId};
pub use link::{Link, LinkConfig};
pub use node::Node;
pub use packet::{
    AckBlocks, Ecn, Packet, PacketKind, PacketPool, PacketSlot, DEFAULT_MSS, HEADER_BYTES,
    MAX_ACK_BLOCKS, MIN_FRAME_BYTES,
};
pub use queue::{DropReason, EcnQueue, EnqueueOutcome, QueueConfig, QueueStats};
pub use sim::{SimCounters, Simulator};
pub use time::SimTime;
pub use topology::{
    build_clos, build_clos_with, build_dumbbell, build_fabric, build_fabric_with, ClosConfig,
    ClosError, ClosFabric, FabricConfig, IncastFabric,
};
pub use trace::{
    drop_cause, packet_info, to_telemetry, PacketTracer, TextTracer, TraceEvent, TraceEventKind,
};
pub use units::Rate;
pub use wheel::TimingWheel;
