//! In-fabric incast detection and notification (the control plane).
//!
//! Switches monitor a configured set of egress ports. Each monitored port
//! keeps a sliding arrival window (two half-window buckets, rotated lazily
//! from packet arrivals — no timers or allocations while idle) counting
//! distinct data flows and offered bytes. When both the flow-count and the
//! arrival-rate triggers fire, the switch opens an *episode*: it multicasts
//! [`crate::packet::PacketKind::Notif`] frames to every sender host seen in
//! the window and re-fires unacknowledged targets with capped exponential
//! backoff until all have acknowledged or the retry budget is exhausted.
//!
//! Robustness contract (see the differential suites):
//!
//! - Notification frames travel the ordinary data path and take ordinary
//!   faults. Loss is survived by the retry/epoch machinery; a completely
//!   dead control plane (`notif_loss >= 1`) short-circuits *before any
//!   observable effect* — no events, no counters, no RNG draws, no packet
//!   ids — so such runs are byte-identical to mitigation-off baselines.
//! - Partial emission loss draws from a dedicated control RNG, leaving the
//!   main fault RNG sequence untouched (mirroring the "healthy links take
//!   no draws" idiom). With `notif_loss == 0` no draws are taken at all.
//! - Epochs increase per port; senders idempotently ignore stale or
//!   duplicated epochs but always acknowledge, so retries terminate.

use crate::ids::{FlowId, LinkId, NodeId};
use crate::time::SimTime;
use stats::Rng;

/// Flow-id namespace for control frames: the notification for monitored
/// port `i` travels as flow `CTRL_FLOW_BASE + i`, far above any workload
/// flow id, so ECMP placement of control frames is deterministic and the
/// acknowledgment can name the port it answers.
pub const CTRL_FLOW_BASE: u32 = 0xC000_0000;

/// What a notification asks senders to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlAction {
    /// Pause new data transmissions for the carried duration (Pulser-style).
    Pause,
    /// Cut the congestion window once per epoch (distributed-detection
    /// style); baseline recovery keeps running underneath.
    CwndCut,
}

/// Control-plane configuration, supplied via
/// [`crate::Simulator::set_control_plane`].
#[derive(Debug, Clone)]
pub struct ControlConfig {
    /// Monitored egress links. Each must originate at a switch.
    pub ports: Vec<LinkId>,
    /// Action requested from senders.
    pub action: CtrlAction,
    /// Distinct data flows in the window required to trigger.
    pub flow_threshold: u32,
    /// Offered bytes in the window required to trigger (the arrival-rate
    /// leg; callers derive it from the port rate and window length).
    pub window_bytes: u64,
    /// Sliding-window length.
    pub window: SimTime,
    /// Pause duration carried in notifications (senders clamp to their
    /// guard bound).
    pub pause: SimTime,
    /// Minimum gap between episodes on one port.
    pub cooldown: SimTime,
    /// Base re-fire timeout for unacknowledged notifications.
    pub retry_timeout: SimTime,
    /// Re-fire budget per episode (0 = fire once, never retry).
    pub max_retries: u32,
    /// Emission-time notification loss probability. `>= 1` kills the
    /// control plane entirely (byte-identical to no mitigation); `0` takes
    /// no RNG draws.
    pub notif_loss: f64,
    /// Seed for the dedicated control RNG.
    pub seed: u64,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            ports: Vec::new(),
            action: CtrlAction::Pause,
            flow_threshold: 8,
            window_bytes: 64 * 1024,
            window: SimTime::from_us(100),
            pause: SimTime::from_us(150),
            cooldown: SimTime::from_us(300),
            retry_timeout: SimTime::from_us(100),
            max_retries: 5,
            notif_loss: 0.0,
            seed: 0,
        }
    }
}

/// Half-window arrival bucket.
#[derive(Debug, Default, Clone)]
struct Bucket {
    bytes: u64,
    /// Distinct `(flow, src host)` pairs seen. Incast windows hold tens of
    /// flows, so a linear scan beats a hash set and never allocates after
    /// the first episode.
    flows: Vec<(u32, NodeId)>,
}

impl Bucket {
    fn clear(&mut self) {
        self.bytes = 0;
        self.flows.clear();
    }
}

/// One in-progress notification episode.
#[derive(Debug)]
struct Episode {
    epoch: u32,
    /// `(sender host, acknowledged)`, sorted by node id for determinism.
    targets: Vec<(NodeId, bool)>,
    /// Emission attempts completed (0 = initial multicast still pending).
    attempt: u32,
}

/// Per-port detection state.
#[derive(Debug)]
struct PortState {
    link: LinkId,
    /// The detecting switch (the monitored link's source).
    switch: NodeId,
    bucket_start: SimTime,
    cur: Bucket,
    prev: Bucket,
    epoch: u32,
    episode: Option<Episode>,
    next_allowed: SimTime,
}

/// What the simulator should do after a control retry timer fires.
#[derive(Debug)]
pub enum RetryPlan {
    /// Emit notifications to these targets, then re-arm the timer at `next`.
    Emit {
        /// Episode epoch to stamp on the frames.
        epoch: u32,
        /// Unacknowledged sender hosts.
        targets: Vec<NodeId>,
        /// Attempt index (0 = initial multicast).
        attempt: u32,
        /// When to re-fire for still-unacknowledged targets.
        next: SimTime,
    },
    /// The episode ended: every target acknowledged.
    Done {
        /// Episode epoch that closed.
        epoch: u32,
    },
    /// The episode ended: retry budget exhausted with targets outstanding.
    Expired {
        /// Episode epoch that closed.
        epoch: u32,
        /// Targets never acknowledged.
        unacked: u32,
    },
}

/// The switch-side control plane. Owned by the simulator; all methods are
/// called from the event loop, never re-entrantly (the simulator takes the
/// plane out of its slot around calls that emit packets).
#[derive(Debug)]
pub struct ControlPlane {
    cfg: ControlConfig,
    ports: Vec<PortState>,
    /// Link id -> monitored-port index.
    by_link: Vec<Option<u32>>,
    /// Dedicated emission-loss RNG; the simulator's fault RNG is untouched.
    rng: Rng,
}

impl ControlPlane {
    /// Builds the plane. `link_src` resolves a link to its source node,
    /// `num_links` sizes the per-link lookup.
    pub fn new(
        cfg: ControlConfig,
        num_links: usize,
        mut link_src: impl FnMut(LinkId) -> NodeId,
    ) -> Self {
        let mut by_link = vec![None; num_links];
        let mut ports = Vec::with_capacity(cfg.ports.len());
        for (i, &link) in cfg.ports.iter().enumerate() {
            assert!(
                link.index() < num_links,
                "monitored port targets unknown link"
            );
            assert!(
                by_link[link.index()].is_none(),
                "link monitored twice by the control plane"
            );
            by_link[link.index()] = Some(i as u32);
            ports.push(PortState {
                link,
                switch: link_src(link),
                bucket_start: SimTime::ZERO,
                cur: Bucket::default(),
                prev: Bucket::default(),
                epoch: 0,
                episode: None,
                next_allowed: SimTime::ZERO,
            });
        }
        let rng = Rng::new(cfg.seed);
        ControlPlane {
            cfg,
            ports,
            by_link,
            rng,
        }
    }

    /// The configuration the plane was built with.
    pub fn config(&self) -> &ControlConfig {
        &self.cfg
    }

    /// True if the control plane can never emit (fully blackholed).
    pub fn dead(&self) -> bool {
        self.cfg.notif_loss >= 1.0
    }

    /// Monitored-port index of `link`, if monitored.
    #[inline]
    pub fn monitors(&self, link: LinkId) -> Option<u32> {
        self.by_link[link.index()]
    }

    /// The detecting switch of monitored port `port`.
    pub fn port_switch(&self, port: u32) -> NodeId {
        self.ports[port as usize].switch
    }

    /// The monitored link of port `port`.
    pub fn port_link(&self, port: u32) -> LinkId {
        self.ports[port as usize].link
    }

    /// The control flow id used by port `port`'s frames.
    pub fn ctrl_flow(&self, port: u32) -> FlowId {
        FlowId(CTRL_FLOW_BASE + port)
    }

    /// Draws the emission-loss gate for one frame. Returns true if the
    /// frame is lost at emission. Takes no draw when loss is zero.
    pub fn emission_lost(&mut self) -> bool {
        self.cfg.notif_loss > 0.0 && self.rng.chance(self.cfg.notif_loss)
    }

    /// Records one data-frame arrival at monitored port `port` and reports
    /// whether an episode should open (triggers met, port idle, cooldown
    /// passed). Pure detection: no episode state changes here, so a dead
    /// control plane observing traffic leaves zero footprint.
    pub fn record(&mut self, now: SimTime, port: u32, flow: u32, src: NodeId, bytes: u32) -> bool {
        let half = SimTime((self.cfg.window.as_ps() / 2).max(1));
        let p = &mut self.ports[port as usize];
        // Lazy rotation: step the half-window buckets forward to cover `now`.
        if now >= p.bucket_start + half {
            if now >= p.bucket_start + half + half {
                // Idle gap longer than the window: both buckets are stale.
                p.prev.clear();
                p.cur.clear();
                let steps = (now - p.bucket_start).as_ps() / half.as_ps();
                p.bucket_start = SimTime(p.bucket_start.as_ps() + steps * half.as_ps());
            } else {
                std::mem::swap(&mut p.prev, &mut p.cur);
                p.cur.clear();
                p.bucket_start += half;
            }
        }
        p.cur.bytes += bytes as u64;
        if !p.cur.flows.iter().any(|&(f, s)| f == flow && s == src) {
            p.cur.flows.push((flow, src));
        }
        if p.episode.is_some() || now < p.next_allowed {
            return false;
        }
        let bytes_seen = p.cur.bytes + p.prev.bytes;
        if bytes_seen < self.cfg.window_bytes {
            return false;
        }
        let mut distinct = p.cur.flows.len();
        for &(f, s) in &p.prev.flows {
            if !p.cur.flows.iter().any(|&(cf, cs)| cf == f && cs == s) {
                distinct += 1;
            }
        }
        distinct as u32 >= self.cfg.flow_threshold
    }

    /// Opens an episode on `port`: bumps the epoch and snapshots the
    /// window's distinct sender hosts as targets (sorted by node id).
    /// Returns the new epoch. Only called on a live control plane.
    pub fn begin_episode(&mut self, now: SimTime, port: u32) -> u32 {
        let p = &mut self.ports[port as usize];
        debug_assert!(p.episode.is_none(), "episode already open");
        p.epoch += 1;
        let mut targets: Vec<NodeId> = Vec::new();
        for &(_, s) in p.cur.flows.iter().chain(p.prev.flows.iter()) {
            if !targets.contains(&s) {
                targets.push(s);
            }
        }
        targets.sort_by_key(|n| n.0);
        p.episode = Some(Episode {
            epoch: p.epoch,
            targets: targets.into_iter().map(|t| (t, false)).collect(),
            attempt: 0,
        });
        p.next_allowed = now + self.cfg.cooldown;
        p.epoch
    }

    /// Handles the port's retry timer: emit to unacked targets with the
    /// next backoff deadline, or close the episode.
    pub fn on_retry_timer(&mut self, now: SimTime, port: u32) -> Option<RetryPlan> {
        let cooldown = self.cfg.cooldown;
        let retry = self.cfg.retry_timeout;
        let max_retries = self.cfg.max_retries;
        let p = &mut self.ports[port as usize];
        let ep = p.episode.as_mut()?;
        let unacked: Vec<NodeId> = ep
            .targets
            .iter()
            .filter(|&&(_, acked)| !acked)
            .map(|&(t, _)| t)
            .collect();
        if unacked.is_empty() {
            let epoch = ep.epoch;
            p.episode = None;
            p.next_allowed = now + cooldown;
            return Some(RetryPlan::Done { epoch });
        }
        if ep.attempt > max_retries {
            let epoch = ep.epoch;
            let n = unacked.len() as u32;
            p.episode = None;
            p.next_allowed = now + cooldown;
            return Some(RetryPlan::Expired { epoch, unacked: n });
        }
        let attempt = ep.attempt;
        ep.attempt += 1;
        // Capped exponential backoff: retry, 2x, 4x, ... up to 64x.
        let shift = attempt.min(6);
        let next = now + SimTime(retry.as_ps() << shift);
        Some(RetryPlan::Emit {
            epoch: ep.epoch,
            targets: unacked,
            attempt,
            next,
        })
    }

    /// Consumes a notification acknowledgment addressed to `port`. Returns
    /// `(fresh, complete)`: whether this ack newly covered a target, and
    /// whether the episode is now fully acknowledged (and closed).
    pub fn on_ack(&mut self, now: SimTime, port: u32, epoch: u32, from: NodeId) -> (bool, bool) {
        let cooldown = self.cfg.cooldown;
        let p = &mut self.ports[port as usize];
        let Some(ep) = p.episode.as_mut() else {
            return (false, false); // episode already closed; stale ack
        };
        if ep.epoch != epoch {
            return (false, false); // ack for an older epoch
        }
        let mut fresh = false;
        for t in ep.targets.iter_mut() {
            if t.0 == from && !t.1 {
                t.1 = true;
                fresh = true;
            }
        }
        let complete = ep.targets.iter().all(|&(_, acked)| acked);
        if complete {
            p.episode = None;
            p.next_allowed = now + cooldown;
        }
        (fresh, complete)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(cfg: ControlConfig) -> ControlPlane {
        let n = cfg.ports.iter().map(|l| l.index() + 1).max().unwrap_or(0);
        ControlPlane::new(cfg, n, |_l| NodeId(100))
    }

    fn cfg_one_port() -> ControlConfig {
        ControlConfig {
            ports: vec![LinkId(3)],
            flow_threshold: 3,
            window_bytes: 3000,
            window: SimTime::from_us(100),
            ..ControlConfig::default()
        }
    }

    #[test]
    fn triggers_on_flow_count_and_bytes_together() {
        let mut cp = plane(cfg_one_port());
        let t = SimTime::from_us(10);
        // Two flows, plenty of bytes: flow trigger unmet.
        assert!(!cp.record(t, 0, 1, NodeId(1), 1500));
        assert!(!cp.record(t, 0, 2, NodeId(2), 1500));
        // Third distinct flow but bytes met only now: fires.
        assert!(cp.record(t, 0, 3, NodeId(3), 1500));
    }

    #[test]
    fn byte_threshold_gates_low_rate_windows() {
        let mut cp = plane(cfg_one_port());
        let t = SimTime::from_us(10);
        assert!(!cp.record(t, 0, 1, NodeId(1), 64));
        assert!(!cp.record(t, 0, 2, NodeId(2), 64));
        assert!(!cp.record(t, 0, 3, NodeId(3), 64), "bytes below threshold");
    }

    #[test]
    fn stale_windows_rotate_out() {
        let mut cp = plane(cfg_one_port());
        assert!(!cp.record(SimTime::from_us(10), 0, 1, NodeId(1), 1500));
        assert!(!cp.record(SimTime::from_us(10), 0, 2, NodeId(2), 1500));
        // A full window of idle later, old flows no longer count.
        assert!(!cp.record(SimTime::from_us(500), 0, 3, NodeId(3), 1500));
        assert!(!cp.record(SimTime::from_us(500), 0, 4, NodeId(4), 1500));
        assert!(cp.record(SimTime::from_us(501), 0, 5, NodeId(5), 1500));
    }

    #[test]
    fn episode_lifecycle_with_acks() {
        let mut cp = plane(cfg_one_port());
        let t = SimTime::from_us(10);
        for (f, n) in [(1u32, 5u32), (2, 4), (3, 6)] {
            cp.record(t, 0, f, NodeId(n), 1500);
        }
        let epoch = cp.begin_episode(t, 0);
        assert_eq!(epoch, 1);
        // Initial multicast: all three targets, sorted by node id.
        let plan = cp.on_retry_timer(t, 0).unwrap();
        let (targets, next) = match plan {
            RetryPlan::Emit {
                epoch: e,
                targets,
                attempt,
                next,
            } => {
                assert_eq!(e, 1);
                assert_eq!(attempt, 0);
                (targets, next)
            }
            other => panic!("expected Emit, got {other:?}"),
        };
        assert_eq!(targets, vec![NodeId(4), NodeId(5), NodeId(6)]);
        assert!(next > t);
        // Two acks arrive; a duplicate is not fresh.
        assert_eq!(cp.on_ack(t, 0, 1, NodeId(4)), (true, false));
        assert_eq!(cp.on_ack(t, 0, 1, NodeId(4)), (false, false));
        assert_eq!(cp.on_ack(t, 0, 1, NodeId(5)), (true, false));
        // Retry fires only at the remaining target, with backoff.
        match cp.on_retry_timer(next, 0).unwrap() {
            RetryPlan::Emit {
                targets, attempt, ..
            } => {
                assert_eq!(targets, vec![NodeId(6)]);
                assert_eq!(attempt, 1);
            }
            other => panic!("expected Emit, got {other:?}"),
        }
        // Final ack completes the episode.
        assert_eq!(cp.on_ack(next, 0, 1, NodeId(6)), (true, true));
        assert!(cp.on_retry_timer(next, 0).is_none());
        // A very stale ack after close is ignored.
        assert_eq!(cp.on_ack(next, 0, 1, NodeId(6)), (false, false));
    }

    #[test]
    fn retry_budget_expires_episodes() {
        let mut cfg = cfg_one_port();
        cfg.max_retries = 1;
        let mut cp = plane(cfg);
        let t = SimTime::from_us(10);
        for (f, n) in [(1u32, 5u32), (2, 4), (3, 6)] {
            cp.record(t, 0, f, NodeId(n), 1500);
        }
        cp.begin_episode(t, 0);
        let mut at = t;
        for expected_attempt in 0..=1u32 {
            match cp.on_retry_timer(at, 0).unwrap() {
                RetryPlan::Emit { attempt, next, .. } => {
                    assert_eq!(attempt, expected_attempt);
                    at = next;
                }
                other => panic!("expected Emit, got {other:?}"),
            }
        }
        match cp.on_retry_timer(at, 0).unwrap() {
            RetryPlan::Expired { epoch, unacked } => {
                assert_eq!(epoch, 1);
                assert_eq!(unacked, 3);
            }
            other => panic!("expected Expired, got {other:?}"),
        }
    }

    #[test]
    fn cooldown_blocks_back_to_back_episodes() {
        let mut cp = plane(cfg_one_port());
        let t = SimTime::from_us(10);
        for (f, n) in [(1u32, 1u32), (2, 2), (3, 3)] {
            cp.record(t, 0, f, NodeId(n), 1500);
        }
        cp.begin_episode(t, 0);
        // Episode closes instantly (all acked).
        cp.on_ack(t, 0, 1, NodeId(1));
        cp.on_ack(t, 0, 1, NodeId(2));
        cp.on_ack(t, 0, 1, NodeId(3));
        // Same traffic immediately after: cooldown suppresses the trigger.
        assert!(!cp.record(t + SimTime::from_us(1), 0, 9, NodeId(9), 5000));
        // Past cooldown the port can fire again (epoch advances).
        let later = t + SimTime::from_ms(1);
        for (f, n) in [(11u32, 1u32), (12, 2), (13, 3)] {
            cp.record(later, 0, f, NodeId(n), 1500);
        }
        assert!(cp.record(later, 0, 14, NodeId(4), 1500));
        assert_eq!(cp.begin_episode(later, 0), 2);
    }

    #[test]
    fn emission_loss_draws_only_when_configured() {
        let mut cfg = cfg_one_port();
        cfg.notif_loss = 0.0;
        let mut cp = plane(cfg);
        for _ in 0..100 {
            assert!(!cp.emission_lost(), "zero loss must never lose");
        }
        let mut cfg = cfg_one_port();
        cfg.notif_loss = 1.0;
        assert!(ControlPlane::new(cfg.clone(), 4, |_l| NodeId(0)).dead());
        cfg.notif_loss = 0.5;
        let mut cp = plane(cfg);
        assert!(!cp.dead());
        let lost = (0..1000).filter(|_| cp.emission_lost()).count();
        assert!(lost > 300 && lost < 700, "loss draw far off p=0.5: {lost}");
    }
}
