//! Packet tracing — the simulator's `tcpdump`.
//!
//! A [`PacketTracer`] observes every per-link packet event (enqueue, drop,
//! transmit start, delivery). [`TextTracer`] renders them as one line per
//! event, optionally filtered to a flow, with a bounded buffer so a
//! long-running simulation cannot exhaust memory. Attach with
//! [`crate::Simulator::set_tracer`]; wrap in [`crate::Shared`] to keep a
//! handle for reading the log after the run.

use crate::ids::{FlowId, LinkId};
use crate::packet::{Packet, PacketKind};
use crate::queue::DropReason;
use crate::time::SimTime;

/// What happened to a packet at a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Accepted into the link's egress queue (`marked` = CE was set here).
    Enqueue {
        /// True if this enqueue CE-marked the packet.
        marked: bool,
    },
    /// Rejected at the egress queue.
    Drop(DropReason),
    /// Serialization onto the wire began.
    TxStart,
    /// Arrived at the link's far end.
    Deliver,
}

/// One traced packet event.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent<'a> {
    /// When it happened.
    pub now: SimTime,
    /// What happened.
    pub kind: TraceEventKind,
    /// The link involved.
    pub link: LinkId,
    /// The packet involved.
    pub pkt: &'a Packet,
}

/// A passive observer of per-link packet events.
pub trait PacketTracer {
    /// Observes one event.
    fn on_event(&mut self, ev: &TraceEvent);
}

impl<T: PacketTracer> PacketTracer for crate::endpoint::Shared<T> {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.borrow_mut().on_event(ev);
    }
}

/// A line-per-event text tracer with an optional flow filter and a bounded
/// buffer (oldest lines are dropped once the cap is hit, and a counter keeps
/// the total).
#[derive(Debug)]
pub struct TextTracer {
    filter: Option<FlowId>,
    cap: usize,
    lines: std::collections::VecDeque<String>,
    /// Total events matched (including ones evicted from the buffer).
    pub events_seen: u64,
}

impl TextTracer {
    /// Traces every flow, keeping at most `cap` lines.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "zero-capacity tracer");
        TextTracer {
            filter: None,
            cap,
            lines: std::collections::VecDeque::new(),
            events_seen: 0,
        }
    }

    /// Traces only `flow`.
    pub fn for_flow(flow: FlowId, cap: usize) -> Self {
        TextTracer {
            filter: Some(flow),
            ..Self::new(cap)
        }
    }

    /// The retained lines, oldest first.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.lines.iter().map(String::as_str)
    }

    /// Renders the whole retained log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    fn describe(pkt: &Packet) -> String {
        match pkt.kind {
            PacketKind::Data {
                seq,
                payload,
                retx,
                ..
            } => format!(
                "DATA seq={seq} len={payload}{}{}",
                if retx { " retx" } else { "" },
                if pkt.is_ce() { " CE" } else { "" }
            ),
            PacketKind::Ack { ack, ece, .. } => {
                format!("ACK ack={ack}{}", if ece { " ECE" } else { "" })
            }
            PacketKind::Ctrl { demand, burst } => {
                format!("CTRL demand={demand} burst={burst}")
            }
        }
    }
}

impl PacketTracer for TextTracer {
    fn on_event(&mut self, ev: &TraceEvent) {
        if let Some(f) = self.filter {
            if ev.pkt.flow != f {
                return;
            }
        }
        self.events_seen += 1;
        let what = match ev.kind {
            TraceEventKind::Enqueue { marked: true } => "enq+mark",
            TraceEventKind::Enqueue { marked: false } => "enq",
            TraceEventKind::Drop(DropReason::QueueFull) => "DROP(full)",
            TraceEventKind::Drop(DropReason::SharedBuffer) => "DROP(shared)",
            TraceEventKind::TxStart => "tx",
            TraceEventKind::Deliver => "rx",
        };
        let line = format!(
            "{:>12} {} {:<11} {} {}->{} {}",
            ev.now,
            ev.link,
            what,
            ev.pkt.flow,
            ev.pkt.src,
            ev.pkt.dst,
            Self::describe(ev.pkt),
        );
        if self.lines.len() == self.cap {
            self.lines.pop_front();
        }
        self.lines.push_back(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn ev(kind: TraceEventKind, pkt: &Packet) -> TraceEvent<'_> {
        TraceEvent {
            now: SimTime::from_us(3),
            kind,
            link: LinkId(1),
            pkt,
        }
    }

    fn data(flow: u32) -> Packet {
        Packet::data(
            FlowId(flow),
            NodeId(0),
            NodeId(2),
            100,
            1446,
            false,
            SimTime::ZERO,
        )
    }

    #[test]
    fn records_and_renders_events() {
        let mut t = TextTracer::new(16);
        let p = data(5);
        t.on_event(&ev(TraceEventKind::Enqueue { marked: true }, &p));
        t.on_event(&ev(TraceEventKind::Deliver, &p));
        assert_eq!(t.events_seen, 2);
        let log = t.render();
        assert!(log.contains("enq+mark"), "{log}");
        assert!(log.contains("rx"), "{log}");
        assert!(log.contains("DATA seq=100 len=1446"), "{log}");
        assert!(log.contains("f5 n0->n2"), "{log}");
    }

    #[test]
    fn flow_filter_applies() {
        let mut t = TextTracer::for_flow(FlowId(7), 16);
        t.on_event(&ev(TraceEventKind::TxStart, &data(5)));
        t.on_event(&ev(TraceEventKind::TxStart, &data(7)));
        assert_eq!(t.events_seen, 1);
        assert_eq!(t.lines().count(), 1);
    }

    #[test]
    fn buffer_is_bounded_but_counts_everything() {
        let mut t = TextTracer::new(3);
        let p = data(0);
        for _ in 0..10 {
            t.on_event(&ev(TraceEventKind::TxStart, &p));
        }
        assert_eq!(t.lines().count(), 3);
        assert_eq!(t.events_seen, 10);
    }

    #[test]
    fn drop_reasons_rendered() {
        let mut t = TextTracer::new(4);
        let p = data(0);
        t.on_event(&ev(TraceEventKind::Drop(DropReason::QueueFull), &p));
        t.on_event(&ev(TraceEventKind::Drop(DropReason::SharedBuffer), &p));
        let log = t.render();
        assert!(log.contains("DROP(full)"));
        assert!(log.contains("DROP(shared)"));
    }

    #[test]
    fn ack_and_ctrl_descriptions() {
        let mut t = TextTracer::new(4);
        let ack = Packet::ack(FlowId(1), NodeId(2), NodeId(0), 777, true, SimTime::ZERO);
        let ctrl = Packet::ctrl(FlowId(1), NodeId(0), NodeId(2), 9000, 3);
        t.on_event(&ev(TraceEventKind::Deliver, &ack));
        t.on_event(&ev(TraceEventKind::Deliver, &ctrl));
        let log = t.render();
        assert!(log.contains("ACK ack=777 ECE"));
        assert!(log.contains("CTRL demand=9000 burst=3"));
    }

    #[test]
    #[should_panic]
    fn zero_cap_rejected() {
        TextTracer::new(0);
    }
}
