//! Packet tracing — the simulator's `tcpdump`.
//!
//! The simulator emits structured [`telemetry::Event`]s; this module
//! bridges packets to that event model and keeps the original line-per-event
//! [`TextTracer`] as a thin *formatter* over the same stream. `TextTracer`
//! works both ways: as a legacy [`PacketTracer`] attached with
//! [`crate::Simulator::set_tracer`], and as a [`telemetry::EventSink`]
//! attached with [`crate::Simulator::set_sink`] — either way it renders the
//! identical text. For machine-readable traces attach a
//! [`telemetry::JsonlSink`] instead.

use crate::ids::{FlowId, LinkId, NodeId};
use crate::packet::{Packet, PacketKind};
use crate::queue::DropReason;
use crate::time::SimTime;
use telemetry::{DropCause, Event, EventClass, EventKind, EventSink, PktDetail, PktInfo};

/// What happened to a packet at a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Accepted into the link's egress queue (`marked` = CE was set here).
    Enqueue {
        /// True if this enqueue CE-marked the packet.
        marked: bool,
    },
    /// Rejected at the egress queue.
    Drop(DropReason),
    /// Serialization onto the wire began.
    TxStart,
    /// Arrived at the link's far end.
    Deliver,
}

/// One traced packet event.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent<'a> {
    /// When it happened.
    pub now: SimTime,
    /// What happened.
    pub kind: TraceEventKind,
    /// The link involved.
    pub link: LinkId,
    /// The packet involved.
    pub pkt: &'a Packet,
}

/// A passive observer of per-link packet events.
pub trait PacketTracer {
    /// Observes one event.
    fn on_event(&mut self, ev: &TraceEvent);
}

impl<T: PacketTracer> PacketTracer for crate::endpoint::Shared<T> {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.borrow_mut().on_event(ev);
    }
}

/// Converts a packet to its telemetry description.
pub fn packet_info(pkt: &Packet) -> PktInfo {
    PktInfo {
        flow: pkt.flow.0,
        src: pkt.src.0,
        dst: pkt.dst.0,
        bytes: pkt.wire_size,
        ce: pkt.is_ce(),
        detail: match pkt.kind {
            PacketKind::Data {
                seq, payload, retx, ..
            } => PktDetail::Data { seq, payload, retx },
            PacketKind::Ack { ack, ece, .. } => PktDetail::Ack { ack, ece },
            PacketKind::QuicData {
                pn,
                offset,
                payload,
                retx,
                ..
            } => PktDetail::QuicData {
                pn,
                offset,
                payload,
                retx,
            },
            PacketKind::QuicAck { blocks, ece, .. } => PktDetail::QuicAck {
                largest: blocks.largest(),
                ranges: blocks.len() as u32,
                ece,
            },
            PacketKind::Ctrl { demand, burst } => PktDetail::Ctrl { demand, burst },
            PacketKind::Notif { epoch, pause, cut } => PktDetail::Notif {
                epoch,
                pause_ps: pause.as_ps(),
                cut,
            },
            PacketKind::NotifAck { epoch } => PktDetail::NotifAck { epoch },
        },
    }
}

/// Converts a [`DropReason`] to its telemetry cause.
pub fn drop_cause(reason: DropReason) -> DropCause {
    match reason {
        DropReason::QueueFull => DropCause::QueueFull,
        DropReason::SharedBuffer => DropCause::SharedBuffer,
    }
}

/// Converts a legacy [`TraceEvent`] to a structured telemetry event.
pub fn to_telemetry(ev: &TraceEvent) -> Event {
    let link = ev.link.0;
    let pkt = packet_info(ev.pkt);
    let kind = match ev.kind {
        TraceEventKind::Enqueue { marked } => EventKind::PktEnqueue { link, pkt, marked },
        TraceEventKind::Drop(reason) => EventKind::PktDrop {
            link,
            pkt,
            reason: drop_cause(reason),
        },
        TraceEventKind::TxStart => EventKind::PktTxStart { link, pkt },
        TraceEventKind::Deliver => EventKind::PktDeliver { link, pkt },
    };
    Event {
        t_ps: ev.now.as_ps(),
        kind,
    }
}

/// A line-per-event text tracer with an optional flow filter and a bounded
/// buffer (oldest lines are dropped once the cap is hit, and a counter keeps
/// the total).
#[derive(Debug)]
pub struct TextTracer {
    filter: Option<FlowId>,
    cap: usize,
    lines: std::collections::VecDeque<String>,
    /// Total events matched (including ones evicted from the buffer).
    pub events_seen: u64,
}

impl TextTracer {
    /// Traces every flow, keeping at most `cap` lines.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "zero-capacity tracer");
        TextTracer {
            filter: None,
            cap,
            lines: std::collections::VecDeque::new(),
            events_seen: 0,
        }
    }

    /// Traces only `flow`.
    pub fn for_flow(flow: FlowId, cap: usize) -> Self {
        TextTracer {
            filter: Some(flow),
            ..Self::new(cap)
        }
    }

    /// The retained lines, oldest first.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.lines.iter().map(String::as_str)
    }

    /// Renders the whole retained log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    fn describe(pkt: &PktInfo) -> String {
        match pkt.detail {
            PktDetail::Data { seq, payload, retx } => format!(
                "DATA seq={seq} len={payload}{}{}",
                if retx { " retx" } else { "" },
                if pkt.ce { " CE" } else { "" }
            ),
            PktDetail::Ack { ack, ece } => {
                format!("ACK ack={ack}{}", if ece { " ECE" } else { "" })
            }
            PktDetail::QuicData {
                pn,
                offset,
                payload,
                retx,
            } => format!(
                "QDATA pn={pn} off={offset} len={payload}{}{}",
                if retx { " retx" } else { "" },
                if pkt.ce { " CE" } else { "" }
            ),
            PktDetail::QuicAck {
                largest,
                ranges,
                ece,
            } => format!(
                "QACK largest={largest} ranges={ranges}{}",
                if ece { " ECE" } else { "" }
            ),
            PktDetail::Ctrl { demand, burst } => {
                format!("CTRL demand={demand} burst={burst}")
            }
            PktDetail::Notif {
                epoch,
                pause_ps,
                cut,
            } => format!(
                "NOTIF epoch={epoch} pause={pause_ps}ps{}",
                if cut { " cut" } else { "" }
            ),
            PktDetail::NotifAck { epoch } => format!("NACK epoch={epoch}"),
        }
    }

    /// Formats one packet-class telemetry event into the tracer's buffer.
    /// Non-packet events (queue depth, flow windows, …) are ignored.
    fn format_event(&mut self, ev: &Event) {
        let (what, link, pkt) = match &ev.kind {
            EventKind::PktEnqueue {
                link,
                pkt,
                marked: true,
            } => ("enq+mark", *link, pkt),
            EventKind::PktEnqueue {
                link,
                pkt,
                marked: false,
            } => ("enq", *link, pkt),
            EventKind::PktDrop {
                link,
                pkt,
                reason: DropCause::QueueFull,
            } => ("DROP(full)", *link, pkt),
            EventKind::PktDrop {
                link,
                pkt,
                reason: DropCause::SharedBuffer,
            } => ("DROP(shared)", *link, pkt),
            EventKind::PktDrop {
                link,
                pkt,
                reason: DropCause::Fault,
            } => ("DROP(fault)", *link, pkt),
            EventKind::PktDrop {
                link,
                pkt,
                reason: DropCause::Corrupt,
            } => ("DROP(corrupt)", *link, pkt),
            EventKind::PktTxStart { link, pkt } => ("tx", *link, pkt),
            EventKind::PktDeliver { link, pkt } => ("rx", *link, pkt),
            _ => return,
        };
        if let Some(f) = self.filter {
            if pkt.flow != f.0 {
                return;
            }
        }
        self.events_seen += 1;
        let line = format!(
            "{:>12} {} {:<11} {} {}->{} {}",
            SimTime(ev.t_ps),
            LinkId(link),
            what,
            FlowId(pkt.flow),
            NodeId(pkt.src),
            NodeId(pkt.dst),
            Self::describe(pkt),
        );
        if self.lines.len() == self.cap {
            self.lines.pop_front();
        }
        self.lines.push_back(line);
    }
}

impl PacketTracer for TextTracer {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.format_event(&to_telemetry(ev));
    }
}

impl EventSink for TextTracer {
    fn accepts(&self, class: EventClass) -> bool {
        class == EventClass::Packet
    }

    fn on_event(&mut self, ev: &Event) {
        self.format_event(ev);
    }

    fn event_count(&self) -> u64 {
        self.events_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn ev(kind: TraceEventKind, pkt: &Packet) -> TraceEvent<'_> {
        TraceEvent {
            now: SimTime::from_us(3),
            kind,
            link: LinkId(1),
            pkt,
        }
    }

    fn data(flow: u32) -> Packet {
        Packet::data(
            FlowId(flow),
            NodeId(0),
            NodeId(2),
            100,
            1446,
            false,
            SimTime::ZERO,
        )
    }

    #[test]
    fn records_and_renders_events() {
        let mut t = TextTracer::new(16);
        let p = data(5);
        PacketTracer::on_event(&mut t, &ev(TraceEventKind::Enqueue { marked: true }, &p));
        PacketTracer::on_event(&mut t, &ev(TraceEventKind::Deliver, &p));
        assert_eq!(t.events_seen, 2);
        let log = t.render();
        assert!(log.contains("enq+mark"), "{log}");
        assert!(log.contains("rx"), "{log}");
        assert!(log.contains("DATA seq=100 len=1446"), "{log}");
        assert!(log.contains("f5 n0->n2"), "{log}");
    }

    #[test]
    fn flow_filter_applies() {
        let mut t = TextTracer::for_flow(FlowId(7), 16);
        PacketTracer::on_event(&mut t, &ev(TraceEventKind::TxStart, &data(5)));
        PacketTracer::on_event(&mut t, &ev(TraceEventKind::TxStart, &data(7)));
        assert_eq!(t.events_seen, 1);
        assert_eq!(t.lines().count(), 1);
    }

    #[test]
    fn buffer_is_bounded_but_counts_everything() {
        let mut t = TextTracer::new(3);
        let p = data(0);
        for _ in 0..10 {
            PacketTracer::on_event(&mut t, &ev(TraceEventKind::TxStart, &p));
        }
        assert_eq!(t.lines().count(), 3);
        assert_eq!(t.events_seen, 10);
    }

    #[test]
    fn drop_reasons_rendered() {
        let mut t = TextTracer::new(4);
        let p = data(0);
        PacketTracer::on_event(&mut t, &ev(TraceEventKind::Drop(DropReason::QueueFull), &p));
        PacketTracer::on_event(
            &mut t,
            &ev(TraceEventKind::Drop(DropReason::SharedBuffer), &p),
        );
        let log = t.render();
        assert!(log.contains("DROP(full)"));
        assert!(log.contains("DROP(shared)"));
    }

    #[test]
    fn wire_drop_reasons_rendered() {
        // Fault and corrupt drops arrive only via the telemetry-event path
        // (the simulator emits them directly, bypassing `TraceEvent`).
        let mut t = TextTracer::new(4);
        let p = packet_info(&data(0));
        for reason in [DropCause::Fault, DropCause::Corrupt] {
            EventSink::on_event(
                &mut t,
                &Event {
                    t_ps: 0,
                    kind: EventKind::PktDrop {
                        link: 1,
                        pkt: p,
                        reason,
                    },
                },
            );
        }
        let log = t.render();
        assert!(log.contains("DROP(fault)"), "{log}");
        assert!(log.contains("DROP(corrupt)"), "{log}");
    }

    #[test]
    fn ack_and_ctrl_descriptions() {
        let mut t = TextTracer::new(4);
        let ack = Packet::ack(FlowId(1), NodeId(2), NodeId(0), 777, true, SimTime::ZERO);
        let ctrl = Packet::ctrl(FlowId(1), NodeId(0), NodeId(2), 9000, 3);
        PacketTracer::on_event(&mut t, &ev(TraceEventKind::Deliver, &ack));
        PacketTracer::on_event(&mut t, &ev(TraceEventKind::Deliver, &ctrl));
        let log = t.render();
        assert!(log.contains("ACK ack=777 ECE"));
        assert!(log.contains("CTRL demand=9000 burst=3"));
    }

    #[test]
    fn quic_descriptions() {
        let mut t = TextTracer::new(4);
        let qd = Packet::quic_data(
            FlowId(1),
            NodeId(0),
            NodeId(2),
            17,
            4096,
            1446,
            true,
            SimTime::ZERO,
        );
        let qa = Packet::quic_ack(
            FlowId(1),
            NodeId(2),
            NodeId(0),
            crate::packet::AckBlocks::new(&[(15, 17), (3, 9)]),
            true,
            SimTime::ZERO,
        );
        PacketTracer::on_event(&mut t, &ev(TraceEventKind::Deliver, &qd));
        PacketTracer::on_event(&mut t, &ev(TraceEventKind::Deliver, &qa));
        let log = t.render();
        assert!(log.contains("QDATA pn=17 off=4096 len=1446 retx"), "{log}");
        assert!(log.contains("QACK largest=17 ranges=2 ECE"), "{log}");
    }

    #[test]
    fn tracer_and_sink_paths_format_identically() {
        let p = data(5);
        let trace_ev = ev(TraceEventKind::Enqueue { marked: false }, &p);

        let mut via_tracer = TextTracer::new(4);
        PacketTracer::on_event(&mut via_tracer, &trace_ev);

        let mut via_sink = TextTracer::new(4);
        EventSink::on_event(&mut via_sink, &to_telemetry(&trace_ev));

        assert_eq!(via_tracer.render(), via_sink.render());
        assert_eq!(via_sink.event_count(), 1);
    }

    #[test]
    fn sink_ignores_non_packet_events() {
        let mut t = TextTracer::new(4);
        EventSink::on_event(
            &mut t,
            &Event {
                t_ps: 0,
                kind: EventKind::QueueDepth {
                    link: 0,
                    pkts: 1,
                    bytes: 1500,
                },
            },
        );
        assert_eq!(t.events_seen, 0);
        assert!(!t.accepts(EventClass::Queue));
        assert!(t.accepts(EventClass::Packet));
    }

    #[test]
    fn conversion_carries_packet_fields() {
        let p = data(9);
        let tev = to_telemetry(&ev(TraceEventKind::Deliver, &p));
        assert_eq!(tev.t_ps, SimTime::from_us(3).as_ps());
        assert_eq!(tev.flow(), Some(9));
        match tev.kind {
            EventKind::PktDeliver { link, pkt } => {
                assert_eq!(link, 1);
                assert_eq!(pkt.src, 0);
                assert_eq!(pkt.dst, 2);
                assert_eq!(pkt.bytes, 1500);
                assert_eq!(
                    pkt.detail,
                    PktDetail::Data {
                        seq: 100,
                        payload: 1446,
                        retx: false
                    }
                );
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    #[should_panic]
    fn zero_cap_rejected() {
        TextTracer::new(0);
    }
}
