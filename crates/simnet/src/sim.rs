//! The discrete-event simulation engine.
//!
//! [`Simulator`] owns every network element and the future event list and
//! advances simulated time event by event. It is fully deterministic: given
//! the same topology, endpoints, and seed, two runs produce identical packet
//! traces (events at equal timestamps fire in scheduling order, and the only
//! randomness is the seeded fault-injection RNG).

use crate::endpoint::{Cmd, Ctx, Endpoint, IngressTap};
use crate::event::{EventKind, EventQueue};
use crate::trace::{PacketTracer, TraceEvent, TraceEventKind};
use crate::ids::{LinkId, NodeId};
use crate::link::Link;
use crate::node::Node;
use crate::packet::Packet;
use crate::queue::EnqueueOutcome;
use crate::time::SimTime;
use crate::SharedBuffer;
use serde::{Deserialize, Serialize};
use stats::Rng;
use std::collections::HashMap;

/// Global counters maintained by the simulator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimCounters {
    /// Packets delivered to host endpoints.
    pub delivered_pkts: u64,
    /// Bytes delivered to host endpoints (wire bytes).
    pub delivered_bytes: u64,
    /// Packets dropped at queues (tail drops + shared-buffer refusals).
    pub queue_drops: u64,
    /// Packets lost to link fault injection.
    pub fault_drops: u64,
    /// Events processed so far.
    pub events_processed: u64,
}

/// The simulation engine. Build one with
/// [`NetworkBuilder`](crate::builder::NetworkBuilder), install endpoints,
/// then call [`Simulator::run_until`] or [`Simulator::run`].
pub struct Simulator {
    now: SimTime,
    events: EventQueue,
    nodes: Vec<Node>,
    links: Vec<Link>,
    buffers: Vec<SharedBuffer>,
    endpoints: Vec<Option<Box<dyn Endpoint>>>,
    taps: Vec<Option<Box<dyn IngressTap>>>,
    tracer: Option<Box<dyn PacketTracer>>,
    timer_gens: HashMap<(u32, u64), u64>,
    next_pkt_id: u64,
    cmd_buf: Vec<Cmd>,
    rng: Rng,
    counters: SimCounters,
    started: bool,
}

impl Simulator {
    /// Assembles a simulator (normally called by the builder).
    pub(crate) fn assemble(
        nodes: Vec<Node>,
        links: Vec<Link>,
        buffers: Vec<SharedBuffer>,
        seed: u64,
    ) -> Self {
        let n = nodes.len();
        Simulator {
            now: SimTime::ZERO,
            events: EventQueue::new(),
            nodes,
            links,
            buffers,
            endpoints: (0..n).map(|_| None).collect(),
            taps: (0..n).map(|_| None).collect(),
            tracer: None,
            timer_gens: HashMap::new(),
            next_pkt_id: 0,
            cmd_buf: Vec::with_capacity(64),
            rng: Rng::new(seed),
            counters: SimCounters::default(),
            started: false,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Counter snapshot.
    pub fn counters(&self) -> &SimCounters {
        &self.counters
    }

    /// Installs the software for a host. Panics on switches.
    pub fn set_endpoint(&mut self, node: NodeId, ep: Box<dyn Endpoint>) {
        assert!(
            self.nodes[node.index()].is_host(),
            "endpoints attach to hosts"
        );
        assert!(!self.started, "install endpoints before running");
        self.endpoints[node.index()] = Some(ep);
    }

    /// Installs a passive ingress observer on a host.
    pub fn set_tap(&mut self, node: NodeId, tap: Box<dyn IngressTap>) {
        assert!(self.nodes[node.index()].is_host(), "taps attach to hosts");
        self.taps[node.index()] = Some(tap);
    }

    /// Installs a packet tracer observing every link event (the simulator's
    /// `tcpdump`; see [`crate::trace::TextTracer`]).
    pub fn set_tracer(&mut self, tracer: Box<dyn PacketTracer>) {
        self.tracer = Some(tracer);
    }

    #[inline]
    fn trace(&mut self, kind: TraceEventKind, link: LinkId, pkt: &Packet) {
        if let Some(t) = self.tracer.as_mut() {
            t.on_event(&TraceEvent {
                now: self.now,
                kind,
                link,
                pkt,
            });
        }
    }

    /// Immutable access to a link (for queue statistics after a run).
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Mutable access to a link (e.g. to enable queue depth monitoring
    /// before a run).
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.index()]
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The shared buffers, in creation order.
    pub fn buffers(&self) -> &[SharedBuffer] {
        &self.buffers
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for idx in 0..self.nodes.len() {
            if self.endpoints[idx].is_some() {
                self.dispatch_endpoint(NodeId(idx as u32), |ep, ctx| ep.on_start(ctx));
            }
        }
    }

    /// Runs until the event list is empty.
    pub fn run(&mut self) {
        self.start_if_needed();
        while self.step_inner() {}
    }

    /// Runs until simulated time reaches `deadline` (events at exactly
    /// `deadline` are processed). Pending later events remain queued.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start_if_needed();
        while let Some(t) = self.events.peek_time() {
            if t > deadline {
                break;
            }
            self.step_inner();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Processes a single event. Returns false when none remain.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        self.step_inner()
    }

    fn step_inner(&mut self) -> bool {
        let Some(ev) = self.events.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "time went backwards");
        self.now = ev.time;
        self.counters.events_processed += 1;
        match ev.kind {
            EventKind::TxComplete { link } => self.on_tx_complete(link),
            EventKind::Delivery { link, pkt } => self.on_delivery(link, pkt),
            EventKind::Timer { node, key, gen } => self.on_timer(node, key, gen),
        }
        true
    }

    // ---- link machinery -------------------------------------------------

    /// Offers `pkt` to the egress queue of `link`, starting transmission if
    /// the transmitter is idle.
    fn enqueue_to_link(&mut self, link_id: LinkId, pkt: Packet) {
        let now = self.now;
        let link = &mut self.links[link_id.index()];
        // Shared-buffer admission, if this queue charges a pool.
        if let Some(bid) = link.shared {
            let ok = self.buffers[bid.index()].admit(link.queue.bytes(), pkt.wire_size as u64);
            if !ok {
                link.queue.note_shared_drop(&pkt);
                self.counters.queue_drops += 1;
                self.trace(
                    TraceEventKind::Drop(crate::queue::DropReason::SharedBuffer),
                    link_id,
                    &pkt,
                );
                return;
            }
        }
        match link.queue.enqueue(now, pkt) {
            EnqueueOutcome::Queued { marked } => {
                let shared = link.shared;
                let busy = link.busy();
                if let Some(bid) = shared {
                    self.buffers[bid.index()].on_enqueue(pkt.wire_size as u64);
                }
                self.trace(TraceEventKind::Enqueue { marked }, link_id, &pkt);
                if !busy {
                    self.start_tx(link_id);
                }
            }
            EnqueueOutcome::Dropped(reason) => {
                self.counters.queue_drops += 1;
                self.trace(TraceEventKind::Drop(reason), link_id, &pkt);
            }
        }
    }

    /// Pulls the next frame off the egress queue and begins serializing it.
    fn start_tx(&mut self, link_id: LinkId) {
        let now = self.now;
        let link = &mut self.links[link_id.index()];
        debug_assert!(!link.busy());
        let Some(pkt) = link.queue.dequeue(now) else {
            return;
        };
        if let Some(bid) = link.shared {
            self.buffers[bid.index()].on_dequeue(pkt.wire_size as u64);
        }
        let ser = link.serialize_time(pkt.wire_size as u64);
        link.serializing = Some(pkt);
        self.trace(TraceEventKind::TxStart, link_id, &pkt);
        self.events
            .schedule(now + ser, EventKind::TxComplete { link: link_id });
    }

    fn on_tx_complete(&mut self, link_id: LinkId) {
        let link = &mut self.links[link_id.index()];
        let pkt = link
            .serializing
            .take()
            .expect("TxComplete with no frame on the wire");
        let prop = link.cfg.propagation;
        let lose = link.cfg.loss_probability > 0.0 && self.rng.chance(link.cfg.loss_probability);
        if lose {
            link.fault_drops += 1;
            self.counters.fault_drops += 1;
        } else {
            self.events.schedule(
                self.now + prop,
                EventKind::Delivery {
                    link: link_id,
                    pkt,
                },
            );
        }
        // Keep the transmitter running.
        if !self.links[link_id.index()].queue.is_empty() {
            self.start_tx(link_id);
        }
    }

    fn on_delivery(&mut self, link_id: LinkId, pkt: Packet) {
        self.trace(TraceEventKind::Deliver, link_id, &pkt);
        let dst = self.links[link_id.index()].dst;
        match &self.nodes[dst.index()] {
            Node::Switch { .. } => {
                let next = self.nodes[dst.index()].next_hop(pkt.dst).unwrap_or_else(|| {
                    panic!(
                        "switch {} has no route to {} (packet {:?})",
                        self.nodes[dst.index()].name(),
                        pkt.dst,
                        pkt.kind
                    )
                });
                self.enqueue_to_link(next, pkt);
            }
            Node::Host { .. } => {
                self.counters.delivered_pkts += 1;
                self.counters.delivered_bytes += pkt.wire_size as u64;
                if let Some(tap) = self.taps[dst.index()].as_mut() {
                    tap.on_packet(self.now, &pkt);
                }
                if self.endpoints[dst.index()].is_some() {
                    self.dispatch_endpoint(dst, |ep, ctx| ep.on_packet(ctx, pkt));
                }
            }
        }
    }

    // ---- timers ----------------------------------------------------------

    fn on_timer(&mut self, node: NodeId, key: u64, gen: u64) {
        let current = self.timer_gens.get(&(node.0, key)).copied();
        if current != Some(gen) {
            return; // superseded or cancelled
        }
        if self.endpoints[node.index()].is_some() {
            self.dispatch_endpoint(node, |ep, ctx| ep.on_timer(ctx, key));
        }
    }

    // ---- endpoint dispatch ------------------------------------------------

    fn dispatch_endpoint<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Endpoint, &mut Ctx),
    {
        let mut ep = self.endpoints[node.index()]
            .take()
            .expect("dispatch to missing endpoint");
        let mut cmds = std::mem::take(&mut self.cmd_buf);
        {
            let mut ctx = Ctx::new(self.now, node, &mut cmds);
            f(ep.as_mut(), &mut ctx);
        }
        self.endpoints[node.index()] = Some(ep);
        self.apply_cmds(node, &mut cmds);
        cmds.clear();
        self.cmd_buf = cmds;
    }

    fn apply_cmds(&mut self, node: NodeId, cmds: &mut Vec<Cmd>) {
        // Commands may themselves be generated while applying (not today,
        // but drain defensively by index).
        for cmd in cmds.drain(..) {
            match cmd {
                Cmd::Send(mut pkt) => {
                    pkt.id = self.next_pkt_id;
                    self.next_pkt_id += 1;
                    let uplink = match &self.nodes[node.index()] {
                        Node::Host { uplink, .. } => {
                            uplink.expect("host sends but has no uplink")
                        }
                        Node::Switch { .. } => unreachable!("switches have no endpoints"),
                    };
                    self.enqueue_to_link(uplink, pkt);
                }
                Cmd::SetTimer { key, at } => {
                    let gen = self
                        .timer_gens
                        .entry((node.0, key))
                        .and_modify(|g| *g += 1)
                        .or_insert(0);
                    let gen = *gen;
                    let at = at.max(self.now);
                    self.events.schedule(at, EventKind::Timer { node, key, gen });
                }
                Cmd::CancelTimer { key } => {
                    self.timer_gens
                        .entry((node.0, key))
                        .and_modify(|g| *g += 1)
                        .or_insert(0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::link::LinkConfig;
    use crate::packet::{Packet, PacketKind};
    use crate::queue::QueueConfig;
    use crate::units::Rate;
    use crate::FlowId;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Sends `count` back-to-back frames to `peer` at start, records
    /// delivery times of frames it receives.
    struct Blaster {
        peer: NodeId,
        count: u32,
        log: Rc<RefCell<Vec<(SimTime, u64)>>>,
    }

    impl Endpoint for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx) {
            for i in 0..self.count {
                let pkt = Packet::data(
                    FlowId(0),
                    ctx.node(),
                    self.peer,
                    i * 1000,
                    1446,
                    false,
                    ctx.now(),
                );
                ctx.send(pkt);
            }
        }
        fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
            self.log.borrow_mut().push((ctx.now(), pkt.id));
        }
    }

    struct Sink {
        log: Rc<RefCell<Vec<(SimTime, u64)>>>,
    }
    impl Endpoint for Sink {
        fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
            self.log.borrow_mut().push((ctx.now(), pkt.id));
        }
    }

    fn two_hosts(rate: Rate, prop: SimTime) -> (Simulator, NodeId, NodeId) {
        let mut b = NetworkBuilder::new();
        let a = b.add_host("a");
        let sw = b.add_switch("sw");
        let c = b.add_host("c");
        let cfg = LinkConfig::new(rate, prop, QueueConfig::host_nic());
        b.connect(a, sw, cfg.clone(), cfg.clone());
        b.connect(c, sw, cfg.clone(), cfg);
        (b.build(1), a, c)
    }

    #[test]
    fn single_packet_latency_is_ser_plus_prop_per_hop() {
        let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            a,
            Box::new(Blaster {
                peer: c,
                count: 1,
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_endpoint(c, Box::new(Sink { log: log.clone() }));
        sim.run();
        let delivered = log.borrow();
        assert_eq!(delivered.len(), 1);
        // Two hops: 2 x (1500 B @ 10 Gbps = 1.2 us) + 2 x 1 us prop = 4.4 us.
        assert_eq!(delivered[0].0, SimTime::from_ns(4400));
        assert_eq!(sim.counters().delivered_pkts, 1);
        assert_eq!(sim.counters().delivered_bytes, 1500);
    }

    #[test]
    fn back_to_back_packets_are_paced_by_serialization() {
        let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            a,
            Box::new(Blaster {
                peer: c,
                count: 3,
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_endpoint(c, Box::new(Sink { log: log.clone() }));
        sim.run();
        let delivered = log.borrow();
        assert_eq!(delivered.len(), 3);
        // Consecutive deliveries exactly one serialization time apart.
        assert_eq!(delivered[1].0 - delivered[0].0, SimTime::from_ns(1200));
        assert_eq!(delivered[2].0 - delivered[1].0, SimTime::from_ns(1200));
        // FIFO order by id.
        assert!(delivered[0].1 < delivered[1].1 && delivered[1].1 < delivered[2].1);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(100));
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            a,
            Box::new(Blaster {
                peer: c,
                count: 1,
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_endpoint(c, Box::new(Sink { log: log.clone() }));
        sim.run_until(SimTime::from_us(50));
        assert_eq!(log.borrow().len(), 0); // still propagating
        assert_eq!(sim.now(), SimTime::from_us(50));
        sim.run_until(SimTime::from_ms(1));
        assert_eq!(log.borrow().len(), 1);
    }

    /// A timer endpoint exercising set/cancel/re-arm semantics.
    struct TimerBox {
        fired: Rc<RefCell<Vec<(u64, SimTime)>>>,
    }
    impl Endpoint for TimerBox {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer(1, SimTime::from_us(10));
            ctx.set_timer(2, SimTime::from_us(20));
            ctx.cancel_timer(2); // never fires
            ctx.set_timer(3, SimTime::from_us(30));
            ctx.set_timer(3, SimTime::from_us(40)); // re-armed: fires once at 40
        }
        fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx, key: u64) {
            self.fired.borrow_mut().push((key, ctx.now()));
            if key == 1 {
                ctx.set_timer_after(4, SimTime::from_us(5));
            }
        }
    }

    #[test]
    fn timer_semantics() {
        let (mut sim, a, _c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
        let fired = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(a, Box::new(TimerBox { fired: fired.clone() }));
        sim.run();
        let fired = fired.borrow();
        assert_eq!(
            *fired,
            vec![
                (1, SimTime::from_us(10)),
                (4, SimTime::from_us(15)),
                (3, SimTime::from_us(40)),
            ]
        );
    }

    #[test]
    fn fault_injection_drops_packets() {
        let mut b = NetworkBuilder::new();
        let a = b.add_host("a");
        let c = b.add_host("c");
        let mut lossy = LinkConfig::new(
            Rate::gbps(10),
            SimTime::from_us(1),
            QueueConfig::host_nic(),
        );
        lossy.loss_probability = 1.0;
        let clean = LinkConfig::new(
            Rate::gbps(10),
            SimTime::from_us(1),
            QueueConfig::host_nic(),
        );
        b.connect(a, c, lossy, clean);
        let mut sim = b.build(3);
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            a,
            Box::new(Blaster {
                peer: c,
                count: 5,
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_endpoint(c, Box::new(Sink { log: log.clone() }));
        sim.run();
        assert_eq!(log.borrow().len(), 0);
        assert_eq!(sim.counters().fault_drops, 5);
    }

    #[test]
    fn tap_sees_packets_before_endpoint() {
        struct CountTap(Rc<RefCell<u64>>);
        impl IngressTap for CountTap {
            fn on_packet(&mut self, _now: SimTime, _pkt: &Packet) {
                *self.0.borrow_mut() += 1;
            }
        }
        let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
        let log = Rc::new(RefCell::new(Vec::new()));
        let n = Rc::new(RefCell::new(0));
        sim.set_endpoint(
            a,
            Box::new(Blaster {
                peer: c,
                count: 4,
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_endpoint(c, Box::new(Sink { log: log.clone() }));
        sim.set_tap(c, Box::new(CountTap(n.clone())));
        sim.run();
        assert_eq!(*n.borrow(), 4);
        assert_eq!(log.borrow().len(), 4);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
            let log = Rc::new(RefCell::new(Vec::new()));
            sim.set_endpoint(
                a,
                Box::new(Blaster {
                    peer: c,
                    count: 10,
                    log: Rc::new(RefCell::new(Vec::new())),
                }),
            );
            sim.set_endpoint(c, Box::new(Sink { log: log.clone() }));
            sim.run();
            let v = log.borrow().clone();
            (v, sim.counters().events_processed)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ctrl_packets_route_like_any_other() {
        let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
        struct CtrlSender {
            peer: NodeId,
        }
        impl Endpoint for CtrlSender {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.send(Packet::ctrl(FlowId(7), ctx.node(), self.peer, 1234, 9));
            }
            fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {}
        }
        struct CtrlSink {
            got: Rc<RefCell<Option<(u64, u64)>>>,
        }
        impl Endpoint for CtrlSink {
            fn on_packet(&mut self, _ctx: &mut Ctx, pkt: Packet) {
                if let PacketKind::Ctrl { demand, burst } = pkt.kind {
                    *self.got.borrow_mut() = Some((demand, burst));
                }
            }
        }
        let got = Rc::new(RefCell::new(None));
        sim.set_endpoint(a, Box::new(CtrlSender { peer: c }));
        sim.set_endpoint(c, Box::new(CtrlSink { got: got.clone() }));
        sim.run();
        assert_eq!(*got.borrow(), Some((1234, 9)));
    }
}
