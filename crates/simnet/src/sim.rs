//! The discrete-event simulation engine.
//!
//! [`Simulator`] owns every network element and the future event list and
//! advances simulated time event by event. It is fully deterministic: given
//! the same topology, endpoints, and seed, two runs produce identical packet
//! traces (events at equal timestamps fire in scheduling order, and the only
//! randomness is the seeded fault-injection RNG).

use crate::control::{ControlConfig, ControlPlane, CtrlAction, RetryPlan, CTRL_FLOW_BASE};
use crate::endpoint::{Cmd, Ctx, Endpoint, IngressTap};
use crate::event::{Event, EventKind, Scheduler};
use crate::fault::{FaultKind, FaultPlan};
use crate::hash::FxHashMap;
use crate::ids::{BufferId, LinkId, NodeId};
use crate::link::Link;
use crate::node::Node;
use crate::packet::{Ecn, Packet, PacketPool, PacketSlot, QueuedFrame};
use crate::queue::EnqueueOutcome;
use crate::time::SimTime;
use crate::trace::{self, PacketTracer, TraceEvent, TraceEventKind};
use crate::wheel::TimingWheel;
use crate::SharedBuffer;
use stats::Rng;
use std::collections::VecDeque;
use telemetry::{EventClass, EventTallies, LoopProfile, SinkRef};

/// Global counters maintained by the simulator.
#[derive(Debug, Clone, Default)]
pub struct SimCounters {
    /// Packets delivered to host endpoints.
    pub delivered_pkts: u64,
    /// Bytes delivered to host endpoints (wire bytes).
    pub delivered_bytes: u64,
    /// Packets dropped at queues (tail drops + shared-buffer refusals).
    pub queue_drops: u64,
    /// Subset of `queue_drops` refused by a shared buffer.
    pub shared_buffer_drops: u64,
    /// Packets lost to link fault injection.
    pub fault_drops: u64,
    /// Subset of `fault_drops` lost to injected frame corruption.
    pub corrupt_drops: u64,
    /// Packets CE-marked at enqueue anywhere in the fabric.
    pub ecn_marked_pkts: u64,
    /// Events processed so far.
    pub events_processed: u64,
    /// Faults applied from the run's fault plan.
    pub faults_applied: u64,
    /// Control-plane notification frames emitted onto the fabric.
    pub notif_sent: u64,
    /// Fresh notification acknowledgments consumed at switches.
    pub notif_acked: u64,
    /// Notification re-fire rounds (initial multicasts excluded).
    pub notif_retries: u64,
    /// Notification frames lost at emission (control-plane loss gate).
    pub notif_lost: u64,
}

impl SimCounters {
    /// Deterministic JSON rendering (for run manifests).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let mut o = telemetry::json::Obj::new(&mut out);
        o.u64("delivered_pkts", self.delivered_pkts)
            .u64("delivered_bytes", self.delivered_bytes)
            .u64("queue_drops", self.queue_drops)
            .u64("shared_buffer_drops", self.shared_buffer_drops)
            .u64("fault_drops", self.fault_drops)
            .u64("corrupt_drops", self.corrupt_drops)
            .u64("ecn_marked_pkts", self.ecn_marked_pkts)
            .u64("events_processed", self.events_processed)
            .u64("faults_applied", self.faults_applied)
            .u64("notif_sent", self.notif_sent)
            .u64("notif_acked", self.notif_acked)
            .u64("notif_retries", self.notif_retries)
            .u64("notif_lost", self.notif_lost);
        o.finish();
        out
    }
}

/// An endpoint dispatch deferred while its host is paused (a fault-plan
/// straggler window); drained in arrival order on resume.
#[derive(Debug)]
enum Deferred {
    /// A delivered packet waiting for the endpoint to wake.
    Packet(Packet),
    /// A timer that fired while paused; `gen` is re-checked at resume so a
    /// timer the endpoint re-arms while draining stays lazily cancelled.
    Timer { key: u64, gen: u64 },
}

/// The simulation engine. Build one with
/// [`NetworkBuilder`](crate::builder::NetworkBuilder), install endpoints,
/// then call [`Simulator::run_until`] or [`Simulator::run`].
///
/// Generic over its [`Scheduler`]; the default is the [`TimingWheel`] fast
/// path. [`NetworkBuilder::build_with_scheduler`] selects the reference
/// heap instead — both pop the same event sequence (the differential tests
/// in `tests/scheduler_equivalence.rs` hold them to that), so the choice
/// affects wall-clock only.
///
/// [`NetworkBuilder::build_with_scheduler`]: crate::builder::NetworkBuilder::build_with_scheduler
pub struct Simulator<S: Scheduler = TimingWheel> {
    now: SimTime,
    events: S,
    /// Every packet currently inside the network parks here from injection
    /// (`Cmd::Send`) until it is dropped or delivered to a host endpoint.
    /// Queues, transmitters, and `Delivery` events all move 4-byte pool
    /// slots; the packet body is written once per send, never per hop.
    pool: PacketPool,
    nodes: Vec<Node>,
    links: Vec<Link>,
    buffers: Vec<SharedBuffer>,
    endpoints: Vec<Option<Box<dyn Endpoint>>>,
    taps: Vec<Option<Box<dyn IngressTap>>>,
    tracer: Option<Box<dyn PacketTracer>>,
    sink: Option<SinkRef>,
    // Sink subscriptions, cached at attach time so the hot path pays one
    // bool test per would-be event instead of a RefCell borrow.
    sink_packets: bool,
    sink_queue: bool,
    sink_buffer: bool,
    sink_fault: bool,
    sink_ctrl: bool,
    depth_probe: Vec<bool>,
    buffer_peak_emitted: Vec<u64>,
    timer_gens: FxHashMap<(u32, u64), u64>,
    /// Per-link FIFOs of pending deliveries. Only the head of each FIFO
    /// lives in the scheduler (as that link's representative `Delivery`
    /// event); the tail entries hold reserved sequence numbers and are
    /// either processed inline when the representative fires (a batch) or
    /// promoted to representative themselves. See
    /// [`Simulator::set_delivery_coalescing`].
    delivery_fifos: Vec<VecDeque<(SimTime, u64, PacketSlot)>>,
    /// Whether per-link delivery coalescing is enabled (default). Off, every
    /// delivery is a standalone scheduler event — the shadow model the
    /// batching property tests compare against.
    coalesce: bool,
    /// Deliveries that rode a batch inline instead of a schedule+pop round
    /// trip. Diagnostic only — deliberately *not* part of [`SimCounters`],
    /// whose JSON must be identical with coalescing on and off.
    batched_deliveries: u64,
    next_pkt_id: u64,
    cmd_buf: Vec<Cmd>,
    /// Seed for flow-level ECMP rendezvous hashing at switches with
    /// equal-cost candidate sets. Taken from the build seed, so one seed
    /// pins both fault randomness and path placement.
    ecmp_seed: u64,
    rng: Rng,
    counters: SimCounters,
    tallies: EventTallies,
    wall: std::time::Duration,
    started: bool,
    fault_plan: FaultPlan,
    /// Per-node straggler state: while paused, endpoint dispatches are
    /// deferred into `pending_dispatch` and drained on resume.
    paused: Vec<bool>,
    pending_dispatch: Vec<Vec<Deferred>>,
    /// The switch-side incast control plane, if one is installed. Boxed and
    /// taken out of its slot around packet-emitting calls, so the recursive
    /// `enqueue_to_link` a notification triggers sees no plane and detection
    /// never observes its own control traffic.
    ctrl: Option<Box<ControlPlane>>,
    #[cfg(feature = "check")]
    audit: crate::check::Audit,
}

impl<S: Scheduler> Simulator<S> {
    /// Assembles a simulator (normally called by the builder).
    pub(crate) fn assemble(
        nodes: Vec<Node>,
        links: Vec<Link>,
        buffers: Vec<SharedBuffer>,
        seed: u64,
    ) -> Self {
        let n = nodes.len();
        let num_links = links.len();
        let num_buffers = buffers.len();
        Simulator {
            now: SimTime::ZERO,
            events: S::default(),
            pool: PacketPool::new(),
            nodes,
            links,
            buffers,
            endpoints: (0..n).map(|_| None).collect(),
            taps: (0..n).map(|_| None).collect(),
            tracer: None,
            sink: None,
            sink_packets: false,
            sink_queue: false,
            sink_buffer: false,
            sink_fault: false,
            sink_ctrl: false,
            depth_probe: vec![false; num_links],
            buffer_peak_emitted: vec![0; num_buffers],
            timer_gens: FxHashMap::default(),
            delivery_fifos: (0..num_links).map(|_| VecDeque::new()).collect(),
            coalesce: true,
            batched_deliveries: 0,
            next_pkt_id: 0,
            cmd_buf: Vec::with_capacity(64),
            ecmp_seed: seed,
            rng: Rng::new(seed),
            counters: SimCounters::default(),
            tallies: EventTallies::default(),
            wall: std::time::Duration::ZERO,
            started: false,
            fault_plan: FaultPlan::default(),
            paused: vec![false; n],
            pending_dispatch: (0..n).map(|_| Vec::new()).collect(),
            ctrl: None,
            #[cfg(feature = "check")]
            audit: crate::check::Audit::new(n, num_links, num_buffers),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Counter snapshot.
    pub fn counters(&self) -> &SimCounters {
        &self.counters
    }

    /// Name of the scheduler implementation driving this simulator
    /// (`"wheel"` or `"heap"`), for run manifests.
    pub fn scheduler_name(&self) -> &'static str {
        S::NAME
    }

    /// The in-flight packet pool (its high-water mark is the packet path's
    /// allocs-per-run baseline).
    pub fn packet_pool(&self) -> &PacketPool {
        &self.pool
    }

    /// Installs the software for a host. Panics on switches.
    pub fn set_endpoint(&mut self, node: NodeId, ep: Box<dyn Endpoint>) {
        assert!(
            self.nodes[node.index()].is_host(),
            "endpoints attach to hosts"
        );
        assert!(!self.started, "install endpoints before running");
        self.endpoints[node.index()] = Some(ep);
    }

    /// Installs a passive ingress observer on a host.
    pub fn set_tap(&mut self, node: NodeId, tap: Box<dyn IngressTap>) {
        assert!(self.nodes[node.index()].is_host(), "taps attach to hosts");
        self.taps[node.index()] = Some(tap);
    }

    /// Installs a packet tracer observing every link event (the simulator's
    /// `tcpdump`; see [`crate::trace::TextTracer`]).
    pub fn set_tracer(&mut self, tracer: Box<dyn PacketTracer>) {
        self.tracer = Some(tracer);
    }

    /// Attaches a structured telemetry sink. Per-packet, queue-depth, and
    /// buffer-watermark events flow to it, gated by the sink's
    /// [`telemetry::EventSink::accepts`] subscriptions (sampled once here, so
    /// a sink's class set must be fixed before attaching).
    pub fn set_sink(&mut self, sink: SinkRef) {
        self.sink_packets = sink.accepts(EventClass::Packet);
        self.sink_queue = sink.accepts(EventClass::Queue);
        self.sink_buffer = sink.accepts(EventClass::Buffer);
        self.sink_fault = sink.accepts(EventClass::Fault);
        self.sink_ctrl = sink.accepts(EventClass::Ctrl);
        self.sink = Some(sink);
    }

    /// Installs the switch-side incast control plane (see
    /// [`crate::control`]). Monitored ports must be switch egress links.
    /// A fully blackholed plane (`notif_loss >= 1`) is installed but can
    /// never act, keeping such runs byte-identical to having no plane.
    pub fn set_control_plane(&mut self, cfg: ControlConfig) {
        assert!(!self.started, "install the control plane before running");
        let links = &self.links;
        let nodes = &self.nodes;
        let plane = ControlPlane::new(cfg, links.len(), |l| {
            let src = links[l.index()].src;
            assert!(
                !nodes[src.index()].is_host(),
                "monitored port {} does not originate at a switch",
                l.0
            );
            src
        });
        self.ctrl = Some(Box::new(plane));
    }

    /// The installed control plane, if any.
    pub fn control_plane(&self) -> Option<&ControlPlane> {
        self.ctrl.as_deref()
    }

    /// Installs the run's fault plan. Must be called before the simulation
    /// starts; every event is validated against the topology here and
    /// scheduled as a first-class sim event when the run begins.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(!self.started, "install the fault plan before running");
        for ev in &plan.events {
            match ev.kind {
                FaultKind::LinkDown { link }
                | FaultKind::LinkUp { link }
                | FaultKind::SetEcnThreshold { link, .. } => {
                    assert!(
                        link.index() < self.links.len(),
                        "fault targets unknown link"
                    );
                }
                FaultKind::SetLinkLoss { link, probability }
                | FaultKind::SetLinkCorrupt { link, probability } => {
                    assert!(
                        link.index() < self.links.len(),
                        "fault targets unknown link"
                    );
                    assert!(
                        (0.0..=1.0).contains(&probability),
                        "fault probability out of range"
                    );
                }
                FaultKind::BufferResize {
                    buffer,
                    total_bytes,
                } => {
                    assert!(
                        buffer.index() < self.buffers.len(),
                        "fault targets unknown buffer"
                    );
                    assert!(total_bytes > 0, "fault resizes buffer to zero");
                }
                FaultKind::HostPause { node } | FaultKind::HostResume { node } => {
                    assert!(
                        node.index() < self.nodes.len() && self.nodes[node.index()].is_host(),
                        "pause/resume faults target hosts"
                    );
                }
            }
        }
        self.fault_plan = plan;
    }

    /// The installed fault plan (empty by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// The attached telemetry sink, if any (for handing to endpoints).
    pub fn sink(&self) -> Option<&SinkRef> {
        self.sink.as_ref()
    }

    /// Enables per-event queue-depth telemetry on `link`: every enqueue and
    /// dequeue emits a [`telemetry::EventKind::QueueDepth`] sample when a
    /// queue-subscribing sink is attached.
    pub fn enable_depth_probe(&mut self, link: LinkId) {
        self.depth_probe[link.index()] = true;
    }

    /// Enables or disables per-link delivery coalescing (on by default).
    ///
    /// With coalescing on, consecutive deliveries on one link ride a single
    /// scheduler entry: when the link's representative `Delivery` event
    /// fires, every following FIFO member whose `(time, seq)` key precedes
    /// the scheduler's next event is processed inline in the same pass,
    /// eliding one schedule+pop round trip per member. Sequence numbers are
    /// reserved at schedule time either way, so the processed event stream
    /// — order, timestamps, counters, telemetry — is byte-identical to the
    /// unbatched mode; `off` exists as the shadow model for the property
    /// tests that prove exactly that.
    pub fn set_delivery_coalescing(&mut self, on: bool) {
        assert!(!self.started, "toggle coalescing before running");
        self.coalesce = on;
    }

    /// Deliveries processed inline as batch members so far (zero when
    /// coalescing is disabled). Diagnostic; not part of the counters JSON,
    /// which is identical in both modes.
    pub fn batched_deliveries(&self) -> u64 {
        self.batched_deliveries
    }

    /// Wall-clock profile of the event loop so far: per-kind event tallies
    /// and time spent inside [`Simulator::run`] / [`Simulator::run_until`].
    pub fn profile(&self) -> LoopProfile {
        LoopProfile {
            tallies: self.tallies,
            wall: self.wall,
        }
    }

    #[inline]
    fn trace(&mut self, kind: TraceEventKind, link: LinkId, pkt: &Packet) {
        if self.tracer.is_none() && !self.sink_packets {
            return;
        }
        let ev = TraceEvent {
            now: self.now,
            kind,
            link,
            pkt,
        };
        if let Some(t) = self.tracer.as_mut() {
            t.on_event(&ev);
        }
        if self.sink_packets {
            if let Some(s) = &self.sink {
                s.emit(&trace::to_telemetry(&ev));
            }
        }
    }

    /// Like [`Simulator::trace`], for a pool-resident packet: the fast path
    /// pays one branch; the packet is copied out of the pool only when a
    /// tracer or packet sink is actually attached.
    #[inline]
    fn trace_slot(&mut self, kind: TraceEventKind, link: LinkId, slot: PacketSlot) {
        if self.tracer.is_none() && !self.sink_packets {
            return;
        }
        let pkt = *self.pool.get(slot);
        self.trace(kind, link, &pkt);
    }

    /// Emits a queue-depth sample for `link` if it is probed and a sink
    /// subscribes to queue events.
    #[inline]
    fn emit_queue_depth(&mut self, link_id: LinkId) {
        if !self.sink_queue || !self.depth_probe[link_id.index()] {
            return;
        }
        let q = &self.links[link_id.index()].queue;
        let ev = telemetry::Event {
            t_ps: self.now.as_ps(),
            kind: telemetry::EventKind::QueueDepth {
                link: link_id.0,
                pkts: q.pkts(),
                bytes: q.bytes(),
            },
        };
        if let Some(s) = &self.sink {
            s.emit(&ev);
        }
    }

    /// Emits a buffer-watermark event if the pool just reached a new peak.
    #[inline]
    fn emit_buffer_watermark(&mut self, bid: BufferId) {
        if !self.sink_buffer {
            return;
        }
        let buf = &self.buffers[bid.index()];
        let peak = buf.peak_bytes();
        if peak <= self.buffer_peak_emitted[bid.index()] {
            return;
        }
        self.buffer_peak_emitted[bid.index()] = peak;
        let ev = telemetry::Event {
            t_ps: self.now.as_ps(),
            kind: telemetry::EventKind::BufferWatermark {
                buffer: bid.0,
                used_bytes: peak,
                total_bytes: buf.total_bytes(),
            },
        };
        if let Some(s) = &self.sink {
            s.emit(&ev);
        }
    }

    /// Immutable access to a link (for queue statistics after a run).
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Mutable access to a link (e.g. to enable queue depth monitoring
    /// before a run).
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.index()]
    }

    /// The packet currently serializing on `link`, if any. Reads through
    /// the packet pool — queued and on-wire packets are pool-resident and
    /// the link itself holds only a residence card.
    pub fn serializing_packet(&self, id: LinkId) -> Option<&Packet> {
        self.links[id.index()]
            .serializing
            .map(|frame| self.pool.get(frame.slot))
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The shared buffers, in creation order.
    pub fn buffers(&self) -> &[SharedBuffer] {
        &self.buffers
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // Fault events enter the schedule before any endpoint's start-up
        // traffic, giving them the earliest tie-break sequence numbers at
        // their firing times — the plan order is part of the run's identity.
        for (i, ev) in self.fault_plan.events.iter().enumerate() {
            self.events
                .schedule(ev.at, EventKind::Fault { index: i as u32 });
        }
        for idx in 0..self.nodes.len() {
            if self.endpoints[idx].is_some() {
                self.dispatch_endpoint(NodeId(idx as u32), |ep, ctx| ep.on_start(ctx));
            }
        }
    }

    /// Runs until the event list is empty.
    pub fn run(&mut self) {
        self.start_if_needed();
        let t0 = std::time::Instant::now();
        while self.step_inner(SimTime::MAX) {}
        self.wall += t0.elapsed();
    }

    /// Runs until simulated time reaches `deadline` (events at exactly
    /// `deadline` are processed). Pending later events remain queued.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start_if_needed();
        let t0 = std::time::Instant::now();
        while let Some(ev) = self.events.pop_due(deadline) {
            self.process_event(ev, deadline);
        }
        self.wall += t0.elapsed();
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Processes a single scheduler event (plus, with coalescing on, any
    /// deliveries batched behind it). Returns false when none remain.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        self.step_inner(SimTime::MAX)
    }

    fn step_inner(&mut self, deadline: SimTime) -> bool {
        let Some(ev) = self.events.pop() else {
            return false;
        };
        self.process_event(ev, deadline);
        true
    }

    fn process_event(&mut self, ev: Event, deadline: SimTime) {
        debug_assert!(ev.time >= self.now, "time went backwards");
        #[cfg(feature = "check")]
        if ev.time < self.now {
            crate::check::violated(
                "time_monotonic",
                format_args!(
                    "scheduler popped t={} ps while now={} ps",
                    ev.time.as_ps(),
                    self.now.as_ps()
                ),
            );
        }
        self.now = ev.time;
        self.counters.events_processed += 1;
        match ev.kind {
            EventKind::TxComplete { link } => {
                self.tallies.tx_complete += 1;
                self.on_tx_complete(link);
            }
            EventKind::Delivery { link, slot } => {
                self.tallies.delivery += 1;
                if self.coalesce {
                    self.run_delivery_batch(link, slot, deadline);
                } else {
                    self.on_delivery(link, slot);
                }
            }
            EventKind::Timer { node, key, gen } => {
                // Timers at hosts belong to endpoints; timers at switches are
                // control-plane retry timers (switches run no other software).
                if self.nodes[node.index()].is_host() {
                    self.tallies.timer += 1;
                    self.on_timer(node, key, gen);
                } else {
                    self.tallies.ctrl += 1;
                    self.on_ctrl_timer(node, key, gen);
                }
            }
            EventKind::Fault { index } => {
                self.tallies.fault += 1;
                self.apply_fault(index);
            }
        }
    }

    // ---- fault injection -------------------------------------------------

    /// Applies one scheduled fault from the installed plan, mutating
    /// network state and recording the application in counters and (when a
    /// fault-subscribing sink is attached) telemetry. Packet-level
    /// consequences flow through the ordinary event loop, so conservation
    /// audits stay valid under any plan.
    fn apply_fault(&mut self, index: u32) {
        let ev = self.fault_plan.events[index as usize];
        self.counters.faults_applied += 1;
        crate::recorder::note("fault", self.now.as_ps(), ev.kind.target(), index as u64, 0);
        // A landing fault is one of the recorder's dump triggers: snapshot
        // the history that led up to it (cold path; faults are rare).
        if crate::recorder::enabled() {
            crate::recorder::capture(&format!(
                "fault applied: {} (target {}, plan index {})",
                ev.kind.label(),
                ev.kind.target(),
                index
            ));
        }
        match ev.kind {
            FaultKind::LinkDown { link } => self.links[link.index()].down = true,
            FaultKind::LinkUp { link } => self.links[link.index()].down = false,
            FaultKind::SetLinkLoss { link, probability } => {
                self.links[link.index()].fault_loss = probability;
            }
            FaultKind::SetLinkCorrupt { link, probability } => {
                self.links[link.index()].fault_corrupt = probability;
            }
            FaultKind::SetEcnThreshold { link, pkts, bytes } => {
                self.links[link.index()]
                    .queue
                    .set_ecn_thresholds(pkts, bytes);
            }
            FaultKind::BufferResize {
                buffer,
                total_bytes,
            } => {
                self.buffers[buffer.index()].set_total_bytes(total_bytes);
            }
            FaultKind::HostPause { node } => self.paused[node.index()] = true,
            FaultKind::HostResume { node } => {
                self.paused[node.index()] = false;
                let pending = std::mem::take(&mut self.pending_dispatch[node.index()]);
                for d in pending {
                    if self.endpoints[node.index()].is_none() {
                        break;
                    }
                    match d {
                        Deferred::Packet(pkt) => {
                            self.dispatch_endpoint(node, |ep, ctx| ep.on_packet(ctx, pkt));
                        }
                        Deferred::Timer { key, gen } => {
                            // Re-check lazily: a packet drained just above
                            // may have re-armed or cancelled this timer.
                            let current = self.timer_gens.get(&(node.0, key)).copied();
                            if current == Some(gen) {
                                self.dispatch_endpoint(node, |ep, ctx| ep.on_timer(ctx, key));
                            }
                        }
                    }
                }
            }
        }
        if self.sink_fault {
            if let Some(s) = &self.sink {
                s.emit(&telemetry::Event {
                    t_ps: self.now.as_ps(),
                    kind: telemetry::EventKind::Fault {
                        index,
                        kind: ev.kind.label(),
                        target: ev.kind.target(),
                    },
                });
            }
        }
    }

    // ---- link machinery -------------------------------------------------

    /// Offers the pooled packet in `slot` to the egress queue of `link`,
    /// starting transmission if the transmitter is idle. On acceptance the
    /// packet stays parked in the pool and only its residence card enters
    /// the FIFO; on a drop the slot is freed here.
    fn enqueue_to_link(&mut self, link_id: LinkId, slot: PacketSlot) {
        // Control-plane detection observes offered load *before* admission
        // (drops count toward congestion too). Baseline runs pay one branch.
        if self.ctrl.is_some() {
            self.ctrl_observe(link_id, slot);
        }
        let now = self.now;
        let (wire, ecn_capable, flow, pkt_id) = {
            let pkt = self.pool.get(slot);
            (
                pkt.wire_size,
                pkt.ecn.is_capable(),
                pkt.flow.0 as u64,
                pkt.id,
            )
        };
        let link = &mut self.links[link_id.index()];
        // Shared-buffer admission, if this queue charges a pool.
        if let Some(bid) = link.shared {
            let ok = self.buffers[bid.index()].admit(link.queue.bytes(), wire as u64);
            if !ok {
                link.queue.note_shared_drop(wire as u64);
                self.counters.queue_drops += 1;
                self.counters.shared_buffer_drops += 1;
                crate::recorder::note("drop_shared", now.as_ps(), link_id.0 as u64, flow, pkt_id);
                self.trace_slot(
                    TraceEventKind::Drop(crate::queue::DropReason::SharedBuffer),
                    link_id,
                    slot,
                );
                self.pool.take(slot);
                return;
            }
        }
        let frame = QueuedFrame {
            slot,
            wire,
            ecn_capable,
            ce: false,
        };
        match link.queue.enqueue(now, frame) {
            EnqueueOutcome::Queued { marked } => {
                if marked {
                    self.counters.ecn_marked_pkts += 1;
                }
                let shared = link.shared;
                let busy = link.busy();
                if let Some(bid) = shared {
                    self.buffers[bid.index()].on_enqueue(wire as u64);
                }
                #[cfg(feature = "check")]
                self.audit_enqueue(link_id, shared, wire as u64);
                crate::recorder::note(
                    if marked { "enq_mark" } else { "enq" },
                    now.as_ps(),
                    link_id.0 as u64,
                    flow,
                    pkt_id,
                );
                // Trace before applying the mark: the trace records the
                // packet as it arrived at the queue, the CE mark is what it
                // carries onward.
                self.trace_slot(TraceEventKind::Enqueue { marked }, link_id, slot);
                if marked {
                    self.pool.get_mut(slot).ecn = Ecn::Ce;
                }
                self.emit_queue_depth(link_id);
                if let Some(bid) = shared {
                    self.emit_buffer_watermark(bid);
                }
                if !busy {
                    self.start_tx(link_id);
                }
            }
            EnqueueOutcome::Dropped(reason) => {
                self.counters.queue_drops += 1;
                crate::recorder::note(
                    match reason {
                        crate::queue::DropReason::QueueFull => "drop_full",
                        crate::queue::DropReason::SharedBuffer => "drop_shared",
                    },
                    now.as_ps(),
                    link_id.0 as u64,
                    flow,
                    pkt_id,
                );
                self.trace_slot(TraceEventKind::Drop(reason), link_id, slot);
                self.pool.take(slot);
            }
        }
    }

    /// Pulls the next frame off the egress queue and begins serializing it.
    fn start_tx(&mut self, link_id: LinkId) {
        let now = self.now;
        let link = &mut self.links[link_id.index()];
        debug_assert!(!link.busy());
        let Some(frame) = link.queue.dequeue(now) else {
            return;
        };
        let shared = link.shared;
        let ser = link.serialize_time(frame.wire as u64);
        link.serializing = Some(frame);
        if let Some(bid) = shared {
            let release = frame.wire as u64;
            #[cfg(feature = "check")]
            let release = if crate::check::inject_buffer_underrelease() {
                release - 1
            } else {
                release
            };
            self.buffers[bid.index()].on_dequeue(release);
        }
        #[cfg(feature = "check")]
        self.audit_dequeue(link_id, shared, frame.wire as u64);
        self.trace_slot(TraceEventKind::TxStart, link_id, frame.slot);
        self.emit_queue_depth(link_id);
        self.events
            .schedule(now + ser, EventKind::TxComplete { link: link_id });
    }

    fn on_tx_complete(&mut self, link_id: LinkId) {
        let link = &mut self.links[link_id.index()];
        let frame = link
            .serializing
            .take()
            .expect("TxComplete with no frame on the wire");
        let prop = link.cfg.propagation;
        // Healthy links with no configured loss take none of the RNG draws
        // below, so installing (or omitting) an empty fault plan cannot
        // perturb a run's random sequence.
        let down = link.down;
        let lose = down
            || (link.cfg.loss_probability > 0.0 && self.rng.chance(link.cfg.loss_probability))
            || (link.fault_loss > 0.0 && self.rng.chance(link.fault_loss));
        let corrupt = !lose && link.fault_corrupt > 0.0 && self.rng.chance(link.fault_corrupt);
        if lose || corrupt {
            link.fault_drops += 1;
            if corrupt {
                self.counters.corrupt_drops += 1;
            }
            // Injected bug (check feature, simcheck only): drops on a downed
            // link miss the global counter, breaking packet conservation.
            if !(down && crate::check::inject_fault_drop_miscount()) {
                self.counters.fault_drops += 1;
            }
            let pkt = self.pool.take(frame.slot);
            crate::recorder::note(
                if corrupt {
                    "drop_corrupt"
                } else {
                    "drop_fault"
                },
                self.now.as_ps(),
                link_id.0 as u64,
                pkt.flow.0 as u64,
                pkt.id,
            );
            if self.sink_packets {
                if let Some(s) = &self.sink {
                    s.emit(&telemetry::Event {
                        t_ps: self.now.as_ps(),
                        kind: telemetry::EventKind::PktDrop {
                            link: link_id.0,
                            pkt: trace::packet_info(&pkt),
                            reason: if corrupt {
                                telemetry::DropCause::Corrupt
                            } else {
                                telemetry::DropCause::Fault
                            },
                        },
                    });
                }
            }
        } else {
            self.schedule_delivery(link_id, self.now + prop, frame.slot);
        }
        // Keep the transmitter running.
        if !self.links[link_id.index()].queue.is_empty() {
            self.start_tx(link_id);
        }
    }

    /// Schedules a delivery on `link_id` at `at`.
    ///
    /// Coalescing path: the delivery claims its tie-break seq immediately
    /// (keeping the global seq sequence identical to unbatched scheduling)
    /// but only enters the scheduler if it is the link's FIFO head — tail
    /// entries wait in the FIFO and ride the head's pop. Per-link delivery
    /// times are non-decreasing (completions are ordered, propagation is
    /// fixed), so the head always carries the FIFO's minimum key.
    fn schedule_delivery(&mut self, link_id: LinkId, at: SimTime, slot: PacketSlot) {
        if !self.coalesce {
            self.events.schedule(
                at,
                EventKind::Delivery {
                    link: link_id,
                    slot,
                },
            );
            return;
        }
        let seq = self.events.reserve_seq();
        let fifo = &mut self.delivery_fifos[link_id.index()];
        debug_assert!(fifo.back().is_none_or(|&(t, s, _)| (t, s) < (at, seq)));
        if fifo.is_empty() {
            self.events.schedule_reserved(
                at,
                seq,
                EventKind::Delivery {
                    link: link_id,
                    slot,
                },
            );
        }
        fifo.push_back((at, seq, slot));
    }

    /// Processes the just-popped representative delivery of `link_id`, then
    /// keeps draining the link's FIFO inline for as long as the next member
    /// is provably the globally next event — its `(time, seq)` key precedes
    /// the scheduler's earliest entry (every other link's pending minimum is
    /// scheduled, so the scheduler peek bounds all foreign work) and it does
    /// not overshoot the caller's deadline. Each inline member advances
    /// `now` and bumps the same counters a standalone pop would, so every
    /// observable is byte-identical to unbatched execution; only the
    /// schedule+pop round trip is elided. The first non-coalescable member
    /// is promoted to representative under its reserved seq.
    fn run_delivery_batch(&mut self, link_id: LinkId, slot: PacketSlot, deadline: SimTime) {
        let head = self.delivery_fifos[link_id.index()].pop_front();
        debug_assert!(matches!(head, Some((t, _, s)) if t == self.now && s.0 == slot.0));
        let mut slot = slot;
        loop {
            self.on_delivery(link_id, slot);
            let Some(&(at, seq, next_slot)) = self.delivery_fifos[link_id.index()].front() else {
                return;
            };
            let runs_inline = at <= deadline
                && match self.events.peek_key() {
                    Some(key) => (at, seq) < key,
                    None => true,
                };
            if !runs_inline {
                self.events.schedule_reserved(
                    at,
                    seq,
                    EventKind::Delivery {
                        link: link_id,
                        slot: next_slot,
                    },
                );
                return;
            }
            self.delivery_fifos[link_id.index()].pop_front();
            self.now = at;
            self.counters.events_processed += 1;
            self.tallies.delivery += 1;
            self.batched_deliveries += 1;
            slot = next_slot;
        }
    }

    /// Resolves the egress link at switch `at` for a packet of `flow`
    /// travelling `src -> dst`. Single-candidate sets (every pre-Clos
    /// topology) forward directly with zero hashing cost; equal-cost sets
    /// are resolved by rendezvous hashing over the candidates whose links
    /// are up, so a spine blackhole deterministically re-hashes exactly
    /// the flows that were pinned to it. If every candidate is down the
    /// flow keeps its nominal (all-candidate) pick and blackholes there,
    /// matching single-path semantics under the same fault.
    #[inline]
    fn select_next_hop(&self, at: NodeId, src: NodeId, dst: NodeId, flow: u32) -> Option<LinkId> {
        match self.nodes[at.index()].next_hops(dst) {
            [] => None,
            &[only] => Some(only),
            many => {
                let mut best: Option<(u64, LinkId)> = None;
                let mut best_any: Option<(u64, LinkId)> = None;
                for &l in many {
                    let score = crate::hash::ecmp_score(self.ecmp_seed, src.0, dst.0, flow, l.0);
                    if best_any.is_none_or(|(s, _)| score > s) {
                        best_any = Some((score, l));
                    }
                    if !self.links[l.index()].down && best.is_none_or(|(s, _)| score > s) {
                        best = Some((score, l));
                    }
                }
                best.or(best_any).map(|(_, l)| l)
            }
        }
    }

    fn on_delivery(&mut self, link_id: LinkId, slot: PacketSlot) {
        let (flow, pkt_id, pkt_src, pkt_dst) = {
            let pkt = self.pool.get(slot);
            (pkt.flow.0, pkt.id, pkt.src, pkt.dst)
        };
        crate::recorder::note(
            "rx",
            self.now.as_ps(),
            link_id.0 as u64,
            flow as u64,
            pkt_id,
        );
        self.trace_slot(TraceEventKind::Deliver, link_id, slot);
        let dst = self.links[link_id.index()].dst;
        match &self.nodes[dst.index()] {
            Node::Switch { .. } => {
                // A frame addressed *to* this switch terminates here: the
                // only such traffic is control acknowledgments returning to
                // the detecting switch. Consumed like a host delivery so
                // packet conservation holds.
                if pkt_dst == dst {
                    let pkt = self.pool.take(slot);
                    self.counters.delivered_pkts += 1;
                    self.counters.delivered_bytes += pkt.wire_size as u64;
                    self.ctrl_consume_ack(dst, &pkt);
                    return;
                }
                // The packet stays parked in the pool across the hop; only
                // its slot moves into the next egress queue.
                let next = match self.select_next_hop(dst, pkt_src, pkt_dst, flow) {
                    Some(next) => next,
                    None => panic!(
                        "switch {} has no route to {} (packet {:?})",
                        self.nodes[dst.index()].name(),
                        pkt_dst,
                        self.pool.get(slot).kind
                    ),
                };
                self.enqueue_to_link(next, slot);
            }
            Node::Host { .. } => {
                let pkt = self.pool.take(slot);
                self.counters.delivered_pkts += 1;
                self.counters.delivered_bytes += pkt.wire_size as u64;
                if let Some(tap) = self.taps[dst.index()].as_mut() {
                    tap.on_packet(self.now, &pkt);
                }
                if self.endpoints[dst.index()].is_some() {
                    if self.paused[dst.index()] {
                        // Straggler window: the NIC received the packet
                        // (counted above), but the software is stalled.
                        self.pending_dispatch[dst.index()].push(Deferred::Packet(pkt));
                    } else {
                        self.dispatch_endpoint(dst, |ep, ctx| ep.on_packet(ctx, pkt));
                    }
                }
            }
        }
    }

    // ---- timers ----------------------------------------------------------

    fn on_timer(&mut self, node: NodeId, key: u64, gen: u64) {
        let current = self.timer_gens.get(&(node.0, key)).copied();
        if current != Some(gen) {
            return; // superseded or cancelled
        }
        if self.endpoints[node.index()].is_some() {
            if self.paused[node.index()] {
                self.pending_dispatch[node.index()].push(Deferred::Timer { key, gen });
            } else {
                self.dispatch_endpoint(node, |ep, ctx| ep.on_timer(ctx, key));
            }
        }
    }

    // ---- incast control plane --------------------------------------------

    /// Arms (or re-arms) a switch control timer under the ordinary lazy
    /// generation discipline. Switches have no endpoints, so the per-node
    /// key space is the control plane's alone.
    fn arm_ctrl_timer(&mut self, node: NodeId, key: u64, at: SimTime) {
        let gen = self
            .timer_gens
            .entry((node.0, key))
            .and_modify(|g| *g += 1)
            .or_insert(0);
        let gen = *gen;
        self.events
            .schedule(at.max(self.now), EventKind::Timer { node, key, gen });
    }

    /// Lazily cancels a switch control timer (generation bump only).
    fn cancel_ctrl_timer(&mut self, node: NodeId, key: u64) {
        self.timer_gens
            .entry((node.0, key))
            .and_modify(|g| *g += 1)
            .or_insert(0);
    }

    /// Emits a control-episode lifecycle event when a subscribing sink is
    /// attached.
    fn emit_ctrl_episode(
        &mut self,
        node: NodeId,
        link: LinkId,
        epoch: u32,
        phase: &'static str,
        targets: u32,
    ) {
        if !self.sink_ctrl {
            return;
        }
        if let Some(s) = &self.sink {
            s.emit(&telemetry::Event {
                t_ps: self.now.as_ps(),
                kind: telemetry::EventKind::CtrlEpisode {
                    node: node.0,
                    link: link.0,
                    epoch,
                    phase,
                    targets,
                },
            });
        }
    }

    /// Feeds one enqueue offer to the control plane's detector. On trigger
    /// the episode opens and its initial multicast is deferred to a control
    /// timer at the *same timestamp* (later tie-break seq), so notification
    /// emission never re-enters the enqueue path it was called from. A dead
    /// plane (`notif_loss >= 1`) returns before any observable effect —
    /// detection bucket updates are invisible internal state — keeping such
    /// runs byte-identical to mitigation-off baselines.
    fn ctrl_observe(&mut self, link_id: LinkId, slot: PacketSlot) {
        let Some(mut ctrl) = self.ctrl.take() else {
            return;
        };
        if let Some(port) = ctrl.monitors(link_id) {
            let (is_data, flow, src, wire) = {
                let pkt = self.pool.get(slot);
                (pkt.is_data(), pkt.flow.0, pkt.src, pkt.wire_size)
            };
            if is_data {
                let trigger = ctrl.record(self.now, port, flow, src, wire);
                if trigger && !ctrl.dead() {
                    let epoch = ctrl.begin_episode(self.now, port);
                    let sw = ctrl.port_switch(port);
                    self.arm_ctrl_timer(sw, port as u64, self.now);
                    self.emit_ctrl_episode(sw, link_id, epoch, "detect", 0);
                }
            }
        }
        self.ctrl = Some(ctrl);
    }

    /// Handles a control retry timer at a switch: multicasts notification
    /// frames to unacknowledged targets (each gated by the emission-loss
    /// draw) and re-arms with capped exponential backoff, or closes the
    /// episode. Notifications enter the fabric through the ordinary egress
    /// path — same queues, same faults, same audits as data.
    fn on_ctrl_timer(&mut self, node: NodeId, key: u64, gen: u64) {
        let current = self.timer_gens.get(&(node.0, key)).copied();
        if current != Some(gen) {
            return; // superseded or cancelled
        }
        let Some(mut ctrl) = self.ctrl.take() else {
            return;
        };
        let port = key as u32;
        match ctrl.on_retry_timer(self.now, port) {
            Some(RetryPlan::Emit {
                epoch,
                targets,
                attempt,
                next,
            }) => {
                let sw = ctrl.port_switch(port);
                let link = ctrl.port_link(port);
                let flow = ctrl.ctrl_flow(port);
                let pause = ctrl.config().pause;
                let cut = matches!(ctrl.config().action, CtrlAction::CwndCut);
                self.emit_ctrl_episode(
                    sw,
                    link,
                    epoch,
                    if attempt == 0 { "emit" } else { "retry" },
                    targets.len() as u32,
                );
                if attempt > 0 {
                    self.counters.notif_retries += 1;
                }
                for target in targets {
                    if ctrl.emission_lost() {
                        self.counters.notif_lost += 1;
                        continue;
                    }
                    let mut pkt = Packet::notif(flow, sw, target, epoch, pause, cut);
                    pkt.id = self.next_pkt_id;
                    self.next_pkt_id += 1;
                    #[cfg(feature = "check")]
                    {
                        self.audit.injected_pkts += 1;
                    }
                    let next_link = match self.select_next_hop(sw, sw, target, flow.0) {
                        Some(l) => l,
                        None => panic!(
                            "switch {} has no route to notification target {}",
                            self.nodes[sw.index()].name(),
                            target.0
                        ),
                    };
                    let slot = self.pool.insert(pkt);
                    self.enqueue_to_link(next_link, slot);
                    self.counters.notif_sent += 1;
                }
                self.arm_ctrl_timer(sw, key, next);
            }
            Some(RetryPlan::Done { epoch }) => {
                // Every target acked between re-fires (the ack path usually
                // cancels this timer first; this is the benign race).
                let sw = ctrl.port_switch(port);
                let link = ctrl.port_link(port);
                self.emit_ctrl_episode(sw, link, epoch, "done", 0);
            }
            Some(RetryPlan::Expired { epoch, unacked }) => {
                let sw = ctrl.port_switch(port);
                let link = ctrl.port_link(port);
                self.emit_ctrl_episode(sw, link, epoch, "expire", unacked);
            }
            None => {} // episode already closed; stale pop
        }
        self.ctrl = Some(ctrl);
    }

    /// Consumes a notification acknowledgment that terminated at `sw`.
    /// Duplicate and stale acks are deterministic no-ops; completing an
    /// episode cancels its retry timer.
    fn ctrl_consume_ack(&mut self, sw: NodeId, pkt: &Packet) {
        let Some(mut ctrl) = self.ctrl.take() else {
            return;
        };
        if let crate::packet::PacketKind::NotifAck { epoch } = pkt.kind {
            if pkt.flow.0 >= CTRL_FLOW_BASE {
                let port = pkt.flow.0 - CTRL_FLOW_BASE;
                let (fresh, complete) = ctrl.on_ack(self.now, port, epoch, pkt.src);
                if fresh {
                    self.counters.notif_acked += 1;
                }
                if complete {
                    self.cancel_ctrl_timer(sw, port as u64);
                    let link = ctrl.port_link(port);
                    self.emit_ctrl_episode(sw, link, epoch, "done", 0);
                }
            }
        }
        self.ctrl = Some(ctrl);
    }

    // ---- endpoint dispatch ------------------------------------------------

    fn dispatch_endpoint<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Endpoint, &mut Ctx),
    {
        #[cfg(feature = "check")]
        {
            let last = &mut self.audit.last_dispatch_ps[node.index()];
            if self.now.as_ps() < *last {
                crate::check::violated(
                    "node_time_monotonic",
                    format_args!(
                        "node {} dispatched at t={} ps after t={} ps",
                        node.0,
                        self.now.as_ps(),
                        *last
                    ),
                );
            }
            *last = self.now.as_ps();
        }
        let mut ep = self.endpoints[node.index()]
            .take()
            .expect("dispatch to missing endpoint");
        let mut cmds = std::mem::take(&mut self.cmd_buf);
        {
            let mut ctx = Ctx::new(self.now, node, &mut cmds);
            f(ep.as_mut(), &mut ctx);
        }
        self.endpoints[node.index()] = Some(ep);
        self.apply_cmds(node, &mut cmds);
        cmds.clear();
        self.cmd_buf = cmds;
    }

    fn apply_cmds(&mut self, node: NodeId, cmds: &mut Vec<Cmd>) {
        // Commands may themselves be generated while applying (not today,
        // but drain defensively by index).
        for cmd in cmds.drain(..) {
            match cmd {
                Cmd::Send(mut pkt) => {
                    pkt.id = self.next_pkt_id;
                    self.next_pkt_id += 1;
                    #[cfg(feature = "check")]
                    {
                        self.audit.injected_pkts += 1;
                    }
                    let uplink = match &self.nodes[node.index()] {
                        Node::Host { uplink, .. } => uplink.expect("host sends but has no uplink"),
                        Node::Switch { .. } => unreachable!("switches have no endpoints"),
                    };
                    // The packet's single write into the pool; every queue,
                    // wire, and event from here on moves its slot.
                    let slot = self.pool.insert(pkt);
                    self.enqueue_to_link(uplink, slot);
                }
                Cmd::SetTimer { key, at } => {
                    let gen = self
                        .timer_gens
                        .entry((node.0, key))
                        .and_modify(|g| *g += 1)
                        .or_insert(0);
                    let gen = *gen;
                    let at = at.max(self.now);
                    self.events
                        .schedule(at, EventKind::Timer { node, key, gen });
                }
                Cmd::CancelTimer { key } => {
                    self.timer_gens
                        .entry((node.0, key))
                        .and_modify(|g| *g += 1)
                        .or_insert(0);
                }
            }
        }
    }
}

/// Invariant hooks (the `check` feature). See [`crate::check`].
#[cfg(feature = "check")]
impl<S: Scheduler> Simulator<S> {
    /// Shadow-charges an enqueue and cross-checks both ledgers and bounds.
    #[inline]
    fn audit_enqueue(&mut self, link_id: LinkId, shared: Option<BufferId>, wire: u64) {
        let shadow = &mut self.audit.queue_bytes[link_id.index()];
        *shadow += wire;
        let q = &self.links[link_id.index()].queue;
        if q.bytes() != *shadow {
            crate::check::violated(
                "queue_accounting",
                format_args!(
                    "link {} queue has {} B, shadow ledger {} B after enqueue",
                    link_id.0,
                    q.bytes(),
                    *shadow
                ),
            );
        }
        if q.bytes() > q.config().capacity_bytes {
            crate::check::violated(
                "queue_overflow",
                format_args!(
                    "link {} queue at {} B exceeds capacity {} B",
                    link_id.0,
                    q.bytes(),
                    q.config().capacity_bytes
                ),
            );
        }
        if let Some(bid) = shared {
            let shadow = &mut self.audit.buffer_used[bid.index()];
            *shadow += wire;
            self.audit_buffer(bid);
        }
    }

    /// Shadow-releases a dequeue and cross-checks both ledgers.
    #[inline]
    fn audit_dequeue(&mut self, link_id: LinkId, shared: Option<BufferId>, wire: u64) {
        let shadow = &mut self.audit.queue_bytes[link_id.index()];
        match shadow.checked_sub(wire) {
            Some(v) => *shadow = v,
            None => {
                crate::check::violated(
                    "queue_accounting",
                    format_args!(
                        "link {} shadow ledger underflow: release {} B from {} B",
                        link_id.0, wire, *shadow
                    ),
                );
                *shadow = 0;
            }
        }
        let q = &self.links[link_id.index()].queue;
        if q.bytes() != *shadow {
            crate::check::violated(
                "queue_accounting",
                format_args!(
                    "link {} queue has {} B, shadow ledger {} B after dequeue",
                    link_id.0,
                    q.bytes(),
                    *shadow
                ),
            );
        }
        if let Some(bid) = shared {
            let shadow = &mut self.audit.buffer_used[bid.index()];
            match shadow.checked_sub(wire) {
                Some(v) => *shadow = v,
                None => {
                    crate::check::violated(
                        "buffer_accounting",
                        format_args!(
                            "buffer {} shadow ledger underflow: release {} B from {} B",
                            bid.0, wire, *shadow
                        ),
                    );
                    *shadow = 0;
                }
            }
            self.audit_buffer(bid);
        }
    }

    /// Compares a shared buffer against its shadow ledger and capacity.
    #[inline]
    fn audit_buffer(&self, bid: BufferId) {
        let buf = &self.buffers[bid.index()];
        let shadow = self.audit.buffer_used[bid.index()];
        if buf.used_bytes() != shadow {
            crate::check::violated(
                "buffer_accounting",
                format_args!(
                    "buffer {} holds {} B, shadow ledger {} B",
                    bid.0,
                    buf.used_bytes(),
                    shadow
                ),
            );
        }
        if buf.used_bytes() > buf.total_bytes() {
            crate::check::violated(
                "buffer_overflow",
                format_args!(
                    "buffer {} at {} B exceeds capacity {} B",
                    bid.0,
                    buf.used_bytes(),
                    buf.total_bytes()
                ),
            );
        }
    }

    /// Packet conservation: every packet handed to the engine is delivered,
    /// dropped, or still somewhere in flight. Valid at any event boundary.
    pub fn audit_conservation(&self) {
        // Queued and serializing packets are pool-resident, so the pool's
        // live count covers every packet still inside the network; the
        // per-link figures below are reported for diagnosis and
        // cross-checked against the pool.
        let queued: u64 = self.links.iter().map(|l| l.queue.pkts() as u64).sum();
        let on_wire = self.links.iter().filter(|l| l.busy()).count() as u64;
        let accounted = self.counters.delivered_pkts
            + self.counters.queue_drops
            + self.counters.fault_drops
            + self.pool.live() as u64;
        if self.audit.injected_pkts != accounted || (self.pool.live() as u64) < queued + on_wire {
            crate::check::record(
                "packet_conservation",
                format!(
                    "{} packets injected but {} accounted for \
                     (delivered {} + queue drops {} + fault drops {} + \
                     pool {}; of the pool, queued {} + serializing {})",
                    self.audit.injected_pkts,
                    accounted,
                    self.counters.delivered_pkts,
                    self.counters.queue_drops,
                    self.counters.fault_drops,
                    self.pool.live(),
                    queued,
                    on_wire
                ),
            );
        }
    }

    /// Drain-state invariants: once the event list is empty no packet may be
    /// parked anywhere. Also runs [`Self::audit_conservation`]. Call after
    /// [`Self::run`]; a no-op mid-run (pending events mean in-flight state
    /// is legitimate).
    pub fn audit_drain(&mut self) {
        self.audit_conservation();
        if self.events.peek_time().is_some() {
            return;
        }
        if self.pool.live() != 0 {
            crate::check::record(
                "pool_drain",
                format!("{} pool slots live after drain", self.pool.live()),
            );
        }
        for (i, link) in self.links.iter().enumerate() {
            if !link.queue.is_empty() || link.busy() {
                crate::check::record(
                    "link_drain",
                    format!(
                        "link {} still holds {} queued pkt(s), busy={} after drain",
                        i,
                        link.queue.pkts(),
                        link.busy()
                    ),
                );
            }
        }
        for (i, buf) in self.buffers.iter().enumerate() {
            if buf.used_bytes() != 0 {
                crate::check::record(
                    "buffer_drain",
                    format!("buffer {} holds {} B after drain", i, buf.used_bytes()),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::link::LinkConfig;
    use crate::packet::{Packet, PacketKind};
    use crate::queue::QueueConfig;
    use crate::units::Rate;
    use crate::FlowId;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Sends `count` back-to-back frames to `peer` at start, records
    /// delivery times of frames it receives.
    struct Blaster {
        peer: NodeId,
        count: u32,
        log: Rc<RefCell<Vec<(SimTime, u64)>>>,
    }

    impl Endpoint for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx) {
            for i in 0..self.count {
                let pkt = Packet::data(
                    FlowId(0),
                    ctx.node(),
                    self.peer,
                    i * 1000,
                    1446,
                    false,
                    ctx.now(),
                );
                ctx.send(pkt);
            }
        }
        fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
            self.log.borrow_mut().push((ctx.now(), pkt.id));
        }
    }

    struct Sink {
        log: Rc<RefCell<Vec<(SimTime, u64)>>>,
    }
    impl Endpoint for Sink {
        fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
            self.log.borrow_mut().push((ctx.now(), pkt.id));
        }
    }

    fn two_hosts(rate: Rate, prop: SimTime) -> (Simulator, NodeId, NodeId) {
        let mut b = NetworkBuilder::new();
        let a = b.add_host("a");
        let sw = b.add_switch("sw");
        let c = b.add_host("c");
        let cfg = LinkConfig::new(rate, prop, QueueConfig::host_nic());
        b.connect(a, sw, cfg.clone(), cfg.clone());
        b.connect(c, sw, cfg.clone(), cfg);
        (b.build(1), a, c)
    }

    #[test]
    fn single_packet_latency_is_ser_plus_prop_per_hop() {
        let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            a,
            Box::new(Blaster {
                peer: c,
                count: 1,
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_endpoint(c, Box::new(Sink { log: log.clone() }));
        sim.run();
        let delivered = log.borrow();
        assert_eq!(delivered.len(), 1);
        // Two hops: 2 x (1500 B @ 10 Gbps = 1.2 us) + 2 x 1 us prop = 4.4 us.
        assert_eq!(delivered[0].0, SimTime::from_ns(4400));
        assert_eq!(sim.counters().delivered_pkts, 1);
        assert_eq!(sim.counters().delivered_bytes, 1500);
    }

    #[test]
    fn back_to_back_packets_are_paced_by_serialization() {
        let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            a,
            Box::new(Blaster {
                peer: c,
                count: 3,
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_endpoint(c, Box::new(Sink { log: log.clone() }));
        sim.run();
        let delivered = log.borrow();
        assert_eq!(delivered.len(), 3);
        // Consecutive deliveries exactly one serialization time apart.
        assert_eq!(delivered[1].0 - delivered[0].0, SimTime::from_ns(1200));
        assert_eq!(delivered[2].0 - delivered[1].0, SimTime::from_ns(1200));
        // FIFO order by id.
        assert!(delivered[0].1 < delivered[1].1 && delivered[1].1 < delivered[2].1);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(100));
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            a,
            Box::new(Blaster {
                peer: c,
                count: 1,
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_endpoint(c, Box::new(Sink { log: log.clone() }));
        sim.run_until(SimTime::from_us(50));
        assert_eq!(log.borrow().len(), 0); // still propagating
        assert_eq!(sim.now(), SimTime::from_us(50));
        sim.run_until(SimTime::from_ms(1));
        assert_eq!(log.borrow().len(), 1);
    }

    /// A timer endpoint exercising set/cancel/re-arm semantics.
    struct TimerBox {
        fired: Rc<RefCell<Vec<(u64, SimTime)>>>,
    }
    impl Endpoint for TimerBox {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer(1, SimTime::from_us(10));
            ctx.set_timer(2, SimTime::from_us(20));
            ctx.cancel_timer(2); // never fires
            ctx.set_timer(3, SimTime::from_us(30));
            ctx.set_timer(3, SimTime::from_us(40)); // re-armed: fires once at 40
        }
        fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx, key: u64) {
            self.fired.borrow_mut().push((key, ctx.now()));
            if key == 1 {
                ctx.set_timer_after(4, SimTime::from_us(5));
            }
        }
    }

    #[test]
    fn timer_semantics() {
        let (mut sim, a, _c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
        let fired = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            a,
            Box::new(TimerBox {
                fired: fired.clone(),
            }),
        );
        sim.run();
        let fired = fired.borrow();
        assert_eq!(
            *fired,
            vec![
                (1, SimTime::from_us(10)),
                (4, SimTime::from_us(15)),
                (3, SimTime::from_us(40)),
            ]
        );
    }

    #[test]
    fn fault_injection_drops_packets() {
        let mut b = NetworkBuilder::new();
        let a = b.add_host("a");
        let c = b.add_host("c");
        let mut lossy =
            LinkConfig::new(Rate::gbps(10), SimTime::from_us(1), QueueConfig::host_nic());
        lossy.loss_probability = 1.0;
        let clean = LinkConfig::new(Rate::gbps(10), SimTime::from_us(1), QueueConfig::host_nic());
        b.connect(a, c, lossy, clean);
        let mut sim = b.build(3);
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            a,
            Box::new(Blaster {
                peer: c,
                count: 5,
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_endpoint(c, Box::new(Sink { log: log.clone() }));
        sim.run();
        assert_eq!(log.borrow().len(), 0);
        assert_eq!(sim.counters().fault_drops, 5);
    }

    #[test]
    fn tap_sees_packets_before_endpoint() {
        struct CountTap(Rc<RefCell<u64>>);
        impl IngressTap for CountTap {
            fn on_packet(&mut self, _now: SimTime, _pkt: &Packet) {
                *self.0.borrow_mut() += 1;
            }
        }
        let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
        let log = Rc::new(RefCell::new(Vec::new()));
        let n = Rc::new(RefCell::new(0));
        sim.set_endpoint(
            a,
            Box::new(Blaster {
                peer: c,
                count: 4,
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_endpoint(c, Box::new(Sink { log: log.clone() }));
        sim.set_tap(c, Box::new(CountTap(n.clone())));
        sim.run();
        assert_eq!(*n.borrow(), 4);
        assert_eq!(log.borrow().len(), 4);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
            let log = Rc::new(RefCell::new(Vec::new()));
            sim.set_endpoint(
                a,
                Box::new(Blaster {
                    peer: c,
                    count: 10,
                    log: Rc::new(RefCell::new(Vec::new())),
                }),
            );
            sim.set_endpoint(c, Box::new(Sink { log: log.clone() }));
            sim.run();
            let v = log.borrow().clone();
            (v, sim.counters().events_processed)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ctrl_packets_route_like_any_other() {
        let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
        struct CtrlSender {
            peer: NodeId,
        }
        impl Endpoint for CtrlSender {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.send(Packet::ctrl(FlowId(7), ctx.node(), self.peer, 1234, 9));
            }
            fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {}
        }
        struct CtrlSink {
            got: Rc<RefCell<Option<(u64, u64)>>>,
        }
        impl Endpoint for CtrlSink {
            fn on_packet(&mut self, _ctx: &mut Ctx, pkt: Packet) {
                if let PacketKind::Ctrl { demand, burst } = pkt.kind {
                    *self.got.borrow_mut() = Some((demand, burst));
                }
            }
        }
        let got = Rc::new(RefCell::new(None));
        sim.set_endpoint(a, Box::new(CtrlSender { peer: c }));
        sim.set_endpoint(c, Box::new(CtrlSink { got: got.clone() }));
        sim.run();
        assert_eq!(*got.borrow(), Some((1234, 9)));
    }

    #[test]
    fn sink_captures_packet_lifecycle() {
        let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
        let (jsonl, sref) = telemetry::JsonlSink::new().shared();
        sim.set_sink(sref);
        sim.set_endpoint(
            a,
            Box::new(Blaster {
                peer: c,
                count: 2,
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_endpoint(
            c,
            Box::new(Sink {
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.run();
        let out = jsonl.borrow().render().to_string();
        // Each packet: enq + tx + rx on each of two hops = 12 events total.
        assert_eq!(out.lines().count(), 12);
        assert!(out.contains(r#""ev":"pkt_enq""#));
        assert!(out.contains(r#""ev":"pkt_tx""#));
        assert!(out.contains(r#""ev":"pkt_rx""#));
        assert!(out.contains(r#""pkt":"data""#));
    }

    #[test]
    fn depth_probe_emits_queue_samples() {
        let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
        let (jsonl, sref) = telemetry::JsonlSink::new()
            .with_classes(&[EventClass::Queue])
            .shared();
        sim.set_sink(sref);
        sim.enable_depth_probe(LinkId(0));
        sim.set_endpoint(
            a,
            Box::new(Blaster {
                peer: c,
                count: 3,
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_endpoint(
            c,
            Box::new(Sink {
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.run();
        let out = jsonl.borrow().render().to_string();
        // 3 enqueues + 3 dequeues on the probed link, nothing else.
        assert_eq!(out.lines().count(), 6);
        for line in out.lines() {
            assert!(line.contains(r#""ev":"queue_depth""#), "{line}");
            assert!(line.contains(r#""link":0"#), "{line}");
        }
        // Depth must reach 2 while the first frame serializes.
        assert!(out.contains(r#""pkts":2"#));
    }

    #[test]
    fn fault_drops_reach_sink_with_fault_cause() {
        let mut b = NetworkBuilder::new();
        let a = b.add_host("a");
        let c = b.add_host("c");
        let mut lossy =
            LinkConfig::new(Rate::gbps(10), SimTime::from_us(1), QueueConfig::host_nic());
        lossy.loss_probability = 1.0;
        let clean = LinkConfig::new(Rate::gbps(10), SimTime::from_us(1), QueueConfig::host_nic());
        b.connect(a, c, lossy, clean);
        let mut sim = b.build(3);
        let (jsonl, sref) = telemetry::JsonlSink::new().shared();
        sim.set_sink(sref);
        sim.set_endpoint(
            a,
            Box::new(Blaster {
                peer: c,
                count: 2,
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_endpoint(
            c,
            Box::new(Sink {
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.run();
        let out = jsonl.borrow().render().to_string();
        let faults: Vec<&str> = out
            .lines()
            .filter(|l| l.contains(r#""reason":"fault""#))
            .collect();
        assert_eq!(faults.len(), 2);
        assert!(faults[0].contains(r#""ev":"pkt_drop""#));
    }

    #[test]
    fn blackhole_window_drops_then_recovers() {
        // a->sw is LinkId(0); 1500 B at 10 Gbps serializes in 1.2 us, so
        // back-to-back completions land at 1.2, 2.4, 3.6, 4.8, 6.0 us. A
        // [0, 3 us) blackhole eats exactly the first two frames.
        let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            a,
            Box::new(Blaster {
                peer: c,
                count: 5,
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_endpoint(c, Box::new(Sink { log: log.clone() }));
        sim.set_fault_plan(FaultPlan::new().blackhole(
            LinkId(0),
            SimTime::ZERO,
            SimTime::from_us(3),
        ));
        sim.run();
        assert_eq!(sim.counters().fault_drops, 2);
        assert_eq!(sim.counters().corrupt_drops, 0);
        assert_eq!(sim.counters().delivered_pkts, 3);
        assert_eq!(sim.counters().faults_applied, 2);
        assert_eq!(log.borrow().len(), 3);
    }

    #[test]
    fn corrupt_window_counts_as_corrupt_subset() {
        let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
        sim.set_endpoint(
            a,
            Box::new(Blaster {
                peer: c,
                count: 5,
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_endpoint(
            c,
            Box::new(Sink {
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_fault_plan(FaultPlan::new().corrupt_window(
            LinkId(0),
            SimTime::ZERO,
            SimTime::from_ms(1),
            1.0,
        ));
        sim.run();
        assert_eq!(sim.counters().corrupt_drops, 5);
        // Corrupt drops are a subset of fault drops (conservation holds).
        assert_eq!(sim.counters().fault_drops, 5);
        assert_eq!(sim.counters().delivered_pkts, 0);
    }

    #[test]
    fn host_pause_defers_dispatch_until_resume() {
        let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            a,
            Box::new(Blaster {
                peer: c,
                count: 3,
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_endpoint(c, Box::new(Sink { log: log.clone() }));
        sim.set_fault_plan(FaultPlan::new().straggler(c, SimTime::ZERO, SimTime::from_us(100)));
        sim.run();
        // The NIC received everything during the pause...
        assert_eq!(sim.counters().delivered_pkts, 3);
        // ...but the endpoint saw all of it at the resume instant, in order.
        let delivered = log.borrow();
        assert_eq!(delivered.len(), 3);
        for (t, _) in delivered.iter() {
            assert_eq!(*t, SimTime::from_us(100));
        }
        assert!(delivered[0].1 < delivered[1].1 && delivered[1].1 < delivered[2].1);
    }

    #[test]
    fn fault_events_reach_sink() {
        let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
        let (jsonl, sref) = telemetry::JsonlSink::new().shared();
        sim.set_sink(sref);
        sim.set_endpoint(
            a,
            Box::new(Blaster {
                peer: c,
                count: 1,
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_endpoint(
            c,
            Box::new(Sink {
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_fault_plan(FaultPlan::new().blackhole(
            LinkId(1),
            SimTime::from_us(50),
            SimTime::from_us(60),
        ));
        sim.run();
        let out = jsonl.borrow().render().to_string();
        let faults: Vec<&str> = out
            .lines()
            .filter(|l| l.contains(r#""ev":"fault""#))
            .collect();
        assert_eq!(faults.len(), 2);
        assert!(faults[0].contains(r#""kind":"link_down""#), "{}", faults[0]);
        assert!(faults[1].contains(r#""kind":"link_up""#), "{}", faults[1]);
        assert!(faults[0].contains(r#""target":1"#), "{}", faults[0]);
        let js = sim.counters().to_json();
        assert!(js.contains(r#""faults_applied":2"#), "{js}");
    }

    #[test]
    fn faulted_run_is_deterministic() {
        let run = || {
            let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
            let log = Rc::new(RefCell::new(Vec::new()));
            sim.set_endpoint(
                a,
                Box::new(Blaster {
                    peer: c,
                    count: 20,
                    log: Rc::new(RefCell::new(Vec::new())),
                }),
            );
            sim.set_endpoint(c, Box::new(Sink { log: log.clone() }));
            sim.set_fault_plan(
                FaultPlan::new()
                    .lossy_window(LinkId(0), SimTime::ZERO, SimTime::from_us(10), 0.5)
                    .blackhole(LinkId(0), SimTime::from_us(12), SimTime::from_us(15)),
            );
            sim.run();
            let v = log.borrow().clone();
            (
                v,
                sim.counters().events_processed,
                sim.counters().fault_drops,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic]
    fn fault_plan_rejects_unknown_link() {
        let (mut sim, _a, _c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
        sim.set_fault_plan(FaultPlan::new().blackhole(
            LinkId(99),
            SimTime::ZERO,
            SimTime::from_us(1),
        ));
    }

    #[test]
    fn profile_tallies_match_counters() {
        let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
        sim.set_endpoint(
            a,
            Box::new(Blaster {
                peer: c,
                count: 5,
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_endpoint(
            c,
            Box::new(Sink {
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.run();
        let p = sim.profile();
        assert_eq!(p.events(), sim.counters().events_processed);
        // 5 frames, 2 hops each: 10 tx completions, 10 deliveries.
        assert_eq!(p.tallies.tx_complete, 10);
        assert_eq!(p.tallies.delivery, 10);
        assert_eq!(p.tallies.timer, 0);
    }

    /// Fan-in fixture for control-plane tests: `n` senders and one receiver
    /// on a single switch. Link ids: `2i` = sender i uplink, `2i+1` = its
    /// downlink; the receiver pair comes last, so `2n+1` is the monitored
    /// incast downlink.
    fn fan_in(n: u32) -> (Simulator, Vec<NodeId>, NodeId, LinkId) {
        let mut b = NetworkBuilder::new();
        let senders: Vec<NodeId> = (0..n).map(|i| b.add_host(&format!("s{i}"))).collect();
        let sw = b.add_switch("sw");
        let recv = b.add_host("recv");
        let cfg = LinkConfig::new(Rate::gbps(10), SimTime::from_us(1), QueueConfig::host_nic());
        for &s in &senders {
            b.connect(s, sw, cfg.clone(), cfg.clone());
        }
        b.connect(recv, sw, cfg.clone(), cfg);
        let monitored = LinkId(2 * n + 1);
        (b.build(7), senders, recv, monitored)
    }

    /// A sender that blasts data frames and acknowledges notifications.
    struct AckingBlaster {
        peer: NodeId,
        count: u32,
        notifs: Rc<RefCell<Vec<(u32, u32, SimTime)>>>,
    }

    impl Endpoint for AckingBlaster {
        fn on_start(&mut self, ctx: &mut Ctx) {
            for i in 0..self.count {
                let pkt = Packet::data(
                    FlowId(ctx.node().0),
                    ctx.node(),
                    self.peer,
                    i * 1000,
                    1446,
                    false,
                    ctx.now(),
                );
                ctx.send(pkt);
            }
        }
        fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
            if let PacketKind::Notif { epoch, .. } = pkt.kind {
                self.notifs
                    .borrow_mut()
                    .push((pkt.flow.0, epoch, ctx.now()));
                ctx.send(Packet::notif_ack(pkt.flow, ctx.node(), pkt.src, epoch));
            }
        }
    }

    fn ctrl_cfg(monitored: LinkId) -> crate::control::ControlConfig {
        crate::control::ControlConfig {
            ports: vec![monitored],
            flow_threshold: 3,
            window_bytes: 3000,
            ..Default::default()
        }
    }

    #[test]
    fn control_plane_detects_incast_and_completes_episode() {
        let (mut sim, senders, recv, monitored) = fan_in(3);
        let notifs = Rc::new(RefCell::new(Vec::new()));
        for &s in &senders {
            sim.set_endpoint(
                s,
                Box::new(AckingBlaster {
                    peer: recv,
                    count: 4,
                    notifs: notifs.clone(),
                }),
            );
        }
        sim.set_endpoint(
            recv,
            Box::new(Sink {
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_control_plane(ctrl_cfg(monitored));
        sim.run();
        // One notification per sender, every one acked, no retries needed.
        assert_eq!(sim.counters().notif_sent, 3);
        assert_eq!(sim.counters().notif_acked, 3);
        assert_eq!(sim.counters().notif_retries, 0);
        assert_eq!(sim.counters().notif_lost, 0);
        let notifs = notifs.borrow();
        assert_eq!(notifs.len(), 3);
        for &(flow, epoch, _) in notifs.iter() {
            assert_eq!(flow, crate::control::CTRL_FLOW_BASE); // port 0
            assert_eq!(epoch, 1);
        }
        // Control timers show up in the profile's ctrl tally, not timer.
        assert!(sim.profile().tallies.ctrl >= 1);
        assert_eq!(sim.profile().tallies.timer, 0);
        // All 12 data frames still delivered; notif acks terminated at the
        // switch count as deliveries too.
        assert_eq!(sim.counters().delivered_pkts, 12 + 3 + 3);
    }

    #[test]
    fn dead_control_plane_is_byte_identical_to_no_plane() {
        let run = |plane: Option<f64>| {
            let (mut sim, senders, recv, monitored) = fan_in(3);
            for &s in &senders {
                sim.set_endpoint(
                    s,
                    Box::new(AckingBlaster {
                        peer: recv,
                        count: 6,
                        notifs: Rc::new(RefCell::new(Vec::new())),
                    }),
                );
            }
            sim.set_endpoint(
                recv,
                Box::new(Sink {
                    log: Rc::new(RefCell::new(Vec::new())),
                }),
            );
            if let Some(loss) = plane {
                let mut cfg = ctrl_cfg(monitored);
                cfg.notif_loss = loss;
                sim.set_control_plane(cfg);
            }
            sim.run();
            (
                sim.counters().to_json(),
                sim.counters().events_processed,
                sim.profile().tallies,
            )
        };
        // A fully blackholed plane must leave zero footprint.
        assert_eq!(run(None), run(Some(1.0)));
    }

    #[test]
    fn emission_loss_triggers_retries_until_acked() {
        let (mut sim, senders, recv, monitored) = fan_in(3);
        let notifs = Rc::new(RefCell::new(Vec::new()));
        for &s in &senders {
            sim.set_endpoint(
                s,
                Box::new(AckingBlaster {
                    peer: recv,
                    count: 4,
                    notifs: notifs.clone(),
                }),
            );
        }
        sim.set_endpoint(
            recv,
            Box::new(Sink {
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        let mut cfg = ctrl_cfg(monitored);
        cfg.notif_loss = 0.5;
        cfg.seed = 11;
        sim.set_control_plane(cfg);
        sim.run();
        let c = sim.counters();
        // With 50% emission loss some frame is lost and re-fired (seeded,
        // deterministic), and every sender is eventually notified.
        assert!(c.notif_lost > 0, "expected emission losses");
        assert!(c.notif_retries > 0, "expected re-fire rounds");
        assert_eq!(c.notif_acked, 3);
        let reached: std::collections::BTreeSet<u32> =
            notifs.borrow().iter().map(|&(f, _, _)| f).collect();
        assert_eq!(reached.len(), 1); // one port
        assert_eq!(notifs.borrow().len(), 3); // each sender exactly once (no dup epochs)
    }

    #[test]
    fn control_runs_are_deterministic() {
        let run = || {
            let (mut sim, senders, recv, monitored) = fan_in(4);
            for &s in &senders {
                sim.set_endpoint(
                    s,
                    Box::new(AckingBlaster {
                        peer: recv,
                        count: 8,
                        notifs: Rc::new(RefCell::new(Vec::new())),
                    }),
                );
            }
            sim.set_endpoint(
                recv,
                Box::new(Sink {
                    log: Rc::new(RefCell::new(Vec::new())),
                }),
            );
            let mut cfg = ctrl_cfg(monitored);
            cfg.notif_loss = 0.3;
            cfg.seed = 5;
            sim.set_control_plane(cfg);
            sim.run();
            sim.counters().to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn counters_json_tracks_marks_and_drops() {
        let (mut sim, a, c) = two_hosts(Rate::gbps(10), SimTime::from_us(1));
        sim.set_endpoint(
            a,
            Box::new(Blaster {
                peer: c,
                count: 1,
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.set_endpoint(
            c,
            Box::new(Sink {
                log: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.run();
        let js = sim.counters().to_json();
        assert!(js.contains(r#""delivered_pkts":1"#));
        assert!(js.contains(r#""ecn_marked_pkts":0"#));
        assert!(js.contains(r#""shared_buffer_drops":0"#));
    }
}
