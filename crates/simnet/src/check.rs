//! Simulation invariants (real under the `check` feature, no-op stubs
//! otherwise).
//!
//! When compiled in, the simulator keeps a *shadow* double-entry copy of
//! every queue's and shared buffer's byte accounting, counts injected
//! packets, and cross-checks conservation and monotonicity after each
//! mutation. Violations are recorded in a thread-local log rather than
//! panicking, so the `simcheck` fuzzer can observe a failure, keep the
//! simulation deterministic, and shrink the scenario that produced it.
//!
//! Everything here is cheap relative to the event loop (a few integer
//! compares per packet operation) but not free, which is why the real
//! implementation is behind a cargo feature that defaults to off: release
//! binaries and the `simperf` benchmark pay zero cost unless
//! `--features check` is given. The module itself is always present so
//! callers (tests, the supervisor, transport's blackhole suite) can call
//! `reset`/`violation_count` unconditionally; without the feature those
//! are no-ops that report zero violations.
//!
//! The log is thread-local because simulations are single-threaded and the
//! sweep/fuzzer layers parallelize by running whole simulations on worker
//! threads; each worker resets, runs, and collects without synchronization.

/// One recorded invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable machine-readable kind, e.g. `"packet_conservation"`.
    pub kind: &'static str,
    /// Human-readable details (counter values, ids).
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.kind, self.msg)
    }
}

/// Shadow state the simulator maintains alongside its real structures.
///
/// Double-entry bookkeeping: every byte charged to a queue or shared buffer
/// is also charged here, and the two ledgers are compared after each
/// operation. A divergence means some path updated one side but not the
/// other — the bug class introduced by refactors of the packet hot path.
#[derive(Debug, Default)]
pub struct Audit {
    /// Shadow of each link queue's `bytes()`.
    pub queue_bytes: Vec<u64>,
    /// Shadow of each shared buffer's `used_bytes()`.
    pub buffer_used: Vec<u64>,
    /// Last time an endpoint on each node was dispatched, in ps.
    pub last_dispatch_ps: Vec<u64>,
    /// Packets handed to the engine via `Cmd::Send`.
    pub injected_pkts: u64,
}

impl Audit {
    /// Sized for a freshly assembled simulator.
    pub fn new(num_nodes: usize, num_links: usize, num_buffers: usize) -> Self {
        Audit {
            queue_bytes: vec![0; num_links],
            buffer_used: vec![0; num_buffers],
            last_dispatch_ps: vec![0; num_nodes],
            injected_pkts: 0,
        }
    }
}

#[cfg(feature = "check")]
mod imp {
    use super::Violation;
    use std::cell::Cell;
    use std::cell::RefCell;

    /// Cap on stored violations per thread; once a shadow counter diverges
    /// every subsequent operation would re-report, so keep the first few
    /// and count the rest.
    const MAX_LOG: usize = 64;

    thread_local! {
        static LOG: RefCell<Vec<Violation>> = const { RefCell::new(Vec::new()) };
        static OVERFLOW: Cell<u64> = const { Cell::new(0) };
        static INJECT_BUFFER_UNDERRELEASE: Cell<bool> = const { Cell::new(false) };
        static INJECT_FAULT_DROP_MISCOUNT: Cell<bool> = const { Cell::new(false) };
    }

    /// Clears this thread's violation log. Call before a checked run.
    pub fn reset() {
        LOG.with(|l| l.borrow_mut().clear());
        OVERFLOW.with(|o| o.set(0));
    }

    /// Drains and returns this thread's recorded violations (the first
    /// `MAX_LOG`; use [`violation_count`] for the true total).
    pub fn take() -> Vec<Violation> {
        LOG.with(|l| std::mem::take(&mut *l.borrow_mut()))
    }

    /// Total violations recorded on this thread since the last [`reset`],
    /// including any dropped past the log cap.
    pub fn violation_count() -> u64 {
        LOG.with(|l| l.borrow().len() as u64) + OVERFLOW.with(|o| o.get())
    }

    /// Records a violation (kept if under the cap, counted regardless).
    pub fn record(kind: &'static str, msg: String) {
        LOG.with(|l| {
            let mut log = l.borrow_mut();
            if log.len() < MAX_LOG {
                log.push(Violation { kind, msg });
            } else {
                OVERFLOW.with(|o| o.set(o.get() + 1));
            }
        });
    }

    /// Outlined violation recording for hot paths. Call sites pass
    /// `format_args!(..)` so the formatting machinery (and its code size)
    /// lives here, in a function the optimizer keeps out of the hot loop,
    /// instead of bloating every audited packet operation. The hot side is
    /// then just a predictable compare-and-branch to a cold call.
    #[cold]
    #[inline(never)]
    pub fn violated(kind: &'static str, args: std::fmt::Arguments<'_>) {
        record(kind, std::fmt::format(args));
    }

    /// Test-only fault injection: when set, [`crate::Simulator`] releases
    /// one byte too few from a shared buffer on every dequeue. The
    /// resulting drift is invisible to the buffer's own bounds checks
    /// (usage stays below capacity for a long time) and is caught only by
    /// the shadow accounting — exactly the class of bug the invariant
    /// layer exists for. Used by `simcheck` to prove the checker catches
    /// and shrinks real failures.
    pub fn set_inject_buffer_underrelease(on: bool) {
        INJECT_BUFFER_UNDERRELEASE.with(|f| f.set(on));
    }

    /// Current state of the injected buffer-accounting bug flag.
    pub fn inject_buffer_underrelease() -> bool {
        INJECT_BUFFER_UNDERRELEASE.with(|f| f.get())
    }

    /// Test-only fault injection for the *fault layer itself*: when set,
    /// drops on an administratively-down link are counted per-link but not
    /// in the global `fault_drops` counter, so packet conservation no
    /// longer balances. Invisible without a `FaultPlan` that takes a link
    /// down — which is what forces the simcheck shrinker to keep the fault
    /// schedule in its minimal reproducer.
    pub fn set_inject_fault_drop_miscount(on: bool) {
        INJECT_FAULT_DROP_MISCOUNT.with(|f| f.set(on));
    }

    /// Current state of the injected fault-drop-miscount bug flag.
    pub fn inject_fault_drop_miscount() -> bool {
        INJECT_FAULT_DROP_MISCOUNT.with(|f| f.get())
    }
}

#[cfg(not(feature = "check"))]
mod imp {
    use super::Violation;

    /// No-op without the `check` feature.
    pub fn reset() {}

    /// Always empty without the `check` feature.
    pub fn take() -> Vec<Violation> {
        Vec::new()
    }

    /// Always zero without the `check` feature.
    pub fn violation_count() -> u64 {
        0
    }

    /// No-op without the `check` feature.
    pub fn record(_kind: &'static str, _msg: String) {}

    /// No-op without the `check` feature.
    pub fn violated(_kind: &'static str, _args: std::fmt::Arguments<'_>) {}

    /// No-op without the `check` feature (the bug cannot be injected).
    pub fn set_inject_buffer_underrelease(_on: bool) {}

    /// Always false without the `check` feature.
    pub fn inject_buffer_underrelease() -> bool {
        false
    }

    /// No-op without the `check` feature (the bug cannot be injected).
    pub fn set_inject_fault_drop_miscount(_on: bool) {}

    /// Always false without the `check` feature.
    pub fn inject_fault_drop_miscount() -> bool {
        false
    }
}

pub use imp::*;
