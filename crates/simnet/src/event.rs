//! The future event list: the [`Scheduler`] abstraction and its reference
//! implementation.
//!
//! Events are ordered by `(time, sequence)`. The sequence number is assigned
//! at scheduling time, so events at the same instant fire in scheduling
//! order — this makes the whole simulation deterministic, a hard requirement
//! for reproducing the paper's figures bit-for-bit from a seed.
//!
//! [`EventQueue`] is the straightforward binary min-heap. The production
//! engine runs the hierarchical timing wheel in [`crate::wheel`]; both sit
//! behind [`Scheduler`] so the differential tests can drive them from the
//! same seed and assert identical pop order.

use crate::ids::{LinkId, NodeId};
use crate::packet::PacketSlot;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy)]
pub enum EventKind {
    /// A link finished serializing a frame; it may start the next one.
    TxComplete { link: LinkId },
    /// A frame finished propagating and arrives at the link's far end. The
    /// packet itself lives in the simulator's [`crate::packet::PacketPool`];
    /// the event carries only its slot, keeping events small and the hot
    /// path free of packet copies through the scheduler.
    Delivery { link: LinkId, slot: PacketSlot },
    /// A node timer set through [`crate::endpoint::Ctx::set_timer`].
    Timer { node: NodeId, key: u64, gen: u64 },
    /// A scheduled fault from the run's [`crate::fault::FaultPlan`] fires;
    /// `index` is the event's position in the plan.
    Fault { index: u32 },
}

/// An event with its firing time and deterministic tie-break sequence.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A future event list the simulator can run on.
///
/// Implementations must pop events in exactly `(time, seq)` order, with
/// `seq` assigned in scheduling order — two schedulers driven by the same
/// schedule sequence must produce the same pop sequence. That contract is
/// what lets the differential harness (`tests/scheduler_equivalence.rs`)
/// swap the timing wheel in for the heap without changing a single figure.
pub trait Scheduler: Default {
    /// Short implementation name, emitted in run manifests and benchmarks.
    const NAME: &'static str;

    /// Schedules `kind` to fire at `time`, assigning the next sequence
    /// number as the deterministic same-time tie-break.
    fn schedule(&mut self, time: SimTime, kind: EventKind);

    /// Consumes and returns the next sequence number without scheduling
    /// anything. A logical event held outside the scheduler (the
    /// simulator's per-link delivery FIFOs) still claims its tie-break seq
    /// at "schedule" time, so the global `(time, seq)` order is identical
    /// to the order an unbatched scheduler would have produced.
    fn reserve_seq(&mut self) -> u64;

    /// Schedules `kind` at `time` under a seq from [`Scheduler::reserve_seq`]
    /// instead of assigning a fresh one.
    fn schedule_reserved(&mut self, time: SimTime, seq: u64, kind: EventKind);

    /// Removes and returns the earliest event.
    fn pop(&mut self) -> Option<Event>;

    /// Removes and returns the earliest event if it fires at or before
    /// `deadline`. One scheduler touch instead of the `peek_time` + `pop`
    /// pair the bounded run loop would otherwise pay per event;
    /// implementations override this to share the "find the minimum" work
    /// between the check and the removal.
    fn pop_due(&mut self, deadline: SimTime) -> Option<Event> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Time of the earliest pending event. Takes `&mut self` because lazy
    /// implementations (the timing wheel) advance internal state to find it.
    fn peek_time(&mut self) -> Option<SimTime>;

    /// `(time, seq)` key of the earliest pending event. The coalescing
    /// fast path compares this against deferred deliveries to decide
    /// whether one can run inline without perturbing pop order.
    fn peek_key(&mut self) -> Option<(SimTime, u64)>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// True if nothing is pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever scheduled (diagnostic).
    fn scheduled_total(&self) -> u64;
}

/// The reference scheduler: a plain binary min-heap.
///
/// Kept as the oracle the timing wheel is differentially tested against;
/// `O(log n)` per operation and re-heapifies on every timer reschedule.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Claims the next sequence number without scheduling.
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Schedules `kind` at `time` under an already-reserved seq.
    pub fn schedule_reserved(&mut self, time: SimTime, seq: u64, kind: EventKind) {
        self.heap.push(Event { time, seq, kind });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// `(time, seq)` key of the earliest pending event.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|e| (e.time, e.seq))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (diagnostic).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

impl Scheduler for EventQueue {
    const NAME: &'static str = "heap";

    fn schedule(&mut self, time: SimTime, kind: EventKind) {
        EventQueue::schedule(self, time, kind);
    }

    fn reserve_seq(&mut self) -> u64 {
        EventQueue::reserve_seq(self)
    }

    fn schedule_reserved(&mut self, time: SimTime, seq: u64, kind: EventKind) {
        EventQueue::schedule_reserved(self, time, seq, kind);
    }

    fn pop(&mut self) -> Option<Event> {
        EventQueue::pop(self)
    }

    fn pop_due(&mut self, deadline: SimTime) -> Option<Event> {
        if self.heap.peek()?.time > deadline {
            return None;
        }
        self.heap.pop()
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }

    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        EventQueue::peek_key(self)
    }

    fn len(&self) -> usize {
        EventQueue::len(self)
    }

    fn scheduled_total(&self) -> u64 {
        EventQueue::scheduled_total(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, key: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(node),
            key,
            gen: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(3), timer(0, 0));
        q.schedule(SimTime::from_us(1), timer(0, 1));
        q.schedule(SimTime::from_us(2), timer(0, 2));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_ps())
            .collect();
        assert_eq!(times, vec![1_000_000, 2_000_000, 3_000_000]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(5);
        for key in 0..10 {
            q.schedule(t, timer(0, key));
        }
        let keys: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { key, .. } => key,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_tracks_min() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_ms(2), timer(0, 0));
        q.schedule(SimTime::from_ms(1), timer(0, 1));
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(1)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(2)));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, timer(0, 0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 1);
    }

    #[test]
    fn interleaved_schedule_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(10), timer(0, 0));
        q.schedule(SimTime::from_us(5), timer(0, 1));
        let first = q.pop().unwrap();
        assert_eq!(first.time, SimTime::from_us(5));
        q.schedule(SimTime::from_us(7), timer(0, 2));
        assert_eq!(q.pop().unwrap().time, SimTime::from_us(7));
        assert_eq!(q.pop().unwrap().time, SimTime::from_us(10));
    }
}
