//! The discrete-event queue.
//!
//! A binary min-heap of events ordered by `(time, sequence)`. The sequence
//! number is assigned at scheduling time, so events at the same instant fire
//! in scheduling order — this makes the whole simulation deterministic, a
//! hard requirement for reproducing the paper's figures bit-for-bit from a
//! seed.

use crate::ids::{LinkId, NodeId};
use crate::packet::Packet;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A link finished serializing a frame; it may start the next one.
    TxComplete { link: LinkId },
    /// A frame finished propagating and arrives at the link's far end.
    Delivery { link: LinkId, pkt: Packet },
    /// A node timer set through [`crate::endpoint::Ctx::set_timer`].
    Timer { node: NodeId, key: u64, gen: u64 },
}

/// An event with its firing time and deterministic tie-break sequence.
#[derive(Debug, Clone)]
pub struct Event {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulator's future event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (diagnostic).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, key: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(node),
            key,
            gen: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(3), timer(0, 0));
        q.schedule(SimTime::from_us(1), timer(0, 1));
        q.schedule(SimTime::from_us(2), timer(0, 2));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_ps())
            .collect();
        assert_eq!(times, vec![1_000_000, 2_000_000, 3_000_000]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(5);
        for key in 0..10 {
            q.schedule(t, timer(0, key));
        }
        let keys: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { key, .. } => key,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_tracks_min() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_ms(2), timer(0, 0));
        q.schedule(SimTime::from_ms(1), timer(0, 1));
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(1)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(2)));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, timer(0, 0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 1);
    }

    #[test]
    fn interleaved_schedule_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(10), timer(0, 0));
        q.schedule(SimTime::from_us(5), timer(0, 1));
        let first = q.pop().unwrap();
        assert_eq!(first.time, SimTime::from_us(5));
        q.schedule(SimTime::from_us(7), timer(0, 2));
        assert_eq!(q.pop().unwrap().time, SimTime::from_us(7));
        assert_eq!(q.pop().unwrap().time, SimTime::from_us(10));
    }
}
