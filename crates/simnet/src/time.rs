//! Simulated time.
//!
//! [`SimTime`] is a count of **picoseconds** since simulation start. At the
//! paper's link rates this keeps serialization times exact: a 1500 B frame
//! takes precisely 1 200 000 ps at 10 Gbps and 120 000 ps at 100 Gbps, so no
//! rounding error accumulates over millions of packets. A `u64` of
//! picoseconds covers ~213 days of simulated time, far beyond any experiment
//! here (the longest is an 18-hour fleet study, which is simulated as many
//! independent 2-second traces).

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant (or duration) in simulated time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

pub const PS_PER_NS: u64 = 1_000;
pub const PS_PER_US: u64 = 1_000_000;
pub const PS_PER_MS: u64 = 1_000_000_000;
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// From nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }

    /// From microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }

    /// From milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * PS_PER_SEC)
    }

    /// From fractional microseconds (rounds to the nearest picosecond).
    pub fn from_us_f64(us: f64) -> Self {
        assert!(us >= 0.0 && us.is_finite(), "invalid duration: {us}");
        SimTime((us * PS_PER_US as f64).round() as u64)
    }

    /// From fractional milliseconds (rounds to the nearest picosecond).
    pub fn from_ms_f64(ms: f64) -> Self {
        assert!(ms >= 0.0 && ms.is_finite(), "invalid duration: {ms}");
        SimTime((ms * PS_PER_MS as f64).round() as u64)
    }

    /// From fractional seconds (rounds to the nearest picosecond).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration: {s}");
        SimTime((s * PS_PER_SEC as f64).round() as u64)
    }

    /// Raw picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// Fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition (None on overflow).
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Scales a duration by an integer factor.
    #[allow(clippy::should_implement_trait)] // deliberate: SimTime x scalar, not SimTime x SimTime
    pub fn mul(self, factor: u64) -> SimTime {
        SimTime(self.0 * factor)
    }

    /// Scales a duration by a float factor (rounds).
    pub fn mul_f64(self, factor: f64) -> SimTime {
        assert!(factor >= 0.0 && factor.is_finite());
        SimTime((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= PS_PER_SEC {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if ps >= PS_PER_MS {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ps >= PS_PER_US {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{}ns", ps as f64 / PS_PER_NS as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimTime::from_secs(2).as_ms_f64(), 2_000.0);
        assert_eq!(SimTime::from_ms(30).as_ns(), 30_000_000);
    }

    #[test]
    fn float_constructors() {
        assert_eq!(SimTime::from_us_f64(1.5).as_ps(), 1_500_000);
        assert_eq!(SimTime::from_ms_f64(0.25).as_ps(), 250_000_000);
        assert_eq!(SimTime::from_secs_f64(1e-12).as_ps(), 1);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(3);
        let b = SimTime::from_us(1);
        assert_eq!(a + b, SimTime::from_us(4));
        assert_eq!(a - b, SimTime::from_us(2));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.mul(2), SimTime::from_us(6));
        assert_eq!(a.mul_f64(0.5), SimTime::from_us_f64(1.5));
    }

    #[test]
    fn serialization_is_exact_at_paper_rates() {
        // 1500 B at 10 Gbps = 1.2 us exactly; at 100 Gbps = 120 ns exactly.
        let bits = 1500u64 * 8;
        let at_10g = SimTime::from_ps(bits * PS_PER_SEC / 10_000_000_000);
        assert_eq!(at_10g, SimTime::from_ns(1200));
        let at_100g = SimTime::from_ps(bits * PS_PER_SEC / 100_000_000_000);
        assert_eq!(at_100g, SimTime::from_ns(120));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ns(1) < SimTime::from_us(1));
        assert!(SimTime::MAX > SimTime::from_secs(1000));
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(format!("{}", SimTime::from_ns(500)), "500ns");
        assert_eq!(format!("{}", SimTime::from_us(30)), "30.000us");
        assert_eq!(format!("{}", SimTime::from_ms(15)), "15.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000000s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX.checked_add(SimTime(1)).is_none());
        assert_eq!(SimTime(1).checked_add(SimTime(2)), Some(SimTime(3)));
    }

    #[test]
    #[should_panic]
    fn negative_duration_rejected() {
        SimTime::from_ms_f64(-1.0);
    }
}
