//! Nodes: hosts and switches.

use crate::ids::{BufferId, LinkId, NodeId};

/// A node in the simulated network.
#[derive(Debug)]
pub enum Node {
    /// An end host with a single NIC uplink. Hosts terminate packets
    /// (delivering them to the installed [`crate::endpoint::Endpoint`]) and
    /// originate packets through their uplink.
    Host {
        /// Human-readable name for diagnostics.
        name: String,
        /// The host's egress link (set when the host is cabled).
        uplink: Option<LinkId>,
    },
    /// An output-queued switch. Arriving packets are forwarded to the egress
    /// port toward their destination host; the switching fabric itself is
    /// non-blocking (standard output-queued model, as in the paper's NS3
    /// setup where only egress queues matter).
    Switch {
        /// Human-readable name for diagnostics.
        name: String,
        /// Egress links, one per cabled port.
        ports: Vec<LinkId>,
        /// Equal-cost forwarding table in CSR form: destination node id
        /// `d` maps to the slice `fwd_links[off..off + len]` where
        /// `(off, len) = fwd_index[d]`. Candidates are every egress link
        /// on a shortest path toward `d`, in ascending link-id order; an
        /// empty slice means no route. Single-candidate sets forward
        /// directly, larger sets are resolved per flow by ECMP
        /// rendezvous hashing (see [`crate::hash::ecmp_score`]).
        fwd_index: Vec<(u32, u32)>,
        /// Flat storage behind `fwd_index`.
        fwd_links: Vec<LinkId>,
        /// Shared memory pool charged by all this switch's egress queues.
        buffer: Option<BufferId>,
    },
}

impl Node {
    /// The node's diagnostic name.
    pub fn name(&self) -> &str {
        match self {
            Node::Host { name, .. } | Node::Switch { name, .. } => name,
        }
    }

    /// True for hosts.
    pub fn is_host(&self) -> bool {
        matches!(self, Node::Host { .. })
    }

    /// The primary forwarding entry toward `dst` (the lowest-id member of
    /// the equal-cost set), for switches.
    pub fn next_hop(&self, dst: NodeId) -> Option<LinkId> {
        self.next_hops(dst).first().copied()
    }

    /// Every equal-cost next hop toward `dst`, in ascending link-id
    /// order. Empty for hosts and for unreachable destinations.
    pub fn next_hops(&self, dst: NodeId) -> &[LinkId] {
        match self {
            Node::Switch {
                fwd_index,
                fwd_links,
                ..
            } => match fwd_index.get(dst.index()) {
                Some(&(off, len)) => &fwd_links[off as usize..off as usize + len as usize],
                None => &[],
            },
            Node::Host { .. } => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_properties() {
        let h = Node::Host {
            name: "h0".into(),
            uplink: Some(LinkId(3)),
        };
        assert!(h.is_host());
        assert_eq!(h.name(), "h0");
        assert_eq!(h.next_hop(NodeId(0)), None);
    }

    #[test]
    fn switch_forwarding_lookup() {
        // dst 0 -> {link 0}, dst 1 -> no route, dst 2 -> {link 1}.
        let s = Node::Switch {
            name: "tor".into(),
            ports: vec![LinkId(0), LinkId(1)],
            fwd_index: vec![(0, 1), (1, 0), (1, 1)],
            fwd_links: vec![LinkId(0), LinkId(1)],
            buffer: None,
        };
        assert!(!s.is_host());
        assert_eq!(s.next_hop(NodeId(0)), Some(LinkId(0)));
        assert_eq!(s.next_hop(NodeId(1)), None);
        assert_eq!(s.next_hop(NodeId(2)), Some(LinkId(1)));
        assert_eq!(s.next_hop(NodeId(99)), None); // out of table
        assert_eq!(s.next_hops(NodeId(99)), &[] as &[LinkId]);
    }

    #[test]
    fn equal_cost_sets_expose_every_candidate() {
        // dst 0 -> {links 2, 5}; the primary is the lowest link id.
        let s = Node::Switch {
            name: "leaf".into(),
            ports: vec![LinkId(2), LinkId(5)],
            fwd_index: vec![(0, 2)],
            fwd_links: vec![LinkId(2), LinkId(5)],
            buffer: None,
        };
        assert_eq!(s.next_hops(NodeId(0)), &[LinkId(2), LinkId(5)]);
        assert_eq!(s.next_hop(NodeId(0)), Some(LinkId(2)));
        // Hosts never forward.
        let h = Node::Host {
            name: "h".into(),
            uplink: None,
        };
        assert_eq!(h.next_hops(NodeId(0)), &[] as &[LinkId]);
    }
}
