//! Nodes: hosts and switches.

use crate::ids::{BufferId, LinkId, NodeId};

/// A node in the simulated network.
#[derive(Debug)]
pub enum Node {
    /// An end host with a single NIC uplink. Hosts terminate packets
    /// (delivering them to the installed [`crate::endpoint::Endpoint`]) and
    /// originate packets through their uplink.
    Host {
        /// Human-readable name for diagnostics.
        name: String,
        /// The host's egress link (set when the host is cabled).
        uplink: Option<LinkId>,
    },
    /// An output-queued switch. Arriving packets are forwarded to the egress
    /// port toward their destination host; the switching fabric itself is
    /// non-blocking (standard output-queued model, as in the paper's NS3
    /// setup where only egress queues matter).
    Switch {
        /// Human-readable name for diagnostics.
        name: String,
        /// Egress links, one per cabled port.
        ports: Vec<LinkId>,
        /// Next-hop egress link per destination node id (None = no route).
        fwd: Vec<Option<LinkId>>,
        /// Shared memory pool charged by all this switch's egress queues.
        buffer: Option<BufferId>,
    },
}

impl Node {
    /// The node's diagnostic name.
    pub fn name(&self) -> &str {
        match self {
            Node::Host { name, .. } | Node::Switch { name, .. } => name,
        }
    }

    /// True for hosts.
    pub fn is_host(&self) -> bool {
        matches!(self, Node::Host { .. })
    }

    /// The forwarding entry toward `dst`, for switches.
    pub fn next_hop(&self, dst: NodeId) -> Option<LinkId> {
        match self {
            Node::Switch { fwd, .. } => fwd.get(dst.index()).copied().flatten(),
            Node::Host { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_properties() {
        let h = Node::Host {
            name: "h0".into(),
            uplink: Some(LinkId(3)),
        };
        assert!(h.is_host());
        assert_eq!(h.name(), "h0");
        assert_eq!(h.next_hop(NodeId(0)), None);
    }

    #[test]
    fn switch_forwarding_lookup() {
        let s = Node::Switch {
            name: "tor".into(),
            ports: vec![LinkId(0), LinkId(1)],
            fwd: vec![Some(LinkId(0)), None, Some(LinkId(1))],
            buffer: None,
        };
        assert!(!s.is_host());
        assert_eq!(s.next_hop(NodeId(0)), Some(LinkId(0)));
        assert_eq!(s.next_hop(NodeId(1)), None);
        assert_eq!(s.next_hop(NodeId(2)), Some(LinkId(1)));
        assert_eq!(s.next_hop(NodeId(99)), None); // out of table
    }
}
