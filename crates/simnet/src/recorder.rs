//! Flight recorder (real under the `recorder` feature, no-op stubs
//! otherwise).
//!
//! A fixed-size, zero-allocation ring buffer of the most recent packet-level
//! events, kept by the simulator as it runs. Nothing is formatted or stored
//! beyond [`CAPACITY`] copies of a small fixed-size record, so the hot-path
//! cost is a thread-local index bump and a struct copy. When something goes
//! wrong — a simcheck invariant fires, a fault is applied, a `RunBudget`
//! truncates the run, or a supervised worker panics — the cold
//! [`capture`] path formats the ring into a human-readable *flight dump*:
//! the last-N causal history leading up to the failure. The supervisor
//! attaches that dump to the `target/quarantine/` reproducer artifacts, so
//! a quarantined failure arrives with its story, not just a counter.
//!
//! Feature gating follows [`crate::check`]: the module is always present so
//! callers can invoke it unconditionally, but without `--features recorder`
//! every hot-path hook is an empty `#[inline(always)]` function the
//! optimizer erases — release binaries and the perf benchmarks pay zero
//! cost.
//!
//! State is thread-local (simulations are single-threaded; sweeps
//! parallelize whole runs across workers) and survives panics, which is
//! what lets the supervisor capture a dump *after* catching an unwind from
//! the same thread.

/// Ring capacity: how many events of history a dump can replay.
pub const CAPACITY: usize = 256;

/// One fixed-size flight record. Interpretation of `a`/`b`/`c` depends on
/// `tag`: packet events use (link, flow, packet id); faults use
/// (target, plan index, 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRec {
    /// Simulated time in picoseconds.
    pub t_ps: u64,
    /// Static event tag ("enq", "tx", "rx", "drop_full", "fault", …).
    pub tag: &'static str,
    /// First operand (usually the link or fault target).
    pub a: u64,
    /// Second operand (usually the flow).
    pub b: u64,
    /// Third operand (usually the engine-assigned packet id).
    pub c: u64,
}

impl FlightRec {
    /// The all-zero record filling unused ring slots.
    pub const EMPTY: FlightRec = FlightRec {
        t_ps: 0,
        tag: "",
        a: 0,
        b: 0,
        c: 0,
    };
}

impl std::fmt::Display for FlightRec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>16} ps  {:<12} link/target={} flow={} pkt={}",
            self.t_ps, self.tag, self.a, self.b, self.c
        )
    }
}

#[cfg(feature = "recorder")]
mod imp {
    use super::{FlightRec, CAPACITY};
    use std::cell::{Cell, RefCell};

    // The masked-index fast path needs a power-of-two capacity.
    const _: () = assert!(CAPACITY.is_power_of_two());
    const MASK: usize = CAPACITY - 1;

    /// The whole recorder state is derived from one counter: the write
    /// head is `total & MASK` and the held count is `min(total, CAPACITY)`
    /// (both start at zero on [`reset`]), so the hot path is a single
    /// thread-local access, one masked slot store, and a counter bump —
    /// no `RefCell` borrow flags.
    struct Ring {
        buf: [Cell<FlightRec>; CAPACITY],
        /// Events recorded since the last reset, including overwritten ones.
        total: Cell<u64>,
    }

    thread_local! {
        static RING: Ring = const {
            Ring {
                buf: [const { Cell::new(FlightRec::EMPTY) }; CAPACITY],
                total: Cell::new(0),
            }
        };
        static DUMP: RefCell<Option<String>> = const { RefCell::new(None) };
    }

    /// True when the recorder is compiled in.
    pub fn enabled() -> bool {
        true
    }

    /// Clears this thread's ring and any pending dump. Call before a run.
    /// (Stale slots need no wiping: [`capture`] only reads the
    /// `min(total, CAPACITY)` live ones.)
    pub fn reset() {
        RING.with(|r| r.total.set(0));
        DUMP.with(|d| *d.borrow_mut() = None);
    }

    /// Records one event (hot path: a ring-slot copy, no allocation).
    #[inline]
    pub fn note(tag: &'static str, t_ps: u64, a: u64, b: u64, c: u64) {
        RING.with(|r| {
            let total = r.total.get();
            r.buf[total as usize & MASK].set(FlightRec { t_ps, tag, a, b, c });
            r.total.set(total + 1);
        });
    }

    /// Total events recorded on this thread since the last [`reset`],
    /// including those overwritten in the ring.
    pub fn recorded() -> u64 {
        RING.with(|r| r.total.get())
    }

    /// Cold path: formats the ring (oldest first) into a pending dump
    /// tagged with `reason`, replacing any earlier pending dump — the
    /// capture closest to the failure wins.
    #[cold]
    #[inline(never)]
    pub fn capture(reason: &str) {
        let (body, total, held) = RING.with(|r| {
            let total = r.total.get();
            let held = (total as usize).min(CAPACITY);
            let start = if held == CAPACITY {
                total as usize & MASK
            } else {
                0
            };
            let mut out = String::new();
            for i in 0..held {
                let rec = r.buf[(start + i) & MASK].get();
                out.push_str(&rec.to_string());
                out.push('\n');
            }
            (out, total, held)
        });
        let dump = format!(
            "flight recorder: {reason}\nlast {held} of {total} recorded events (capacity {CAPACITY}):\n{body}"
        );
        DUMP.with(|d| *d.borrow_mut() = Some(dump));
    }

    /// Takes this thread's pending dump, if a capture happened.
    pub fn take_dump() -> Option<String> {
        DUMP.with(|d| d.borrow_mut().take())
    }
}

#[cfg(not(feature = "recorder"))]
mod imp {
    /// Always false without the `recorder` feature.
    pub fn enabled() -> bool {
        false
    }

    /// No-op without the `recorder` feature.
    #[inline(always)]
    pub fn reset() {}

    /// No-op without the `recorder` feature (compiles to nothing).
    #[inline(always)]
    pub fn note(_tag: &'static str, _t_ps: u64, _a: u64, _b: u64, _c: u64) {}

    /// Always zero without the `recorder` feature.
    #[inline(always)]
    pub fn recorded() -> u64 {
        0
    }

    /// No-op without the `recorder` feature.
    #[inline(always)]
    pub fn capture(_reason: &str) {}

    /// Always `None` without the `recorder` feature.
    #[inline(always)]
    pub fn take_dump() -> Option<String> {
        None
    }
}

pub use imp::*;

#[cfg(all(test, feature = "recorder"))]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_most_recent_events() {
        reset();
        for i in 0..(CAPACITY as u64 + 10) {
            note("enq", i, 1, 2, i);
        }
        assert_eq!(recorded(), CAPACITY as u64 + 10);
        capture("test");
        let dump = take_dump().expect("capture produced a dump");
        assert!(dump.starts_with("flight recorder: test"), "{dump}");
        // The oldest surviving record is number 10; 0..10 were overwritten.
        assert!(!dump.contains("pkt=9\n"), "{dump}");
        assert!(dump.contains("pkt=10"), "{dump}");
        assert!(
            dump.contains(&format!("pkt={}", CAPACITY as u64 + 9)),
            "{dump}"
        );
        assert_eq!(dump.matches("enq").count(), CAPACITY, "{dump}");
    }

    #[test]
    fn take_dump_is_one_shot_and_reset_clears() {
        reset();
        note("rx", 7, 0, 0, 0);
        capture("first");
        assert!(take_dump().is_some());
        assert!(take_dump().is_none(), "dump must be taken at most once");
        capture("second");
        reset();
        assert!(take_dump().is_none(), "reset discards pending dumps");
        assert_eq!(recorded(), 0);
    }

    #[test]
    fn latest_capture_wins() {
        reset();
        note("tx", 1, 0, 0, 0);
        capture("early");
        note("drop_full", 2, 0, 0, 0);
        capture("late");
        let dump = take_dump().unwrap();
        assert!(dump.contains("late"), "{dump}");
        assert!(dump.contains("drop_full"), "{dump}");
    }
}
