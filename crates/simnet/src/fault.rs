//! Deterministic fault injection: seeded, scheduled infrastructure faults.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultEvent`]s installed on the
//! simulator before it starts. Each event is scheduled as a first-class sim
//! event — it competes in the same `(time, seq)` order as packet and timer
//! events, so two runs with the same seed and the same plan are
//! bit-identical, on either scheduler. The plan models the imperfect
//! infrastructure the paper blames for pathological incast behavior:
//! link flaps (blackholes), random wire loss/corruption windows, ECN
//! threshold mis-configuration, shared-buffer shrinkage, and host pauses
//! (stragglers).
//!
//! Faults only *mutate network state*; all packet-level consequences flow
//! through the ordinary event loop, which is what keeps the conservation
//! and drain audits valid under any plan.

use crate::ids::{BufferId, LinkId, NodeId};
use crate::time::SimTime;

/// One kind of infrastructure fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Take a link down: frames finishing serialization are dropped on the
    /// wire (the queue keeps draining at line rate — a blackhole, not a
    /// stall), until a matching [`FaultKind::LinkUp`].
    LinkDown { link: LinkId },
    /// Bring a downed link back up.
    LinkUp { link: LinkId },
    /// Set an additional per-frame random loss probability on a link
    /// (on top of any configured `loss_probability`). `0.0` restores
    /// healthy behavior.
    SetLinkLoss { link: LinkId, probability: f64 },
    /// Set a per-frame corruption probability on a link. Corrupted frames
    /// are dropped at the receiver side of the wire (FCS failure) and
    /// counted separately in telemetry. `0.0` restores healthy behavior.
    SetLinkCorrupt { link: LinkId, probability: f64 },
    /// Overwrite the ECN marking thresholds of a link's egress queue —
    /// `None` disables marking entirely (the classic mis-configuration
    /// window from the paper's Section 5 discussion).
    SetEcnThreshold {
        link: LinkId,
        pkts: Option<u32>,
        bytes: Option<u64>,
    },
    /// Resize a shared buffer. Growing takes effect immediately; shrinking
    /// below current occupancy ratchets down as packets drain, so byte
    /// accounting never goes negative.
    BufferResize { buffer: BufferId, total_bytes: u64 },
    /// Pause a host: delivered packets and timer fires are queued instead
    /// of dispatched to its endpoint (a paper-style straggler). The NIC
    /// keeps receiving — only the software stalls.
    HostPause { node: NodeId },
    /// Resume a paused host, draining its deferred deliveries and timers
    /// in arrival order.
    HostResume { node: NodeId },
}

impl FaultKind {
    /// Short label for telemetry records.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::LinkDown { .. } => "link_down",
            FaultKind::LinkUp { .. } => "link_up",
            FaultKind::SetLinkLoss { .. } => "set_link_loss",
            FaultKind::SetLinkCorrupt { .. } => "set_link_corrupt",
            FaultKind::SetEcnThreshold { .. } => "set_ecn_threshold",
            FaultKind::BufferResize { .. } => "buffer_resize",
            FaultKind::HostPause { .. } => "host_pause",
            FaultKind::HostResume { .. } => "host_resume",
        }
    }

    /// The entity the fault targets, as a plain index for telemetry.
    pub fn target(&self) -> u64 {
        match self {
            FaultKind::LinkDown { link }
            | FaultKind::LinkUp { link }
            | FaultKind::SetLinkLoss { link, .. }
            | FaultKind::SetLinkCorrupt { link, .. }
            | FaultKind::SetEcnThreshold { link, .. } => link.0 as u64,
            FaultKind::BufferResize { buffer, .. } => buffer.0 as u64,
            FaultKind::HostPause { node } | FaultKind::HostResume { node } => node.0 as u64,
        }
    }
}

/// A fault scheduled at an absolute sim time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What it does.
    pub kind: FaultKind,
}

/// An ordered schedule of faults for one run.
///
/// Events are applied in plan order when their times collide, so a plan is
/// itself a deterministic artifact: `Debug`-print it into a reproducer and
/// the replay is exact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// True if the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Appends a fault; returns `self` for chaining.
    pub fn push(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// A link blackhole over `[from, until)`: down at `from`, up at `until`.
    pub fn blackhole(self, link: LinkId, from: SimTime, until: SimTime) -> Self {
        self.push(from, FaultKind::LinkDown { link })
            .push(until, FaultKind::LinkUp { link })
    }

    /// A random-loss window over `[from, until)` at `probability`.
    pub fn lossy_window(
        self,
        link: LinkId,
        from: SimTime,
        until: SimTime,
        probability: f64,
    ) -> Self {
        self.push(from, FaultKind::SetLinkLoss { link, probability })
            .push(
                until,
                FaultKind::SetLinkLoss {
                    link,
                    probability: 0.0,
                },
            )
    }

    /// A corruption window over `[from, until)` at `probability`.
    pub fn corrupt_window(
        self,
        link: LinkId,
        from: SimTime,
        until: SimTime,
        probability: f64,
    ) -> Self {
        self.push(from, FaultKind::SetLinkCorrupt { link, probability })
            .push(
                until,
                FaultKind::SetLinkCorrupt {
                    link,
                    probability: 0.0,
                },
            )
    }

    /// An ECN mis-configuration window: marking disabled over `[from,
    /// until)`, then restored to `(pkts, bytes)`.
    pub fn ecn_outage(
        self,
        link: LinkId,
        from: SimTime,
        until: SimTime,
        restore_pkts: Option<u32>,
        restore_bytes: Option<u64>,
    ) -> Self {
        self.push(
            from,
            FaultKind::SetEcnThreshold {
                link,
                pkts: None,
                bytes: None,
            },
        )
        .push(
            until,
            FaultKind::SetEcnThreshold {
                link,
                pkts: restore_pkts,
                bytes: restore_bytes,
            },
        )
    }

    /// A shared-buffer shrink window: shrink to `shrunk_bytes` at `from`,
    /// restore to `restore_bytes` at `until`.
    pub fn buffer_squeeze(
        self,
        buffer: BufferId,
        from: SimTime,
        until: SimTime,
        shrunk_bytes: u64,
        restore_bytes: u64,
    ) -> Self {
        self.push(
            from,
            FaultKind::BufferResize {
                buffer,
                total_bytes: shrunk_bytes,
            },
        )
        .push(
            until,
            FaultKind::BufferResize {
                buffer,
                total_bytes: restore_bytes,
            },
        )
    }

    /// A host pause window over `[from, until)` (paper-style straggler).
    pub fn straggler(self, node: NodeId, from: SimTime, until: SimTime) -> Self {
        self.push(from, FaultKind::HostPause { node })
            .push(until, FaultKind::HostResume { node })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_schedule_paired_events() {
        let plan = FaultPlan::new()
            .blackhole(LinkId(3), SimTime::from_ms(5), SimTime::from_ms(9))
            .straggler(NodeId(1), SimTime::from_ms(2), SimTime::from_ms(4));
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.events[0].kind, FaultKind::LinkDown { link: LinkId(3) });
        assert_eq!(plan.events[1].at, SimTime::from_ms(9));
        assert_eq!(
            plan.events[3].kind,
            FaultKind::HostResume { node: NodeId(1) }
        );
    }

    #[test]
    fn labels_and_targets_are_stable() {
        let k = FaultKind::SetLinkLoss {
            link: LinkId(7),
            probability: 0.25,
        };
        assert_eq!(k.label(), "set_link_loss");
        assert_eq!(k.target(), 7);
        let b = FaultKind::BufferResize {
            buffer: BufferId(2),
            total_bytes: 1024,
        };
        assert_eq!(b.label(), "buffer_resize");
        assert_eq!(b.target(), 2);
    }

    #[test]
    fn empty_plan_reports_empty() {
        assert!(FaultPlan::new().is_empty());
        assert_eq!(FaultPlan::default().len(), 0);
    }

    #[test]
    fn debug_rendering_is_construction_syntax() {
        // Quarantine reproducers embed `{plan:?}`; the rendering must be
        // valid construction syntax modulo whitespace (mirrors simcheck).
        let plan = FaultPlan::new().blackhole(LinkId(0), SimTime::from_ms(1), SimTime::from_ms(2));
        let rendered = format!("{:?}", plan.events[0].kind);
        assert_eq!(rendered, "LinkDown { link: LinkId(0) }");
    }
}
