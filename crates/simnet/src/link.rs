//! Point-to-point unidirectional links.
//!
//! A [`Link`] carries frames from the egress queue at its source node to its
//! destination node. It serializes one frame at a time at the configured
//! rate, then the frame propagates for the configured delay. Full-duplex
//! cables are modeled as two independent `Link`s.

use crate::ids::{BufferId, NodeId};
use crate::packet::QueuedFrame;
use crate::queue::{EcnQueue, QueueConfig};
use crate::time::SimTime;
use crate::units::Rate;

/// Configuration of one unidirectional link and its egress queue.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Transmission rate.
    pub rate: Rate,
    /// Propagation delay.
    pub propagation: SimTime,
    /// Egress queue at the source of the link.
    pub queue: QueueConfig,
    /// Fault injection: probability that a frame is corrupted/lost on the
    /// wire after serialization (0.0 disables).
    pub loss_probability: f64,
}

impl LinkConfig {
    /// A link with the given rate/propagation and queue, no fault injection.
    pub fn new(rate: Rate, propagation: SimTime, queue: QueueConfig) -> Self {
        LinkConfig {
            rate,
            propagation,
            queue,
            loss_probability: 0.0,
        }
    }
}

/// Runtime state of a link.
#[derive(Debug)]
pub struct Link {
    /// Source node (owns the egress queue).
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Static configuration.
    pub cfg: LinkConfig,
    /// The egress queue feeding this link. Holds 12-byte residence cards;
    /// the packets themselves stay parked in the simulator's packet pool.
    pub queue: EcnQueue<QueuedFrame>,
    /// Shared buffer this queue charges, if the source switch has one.
    pub shared: Option<BufferId>,
    /// Frame currently being serialized, if any.
    pub serializing: Option<QueuedFrame>,
    /// Frames lost to fault injection.
    pub fault_drops: u64,
    /// Fault state: link is administratively down (frames finishing
    /// serialization are blackholed until a `LinkUp` fault).
    pub down: bool,
    /// Fault state: extra per-frame loss probability injected by the
    /// active `FaultPlan` (0.0 when healthy).
    pub fault_loss: f64,
    /// Fault state: per-frame corruption probability injected by the
    /// active `FaultPlan` (0.0 when healthy).
    pub fault_corrupt: f64,
    /// Memo of the last [`Link::serialize_time`] query. Traffic is almost
    /// entirely two frame sizes (full data segments and bare ACKs), so the
    /// division behind each `TxComplete` is usually a repeat.
    ser_memo: (u64, SimTime),
}

impl Link {
    /// Creates an idle link.
    pub fn new(src: NodeId, dst: NodeId, cfg: LinkConfig, shared: Option<BufferId>) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.loss_probability),
            "loss probability out of range"
        );
        let queue = EcnQueue::new(cfg.queue.clone());
        Link {
            src,
            dst,
            cfg,
            queue,
            shared,
            serializing: None,
            fault_drops: 0,
            down: false,
            fault_loss: 0.0,
            fault_corrupt: 0.0,
            ser_memo: (u64::MAX, SimTime::ZERO),
        }
    }

    /// True while a frame is on the transmitter.
    pub fn busy(&self) -> bool {
        self.serializing.is_some()
    }

    /// Serialization time for a frame of `bytes`, memoizing the last query.
    pub fn serialize_time(&mut self, bytes: u64) -> SimTime {
        if self.ser_memo.0 != bytes {
            self.ser_memo = (bytes, self.cfg.rate.serialize_time(bytes));
        }
        self.ser_memo.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_link_is_idle() {
        let cfg = LinkConfig::new(Rate::gbps(10), SimTime::from_us(1), QueueConfig::host_nic());
        let mut l = Link::new(NodeId(0), NodeId(1), cfg, None);
        assert!(!l.busy());
        assert!(l.queue.is_empty());
        assert_eq!(l.serialize_time(1500), SimTime::from_ns(1200));
        // Memo hit returns the same answer; a different size recomputes.
        assert_eq!(l.serialize_time(1500), SimTime::from_ns(1200));
        assert_eq!(l.serialize_time(60), SimTime::from_ns(48));
    }

    #[test]
    #[should_panic]
    fn invalid_loss_probability_rejected() {
        let mut cfg = LinkConfig::new(Rate::gbps(10), SimTime::ZERO, QueueConfig::host_nic());
        cfg.loss_probability = 1.5;
        Link::new(NodeId(0), NodeId(1), cfg, None);
    }
}
