//! Shared switch buffer management.
//!
//! Real ToR switches share one memory pool across all port queues. The paper
//! points to this repeatedly: per-port capacity limits exist, "but the
//! capacity available at runtime may be lower because total memory is shared
//! between ports" (§3.4), and their own NS3 simulations *not* modeling it is
//! why simulated Mode 1/2 sees no loss while production does (§4.1.1).
//!
//! We model the classic **Dynamic Threshold** (DT) scheme (Choudhury &
//! Hahne): a queue of current length `q` may accept an arrival only if
//! `q < alpha * (total - used)`, where `used` is the pool-wide occupancy.
//! With one hot queue, DT lets it grow to `alpha/(1+alpha)` of the pool;
//! with several, each gets proportionally less — exactly the "rack-level
//! contention" effect.

/// Shared-buffer admission policy.
#[derive(Debug, Clone, Copy)]
pub enum BufferPolicy {
    /// Admit while the pool has room (queues still enforce their own caps).
    StaticPool,
    /// Dynamic Threshold with the given `alpha`.
    DynamicThreshold { alpha: f64 },
}

/// One shared memory pool, charged by every member queue.
#[derive(Debug, Clone)]
pub struct SharedBuffer {
    total_bytes: u64,
    used_bytes: u64,
    peak_bytes: u64,
    policy: BufferPolicy,
    /// Admission refusals (for diagnostics).
    pub refusals: u64,
    /// Pending fault-injected shrink target: when a resize lands below the
    /// current occupancy, `total_bytes` ratchets down toward this as
    /// packets drain (so `used <= total` always holds).
    shrink_target: Option<u64>,
}

impl SharedBuffer {
    /// Creates a pool of `total_bytes` under `policy`.
    pub fn new(total_bytes: u64, policy: BufferPolicy) -> Self {
        assert!(total_bytes > 0, "zero-size shared buffer");
        if let BufferPolicy::DynamicThreshold { alpha } = policy {
            assert!(alpha > 0.0 && alpha.is_finite(), "invalid DT alpha");
        }
        SharedBuffer {
            total_bytes,
            used_bytes: 0,
            peak_bytes: 0,
            policy,
            refusals: 0,
            shrink_target: None,
        }
    }

    /// Resizes the pool (fault injection). Growing takes effect
    /// immediately and cancels any pending shrink. Shrinking below the
    /// current occupancy clamps to `used_bytes` now and ratchets the rest
    /// of the way down as packets drain, keeping `used <= total` — the
    /// byte-accounting audits hold through any resize schedule.
    pub fn set_total_bytes(&mut self, target: u64) {
        assert!(target > 0, "zero-size shared buffer resize");
        if target >= self.used_bytes {
            self.total_bytes = target;
            self.shrink_target = None;
        } else {
            self.total_bytes = self.used_bytes;
            self.shrink_target = Some(target);
        }
    }

    /// Pool size.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Bytes currently charged.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Free bytes.
    pub fn free_bytes(&self) -> u64 {
        self.total_bytes - self.used_bytes
    }

    /// Highest occupancy ever charged (the pool's high-water mark).
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Decides whether a queue currently holding `queue_bytes` may accept an
    /// arrival of `pkt_bytes`. Does not charge the pool; call
    /// [`SharedBuffer::on_enqueue`] after the queue accepts.
    pub fn admit(&mut self, queue_bytes: u64, pkt_bytes: u64) -> bool {
        if self.used_bytes + pkt_bytes > self.total_bytes {
            self.refusals += 1;
            return false;
        }
        let ok = match self.policy {
            BufferPolicy::StaticPool => true,
            BufferPolicy::DynamicThreshold { alpha } => {
                let limit = alpha * self.free_bytes() as f64;
                (queue_bytes + pkt_bytes) as f64 <= limit
            }
        };
        if !ok {
            self.refusals += 1;
        }
        ok
    }

    /// Charges the pool for an accepted arrival.
    pub fn on_enqueue(&mut self, pkt_bytes: u64) {
        self.used_bytes += pkt_bytes;
        self.peak_bytes = self.peak_bytes.max(self.used_bytes);
        debug_assert!(self.used_bytes <= self.total_bytes);
    }

    /// Releases pool memory on dequeue.
    pub fn on_dequeue(&mut self, pkt_bytes: u64) {
        debug_assert!(self.used_bytes >= pkt_bytes);
        self.used_bytes = self.used_bytes.saturating_sub(pkt_bytes);
        if let Some(target) = self.shrink_target {
            self.total_bytes = target.max(self.used_bytes);
            if self.total_bytes == target {
                self.shrink_target = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_pool_admits_until_full() {
        let mut b = SharedBuffer::new(1000, BufferPolicy::StaticPool);
        assert!(b.admit(0, 600));
        b.on_enqueue(600);
        assert!(b.admit(600, 400));
        b.on_enqueue(400);
        assert!(!b.admit(1000, 1));
        assert_eq!(b.refusals, 1);
        b.on_dequeue(600);
        assert!(b.admit(400, 500));
    }

    #[test]
    fn dt_limits_single_queue_to_alpha_fraction() {
        // alpha = 1: a single queue converges to total/2.
        let mut b = SharedBuffer::new(1000, BufferPolicy::DynamicThreshold { alpha: 1.0 });
        let mut q = 0u64;
        loop {
            if !b.admit(q, 10) {
                break;
            }
            b.on_enqueue(10);
            q += 10;
        }
        // Steady state: q <= free = total - q  =>  q <= 500.
        assert!(q <= 500, "q = {q}");
        assert!(q >= 490, "q = {q}"); // and it gets close
    }

    #[test]
    fn dt_competing_queue_shrinks_limit() {
        let mut b = SharedBuffer::new(1000, BufferPolicy::DynamicThreshold { alpha: 1.0 });
        // Another port eats 800 bytes of the pool.
        b.on_enqueue(800);
        // Our empty queue may now only grow to alpha * free = 200.
        assert!(b.admit(0, 100));
        b.on_enqueue(100);
        // free = 100 now; queue holds 100, 100 + 10 > 100 -> refuse.
        assert!(!b.admit(100, 10));
    }

    #[test]
    fn pool_exhaustion_always_refuses() {
        let mut b = SharedBuffer::new(100, BufferPolicy::DynamicThreshold { alpha: 8.0 });
        b.on_enqueue(100);
        assert!(!b.admit(0, 1));
    }

    #[test]
    fn dequeue_releases() {
        let mut b = SharedBuffer::new(100, BufferPolicy::StaticPool);
        b.on_enqueue(60);
        b.on_dequeue(60);
        assert_eq!(b.used_bytes(), 0);
        assert_eq!(b.free_bytes(), 100);
    }

    #[test]
    fn peak_survives_dequeues() {
        let mut b = SharedBuffer::new(100, BufferPolicy::StaticPool);
        b.on_enqueue(60);
        b.on_enqueue(30);
        b.on_dequeue(80);
        b.on_enqueue(10);
        assert_eq!(b.peak_bytes(), 90);
        assert_eq!(b.used_bytes(), 20);
    }

    #[test]
    fn grow_takes_effect_immediately() {
        let mut b = SharedBuffer::new(100, BufferPolicy::StaticPool);
        b.on_enqueue(80);
        b.set_total_bytes(200);
        assert_eq!(b.total_bytes(), 200);
        assert_eq!(b.free_bytes(), 120);
    }

    #[test]
    fn shrink_below_occupancy_ratchets_down() {
        let mut b = SharedBuffer::new(1000, BufferPolicy::StaticPool);
        b.on_enqueue(600);
        b.set_total_bytes(300);
        // Clamped to occupancy: nothing free, nothing admitted.
        assert_eq!(b.total_bytes(), 600);
        assert_eq!(b.free_bytes(), 0);
        assert!(!b.admit(0, 1));
        // Draining ratchets total toward the target...
        b.on_dequeue(200);
        assert_eq!(b.total_bytes(), 400);
        // ...and pins at the target once occupancy passes below it.
        b.on_dequeue(200);
        assert_eq!(b.total_bytes(), 300);
        b.on_dequeue(100);
        assert_eq!(b.total_bytes(), 300);
        assert_eq!(b.used_bytes(), 100);
    }

    #[test]
    fn shrink_then_grow_cancels_ratchet() {
        let mut b = SharedBuffer::new(1000, BufferPolicy::StaticPool);
        b.on_enqueue(600);
        b.set_total_bytes(100);
        b.set_total_bytes(800);
        assert_eq!(b.total_bytes(), 800);
        b.on_dequeue(600);
        assert_eq!(b.total_bytes(), 800);
    }

    #[test]
    #[should_panic]
    fn zero_pool_rejected() {
        SharedBuffer::new(0, BufferPolicy::StaticPool);
    }

    #[test]
    #[should_panic]
    fn bad_alpha_rejected() {
        SharedBuffer::new(10, BufferPolicy::DynamicThreshold { alpha: 0.0 });
    }
}
