//! Drop-tail egress queues with threshold ECN marking.
//!
//! This is the queue model the DCTCP paper assumes and the IMC paper's
//! simulations use: FIFO, a fixed capacity (the paper's receiver-ToR queue
//! holds 2 MB = 1333 full-size packets), and an instantaneous-occupancy ECN
//! marking threshold (65 packets in the paper's Section 4, 6.7 % of capacity
//! in their production ToRs). Marking is decided at enqueue time against the
//! occupancy the arriving packet observes.

use crate::packet::{Ecn, Packet, QueuedFrame};
use crate::time::SimTime;
use stats::TimeSeries;
use std::collections::VecDeque;

/// An entry an [`EcnQueue`] can hold. The queue only ever reads an entry's
/// wire size and ECN capability and (on threshold crossing) stamps a CE
/// mark, so the simulator's links queue 8-byte [`QueuedFrame`] residence
/// cards instead of full packets — the packet itself stays parked in the
/// [`crate::packet::PacketPool`] until it reaches a host.
pub trait QueueItem {
    /// Bytes this entry occupies on the wire (headers included).
    fn wire_bytes(&self) -> u32;
    /// True if a switch may CE-mark this entry instead of dropping it.
    fn ecn_capable(&self) -> bool;
    /// Records a CE mark on the entry.
    fn mark_ce(&mut self);
}

impl QueueItem for Packet {
    fn wire_bytes(&self) -> u32 {
        self.wire_size
    }
    fn ecn_capable(&self) -> bool {
        self.ecn.is_capable()
    }
    fn mark_ce(&mut self) {
        self.ecn = Ecn::Ce;
    }
}

impl QueueItem for QueuedFrame {
    fn wire_bytes(&self) -> u32 {
        self.wire
    }
    fn ecn_capable(&self) -> bool {
        self.ecn_capable
    }
    fn mark_ce(&mut self) {
        self.ce = true;
    }
}

/// Configuration of one egress queue.
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Capacity in bytes. Arrivals that would exceed it are dropped.
    pub capacity_bytes: u64,
    /// Optional capacity in packets (whichever limit hits first applies).
    pub capacity_pkts: Option<u32>,
    /// ECN marking threshold in packets: an ECN-capable arrival is marked CE
    /// when the occupancy it observes is at or above this many packets.
    pub ecn_threshold_pkts: Option<u32>,
    /// ECN marking threshold in bytes (either threshold triggers marking).
    pub ecn_threshold_bytes: Option<u64>,
}

impl QueueConfig {
    /// The paper's receiver-ToR configuration: 2 MB / 1333 packets capacity,
    /// 65-packet marking threshold.
    pub fn paper_tor() -> Self {
        QueueConfig {
            capacity_bytes: 2_000_000,
            capacity_pkts: Some(1333),
            ecn_threshold_pkts: Some(65),
            ecn_threshold_bytes: None,
        }
    }

    /// The production ToR configuration of the paper's Section 2: same
    /// 2 MB capacity, but the ECN threshold at 6.7 % of queue capacity
    /// (~89 packets) — higher than the DCTCP paper's 65, "to avoid
    /// underutilization when faced with host burstiness".
    pub fn production_tor() -> Self {
        QueueConfig {
            ecn_threshold_pkts: Some((1333.0 * 0.067) as u32),
            ..Self::paper_tor()
        }
    }

    /// A deep host NIC queue: effectively lossless, no marking (the sender's
    /// own qdisc; DCTCP reacts to fabric marks, not self-queuing).
    pub fn host_nic() -> Self {
        QueueConfig {
            capacity_bytes: 64 * 1024 * 1024,
            capacity_pkts: None,
            ecn_threshold_pkts: None,
            ecn_threshold_bytes: None,
        }
    }
}

/// Why an arrival was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The queue's own byte or packet capacity was exceeded.
    QueueFull,
    /// The switch's shared buffer refused admission (dynamic threshold).
    SharedBuffer,
}

/// Result of offering a packet to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Accepted; `marked` reports whether CE was set on this packet.
    Queued { marked: bool },
    /// Rejected and dropped.
    Dropped(DropReason),
}

/// Counters maintained by every queue.
#[derive(Debug, Clone, Default)]
pub struct QueueStats {
    pub enqueued_pkts: u64,
    pub enqueued_bytes: u64,
    pub dequeued_pkts: u64,
    pub dequeued_bytes: u64,
    pub dropped_pkts: u64,
    pub dropped_bytes: u64,
    pub shared_buffer_drops: u64,
    pub marked_pkts: u64,
    /// Highest byte occupancy ever observed.
    pub watermark_bytes: u64,
    /// Highest packet occupancy ever observed.
    pub watermark_pkts: u32,
}

/// A FIFO drop-tail queue with threshold ECN marking and optional
/// fixed-interval depth recording.
///
/// Generic over its entry type: standalone uses hold full [`Packet`]s, the
/// simulator's links hold [`QueuedFrame`]s (slot + wire size) so queue
/// occupancy is a struct-of-arrays split away from the packet contents.
#[derive(Debug)]
pub struct EcnQueue<T: QueueItem = Packet> {
    cfg: QueueConfig,
    fifo: VecDeque<T>,
    bytes: u64,
    stats: QueueStats,
    monitor: Option<TimeSeries>,
}

impl<T: QueueItem> EcnQueue<T> {
    /// Creates an empty queue.
    pub fn new(cfg: QueueConfig) -> Self {
        assert!(cfg.capacity_bytes > 0, "zero-capacity queue");
        EcnQueue {
            cfg,
            fifo: VecDeque::new(),
            bytes: 0,
            stats: QueueStats::default(),
            monitor: None,
        }
    }

    /// Enables depth recording: the maximum packet occupancy seen in each
    /// `interval`-wide bucket is retained (this is what the paper's Fig. 5–6
    /// plot, and — with a 60 s interval — the production "high watermark").
    pub fn enable_monitor(&mut self, interval: SimTime) {
        self.monitor = Some(TimeSeries::new(interval.as_ps()));
    }

    /// The recorded depth series, if monitoring was enabled.
    pub fn monitor(&self) -> Option<&TimeSeries> {
        self.monitor.as_ref()
    }

    /// Current occupancy in bytes (excluding any frame being serialized).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Current occupancy in packets.
    pub fn pkts(&self) -> u32 {
        self.fifo.len() as u32
    }

    /// True if no packets are waiting.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Queue configuration.
    pub fn config(&self) -> &QueueConfig {
        &self.cfg
    }

    /// Overwrites the ECN marking thresholds at runtime (fault injection:
    /// a mis-configuration window). `None`/`None` disables marking.
    pub fn set_ecn_thresholds(&mut self, pkts: Option<u32>, bytes: Option<u64>) {
        self.cfg.ecn_threshold_pkts = pkts;
        self.cfg.ecn_threshold_bytes = bytes;
    }

    fn would_overflow(&self, pkt: &T) -> bool {
        if self.bytes + pkt.wire_bytes() as u64 > self.cfg.capacity_bytes {
            return true;
        }
        if let Some(cap) = self.cfg.capacity_pkts {
            if self.fifo.len() as u32 + 1 > cap {
                return true;
            }
        }
        false
    }

    fn should_mark(&self) -> bool {
        if let Some(k) = self.cfg.ecn_threshold_pkts {
            if self.fifo.len() as u32 >= k {
                return true;
            }
        }
        if let Some(k) = self.cfg.ecn_threshold_bytes {
            if self.bytes >= k {
                return true;
            }
        }
        false
    }

    fn record_depth(&mut self, now: SimTime) {
        let depth = self.fifo.len() as f64;
        if let Some(m) = &mut self.monitor {
            m.record_max(now.as_ps(), depth);
        }
    }

    /// Records a drop decided outside the queue (shared-buffer refusal).
    pub fn note_shared_drop(&mut self, wire_bytes: u64) {
        self.stats.dropped_pkts += 1;
        self.stats.dropped_bytes += wire_bytes;
        self.stats.shared_buffer_drops += 1;
    }

    /// Offers a packet. On acceptance the packet (possibly CE-marked) joins
    /// the FIFO tail; on overflow it is dropped and counted.
    pub fn enqueue(&mut self, now: SimTime, mut pkt: T) -> EnqueueOutcome {
        if self.would_overflow(&pkt) {
            self.stats.dropped_pkts += 1;
            self.stats.dropped_bytes += pkt.wire_bytes() as u64;
            return EnqueueOutcome::Dropped(DropReason::QueueFull);
        }
        let wire = pkt.wire_bytes() as u64;
        let marked = pkt.ecn_capable() && self.should_mark();
        if marked {
            pkt.mark_ce();
            self.stats.marked_pkts += 1;
        }
        self.bytes += wire;
        self.fifo.push_back(pkt);
        self.stats.enqueued_pkts += 1;
        self.stats.enqueued_bytes += wire;
        self.stats.watermark_bytes = self.stats.watermark_bytes.max(self.bytes);
        self.stats.watermark_pkts = self.stats.watermark_pkts.max(self.fifo.len() as u32);
        self.record_depth(now);
        EnqueueOutcome::Queued { marked }
    }

    /// Removes the head-of-line packet.
    pub fn dequeue(&mut self, now: SimTime) -> Option<T> {
        let pkt = self.fifo.pop_front()?;
        self.bytes -= pkt.wire_bytes() as u64;
        self.stats.dequeued_pkts += 1;
        self.stats.dequeued_bytes += pkt.wire_bytes() as u64;
        self.record_depth(now);
        Some(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, NodeId};

    fn pkt(size_payload: u32) -> Packet {
        Packet::data(
            FlowId(0),
            NodeId(0),
            NodeId(1),
            0,
            size_payload,
            false,
            SimTime::ZERO,
        )
    }

    fn small_cfg() -> QueueConfig {
        QueueConfig {
            capacity_bytes: 4500, // three full frames
            capacity_pkts: None,
            ecn_threshold_pkts: Some(2),
            ecn_threshold_bytes: None,
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = EcnQueue::new(QueueConfig::host_nic());
        for i in 0..5u32 {
            let mut p = pkt(100);
            p.id = i as u64;
            assert!(matches!(
                q.enqueue(SimTime::ZERO, p),
                EnqueueOutcome::Queued { .. }
            ));
        }
        for i in 0..5u64 {
            assert_eq!(q.dequeue(SimTime::ZERO).unwrap().id, i);
        }
        assert!(q.dequeue(SimTime::ZERO).is_none());
    }

    #[test]
    fn byte_capacity_enforced() {
        let mut q = EcnQueue::new(small_cfg());
        assert!(matches!(
            q.enqueue(SimTime::ZERO, pkt(1446)),
            EnqueueOutcome::Queued { .. }
        ));
        assert!(matches!(
            q.enqueue(SimTime::ZERO, pkt(1446)),
            EnqueueOutcome::Queued { .. }
        ));
        assert!(matches!(
            q.enqueue(SimTime::ZERO, pkt(1446)),
            EnqueueOutcome::Queued { .. }
        ));
        // Fourth full frame exceeds 4500 bytes.
        assert_eq!(
            q.enqueue(SimTime::ZERO, pkt(1446)),
            EnqueueOutcome::Dropped(DropReason::QueueFull)
        );
        assert_eq!(q.stats().dropped_pkts, 1);
        assert_eq!(q.stats().dropped_bytes, 1500);
        // After draining one, there is room again.
        q.dequeue(SimTime::ZERO).unwrap();
        assert!(matches!(
            q.enqueue(SimTime::ZERO, pkt(1446)),
            EnqueueOutcome::Queued { .. }
        ));
    }

    #[test]
    fn pkt_capacity_enforced() {
        let cfg = QueueConfig {
            capacity_bytes: u64::MAX / 2,
            capacity_pkts: Some(2),
            ecn_threshold_pkts: None,
            ecn_threshold_bytes: None,
        };
        let mut q = EcnQueue::new(cfg);
        q.enqueue(SimTime::ZERO, pkt(10));
        q.enqueue(SimTime::ZERO, pkt(10));
        assert_eq!(
            q.enqueue(SimTime::ZERO, pkt(10)),
            EnqueueOutcome::Dropped(DropReason::QueueFull)
        );
    }

    #[test]
    fn marks_at_threshold() {
        let mut q = EcnQueue::new(small_cfg()); // threshold 2 pkts
        assert_eq!(
            q.enqueue(SimTime::ZERO, pkt(100)),
            EnqueueOutcome::Queued { marked: false }
        );
        assert_eq!(
            q.enqueue(SimTime::ZERO, pkt(100)),
            EnqueueOutcome::Queued { marked: false }
        );
        // Third arrival observes 2 queued packets >= threshold -> marked.
        let out = q.enqueue(SimTime::ZERO, pkt(100));
        assert_eq!(out, EnqueueOutcome::Queued { marked: true });
        assert_eq!(q.stats().marked_pkts, 1);
        // The marked packet actually carries CE.
        q.dequeue(SimTime::ZERO);
        q.dequeue(SimTime::ZERO);
        assert!(q.dequeue(SimTime::ZERO).unwrap().is_ce());
    }

    #[test]
    fn non_ect_packets_never_marked() {
        let mut q = EcnQueue::new(small_cfg());
        for _ in 0..2 {
            q.enqueue(SimTime::ZERO, pkt(100));
        }
        let ack = Packet::ack(FlowId(0), NodeId(0), NodeId(1), 0, false, SimTime::ZERO);
        assert_eq!(
            q.enqueue(SimTime::ZERO, ack),
            EnqueueOutcome::Queued { marked: false }
        );
    }

    #[test]
    fn byte_threshold_marking() {
        let cfg = QueueConfig {
            capacity_bytes: 1_000_000,
            capacity_pkts: None,
            ecn_threshold_pkts: None,
            ecn_threshold_bytes: Some(3000),
        };
        let mut q = EcnQueue::new(cfg);
        assert_eq!(
            q.enqueue(SimTime::ZERO, pkt(1446)),
            EnqueueOutcome::Queued { marked: false }
        );
        assert_eq!(
            q.enqueue(SimTime::ZERO, pkt(1446)),
            EnqueueOutcome::Queued { marked: false }
        );
        assert_eq!(
            q.enqueue(SimTime::ZERO, pkt(1446)),
            EnqueueOutcome::Queued { marked: true }
        );
    }

    #[test]
    fn ecn_thresholds_can_be_rewritten_at_runtime() {
        let mut q = EcnQueue::new(small_cfg()); // threshold 2 pkts
        q.enqueue(SimTime::ZERO, pkt(100));
        q.enqueue(SimTime::ZERO, pkt(100));
        // Mis-configuration window: marking disabled.
        q.set_ecn_thresholds(None, None);
        assert_eq!(
            q.enqueue(SimTime::ZERO, pkt(100)),
            EnqueueOutcome::Queued { marked: false }
        );
        // Restored: the next arrival observes 3 queued >= 2 and is marked.
        q.set_ecn_thresholds(Some(2), None);
        assert_eq!(
            q.enqueue(SimTime::ZERO, pkt(100)),
            EnqueueOutcome::Queued { marked: true }
        );
    }

    #[test]
    fn watermarks_track_peaks() {
        let mut q = EcnQueue::new(QueueConfig::host_nic());
        q.enqueue(SimTime::ZERO, pkt(1446));
        q.enqueue(SimTime::ZERO, pkt(1446));
        q.dequeue(SimTime::ZERO);
        q.dequeue(SimTime::ZERO);
        assert_eq!(q.stats().watermark_pkts, 2);
        assert_eq!(q.stats().watermark_bytes, 3000);
        assert_eq!(q.bytes(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn monitor_records_max_depth_per_bucket() {
        let mut q = EcnQueue::new(QueueConfig::host_nic());
        q.enable_monitor(SimTime::from_us(10));
        q.enqueue(SimTime::from_us(1), pkt(100));
        q.enqueue(SimTime::from_us(2), pkt(100));
        q.dequeue(SimTime::from_us(3));
        q.dequeue(SimTime::from_us(12));
        let m = q.monitor().unwrap();
        assert_eq!(m.get(0), 2.0); // peak in first bucket
        assert_eq!(m.get(1), 0.0); // drained in second
    }

    #[test]
    fn conservation_enq_eq_deq_plus_queued() {
        let mut q = EcnQueue::new(small_cfg());
        let mut dropped = 0;
        for _ in 0..10 {
            if matches!(
                q.enqueue(SimTime::ZERO, pkt(1446)),
                EnqueueOutcome::Dropped(_)
            ) {
                dropped += 1;
            }
        }
        let mut deq = 0;
        while q.dequeue(SimTime::ZERO).is_some() {
            deq += 1;
        }
        assert_eq!(q.stats().enqueued_pkts, 10 - dropped);
        assert_eq!(q.stats().dropped_pkts, dropped);
        assert_eq!(deq, 10 - dropped);
        assert_eq!(q.bytes(), 0);
    }

    #[test]
    fn paper_tor_constants() {
        let cfg = QueueConfig::paper_tor();
        assert_eq!(cfg.capacity_pkts, Some(1333));
        assert_eq!(cfg.ecn_threshold_pkts, Some(65));
        // 1333 full frames actually fit in the byte budget.
        assert!(1333 * 1500 <= cfg.capacity_bytes);
    }
}
