//! The receiving half of a connection.
//!
//! Reassembles the byte stream (cumulative ACKs plus an out-of-order range
//! set), generates acknowledgments — immediately per segment when delayed
//! ACKs are off (the paper's simulation setting), or per the DCTCP paper's
//! two-state delayed-ACK machine when on — and echoes ECN marks back to the
//! sender as ECN-Echo.

use crate::config::{DelayedAckConfig, TcpConfig};
use crate::keys;
use crate::ranges::AckRanges;
use crate::seq;
use crate::stats::ReceiverStats;
use simnet::{Ctx, FlowId, NodeId, Packet, SimTime};
use std::collections::BTreeMap;

/// Ranges of received packet numbers a QUIC-mode receiver remembers.
/// Old gaps beyond this are forgotten, keeping the state (and the wire
/// frame built from its top ranges) bounded like a real implementation.
const PN_RANGE_CAP: usize = 64;

/// Receiver-side connection state.
#[derive(Debug)]
pub struct Receiver {
    flow: FlowId,
    /// The sending host (where ACKs go).
    peer: NodeId,
    /// Next in-order byte expected (absolute).
    rcv_nxt: u64,
    /// Out-of-order ranges, disjoint and above `rcv_nxt`: start -> end.
    ooo: BTreeMap<u64, u64>,
    /// Received packet numbers (QUIC mode only; stays empty under TCP).
    pns: AckRanges,
    delack: Option<DelayedAckConfig>,
    /// DCTCP delayed-ACK state: the CE value of the accumulation run.
    ce_state: bool,
    /// Full segments received since the last ACK was sent.
    pending_segs: u32,
    /// Timestamp of the newest data segment (echoed for RTT).
    last_ts: SimTime,
    stats: ReceiverStats,
}

impl Receiver {
    /// Creates the receiving half of `flow`, acknowledging to `peer`.
    pub fn new(flow: FlowId, peer: NodeId, cfg: &TcpConfig) -> Self {
        Receiver {
            flow,
            peer,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            pns: AckRanges::with_cap(PN_RANGE_CAP),
            delack: cfg.delayed_ack,
            ce_state: false,
            pending_segs: 0,
            last_ts: SimTime::ZERO,
            stats: ReceiverStats::default(),
        }
    }

    /// Bytes delivered in order so far.
    pub fn delivered(&self) -> u64 {
        self.rcv_nxt
    }

    /// Counter snapshot.
    pub fn stats(&self) -> &ReceiverStats {
        &self.stats
    }

    /// Outstanding out-of-order ranges (diagnostic).
    pub fn ooo_ranges(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.ooo.iter().map(|(&s, &e)| (s, e))
    }

    fn send_ack(&mut self, ctx: &mut Ctx, ece: bool) {
        let at = self.rcv_nxt;
        self.send_ack_at(ctx, at, ece);
    }

    /// Sends an ACK for an explicit acknowledgment number (used by the
    /// DCTCP state machine, which acknowledges the bytes received *before*
    /// a CE state change with the old state's ECE).
    fn send_ack_at(&mut self, ctx: &mut Ctx, ack_abs: u64, ece: bool) {
        #[cfg(feature = "check")]
        {
            // Conformance oracle: an ACK may never claim bytes beyond what
            // was reassembled, and ECE may only echo an actual CE mark.
            if ack_abs > self.rcv_nxt {
                simnet::check::violated(
                    crate::spec::keys::ACK_BEYOND_RCV_NXT,
                    format_args!(
                        "flow {}: acking {} with rcv_nxt {}",
                        self.flow.0, ack_abs, self.rcv_nxt
                    ),
                );
            }
            if ece && self.stats.ce_segs == 0 {
                simnet::check::violated(
                    crate::spec::keys::ECE_WITHOUT_CE,
                    format_args!(
                        "flow {}: ECE set but no CE segment ever received",
                        self.flow.0
                    ),
                );
            }
        }
        let ack = Packet::ack(
            self.flow,
            ctx.node(),
            self.peer,
            seq::wrap(ack_abs),
            ece,
            self.last_ts,
        );
        ctx.send(ack);
        self.stats.acks_sent += 1;
        self.pending_segs = 0;
        ctx.cancel_timer(keys::delack_key(self.flow));
    }

    /// Handles an arriving data segment. Returns the number of bytes newly
    /// delivered in order (0 for duplicates and out-of-order arrivals).
    pub fn on_data(
        &mut self,
        ctx: &mut Ctx,
        seq_wire: u32,
        payload: u32,
        ce: bool,
        ts: SimTime,
    ) -> u64 {
        debug_assert!(payload > 0, "empty data segment");
        self.stats.segs_received += 1;
        if ce {
            self.stats.ce_segs += 1;
        }
        self.last_ts = ts;

        let s = seq::unwrap(seq_wire, self.rcv_nxt);
        let e = s + payload as u64;

        // Duplicate accounting: bytes overlapping anything already received.
        self.stats.dup_bytes += self.overlap_bytes(s, e);

        let before = self.rcv_nxt;
        let in_order = s <= self.rcv_nxt && e > self.rcv_nxt;
        let pure_dup = e <= self.rcv_nxt;

        if pure_dup {
            // Old data: ACK immediately (this is what produces duplicate
            // ACKs for the sender after a retransmission raced delivery).
            let ece = self.current_ece(ce);
            self.send_ack(ctx, ece);
            return 0;
        }

        if in_order {
            self.rcv_nxt = e;
            self.absorb_contiguous();
            #[cfg(feature = "check")]
            if self.rcv_nxt < before {
                simnet::check::violated(
                    crate::spec::keys::RCV_NXT_MONOTONIC,
                    format_args!(
                        "flow {}: rcv_nxt moved backwards {} -> {}",
                        self.flow.0, before, self.rcv_nxt
                    ),
                );
            }
        } else {
            // A gap: store and ACK immediately (RFC 5681 §4.2 requires an
            // immediate dup ACK so fast retransmit can trigger).
            self.stats.ooo_segs += 1;
            self.insert_ooo(s, e);
            let ece = self.current_ece(ce);
            self.send_ack(ctx, ece);
            return 0;
        }

        let newly = self.rcv_nxt - before;
        self.stats.bytes_delivered += newly;

        match self.delack {
            None => {
                // Immediate per-packet ACK with this packet's CE (the
                // per-packet ECE mode DCTCP uses when delayed ACKs are off).
                self.send_ack(ctx, ce);
            }
            Some(dcfg) => self.delayed_ack_on_data(ctx, ce, dcfg, before),
        }
        newly
    }

    /// Handles an arriving QUIC-style data packet: records the packet
    /// number, reassembles the stream by offset (the same machinery as
    /// TCP), and acknowledges *immediately* with the top received
    /// packet-number ranges — QUIC mode ignores delayed ACKs
    /// (`max_ack_delay = 0`), echoing this packet's CE. Returns the bytes
    /// newly delivered in order.
    pub fn on_quic_data(
        &mut self,
        ctx: &mut Ctx,
        pn_wire: u32,
        offset_wire: u32,
        payload: u32,
        ce: bool,
        ts: SimTime,
    ) -> u64 {
        debug_assert!(payload > 0, "empty data packet");
        self.stats.segs_received += 1;
        if ce {
            self.stats.ce_segs += 1;
        }
        self.last_ts = ts;

        let pn = seq::unwrap(pn_wire, self.pns.end());
        let s = seq::unwrap(offset_wire, self.rcv_nxt);
        let e = s + payload as u64;

        // A packet number arriving twice means the network duplicated the
        // frame; stream-byte overlap (retransmitted data racing delivery)
        // is the interesting duplicate measure, same as TCP.
        self.stats.dup_bytes += self.overlap_bytes(s, e);
        self.pns.insert_one(pn);

        let before = self.rcv_nxt;
        if e <= self.rcv_nxt {
            // Stale stream bytes under a fresh packet number: the ACK
            // below still reports the pn so the sender can retire it.
        } else if s <= self.rcv_nxt {
            self.rcv_nxt = e;
            self.absorb_contiguous();
            #[cfg(feature = "check")]
            if self.rcv_nxt < before {
                simnet::check::violated(
                    crate::spec::keys::RCV_NXT_MONOTONIC,
                    format_args!(
                        "flow {}: rcv_nxt moved backwards {} -> {}",
                        self.flow.0, before, self.rcv_nxt
                    ),
                );
            }
        } else {
            self.stats.ooo_segs += 1;
            self.insert_ooo(s, e);
        }
        let newly = self.rcv_nxt - before;
        self.stats.bytes_delivered += newly;
        self.send_quic_ack(ctx, ce);
        newly
    }

    /// Emits an ACK frame carrying the highest received packet-number
    /// ranges (RFC 9000 §13.1: every ack-eliciting packet is acknowledged;
    /// §19.3.1: ranges are descending and disjoint).
    fn send_quic_ack(&mut self, ctx: &mut Ctx, ece: bool) {
        let blocks = self.pns.to_blocks();
        #[cfg(feature = "check")]
        {
            // Conformance oracle: wire ranges must descend without
            // overlap or touch, and ECE may only echo an actual CE mark.
            let r = blocks.ranges();
            for w in r.windows(2) {
                if w[1].1 >= w[0].0 || w[1].0 > w[1].1 {
                    simnet::check::violated(
                        crate::spec::keys::QUIC_ACK_BLOCKS_SOUND,
                        format_args!("flow {}: malformed ACK ranges {r:?}", self.flow.0),
                    );
                }
            }
            if let Some(&(lo, hi)) = r.first() {
                if lo > hi {
                    simnet::check::violated(
                        crate::spec::keys::QUIC_ACK_BLOCKS_SOUND,
                        format_args!("flow {}: inverted ACK range {lo}..{hi}", self.flow.0),
                    );
                }
            }
            if ece && self.stats.ce_segs == 0 {
                simnet::check::violated(
                    crate::spec::keys::ECE_WITHOUT_CE,
                    format_args!(
                        "flow {}: ECE set but no CE packet ever received",
                        self.flow.0
                    ),
                );
            }
        }
        let ack = Packet::quic_ack(self.flow, ctx.node(), self.peer, blocks, ece, self.last_ts);
        ctx.send(ack);
        self.stats.acks_sent += 1;
    }

    /// DCTCP's delayed-ACK state machine (DCTCP paper, Fig. 8): on a CE
    /// state change, immediately ACK the run accumulated *before* this
    /// segment with the *old* state's ECE; otherwise accumulate up to
    /// `max_segments` or the timer.
    fn delayed_ack_on_data(
        &mut self,
        ctx: &mut Ctx,
        ce: bool,
        dcfg: DelayedAckConfig,
        prior_rcv_nxt: u64,
    ) {
        if ce != self.ce_state {
            if self.pending_segs > 0 {
                let prior = self.ce_state;
                self.send_ack_at(ctx, prior_rcv_nxt, prior);
            }
            self.ce_state = ce;
        }
        self.pending_segs += 1;
        if self.pending_segs >= dcfg.max_segments {
            let ece = self.ce_state;
            self.send_ack(ctx, ece);
        } else {
            ctx.set_timer_after(keys::delack_key(self.flow), dcfg.timeout);
        }
    }

    /// The ECE to put on an immediate (dup/ooo) ACK: per-packet CE when
    /// delayed ACKs are off, else the running CE state.
    fn current_ece(&mut self, ce: bool) -> bool {
        match self.delack {
            None => ce,
            Some(_) => {
                self.ce_state = ce;
                ce
            }
        }
    }

    /// The delayed-ACK timer fired.
    pub fn on_delack_timer(&mut self, ctx: &mut Ctx) {
        if self.pending_segs > 0 {
            let ece = self.ce_state;
            self.send_ack(ctx, ece);
        }
    }

    fn overlap_bytes(&self, s: u64, e: u64) -> u64 {
        let mut dup = e.min(self.rcv_nxt).saturating_sub(s);
        // Overlap with stored out-of-order ranges.
        for (&rs, &re) in self.ooo.range(..e) {
            if re > s {
                dup += re.min(e).saturating_sub(rs.max(s));
            }
        }
        dup
    }

    fn insert_ooo(&mut self, s: u64, e: u64) {
        let mut new_s = s;
        let mut new_e = e;
        // Merge every range that overlaps or touches [s, e), one at a time
        // (stored ranges are disjoint, so each removal strictly widens the
        // merged range and the scan converges without a scratch list).
        while let Some((&rs, &re)) = self.ooo.range(..=new_e).find(|(_, &re)| re >= new_s) {
            self.ooo.remove(&rs);
            new_s = new_s.min(rs);
            new_e = new_e.max(re);
        }
        self.ooo.insert(new_s, new_e);
    }

    fn absorb_contiguous(&mut self) {
        while let Some((&rs, &re)) = self.ooo.first_key_value() {
            if rs <= self.rcv_nxt {
                self.ooo.remove(&rs);
                self.rcv_nxt = self.rcv_nxt.max(re);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Cmd, PacketKind};

    const MSS: u32 = 1446;

    struct Harness {
        rx: Receiver,
        cmds: Vec<Cmd>,
    }

    impl Harness {
        fn new(delack: Option<DelayedAckConfig>) -> Self {
            let cfg = TcpConfig {
                delayed_ack: delack,
                ..TcpConfig::default()
            };
            Harness {
                rx: Receiver::new(FlowId(1), NodeId(0), &cfg),
                cmds: Vec::new(),
            }
        }

        fn data(&mut self, seq: u64, len: u32, ce: bool) -> u64 {
            let mut ctx = Ctx::new(SimTime::from_us(seq), NodeId(5), &mut self.cmds);
            self.rx
                .on_data(&mut ctx, seq::wrap(seq), len, ce, SimTime::from_us(1))
        }

        /// Drains and returns (ack_number, ece) for every ACK sent.
        fn acks(&mut self) -> Vec<(u32, bool)> {
            let out = self
                .cmds
                .iter()
                .filter_map(|c| match c {
                    Cmd::Send(p) => match p.kind {
                        PacketKind::Ack { ack, ece, .. } => Some((ack, ece)),
                        _ => None,
                    },
                    _ => None,
                })
                .collect();
            self.cmds.clear();
            out
        }
    }

    #[test]
    fn in_order_delivery_acks_each_segment() {
        let mut h = Harness::new(None);
        assert_eq!(h.data(0, MSS, false), MSS as u64);
        assert_eq!(h.data(MSS as u64, MSS, false), MSS as u64);
        let acks = h.acks();
        assert_eq!(acks, vec![(MSS, false), (2 * MSS, false)]);
        assert_eq!(h.rx.delivered(), 2 * MSS as u64);
        assert_eq!(h.rx.stats().bytes_delivered, 2 * MSS as u64);
    }

    #[test]
    fn ce_reflected_per_packet() {
        let mut h = Harness::new(None);
        h.data(0, MSS, true);
        h.data(MSS as u64, MSS, false);
        assert_eq!(h.acks(), vec![(MSS, true), (2 * MSS, false)]);
        assert_eq!(h.rx.stats().ce_segs, 1);
    }

    #[test]
    fn out_of_order_generates_dup_acks_then_catches_up() {
        let mut h = Harness::new(None);
        h.data(0, MSS, false);
        h.acks();
        // Segment 2 and 3 arrive before segment 1's retransmission.
        assert_eq!(h.data(2 * MSS as u64, MSS, false), 0);
        assert_eq!(h.data(3 * MSS as u64, MSS, false), 0);
        let acks = h.acks();
        assert_eq!(acks, vec![(MSS, false), (MSS, false)], "dup acks at hole");
        assert_eq!(h.rx.stats().ooo_segs, 2);
        // The hole fills: one ACK jumping past everything buffered.
        assert_eq!(h.data(MSS as u64, MSS, false), 3 * MSS as u64);
        assert_eq!(h.acks(), vec![(4 * MSS, false)]);
        assert_eq!(h.rx.ooo_ranges().count(), 0);
    }

    #[test]
    fn pure_duplicate_counts_and_acks() {
        let mut h = Harness::new(None);
        h.data(0, MSS, false);
        h.acks();
        assert_eq!(h.data(0, MSS, false), 0); // spurious retransmission
        assert_eq!(h.rx.stats().dup_bytes, MSS as u64);
        assert_eq!(h.acks(), vec![(MSS, false)]);
    }

    #[test]
    fn partial_overlap_counts_only_dup_portion() {
        let mut h = Harness::new(None);
        h.data(0, MSS, false);
        h.acks();
        // Resend [0, MSS) plus fresh [MSS, 2 MSS) as one segment.
        assert_eq!(h.data(0, 2 * MSS, false), MSS as u64);
        assert_eq!(h.rx.stats().dup_bytes, MSS as u64);
    }

    #[test]
    fn overlap_with_ooo_range_detected() {
        let mut h = Harness::new(None);
        h.data(2 * MSS as u64, MSS, false); // gap
        h.acks();
        h.data(2 * MSS as u64, MSS, false); // same ooo segment again
        assert_eq!(h.rx.stats().dup_bytes, MSS as u64);
        assert_eq!(h.rx.ooo_ranges().count(), 1);
    }

    #[test]
    fn ooo_ranges_merge() {
        let mut h = Harness::new(None);
        h.data(4 * MSS as u64, MSS, false);
        h.data(2 * MSS as u64, MSS, false);
        h.data(3 * MSS as u64, MSS, false); // bridges the two
        assert_eq!(h.rx.ooo_ranges().count(), 1);
        let (s, e) = h.rx.ooo_ranges().next().unwrap();
        assert_eq!((s, e), (2 * MSS as u64, 5 * MSS as u64));
    }

    #[test]
    fn delayed_ack_accumulates_two_segments() {
        let mut h = Harness::new(Some(DelayedAckConfig::default()));
        h.data(0, MSS, false);
        assert_eq!(h.acks(), vec![], "first segment held");
        h.data(MSS as u64, MSS, false);
        assert_eq!(h.acks(), vec![(2 * MSS, false)], "acked at 2 segments");
    }

    #[test]
    fn delayed_ack_timer_flushes() {
        let mut h = Harness::new(Some(DelayedAckConfig::default()));
        h.data(0, MSS, false);
        assert_eq!(h.acks(), vec![]);
        let mut ctx = Ctx::new(SimTime::from_ms(2), NodeId(5), &mut h.cmds);
        h.rx.on_delack_timer(&mut ctx);
        assert_eq!(h.acks(), vec![(MSS, false)]);
        // Timer with nothing pending is a no-op.
        let mut ctx = Ctx::new(SimTime::from_ms(3), NodeId(5), &mut h.cmds);
        h.rx.on_delack_timer(&mut ctx);
        assert_eq!(h.acks(), vec![]);
    }

    #[test]
    fn dctcp_state_change_forces_immediate_ack() {
        let mut h = Harness::new(Some(DelayedAckConfig {
            max_segments: 100, // effectively only state changes + timer ack
            timeout: SimTime::from_ms(1),
        }));
        h.data(0, MSS, false);
        h.data(MSS as u64, MSS, false);
        assert_eq!(h.acks(), vec![]);
        // CE flips: the accumulated run is acked with the OLD state (false).
        h.data(2 * MSS as u64, MSS, true);
        assert_eq!(h.acks(), vec![(2 * MSS, false)]);
        // CE flips back: the CE run is acked with ece = true.
        h.data(3 * MSS as u64, MSS, false);
        assert_eq!(h.acks(), vec![(3 * MSS, true)]);
    }

    // ---- QUIC mode ----

    impl Harness {
        fn quic_data(&mut self, pn: u64, offset: u64, len: u32, ce: bool) -> u64 {
            let mut ctx = Ctx::new(SimTime::from_us(pn), NodeId(5), &mut self.cmds);
            self.rx.on_quic_data(
                &mut ctx,
                seq::wrap(pn),
                seq::wrap(offset),
                len,
                ce,
                SimTime::from_us(1),
            )
        }

        /// Drains (largest_pn, num_ranges, ece) for every QUIC ACK sent.
        fn quic_acks(&mut self) -> Vec<(u32, usize, bool)> {
            let out = self
                .cmds
                .iter()
                .filter_map(|c| match c {
                    Cmd::Send(p) => match p.kind {
                        PacketKind::QuicAck { blocks, ece, .. } => {
                            Some((blocks.largest(), blocks.len(), ece))
                        }
                        _ => None,
                    },
                    _ => None,
                })
                .collect();
            self.cmds.clear();
            out
        }
    }

    #[test]
    fn quic_every_packet_acked_immediately() {
        // Delayed-ACK config is ignored in QUIC mode: one ACK per packet.
        let mut h = Harness::new(Some(DelayedAckConfig::default()));
        assert_eq!(h.quic_data(0, 0, MSS, false), MSS as u64);
        assert_eq!(h.quic_data(1, MSS as u64, MSS, true), MSS as u64);
        let acks = h.quic_acks();
        assert_eq!(acks, vec![(0, 1, false), (1, 1, true)]);
        assert_eq!(h.rx.delivered(), 2 * MSS as u64);
    }

    #[test]
    fn quic_gap_reports_ranges() {
        let mut h = Harness::new(None);
        h.quic_data(0, 0, MSS, false);
        h.quic_acks();
        // pn 2 arrives before pn 1: two ranges {2}, {0}.
        assert_eq!(h.quic_data(2, 2 * MSS as u64, MSS, false), 0);
        assert_eq!(h.quic_acks(), vec![(2, 2, false)]);
        assert_eq!(h.rx.stats().ooo_segs, 1);
        // The hole fills: back to one range, stream catches up.
        assert_eq!(h.quic_data(1, MSS as u64, MSS, false), 2 * MSS as u64);
        assert_eq!(h.quic_acks(), vec![(2, 1, false)]);
        assert_eq!(h.rx.ooo_ranges().count(), 0);
    }

    #[test]
    fn quic_retransmitted_bytes_under_fresh_pn_counted_dup() {
        let mut h = Harness::new(None);
        h.quic_data(0, 0, MSS, false);
        h.quic_acks();
        // Same stream bytes again, new packet number (a spurious retx).
        assert_eq!(h.quic_data(1, 0, MSS, false), 0);
        assert_eq!(h.rx.stats().dup_bytes, MSS as u64);
        // Still acked — the sender needs pn 1 retired.
        assert_eq!(h.quic_acks(), vec![(1, 1, false)]);
    }

    #[test]
    fn wire_wrap_handled_via_unwrap() {
        let mut h = Harness::new(None);
        // Pretend the stream is near the 32-bit boundary.
        h.rx.rcv_nxt = (1u64 << 32) - MSS as u64;
        let seq_wire = seq::wrap(h.rx.rcv_nxt);
        let mut ctx = Ctx::new(SimTime::ZERO, NodeId(5), &mut h.cmds);
        let newly = h.rx.on_data(&mut ctx, seq_wire, MSS, false, SimTime::ZERO);
        assert_eq!(newly, MSS as u64);
        assert_eq!(h.rx.delivered(), 1 << 32);
    }
}
