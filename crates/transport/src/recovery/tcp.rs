//! NewReno-style TCP loss recovery.
//!
//! The original stack, extracted behind [`Recovery`]:
//!
//! - transmit while `in_flight < cwnd` (plus transient fast-recovery
//!   inflation per RFC 5681),
//! - triple duplicate ACK → fast retransmit and recovery; partial ACKs
//!   retransmit the next hole (NewReno, RFC 6582),
//! - retransmission timeout per RFC 6298 with exponential backoff → window
//!   collapse to the floor and slow-start restart.
//!
//! The 200 ms-style RTO floor (via [`crate::rtt::RttEstimator`]) is what
//! produces the paper's Mode 3 burst completion times; the QUIC engine in
//! [`super::quic`] exists to test exactly that attribution.

use super::{AckView, Recovery, TxCtx};
use crate::config::{TcpConfig, TransportKind};
use crate::keys;
use crate::seq;
#[cfg(feature = "check")]
use crate::spec;
use simnet::{FlowId, SimTime};
use telemetry::{FlowState, WindowTrigger};

/// NewReno sequence-space and recovery state.
#[derive(Debug)]
pub struct TcpRecovery {
    /// Oldest unacknowledged byte.
    snd_una: u64,
    /// Next byte to transmit.
    snd_nxt: u64,
    dup_acks: u32,
    in_recovery: bool,
    /// `snd_nxt` at recovery entry; recovery ends when `snd_una` passes it.
    recover: u64,
    /// Fast-recovery window inflation in bytes (RFC 5681 §3.2 style).
    recovery_extra: u64,
    rto_armed: bool,
    /// True between an RTO and the next cumulative ACK (exponential
    /// backoff territory — the paper's Mode 3 stragglers live here).
    backing_off: bool,
    /// Swift-style pacing: enabled when the config allows sub-MSS windows.
    pacing: bool,
    /// Earliest time the next paced packet may leave.
    next_pace_at: SimTime,
    /// Flow-specific phase used to re-seed a stale pacing clock: without
    /// it, every flow of a synchronized burst would fire its "paced" first
    /// packet at the same instant, defeating the point of pacing.
    pace_phase: u64,
}

impl TcpRecovery {
    /// Fresh NewReno state for `flow`.
    pub fn new(cfg: &TcpConfig, flow: FlowId) -> Self {
        TcpRecovery {
            snd_una: 0,
            snd_nxt: 0,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            recovery_extra: 0,
            rto_armed: false,
            backing_off: false,
            pacing: cfg.pacing.is_some(),
            next_pace_at: SimTime::ZERO,
            pace_phase: (flow.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn state(&self) -> FlowState {
        if self.backing_off {
            FlowState::Backoff
        } else if self.in_recovery {
            FlowState::Recovery
        } else {
            FlowState::Open
        }
    }

    fn probe_window(&self, tx: &TxCtx, trigger: WindowTrigger) {
        tx.probe_window(trigger, self.state(), self.snd_nxt - self.snd_una);
    }

    /// Pacing-mode transmission: emit one segment if the pacing clock
    /// allows, else arm the pacing timer (Swift's "one packet every
    /// several RTTs", paper §5.2).
    fn pace_one(&mut self, tx: &mut TxCtx, wnd: u64, len: u32) {
        // Inter-packet gap: RTT x MSS / cwnd (so average rate stays cwnd
        // per RTT even below one packet per RTT).
        let rtt = tx.rtt.srtt().unwrap_or(SimTime::from_ms(1));
        let gap = rtt.mul_f64(tx.mss as f64 / wnd.max(1) as f64);
        let now = tx.ctx.now();
        if now >= self.next_pace_at {
            tx.emit_data(self.snd_nxt, len, false);
            self.snd_nxt += len as u64;
            self.next_pace_at = now + gap;
            if !self.rto_armed {
                self.arm_rto(tx);
            }
        } else {
            let at = self.next_pace_at;
            tx.ctx.set_timer(keys::pace_key(tx.flow), at);
        }
    }

    fn retransmit_head(&mut self, tx: &mut TxCtx) {
        debug_assert!(self.snd_una < tx.demand_end, "retransmit with no data");
        let len = tx.mss.min(tx.demand_end - self.snd_una) as u32;
        // Never resend beyond what was originally transmitted.
        let len = len.min((self.snd_nxt - self.snd_una) as u32);
        if len == 0 {
            return;
        }
        tx.emit_data(self.snd_una, len, true);
        self.arm_rto(tx);
    }

    fn arm_rto(&mut self, tx: &mut TxCtx) {
        let rto = tx.rtt.rto();
        #[cfg(feature = "check")]
        if rto < tx.rtt.min_rto() || rto > tx.rtt.max_rto() {
            simnet::check::violated(
                spec::keys::RTO_CLAMPED,
                format_args!(
                    "flow {}: RTO {} ps outside [{}, {}]",
                    tx.flow.0,
                    rto.as_ps(),
                    tx.rtt.min_rto().as_ps(),
                    tx.rtt.max_rto().as_ps()
                ),
            );
        }
        tx.ctx.set_timer_after(keys::rto_key(tx.flow), rto);
        self.rto_armed = true;
    }

    fn cancel_rto(&mut self, tx: &mut TxCtx) {
        tx.ctx.cancel_timer(keys::rto_key(tx.flow));
        self.rto_armed = false;
    }

    /// Structural invariants of the sequence-space state machine, part of
    /// the `check` feature's TCP conformance oracle. Violations are
    /// recorded, not panicked, so the `simcheck` fuzzer can shrink them.
    #[cfg(feature = "check")]
    #[inline]
    fn oracle_state(&self, tx: &TxCtx) {
        if self.snd_una > self.snd_nxt || self.snd_nxt > tx.demand_end {
            simnet::check::violated(
                spec::keys::SEQ_SPACE,
                format_args!(
                    "flow {}: snd_una {} / snd_nxt {} / demand_end {} out of order",
                    tx.flow.0, self.snd_una, self.snd_nxt, tx.demand_end
                ),
            );
        }
        // `cwnd()` clamps to the floor by construction; this defends against
        // a refactor removing the clamp. Read once — it is a dyn call.
        let w = tx.cwnd();
        if w < tx.min_cwnd {
            simnet::check::violated(
                spec::keys::CWND_FLOOR,
                format_args!(
                    "flow {}: effective cwnd {} below floor {}",
                    tx.flow.0, w, tx.min_cwnd
                ),
            );
        }
    }
}

impl Recovery for TcpRecovery {
    fn kind(&self) -> TransportKind {
        TransportKind::Tcp
    }

    fn acked_prefix(&self) -> u64 {
        self.snd_una
    }

    fn sent_end(&self) -> u64 {
        self.snd_nxt
    }

    fn in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    fn backing_off(&self) -> bool {
        self.backing_off
    }

    fn on_burst_start(&mut self, tx: &mut TxCtx) {
        // Pacing mode: the pacer's clock free-runs at the floor rate;
        // a flow whose tick passed while idle waits for its next
        // phase-aligned tick before transmitting. This is what spreads
        // a synchronized burst start across the pool.
        if self.pacing && tx.ctx.now() > self.next_pace_at {
            let rtt = tx.rtt.srtt().unwrap_or(SimTime::from_ms(1));
            let floor_gap = rtt.mul_f64(tx.mss as f64 / tx.min_cwnd.max(1) as f64);
            let offset = SimTime::from_ps(self.pace_phase % floor_gap.as_ps().max(1));
            self.next_pace_at = tx.ctx.now() + offset;
        }
    }

    /// Transmits new segments while the window allows.
    fn fill(&mut self, tx: &mut TxCtx) {
        // Control-plane pause gate: no new data while paused. Recovery
        // retransmissions and the RTO machinery run underneath, and the
        // sender's guard timer re-fills at the (bounded) deadline.
        if tx.paused() {
            return;
        }
        // Pacing gate: nothing (new) leaves before the pacer's next tick.
        if self.pacing && tx.ctx.now() < self.next_pace_at && self.snd_nxt < tx.demand_end {
            let at = self.next_pace_at;
            tx.ctx.set_timer(keys::pace_key(tx.flow), at);
            return;
        }
        let wnd = tx.cwnd() + self.recovery_extra;
        while self.snd_nxt < tx.demand_end {
            // Whole segments only (the final segment of demand may be short);
            // a segment that does not fully fit in the window waits.
            let len = tx.mss.min(tx.demand_end - self.snd_nxt);
            if self.snd_nxt - self.snd_una + len > wnd {
                // Sub-MSS window: pacing mode sends one packet per
                // MSS/cwnd RTTs instead of stalling at the floor.
                if self.pacing && wnd < tx.mss && self.in_flight() == 0 {
                    self.pace_one(tx, wnd, len as u32);
                }
                break;
            }
            tx.emit_data(self.snd_nxt, len as u32, false);
            self.snd_nxt += len;
        }
        if self.in_flight() > 0 && !self.rto_armed {
            self.arm_rto(tx);
        }
        tx.record_flight(self.in_flight());
        #[cfg(feature = "check")]
        self.oracle_state(tx);
    }

    fn on_ack(&mut self, tx: &mut TxCtx, ack: AckView) {
        let AckView::Tcp {
            ack_wire,
            ece,
            ts_echo,
        } = ack
        else {
            debug_assert!(false, "QUIC ack delivered to the TCP engine");
            return;
        };
        let ack = seq::unwrap(ack_wire, self.snd_una);
        #[cfg(feature = "check")]
        if ack > self.snd_nxt {
            simnet::check::violated(
                spec::keys::ACK_OF_UNSENT,
                format_args!(
                    "flow {}: ack {} beyond snd_nxt {}",
                    tx.flow.0, ack, self.snd_nxt
                ),
            );
        }

        if ack > self.snd_una && ack <= self.snd_nxt {
            let newly = ack - self.snd_una;
            self.snd_una = ack;
            tx.stats.bytes_acked += newly;
            self.dup_acks = 0;

            // RTT sample from the timestamp echo.
            let sample = if ts_echo > SimTime::ZERO && tx.ctx.now() > ts_echo {
                let s = tx.ctx.now() - ts_echo;
                tx.rtt.on_sample(s);
                Some(s)
            } else {
                None
            };

            let cctx = tx.cca_ctx(self.snd_una, self.snd_nxt, self.in_recovery);
            tx.cca.on_ack(&cctx, newly, ece, sample);

            if self.in_recovery {
                if self.snd_una >= self.recover {
                    // Full ACK: recovery complete.
                    self.in_recovery = false;
                    self.recovery_extra = 0;
                } else {
                    // Partial ACK: the next hole is lost too (NewReno).
                    self.recovery_extra = self.recovery_extra.saturating_sub(newly);
                    self.retransmit_head(tx);
                }
            }

            // Restart (or clear) the retransmission timer.
            if self.in_flight() > 0 {
                self.arm_rto(tx);
            } else {
                self.cancel_rto(tx);
            }

            self.backing_off = false;
            self.probe_window(
                tx,
                if ece {
                    WindowTrigger::Ece
                } else {
                    WindowTrigger::Ack
                },
            );
            self.fill(tx);
            tx.record_flight(self.in_flight());
            return;
        }

        if ack == self.snd_una && self.in_flight() > 0 {
            // Duplicate ACK.
            self.dup_acks += 1;
            let cctx = tx.cca_ctx(self.snd_una, self.snd_nxt, self.in_recovery);
            // Zero-byte "ack": lets DCTCP latch CWR from ECE on dupacks.
            tx.cca.on_ack(&cctx, 0, ece, None);

            if !self.in_recovery && self.dup_acks == 3 {
                #[cfg(feature = "check")]
                if self.dup_acks != 3 {
                    simnet::check::violated(
                        spec::keys::FAST_RETX_THRESHOLD,
                        format_args!(
                            "flow {}: fast retransmit at {} dup acks",
                            tx.flow.0, self.dup_acks
                        ),
                    );
                }
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                self.recovery_extra = 0;
                tx.stats.fast_retransmits += 1;
                let cctx = tx.cca_ctx(self.snd_una, self.snd_nxt, self.in_recovery);
                tx.cca.on_enter_recovery(&cctx);
                self.retransmit_head(tx);
                self.probe_window(tx, WindowTrigger::FastRetransmit);
            } else if self.in_recovery {
                // Each further dup ACK signals a departure: inflate.
                self.recovery_extra += tx.mss;
                self.fill(tx);
            }
        }
    }

    /// The retransmission timer fired.
    fn on_retx_timer(&mut self, tx: &mut TxCtx) {
        self.rto_armed = false;
        if self.in_flight() == 0 {
            return; // stale
        }
        tx.stats.timeouts += 1;
        #[cfg(feature = "check")]
        let rto_before = tx.rtt.rto();
        tx.rtt.on_timeout();
        #[cfg(feature = "check")]
        {
            let rto_after = tx.rtt.rto();
            // RFC 6298 backoff: each timeout at most doubles the timer and
            // never shortens it (equality happens at the max-RTO cap).
            if rto_after < rto_before || rto_after.as_ps() > rto_before.as_ps().saturating_mul(2) {
                simnet::check::violated(
                    spec::keys::RTO_BACKOFF,
                    format_args!(
                        "flow {}: RTO went {} -> {} ps on timeout",
                        tx.flow.0,
                        rto_before.as_ps(),
                        rto_after.as_ps()
                    ),
                );
            }
        }
        self.in_recovery = false;
        self.recovery_extra = 0;
        self.dup_acks = 0;
        let cctx = tx.cca_ctx(self.snd_una, self.snd_nxt, self.in_recovery);
        tx.cca.on_timeout(&cctx);
        self.backing_off = true;
        self.retransmit_head(tx);
        tx.record_flight(self.in_flight());
        self.probe_window(tx, WindowTrigger::Rto);
        #[cfg(feature = "check")]
        self.oracle_state(tx);
    }

    /// The pacing timer fired: try to release the next paced packet.
    fn on_pace_timer(&mut self, tx: &mut TxCtx) {
        self.fill(tx);
    }
}
