//! QUIC-style loss recovery (RFC 9002 semantics).
//!
//! Every transmission gets a fresh, monotonically increasing packet number
//! — retransmitted *stream bytes* ride in *new* packets (RFC 9000 §12.3),
//! which removes TCP's retransmission ambiguity. Receivers acknowledge
//! packet-number ranges; a packet is declared lost when one sent
//! `kPacketThreshold` (3) packets after it is acknowledged (RFC 9002 §6.1).
//! When loss detection has nothing to work with, a probe timeout (PTO)
//! fires after `smoothed_rtt + max(4·rttvar, kGranularity)` with
//! exponential backoff (§6.2) — crucially *without* TCP's 200 ms-style
//! minimum, which is the mechanism behind the paper's Mode 3. Window
//! reduction during recovery is PRR-style (§7.3.2 via RFC 6937).
//!
//! The congestion controllers in [`crate::cca`] are reused unchanged; this
//! engine only re-times their hooks. Each RFC requirement is quoted in
//! `specs/rfc9002/` and `specs/rfc9000/`, keyed to the `check`-feature
//! invariants below via [`crate::spec::keys`].

use super::{AckView, Recovery, TxCtx};
use crate::config::{TcpConfig, TransportKind};
use crate::keys;
use crate::ranges::AckRanges;
use crate::seq;
#[cfg(feature = "check")]
use crate::spec;
use simnet::SimTime;
use std::collections::VecDeque;
use telemetry::{FlowState, WindowTrigger};

/// RFC 9002 §6.1.1 kPacketThreshold: a packet is lost once one sent this
/// many packets later is acknowledged.
pub const PACKET_THRESHOLD: u64 = 3;

/// Cap on the PTO backoff shift (far above anything a simulation reaches;
/// the period is also clamped to `max_rto`).
const MAX_PTO_SHIFT: u32 = 20;

/// One outstanding packet: which stream bytes it carried.
#[derive(Debug, Clone, Copy)]
struct SentPacket {
    pn: u64,
    offset: u64,
    len: u32,
}

/// QUIC-style packet-number space and recovery state.
#[derive(Debug)]
pub struct QuicRecovery {
    /// Next packet number to assign (strictly increasing, never reused).
    next_pn: u64,
    /// Highest stream byte handed to the wire at least once.
    snd_nxt: u64,
    /// Outstanding packets, ascending packet number.
    sent: VecDeque<SentPacket>,
    /// Bytes in outstanding packets (retransmitted copies count).
    bytes_in_flight: u64,
    /// Acknowledged stream bytes; `prefix_end()` is the `SND.UNA` analogue.
    acked: AckRanges,
    /// Stream bytes of lost packets awaiting retransmission.
    retx_queue: AckRanges,
    /// Highest packet number acknowledged so far.
    largest_acked: Option<u64>,
    /// Consecutive PTO expiries since the last ack (backoff exponent).
    pto_count: u32,
    pto_armed: bool,
    in_recovery: bool,
    /// `next_pn` at recovery entry: an ack of any packet sent after this
    /// ends the recovery period (RFC 9002 §7.3.1).
    recovery_start_pn: u64,
    /// PRR state (RFC 6937): bytes newly acked during recovery...
    prr_delivered: u64,
    /// ...and bytes sent under PRR's allowance during recovery.
    prr_out: u64,
    /// `RecoverFS`: bytes considered in flight when recovery began.
    recoverfs: u64,
    /// True between a PTO expiry and the next acknowledgment.
    backing_off: bool,
    /// Timer granularity (RFC 9002 kGranularity).
    granularity: SimTime,
    /// Scratch buffer for hole computation (avoids per-ack allocation).
    holes: Vec<(u64, u64)>,
    /// Scratch set for unwrapped ack blocks (avoids per-ack allocation).
    acked_pns: AckRanges,
}

impl QuicRecovery {
    /// Fresh QUIC-style state.
    pub fn new(cfg: &TcpConfig) -> Self {
        QuicRecovery {
            next_pn: 0,
            snd_nxt: 0,
            sent: VecDeque::new(),
            bytes_in_flight: 0,
            acked: AckRanges::new(),
            retx_queue: AckRanges::new(),
            largest_acked: None,
            pto_count: 0,
            pto_armed: false,
            in_recovery: false,
            recovery_start_pn: 0,
            prr_delivered: 0,
            prr_out: 0,
            recoverfs: 0,
            backing_off: false,
            granularity: cfg.pto_granularity,
            holes: Vec::new(),
            acked_pns: AckRanges::new(),
        }
    }

    fn state(&self) -> FlowState {
        if self.backing_off {
            FlowState::Backoff
        } else if self.in_recovery {
            FlowState::Recovery
        } else {
            FlowState::Open
        }
    }

    /// Sends one packet carrying `[offset, offset + len)` under a fresh
    /// packet number and records it as outstanding.
    fn emit(&mut self, tx: &mut TxCtx, offset: u64, len: u32, retx: bool) {
        let pn = self.next_pn;
        #[cfg(feature = "check")]
        if self.sent.back().is_some_and(|p| p.pn >= pn) {
            simnet::check::violated(
                spec::keys::PN_MONOTONIC,
                format_args!("flow {}: packet number {} not above prior", tx.flow.0, pn),
            );
        }
        self.next_pn += 1;
        tx.emit_quic(pn, offset, len, retx);
        self.sent.push_back(SentPacket { pn, offset, len });
        self.bytes_in_flight += len as u64;
    }

    /// The current PTO period: `pto_base << pto_count`, clamped to the
    /// RTO ceiling (RFC 9002 §6.2.1 — note there is *no* min-RTO floor).
    fn current_pto(&self, tx: &TxCtx) -> SimTime {
        let base = tx.rtt.pto_base(self.granularity);
        let scaled = base
            .as_ps()
            .saturating_mul(1u64 << self.pto_count.min(MAX_PTO_SHIFT));
        SimTime::from_ps(scaled.min(tx.rtt.max_rto().as_ps()))
    }

    fn arm_pto(&mut self, tx: &mut TxCtx) {
        let pto = self.current_pto(tx);
        #[cfg(feature = "check")]
        {
            // §6.2.1 lower bound: the armed period may never undercut the
            // un-backed-off formula (modulo the max-RTO clamp).
            let floor = tx.rtt.pto_base(self.granularity).min(tx.rtt.max_rto());
            if pto < floor {
                simnet::check::violated(
                    spec::keys::PTO_FORMULA,
                    format_args!(
                        "flow {}: armed PTO {} ps below formula floor {} ps",
                        tx.flow.0,
                        pto.as_ps(),
                        floor.as_ps()
                    ),
                );
            }
        }
        tx.ctx.set_timer_after(keys::pto_key(tx.flow), pto);
        self.pto_armed = true;
    }

    fn cancel_pto(&mut self, tx: &mut TxCtx) {
        tx.ctx.cancel_timer(keys::pto_key(tx.flow));
        self.pto_armed = false;
    }

    /// Bytes this engine may put on the wire right now: congestion window
    /// headroom, further limited by the PRR allowance during recovery.
    fn send_budget(&self, tx: &TxCtx) -> u64 {
        let avail = tx.cwnd().saturating_sub(self.bytes_in_flight);
        if !self.in_recovery {
            return avail;
        }
        avail.min(self.prr_allowance(tx).saturating_sub(self.prr_out))
    }

    /// PRR's cumulative send allowance for this recovery period
    /// (RFC 6937): proportional while the pipe exceeds ssthresh, slow-start
    /// style (one extra MSS per delivery) once it has drained below.
    fn prr_allowance(&self, tx: &TxCtx) -> u64 {
        let ssthresh = tx.cca.ssthresh();
        if self.bytes_in_flight > ssthresh {
            self.prr_delivered
                .saturating_mul(ssthresh)
                .checked_div(self.recoverfs)
                .unwrap_or(0)
        } else {
            self.prr_delivered.saturating_add(tx.mss)
        }
    }

    #[cfg(feature = "check")]
    fn check_prr_bound(&self, tx: &TxCtx) {
        // The branch of the allowance formula depends on the in-flight
        // count, which moved since the gate; bound against both forms.
        let ssthresh = tx.cca.ssthresh();
        let proportional = self
            .prr_delivered
            .saturating_mul(ssthresh)
            .checked_div(self.recoverfs)
            .unwrap_or(0);
        let slow_start = self.prr_delivered.saturating_add(tx.mss);
        if self.prr_out > proportional.max(slow_start) {
            simnet::check::violated(
                spec::keys::PRR_BOUND,
                format_args!(
                    "flow {}: prr_out {} exceeds allowance (delivered {}, ssthresh {}, recoverfs {})",
                    tx.flow.0, self.prr_out, self.prr_delivered, ssthresh, self.recoverfs
                ),
            );
        }
    }

    /// Begins a recovery period: one window reduction, PRR initialization,
    /// and the single immediate retransmission RFC 6937 permits.
    fn enter_recovery(&mut self, tx: &mut TxCtx, lost_bytes: u64) {
        #[cfg(feature = "check")]
        if self.in_recovery {
            simnet::check::violated(
                spec::keys::RECOVERY_NO_REENTER,
                format_args!(
                    "flow {}: window reduced again within a recovery period",
                    tx.flow.0
                ),
            );
        }
        #[cfg(feature = "check")]
        let cwnd_before = tx.cwnd();
        self.in_recovery = true;
        self.recovery_start_pn = self.next_pn;
        tx.stats.fast_retransmits += 1;
        let cctx = tx.cca_ctx(self.acked.prefix_end(), self.snd_nxt, true);
        tx.cca.on_enter_recovery(&cctx);
        #[cfg(feature = "check")]
        if tx.cca.ssthresh() > cwnd_before {
            simnet::check::violated(
                spec::keys::RECOVERY_SSTHRESH_CUT,
                format_args!(
                    "flow {}: ssthresh {} above pre-recovery cwnd {}",
                    tx.flow.0,
                    tx.cca.ssthresh(),
                    cwnd_before
                ),
            );
        }
        self.prr_delivered = 0;
        self.prr_out = 0;
        self.recoverfs = (self.bytes_in_flight + lost_bytes).max(tx.mss);
        // RFC 6937: "a single segment" may leave immediately on entry,
        // before the rate reduction takes hold.
        if let Some((lo, len)) = self.retx_queue.take_prefix(tx.mss) {
            self.emit(tx, lo, len as u32, true);
        }
        self.arm_pto(tx);
        tx.probe_window(
            WindowTrigger::FastRetransmit,
            self.state(),
            self.bytes_in_flight,
        );
    }

    /// Structural invariants (stream-space ordering, window floor,
    /// in-flight bookkeeping), recorded — not panicked — under `check`.
    #[cfg(feature = "check")]
    #[inline]
    fn oracle_state(&self, tx: &TxCtx) {
        if self.acked.prefix_end() > self.snd_nxt || self.snd_nxt > tx.demand_end {
            simnet::check::violated(
                spec::keys::SEQ_SPACE,
                format_args!(
                    "flow {}: acked prefix {} / snd_nxt {} / demand_end {} out of order",
                    tx.flow.0,
                    self.acked.prefix_end(),
                    self.snd_nxt,
                    tx.demand_end
                ),
            );
        }
        let w = tx.cwnd();
        if w < tx.min_cwnd {
            simnet::check::violated(
                spec::keys::CWND_FLOOR,
                format_args!(
                    "flow {}: effective cwnd {} below floor {}",
                    tx.flow.0, w, tx.min_cwnd
                ),
            );
        }
        debug_assert_eq!(
            self.bytes_in_flight,
            self.sent.iter().map(|p| p.len as u64).sum::<u64>(),
            "in-flight bookkeeping diverged"
        );
    }
}

impl Recovery for QuicRecovery {
    fn kind(&self) -> TransportKind {
        TransportKind::Quic
    }

    fn acked_prefix(&self) -> u64 {
        self.acked.prefix_end()
    }

    fn sent_end(&self) -> u64 {
        self.snd_nxt
    }

    fn in_flight(&self) -> u64 {
        self.bytes_in_flight
    }

    fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    fn backing_off(&self) -> bool {
        self.backing_off
    }

    fn on_burst_start(&mut self, _tx: &mut TxCtx) {}

    /// Transmits — retransmissions first, then new data — while the window
    /// and the PRR allowance permit. Whole segments only.
    fn fill(&mut self, tx: &mut TxCtx) {
        // Control-plane pause gate: nothing leaves via the window path
        // while paused (the PTO probe path is independent). The sender's
        // guard timer re-fills at the bounded pause deadline.
        if tx.paused() {
            return;
        }
        loop {
            let budget = self.send_budget(tx);
            let (offset, len, retx) = if let Some(&(lo, hi)) = self.retx_queue.ranges().first() {
                (lo, (hi - lo).min(tx.mss), true)
            } else if self.snd_nxt < tx.demand_end {
                (
                    self.snd_nxt,
                    tx.mss.min(tx.demand_end - self.snd_nxt),
                    false,
                )
            } else {
                break;
            };
            if len > budget {
                break;
            }
            if retx {
                self.retx_queue.take_prefix(len);
            } else {
                self.snd_nxt += len;
            }
            self.emit(tx, offset, len as u32, retx);
            if self.in_recovery {
                self.prr_out += len;
                #[cfg(feature = "check")]
                self.check_prr_bound(tx);
            }
        }
        if self.bytes_in_flight > 0 && !self.pto_armed {
            self.arm_pto(tx);
        }
        tx.record_flight(self.bytes_in_flight);
        #[cfg(feature = "check")]
        self.oracle_state(tx);
    }

    fn on_ack(&mut self, tx: &mut TxCtx, ack: AckView) {
        let AckView::Quic {
            blocks,
            ece,
            ts_echo,
        } = ack
        else {
            debug_assert!(false, "TCP ack delivered to the QUIC engine");
            return;
        };
        // Unwrap the wire ranges against the highest pn ever assigned.
        let reference = self.next_pn.saturating_sub(1);
        let largest = seq::unwrap(blocks.largest(), reference);
        #[cfg(feature = "check")]
        if largest >= self.next_pn {
            simnet::check::violated(
                spec::keys::QUIC_ACK_UNSENT,
                format_args!(
                    "flow {}: ack of pn {} but only {} assigned",
                    tx.flow.0, largest, self.next_pn
                ),
            );
        }
        self.acked_pns.clear();
        for &(lo_w, hi_w) in blocks.ranges() {
            let hi = seq::unwrap(hi_w, reference);
            let span = hi_w.wrapping_sub(lo_w) as u64;
            let lo = hi.saturating_sub(span);
            self.acked_pns.insert(lo, hi + 1);
        }
        self.largest_acked = Some(self.largest_acked.map_or(largest, |l| l.max(largest)));

        // Retire every newly acknowledged packet; its stream bytes are
        // delivered and need no retransmission.
        let covered_before = self.acked.covered();
        let mut newly = 0u64;
        let mut acked_any = false;
        let mut i = 0;
        while i < self.sent.len() {
            let p = self.sent[i];
            if p.pn > largest {
                break;
            }
            if self.acked_pns.contains(p.pn) {
                self.sent.remove(i);
                self.bytes_in_flight -= p.len as u64;
                newly += p.len as u64;
                acked_any = true;
                self.acked.insert(p.offset, p.offset + p.len as u64);
                self.retx_queue.remove(p.offset, p.offset + p.len as u64);
            } else {
                i += 1;
            }
        }

        // Unique stream bytes first acknowledged by this frame
        // (retransmitted copies of already-acked bytes do not count).
        tx.stats.bytes_acked += self.acked.covered() - covered_before;

        // RTT sample: fresh packet numbers make every sample unambiguous
        // (no Karn phase needed, unlike TCP).
        let sample = if acked_any && ts_echo > SimTime::ZERO && tx.ctx.now() > ts_echo {
            let s = tx.ctx.now() - ts_echo;
            tx.rtt.on_sample(s);
            Some(s)
        } else {
            None
        };

        if acked_any {
            self.pto_count = 0;
            self.backing_off = false;
            if self.in_recovery {
                self.prr_delivered += newly;
            }
        }

        let cctx = tx.cca_ctx(self.acked.prefix_end(), self.snd_nxt, self.in_recovery);
        tx.cca.on_ack(&cctx, newly, ece, sample);

        // Recovery ends when a packet sent after entry is acknowledged
        // (RFC 9002 §7.3.1).
        if self.in_recovery && largest >= self.recovery_start_pn {
            self.in_recovery = false;
            self.prr_delivered = 0;
            self.prr_out = 0;
        }

        // Packet-threshold loss detection (RFC 9002 §6.1.1): anything
        // still outstanding kPacketThreshold below the largest acked is
        // lost; its unacknowledged stream bytes queue for retransmission.
        let mut lost_bytes = 0u64;
        if let Some(la) = self.largest_acked {
            while let Some(&p) = self.sent.front() {
                if p.pn + PACKET_THRESHOLD > la {
                    break;
                }
                self.sent.pop_front();
                self.bytes_in_flight -= p.len as u64;
                lost_bytes += p.len as u64;
                self.holes.clear();
                self.acked
                    .missing_in(p.offset, p.offset + p.len as u64, &mut self.holes);
                let holes = std::mem::take(&mut self.holes);
                for &(lo, hi) in &holes {
                    self.retx_queue.insert(lo, hi);
                }
                self.holes = holes;
            }
        }

        // One window reduction per recovery period: losses detected while
        // already in recovery belong to the same congestion event.
        if lost_bytes > 0 && !self.in_recovery {
            self.enter_recovery(tx, lost_bytes);
        }

        if acked_any {
            if self.bytes_in_flight > 0 {
                self.arm_pto(tx);
            } else {
                self.cancel_pto(tx);
            }
            tx.probe_window(
                if ece {
                    WindowTrigger::Ece
                } else {
                    WindowTrigger::Ack
                },
                self.state(),
                self.bytes_in_flight,
            );
        }
        self.fill(tx);
    }

    /// The probe timeout fired: back off, send one probe (RFC 9002 §6.2.4
    /// MUST), and treat repeated expiries as persistent congestion.
    fn on_retx_timer(&mut self, tx: &mut TxCtx) {
        self.pto_armed = false;
        if self.bytes_in_flight == 0 && self.retx_queue.is_empty() {
            return; // stale
        }
        tx.stats.timeouts += 1;
        #[cfg(feature = "check")]
        let pto_before = self.current_pto(tx);
        self.pto_count = (self.pto_count + 1).min(MAX_PTO_SHIFT);
        #[cfg(feature = "check")]
        {
            let pto_after = self.current_pto(tx);
            // §6.2.1: the period at most doubles per expiry and never
            // shrinks (equality happens at the max-RTO clamp).
            if pto_after < pto_before || pto_after.as_ps() > pto_before.as_ps().saturating_mul(2) {
                simnet::check::violated(
                    spec::keys::PTO_BACKOFF,
                    format_args!(
                        "flow {}: PTO went {} -> {} ps on expiry",
                        tx.flow.0,
                        pto_before.as_ps(),
                        pto_after.as_ps()
                    ),
                );
            }
        }
        self.backing_off = true;
        // Persistent congestion, simplified (§7.6): two consecutive PTO
        // expiries with no intervening ack collapse the window to the
        // minimum, exactly like a TCP RTO.
        if self.pto_count >= 2 {
            self.in_recovery = false;
            self.prr_delivered = 0;
            self.prr_out = 0;
            let cctx = tx.cca_ctx(self.acked.prefix_end(), self.snd_nxt, false);
            tx.cca.on_timeout(&cctx);
            #[cfg(feature = "check")]
            if tx.cwnd() > tx.min_cwnd {
                simnet::check::violated(
                    spec::keys::PERSISTENT_CONGESTION_COLLAPSE,
                    format_args!(
                        "flow {}: cwnd {} above minimum {} after persistent congestion",
                        tx.flow.0,
                        tx.cwnd(),
                        tx.min_cwnd
                    ),
                );
            }
        }
        // §6.2.4: a PTO expiry MUST elicit a probe — queued
        // retransmissions first, then new data, else the oldest
        // outstanding bytes again under a fresh packet number.
        let probed = if let Some((lo, len)) = self.retx_queue.take_prefix(tx.mss) {
            self.emit(tx, lo, len as u32, true);
            true
        } else if self.snd_nxt < tx.demand_end {
            let len = tx.mss.min(tx.demand_end - self.snd_nxt);
            let at = self.snd_nxt;
            self.snd_nxt += len;
            self.emit(tx, at, len as u32, false);
            true
        } else if let Some(&p) = self.sent.front() {
            self.emit(tx, p.offset, p.len, true);
            true
        } else {
            false
        };
        #[cfg(feature = "check")]
        if !probed {
            simnet::check::violated(
                spec::keys::PTO_PROBE_SENT,
                format_args!(
                    "flow {}: PTO expired with {} bytes outstanding but sent no probe",
                    tx.flow.0, self.bytes_in_flight
                ),
            );
        }
        let _ = probed;
        if self.bytes_in_flight > 0 {
            self.arm_pto(tx);
        }
        tx.record_flight(self.bytes_in_flight);
        tx.probe_window(WindowTrigger::Rto, self.state(), self.bytes_in_flight);
        #[cfg(feature = "check")]
        self.oracle_state(tx);
    }
}
