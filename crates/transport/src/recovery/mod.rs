//! Loss-recovery engines behind the [`Recovery`] trait.
//!
//! The [`crate::sender::Sender`] owns everything both stacks share — the
//! congestion controller, the RTT estimator, counters, probes, demand — and
//! delegates the loss-recovery machinery (what is outstanding, what is
//! lost, what to (re)transmit, which timer to arm) to a `Recovery` engine:
//!
//! - [`tcp::TcpRecovery`] — the original NewReno machinery: cumulative
//!   ACKs, triple-duplicate-ACK fast retransmit, RFC 6298 RTO with the
//!   200 ms-style floor that produces the paper's Mode 3.
//! - [`quic::QuicRecovery`] — QUIC-style semantics per RFC 9002: monotonic
//!   packet numbers, ACK ranges, packet-threshold loss detection, a probe
//!   timeout (PTO) with exponential backoff and *no* 200 ms floor, and a
//!   PRR-style proportional window reduction during recovery.
//!
//! Both engines drive the same [`crate::cca`] congestion controllers
//! unchanged; the engine only decides *when* the controller's hooks fire.
//! RFC requirements each engine implements are quoted in `specs/` and keyed
//! to runtime invariants via [`crate::spec::keys`].

pub mod quic;
pub mod tcp;

use crate::cca::{Cca, CcaCtx};
use crate::config::{TcpConfig, TransportKind};
use crate::rtt::RttEstimator;
use crate::sender::FlowProbe;
use crate::seq;
use crate::stats::{FlightRecorder, SenderStats};
use simnet::{AckBlocks, Ctx, FlowId, NodeId, Packet, SimTime};
use telemetry::{FlowState, WindowTrigger};

/// An acknowledgment as seen on the wire, before engine interpretation.
#[derive(Debug, Clone, Copy)]
pub enum AckView {
    /// A cumulative TCP ACK.
    Tcp {
        /// Wrapped cumulative acknowledgment number.
        ack_wire: u32,
        /// ECN-Echo.
        ece: bool,
        /// Echoed data timestamp (zero = no sample).
        ts_echo: SimTime,
    },
    /// A QUIC-style ACK frame.
    Quic {
        /// Acknowledged packet-number ranges, descending.
        blocks: AckBlocks,
        /// ECN-Echo.
        ece: bool,
        /// Echoed data timestamp (zero = no sample).
        ts_echo: SimTime,
    },
}

impl AckView {
    /// The ECN-Echo bit, common to both forms.
    pub fn ece(&self) -> bool {
        match *self {
            AckView::Tcp { ece, .. } | AckView::Quic { ece, .. } => ece,
        }
    }
}

/// The sender-owned machinery an engine borrows for one event.
///
/// Everything here is shared between stacks: the engine mutates the CCA and
/// RTT estimator through it, emits packets, arms timers, and reports window
/// transitions. Scalar fields are copies — [`TxCtx`] is rebuilt per event by
/// [`crate::sender::Sender`], after demand updates.
pub struct TxCtx<'a, 'c> {
    /// Simulator context (time, timers, packet egress).
    pub ctx: &'a mut Ctx<'c>,
    /// The connection's flow id.
    pub flow: FlowId,
    /// The receiving host.
    pub peer: NodeId,
    /// Maximum segment size in bytes.
    pub mss: u64,
    /// Congestion-window floor in bytes.
    pub min_cwnd: u64,
    /// Absolute end of the application's byte stream so far.
    pub demand_end: u64,
    /// Control-plane pause deadline: no *new* data leaves while
    /// `now < pause_until`. Always bounded (senders clamp to
    /// [`crate::sender::MAX_PAUSE`] and arm a guard timer), so a lost
    /// resume can delay a flow but never deadlock it; `ZERO` = unpaused.
    pub pause_until: SimTime,
    /// The congestion controller (shared by both stacks).
    pub cca: &'a mut dyn Cca,
    /// The RTT estimator (RTO and PTO base).
    pub rtt: &'a mut RttEstimator,
    /// Counter sink.
    pub stats: &'a mut SenderStats,
    /// Fixed-interval in-flight recorder, if enabled.
    pub flight: &'a mut Option<FlightRecorder>,
    /// Window-transition probe, if attached.
    pub probe: &'a Option<FlowProbe>,
}

impl TxCtx<'_, '_> {
    /// Effective congestion window in bytes (floor applied).
    pub fn cwnd(&self) -> u64 {
        self.cca.cwnd().max(self.min_cwnd)
    }

    /// True while a control-plane pause is in force. An expired deadline
    /// counts as unpaused, so transmission can never be gated forever.
    pub fn paused(&self) -> bool {
        self.ctx.now() < self.pause_until
    }

    /// Builds a [`CcaCtx`] around the engine's current sequence state.
    pub fn cca_ctx(&self, snd_una: u64, snd_nxt: u64, in_recovery: bool) -> CcaCtx {
        CcaCtx {
            now: self.ctx.now(),
            mss: self.mss,
            min_cwnd: self.min_cwnd,
            snd_nxt,
            snd_una,
            in_recovery,
        }
    }

    /// Emits a TCP data segment and updates the send counters.
    pub fn emit_data(&mut self, at: u64, len: u32, retx: bool) {
        let pkt = Packet::data(
            self.flow,
            self.ctx.node(),
            self.peer,
            seq::wrap(at),
            len,
            retx,
            self.ctx.now(),
        );
        self.ctx.send(pkt);
        self.count_sent(len, retx);
    }

    /// Emits a QUIC data packet and updates the send counters.
    pub fn emit_quic(&mut self, pn: u64, offset: u64, len: u32, retx: bool) {
        let pkt = Packet::quic_data(
            self.flow,
            self.ctx.node(),
            self.peer,
            seq::wrap(pn),
            seq::wrap(offset),
            len,
            retx,
            self.ctx.now(),
        );
        self.ctx.send(pkt);
        self.count_sent(len, retx);
    }

    fn count_sent(&mut self, len: u32, retx: bool) {
        self.stats.segs_sent += 1;
        self.stats.bytes_sent += len as u64;
        if retx {
            self.stats.bytes_retx += len as u64;
        }
    }

    /// Records an in-flight sample, if the recorder is enabled.
    pub fn record_flight(&mut self, inflight: u64) {
        if let Some(rec) = self.flight {
            rec.record(self.ctx.now().as_ps(), inflight);
        }
    }

    /// Emits a window-transition event, if a probe is attached.
    pub fn probe_window(&self, trigger: WindowTrigger, state: FlowState, inflight: u64) {
        if let Some(p) = self.probe {
            p.emit_window(
                self.ctx.now(),
                self.flow,
                self.cwnd(),
                self.cca.ssthresh(),
                inflight,
                state,
                trigger,
            );
        }
    }
}

/// A loss-recovery engine: owns the sequence/packet-number space, decides
/// what to transmit, interprets acknowledgments, and reacts to its
/// retransmission-or-probe timer.
pub trait Recovery: std::fmt::Debug {
    /// Which stack this engine implements.
    fn kind(&self) -> TransportKind;

    /// Bytes delivered contiguously from the start of the stream — the
    /// `SND.UNA` analogue. Drives idle/`AllAcked` detection.
    fn acked_prefix(&self) -> u64;

    /// Highest stream byte handed to the wire at least once (`SND.NXT`).
    fn sent_end(&self) -> u64;

    /// Bytes currently considered outstanding.
    fn in_flight(&self) -> u64;

    /// True while in a loss-recovery episode.
    fn in_recovery(&self) -> bool;

    /// True between a timeout and the next acknowledgment.
    fn backing_off(&self) -> bool;

    /// A fresh burst is starting after idle (pacing clocks re-seed here).
    fn on_burst_start(&mut self, tx: &mut TxCtx);

    /// Transmits while the window (and any recovery rate limit) allows.
    fn fill(&mut self, tx: &mut TxCtx);

    /// Processes an acknowledgment.
    fn on_ack(&mut self, tx: &mut TxCtx, ack: AckView);

    /// The retransmission (TCP RTO) or probe (QUIC PTO) timer fired.
    fn on_retx_timer(&mut self, tx: &mut TxCtx);

    /// The pacing timer fired (sub-MSS window mode; TCP only).
    fn on_pace_timer(&mut self, tx: &mut TxCtx) {
        let _ = tx;
    }
}

/// Builds the engine selected by `cfg.transport`.
pub fn build(cfg: &TcpConfig, flow: FlowId) -> Box<dyn Recovery> {
    match cfg.transport {
        TransportKind::Tcp => Box::new(tcp::TcpRecovery::new(cfg, flow)),
        TransportKind::Quic => Box::new(quic::QuicRecovery::new(cfg)),
    }
}
