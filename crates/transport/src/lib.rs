//! # transport — TCP endpoints for the incast simulator
//!
//! A window-based TCP implementation faithful to the mechanisms the paper's
//! analysis rests on:
//!
//! - **Reliability**: cumulative ACKs, out-of-order reassembly, fast
//!   retransmit on triple duplicate ACKs with NewReno partial-ACK recovery,
//!   and RFC 6298 retransmission timeouts with exponential backoff.
//! - **Congestion control** ([`cca`]): DCTCP (the paper's deployed CCA, with
//!   the `g`-gain alpha estimator and once-per-window CWR reductions), Reno
//!   and CUBIC baselines, and two Section-5 mitigation prototypes
//!   (cross-burst window memory, window guardrail).
//! - **ECN**: per-packet ECN-Echo when delayed ACKs are off (the paper's
//!   simulation setting), or the DCTCP paper's two-state delayed-ACK machine.
//! - **Persistent connections**: applications add demand per burst to
//!   long-lived flows, so congestion state carries across bursts — the
//!   precondition for the paper's §4.3 straggler divergence.
//!
//! Hosts run a [`TcpHost`] endpoint which demultiplexes flows and exposes a
//! callback API ([`TcpApp`]/[`TcpApi`]) to application logic.

pub mod cca;
pub mod config;
pub mod host;
pub mod keys;
pub mod receiver;
pub mod rtt;
pub mod sender;
pub mod seq;
pub mod stats;

pub use cca::{Cca, CcaCtx, CcaKind};
pub use config::PacingConfig;
pub use config::{DelayedAckConfig, TcpConfig};
pub use host::{HostCore, TcpApi, TcpApp, TcpHost};
pub use receiver::Receiver;
pub use rtt::RttEstimator;
pub use sender::{AckOutcome, FlowProbe, Sender};
pub use stats::{FlightRecorder, ReceiverStats, SenderStats};
