//! # transport — TCP and QUIC-style endpoints for the incast simulator
//!
//! A window-based transport implementation faithful to the mechanisms the
//! paper's analysis rests on. Loss recovery sits behind the [`Recovery`]
//! trait with two engines selected by [`config::TransportKind`]:
//!
//! - **Reliability (TCP, default)**: cumulative ACKs, out-of-order
//!   reassembly, fast retransmit on triple duplicate ACKs with NewReno
//!   partial-ACK recovery, and RFC 6298 retransmission timeouts with
//!   exponential backoff (200 ms floor — the origin of the paper's Mode 3).
//! - **Reliability (QUIC-style)**: RFC 9002 recovery — monotonic packet
//!   numbers, ACK ranges, packet-threshold loss detection, probe timeouts
//!   with no minimum floor, PRR during recovery — answering whether the
//!   paper's findings are TCP artifacts (see EXPERIMENTS.md). Conformance
//!   is pinned by RFC quotes in `specs/` wired to `check`-feature
//!   invariants ([`spec`]).
//! - **Congestion control** ([`cca`]): DCTCP (the paper's deployed CCA, with
//!   the `g`-gain alpha estimator and once-per-window CWR reductions), Reno
//!   and CUBIC baselines, and two Section-5 mitigation prototypes
//!   (cross-burst window memory, window guardrail).
//! - **ECN**: per-packet ECN-Echo when delayed ACKs are off (the paper's
//!   simulation setting), or the DCTCP paper's two-state delayed-ACK machine.
//! - **Persistent connections**: applications add demand per burst to
//!   long-lived flows, so congestion state carries across bursts — the
//!   precondition for the paper's §4.3 straggler divergence.
//!
//! Hosts run a [`TcpHost`] endpoint which demultiplexes flows and exposes a
//! callback API ([`TcpApp`]/[`TcpApi`]) to application logic.

pub mod cca;
pub mod config;
pub mod host;
pub mod keys;
pub mod ranges;
pub mod receiver;
pub mod recovery;
pub mod rtt;
pub mod sender;
pub mod seq;
pub mod spec;
pub mod stats;

pub use cca::{Cca, CcaCtx, CcaKind};
pub use config::PacingConfig;
pub use config::{DelayedAckConfig, TcpConfig, TransportKind};
pub use host::{HostCore, TcpApi, TcpApp, TcpHost};
pub use ranges::AckRanges;
pub use receiver::Receiver;
pub use recovery::Recovery;
pub use rtt::RttEstimator;
pub use sender::{AckOutcome, FlowProbe, Sender};
pub use stats::{FlightRecorder, ReceiverStats, SenderStats};
