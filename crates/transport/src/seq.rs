//! TCP sequence-number arithmetic.
//!
//! Wire sequence numbers are 32-bit and wrap; the transport keeps 64-bit
//! absolute byte offsets internally and converts at the wire boundary. The
//! unwrap operation picks the 64-bit value with the given low 32 bits that
//! is closest to a reference offset — the standard technique (cf. RFC 1982
//! serial-number arithmetic and Linux's `u64_unwrap` idiom), valid while the
//! true value is within 2^31 bytes of the reference, which a datacenter
//! flow's in-flight window always satisfies.

/// Converts an absolute byte offset to its 32-bit wire representation.
#[inline]
pub fn wrap(abs: u64) -> u32 {
    abs as u32
}

/// Reconstructs an absolute offset from a wire value, choosing the candidate
/// nearest to `reference`.
pub fn unwrap(wire: u32, reference: u64) -> u64 {
    const SPAN: u64 = 1 << 32;
    let base = reference & !(SPAN - 1);
    let candidate = base | wire as u64;
    // Consider the adjacent epochs and pick the closest to the reference.
    let mut best = candidate;
    let mut best_dist = candidate.abs_diff(reference);
    if let Some(lower) = candidate.checked_sub(SPAN) {
        let d = lower.abs_diff(reference);
        if d < best_dist {
            best = lower;
            best_dist = d;
        }
    }
    if let Some(upper) = candidate.checked_add(SPAN) {
        let d = upper.abs_diff(reference);
        if d < best_dist {
            best = upper;
        }
    }
    best
}

/// True if wire sequence `a` is strictly after `b` in wrapping order
/// (within half the space).
#[inline]
pub fn after(a: u32, b: u32) -> bool {
    a.wrapping_sub(b) as i32 > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_truncates() {
        assert_eq!(wrap(0), 0);
        assert_eq!(wrap(1 << 32), 0);
        assert_eq!(wrap((1 << 32) + 5), 5);
        assert_eq!(wrap(u64::MAX), u32::MAX);
    }

    #[test]
    fn unwrap_identity_in_first_epoch() {
        assert_eq!(unwrap(100, 0), 100);
        assert_eq!(unwrap(100, 200), 100);
    }

    #[test]
    fn unwrap_across_boundary_forward() {
        // Reference just below a wrap; wire value just above it.
        let reference = (1u64 << 32) - 10;
        assert_eq!(unwrap(5, reference), (1 << 32) + 5);
    }

    #[test]
    fn unwrap_across_boundary_backward() {
        // Reference just above a wrap; wire value from just below it.
        let reference = (1u64 << 32) + 10;
        let wire = u32::MAX - 4;
        assert_eq!(unwrap(wire, reference), (1u64 << 32) - 5);
    }

    #[test]
    fn unwrap_deep_epochs() {
        let reference = 7 * (1u64 << 32) + 1000;
        assert_eq!(unwrap(900, reference), 7 * (1 << 32) + 900);
        assert_eq!(unwrap(wrap(reference + 5000), reference), reference + 5000);
    }

    #[test]
    fn after_wrapping_order() {
        assert!(after(1, 0));
        assert!(!after(0, 1));
        assert!(!after(5, 5));
        assert!(after(5, u32::MAX)); // 5 is after MAX across the wrap
        assert!(!after(u32::MAX, 5));
    }

    #[test]
    fn unwrap_inverts_wrap_near_reference() {
        let mut rng = stats::Rng::new(0x5E90);
        for _ in 0..2000 {
            let reference = rng.below(1 << 48);
            let delta = rng.below(1 << 31) as i64 - (1 << 30);
            let abs = reference.saturating_add_signed(delta);
            assert_eq!(unwrap(wrap(abs), reference), abs);
        }
    }

    #[test]
    fn unwrap_low_bits_match() {
        let mut rng = stats::Rng::new(0x5E91);
        for _ in 0..2000 {
            let wire = rng.next_u64() as u32;
            let reference = rng.below(1 << 48);
            let abs = unwrap(wire, reference);
            assert_eq!(abs as u32, wire);
            // And the result is within half an epoch of the reference.
            assert!(abs.abs_diff(reference) <= 1 << 31);
        }
    }
}
