//! DCTCP (Data Center TCP), per Alizadeh et al. (SIGCOMM 2010).
//!
//! The sender maintains `alpha`, an EWMA of the fraction of acknowledged
//! bytes that carried ECN-Echo, updated once per window of data:
//!
//! ```text
//! alpha <- (1 - g) * alpha + g * F      (F = marked/acked in the window)
//! ```
//!
//! On the first ECN-Echo of a window it reduces `cwnd <- cwnd * (1 - alpha/2)`
//! (once per window — the CWR period), and otherwise grows like Reno
//! (slow start below `ssthresh`, +1 MSS per window above). The window floor
//! is enforced by the sender's `min_cwnd`; the paper's §4.1.2 "degenerate
//! point" is exactly when every flow sits at that floor and marking can no
//! longer reduce the aggregate rate.

use super::{Cca, CcaCtx};
use simnet::SimTime;

/// DCTCP congestion control.
#[derive(Debug)]
pub struct Dctcp {
    cwnd: f64,
    ssthresh: f64,
    g: f64,
    alpha: f64,
    /// Absolute sequence at which the current observation window ends.
    window_end: u64,
    acked_in_window: u64,
    marked_in_window: u64,
    /// True once this window has taken its (single) ECN reduction.
    cwr_this_window: bool,
}

impl Dctcp {
    /// Creates DCTCP with the given initial window (bytes) and gain `g`.
    pub fn new(init_cwnd: u64, g: f64) -> Self {
        assert!((0.0..=1.0).contains(&g), "g out of (0,1]");
        Dctcp {
            cwnd: init_cwnd as f64,
            ssthresh: f64::INFINITY,
            g,
            alpha: 0.0,
            window_end: 0,
            acked_in_window: 0,
            marked_in_window: 0,
            cwr_this_window: false,
        }
    }

    /// Current marked-fraction estimate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn clamp(&mut self, min_cwnd: u64) {
        if self.cwnd < min_cwnd as f64 {
            self.cwnd = min_cwnd as f64;
        }
    }

    fn grow(&mut self, ctx: &CcaCtx, newly_acked: u64) {
        if ctx.in_recovery || self.cwr_this_window {
            return;
        }
        let mss = ctx.mss as f64;
        if self.cwnd < mss {
            // Sub-MSS (pacing) regime: probe gently — growth scales with
            // the square of the window (Swift-like), so a deeply paced
            // flow takes many round trips to re-approach 1 MSS instead of
            // snapping back on the first unmarked ACK.
            let frac = self.cwnd / mss;
            self.cwnd += mss * frac * frac * (newly_acked as f64 / mss);
            return;
        }
        if self.cwnd < self.ssthresh {
            // Slow start: one MSS per MSS acknowledged.
            self.cwnd += newly_acked as f64;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
        } else {
            // Congestion avoidance: ~one MSS per window.
            let inc = mss * (newly_acked as f64) / self.cwnd;
            self.cwnd += inc.min(newly_acked as f64);
        }
    }
}

impl Cca for Dctcp {
    fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    fn ssthresh(&self) -> u64 {
        if self.ssthresh.is_finite() {
            self.ssthresh as u64
        } else {
            u64::MAX
        }
    }

    fn on_ack(&mut self, ctx: &CcaCtx, newly_acked: u64, ece: bool, _rtt: Option<SimTime>) {
        self.acked_in_window += newly_acked;
        if ece {
            self.marked_in_window += newly_acked;
            if !self.cwr_this_window {
                // One multiplicative decrease per window, scaled by alpha.
                self.cwnd *= 1.0 - self.alpha / 2.0;
                self.clamp(ctx.min_cwnd);
                self.ssthresh = self.cwnd;
                self.cwr_this_window = true;
            }
        }
        self.grow(ctx, newly_acked);
        self.clamp(ctx.min_cwnd);

        // Window rollover: update the alpha estimate.
        if ctx.snd_una >= self.window_end {
            if self.acked_in_window > 0 {
                let f = self.marked_in_window as f64 / self.acked_in_window as f64;
                self.alpha = (1.0 - self.g) * self.alpha + self.g * f;
            }
            self.acked_in_window = 0;
            self.marked_in_window = 0;
            self.cwr_this_window = false;
            self.window_end = ctx.snd_nxt;
        }
    }

    fn on_enter_recovery(&mut self, ctx: &CcaCtx) {
        // Loss: classic halving (stronger than the alpha-scaled cut; see
        // DESIGN.md for the deviation note vs. Linux's dctcp_ssthresh).
        self.cwnd /= 2.0;
        self.clamp(ctx.min_cwnd);
        self.ssthresh = self.cwnd;
    }

    fn on_timeout(&mut self, ctx: &CcaCtx) {
        self.ssthresh = (self.cwnd / 2.0).max(ctx.min_cwnd as f64);
        self.cwnd = ctx.min_cwnd as f64;
        // Fresh start for the estimator window.
        self.acked_in_window = 0;
        self.marked_in_window = 0;
        self.cwr_this_window = false;
        self.window_end = ctx.snd_nxt;
    }

    fn name(&self) -> &'static str {
        "dctcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cca::test_ctx;

    const MSS: u64 = 1446;

    #[test]
    fn slow_start_doubles_per_window() {
        let mut d = Dctcp::new(10 * MSS, 1.0 / 16.0);
        let mut ctx = test_ctx(0);
        ctx.snd_nxt = 100 * MSS;
        ctx.snd_una = 10 * MSS;
        d.on_ack(&ctx, 10 * MSS, false, None);
        assert_eq!(d.cwnd(), 20 * MSS);
    }

    #[test]
    fn no_marks_alpha_decays() {
        let mut d = Dctcp::new(10 * MSS, 0.5);
        // Force alpha up first.
        d.alpha = 0.8;
        let mut ctx = test_ctx(0);
        // One full window acked, no marks -> alpha = 0.5*0.8 + 0.5*0 = 0.4.
        ctx.snd_una = 10 * MSS;
        ctx.snd_nxt = 20 * MSS;
        d.on_ack(&ctx, 10 * MSS, false, None);
        assert!((d.alpha() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn fully_marked_window_raises_alpha() {
        let mut d = Dctcp::new(10 * MSS, 1.0 / 16.0);
        let mut ctx = test_ctx(0);
        ctx.snd_una = 10 * MSS;
        ctx.snd_nxt = 20 * MSS;
        d.on_ack(&ctx, 10 * MSS, true, None);
        // F = 1 -> alpha = g.
        assert!((d.alpha() - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn ece_reduces_once_per_window() {
        let mut d = Dctcp::new(100 * MSS, 1.0 / 16.0);
        d.alpha = 1.0; // worst case: halve on mark
        let mut ctx = test_ctx(0);
        ctx.snd_nxt = 200 * MSS;
        d.window_end = 150 * MSS; // mid-window
        ctx.snd_una = 10 * MSS;
        d.on_ack(&ctx, MSS, true, None);
        let after_first = d.cwnd();
        assert_eq!(after_first, 50 * MSS);
        // Second marked ACK in the same window: no further cut.
        ctx.snd_una = 11 * MSS;
        d.on_ack(&ctx, MSS, true, None);
        assert_eq!(d.cwnd(), after_first);
    }

    #[test]
    fn alpha_one_halves_window() {
        let mut d = Dctcp::new(100 * MSS, 1.0 / 16.0);
        d.alpha = 1.0;
        d.window_end = u64::MAX; // stay in one window
        let mut ctx = test_ctx(0);
        ctx.snd_nxt = 1;
        d.on_ack(&ctx, MSS, true, None);
        assert_eq!(d.cwnd(), 50 * MSS);
    }

    #[test]
    fn floor_is_respected_under_persistent_marking() {
        let mut d = Dctcp::new(2 * MSS, 1.0 / 16.0);
        d.alpha = 1.0;
        let mut ctx = test_ctx(0);
        for round in 0..50u64 {
            ctx.snd_una = round * MSS;
            ctx.snd_nxt = ctx.snd_una + MSS;
            d.window_end = ctx.snd_una; // every ack rolls the window
            d.on_ack(&ctx, MSS, true, None);
        }
        assert_eq!(d.cwnd(), MSS, "cannot fall below 1 MSS");
    }

    #[test]
    fn steady_state_alpha_tracks_marking_fraction() {
        // Alternate marked/unmarked windows -> alpha converges near 0.5.
        let mut d = Dctcp::new(10 * MSS, 1.0 / 16.0);
        let mut ctx = test_ctx(0);
        let mut seq = 0;
        for i in 0..2000u64 {
            ctx.snd_una = seq + 10 * MSS;
            ctx.snd_nxt = seq + 20 * MSS;
            d.window_end = seq + 5 * MSS;
            d.on_ack(&ctx, 10 * MSS, i % 2 == 0, None);
            seq += 10 * MSS;
        }
        assert!((d.alpha() - 0.5).abs() < 0.1, "alpha {}", d.alpha());
    }

    #[test]
    fn loss_halves_and_timeout_resets() {
        let mut d = Dctcp::new(40 * MSS, 1.0 / 16.0);
        let ctx = test_ctx(0);
        d.on_enter_recovery(&ctx);
        assert_eq!(d.cwnd(), 20 * MSS);
        assert_eq!(d.ssthresh(), 20 * MSS);
        d.on_timeout(&ctx);
        assert_eq!(d.cwnd(), MSS);
        assert_eq!(d.ssthresh(), 10 * MSS);
    }

    #[test]
    fn congestion_avoidance_is_linear() {
        let mut d = Dctcp::new(10 * MSS, 1.0 / 16.0);
        d.ssthresh = 10.0 * MSS as f64; // at threshold: CA mode
        let mut ctx = test_ctx(0);
        ctx.snd_nxt = 1000 * MSS;
        // Ack one full window worth: growth ~ 1 MSS.
        ctx.snd_una = 10 * MSS;
        d.window_end = u64::MAX;
        d.on_ack(&ctx, 10 * MSS, false, None);
        let grown = d.cwnd() - 10 * MSS;
        assert!(
            (MSS - 10..=MSS + 10).contains(&grown),
            "CA grew by {grown} bytes"
        );
    }

    #[test]
    fn no_growth_during_recovery() {
        let mut d = Dctcp::new(10 * MSS, 1.0 / 16.0);
        let mut ctx = test_ctx(0);
        ctx.in_recovery = true;
        d.on_ack(&ctx, 10 * MSS, false, None);
        assert_eq!(d.cwnd(), 10 * MSS);
    }

    #[test]
    #[should_panic]
    fn invalid_g_rejected() {
        Dctcp::new(MSS, 1.5);
    }
}
