//! Congestion-window guardrail (a Section-5.1 mitigation prototype).
//!
//! The paper's discussion proposes "simple guardrails that prevent TCP from
//! ramping up excessively during incast, maintaining responsiveness but
//! limiting TCP's ability to use available bandwidth. Such guardrails would
//! also limit queue growth during slow start."
//!
//! [`GuardrailDctcp`] is stock DCTCP with a hard ceiling on the congestion
//! window. For an incast worker whose fair share of the bottleneck is small,
//! a ceiling of a few segments removes both the straggler ramp-up between
//! bursts and the slow-start overshoot at flow start, at the cost of capped
//! single-flow throughput — exactly the trade-off the paper describes.

use super::dctcp::Dctcp;
use super::{Cca, CcaCtx};
use simnet::SimTime;

/// DCTCP with a hard congestion-window ceiling.
#[derive(Debug)]
pub struct GuardrailDctcp {
    inner: Dctcp,
    max_cwnd: u64,
}

impl GuardrailDctcp {
    /// Creates the algorithm with a ceiling of `max_cwnd` bytes.
    pub fn new(init_cwnd: u64, g: f64, max_cwnd: u64) -> Self {
        assert!(max_cwnd > 0, "zero guardrail ceiling");
        GuardrailDctcp {
            inner: Dctcp::new(init_cwnd, g),
            max_cwnd,
        }
    }

    /// The configured ceiling in bytes.
    pub fn ceiling(&self) -> u64 {
        self.max_cwnd
    }
}

impl Cca for GuardrailDctcp {
    fn cwnd(&self) -> u64 {
        self.inner.cwnd().min(self.max_cwnd)
    }

    fn ssthresh(&self) -> u64 {
        self.inner.ssthresh()
    }

    fn on_ack(&mut self, ctx: &CcaCtx, newly_acked: u64, ece: bool, rtt: Option<SimTime>) {
        self.inner.on_ack(ctx, newly_acked, ece, rtt);
    }

    fn on_enter_recovery(&mut self, ctx: &CcaCtx) {
        self.inner.on_enter_recovery(ctx);
    }

    fn on_timeout(&mut self, ctx: &CcaCtx) {
        self.inner.on_timeout(ctx);
    }

    fn name(&self) -> &'static str {
        "dctcp-guardrail"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cca::test_ctx;

    const MSS: u64 = 1446;

    #[test]
    fn ceiling_caps_slow_start() {
        let mut g = GuardrailDctcp::new(2 * MSS, 1.0 / 16.0, 8 * MSS);
        let mut ctx = test_ctx(0);
        ctx.snd_nxt = 10_000 * MSS;
        for i in 0..20u64 {
            ctx.snd_una = i * 100 * MSS;
            g.on_ack(&ctx, 100 * MSS, false, None);
        }
        assert_eq!(g.cwnd(), 8 * MSS, "window must never exceed the rail");
        assert_eq!(g.ceiling(), 8 * MSS);
    }

    #[test]
    fn below_ceiling_behaves_like_dctcp() {
        let mut g = GuardrailDctcp::new(2 * MSS, 1.0 / 16.0, 100 * MSS);
        let mut d = Dctcp::new(2 * MSS, 1.0 / 16.0);
        let mut ctx = test_ctx(0);
        ctx.snd_nxt = 1000 * MSS;
        for i in 0..5u64 {
            ctx.snd_una = i * 4 * MSS;
            g.on_ack(&ctx, 4 * MSS, i == 2, None);
            d.on_ack(&ctx, 4 * MSS, i == 2, None);
        }
        assert_eq!(g.cwnd(), d.cwnd());
    }

    #[test]
    fn reductions_pass_through() {
        let mut g = GuardrailDctcp::new(50 * MSS, 1.0 / 16.0, 8 * MSS);
        let ctx = test_ctx(0);
        g.on_timeout(&ctx);
        assert_eq!(g.cwnd(), MSS);
    }

    #[test]
    #[should_panic]
    fn zero_ceiling_rejected() {
        GuardrailDctcp::new(MSS, 0.0625, 0);
    }
}
