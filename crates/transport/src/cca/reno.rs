//! TCP Reno/NewReno congestion control (RFC 5681) with conventional ECN
//! response (RFC 3168: treat ECN-Echo like loss, once per window).
//!
//! Included as the classic baseline the paper's cited incast literature
//! (e.g. the FAST '08 throughput-collapse study) was built on.

use super::{Cca, CcaCtx};
use simnet::SimTime;

/// Reno congestion control.
#[derive(Debug)]
pub struct Reno {
    cwnd: f64,
    ssthresh: f64,
    /// End of the current "reaction window" for ECN (one cut per window).
    ecn_window_end: u64,
}

impl Reno {
    /// Creates Reno with the given initial window (bytes).
    pub fn new(init_cwnd: u64) -> Self {
        Reno {
            cwnd: init_cwnd as f64,
            ssthresh: f64::INFINITY,
            ecn_window_end: 0,
        }
    }

    fn clamp(&mut self, min_cwnd: u64) {
        if self.cwnd < min_cwnd as f64 {
            self.cwnd = min_cwnd as f64;
        }
    }
}

impl Cca for Reno {
    fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    fn ssthresh(&self) -> u64 {
        if self.ssthresh.is_finite() {
            self.ssthresh as u64
        } else {
            u64::MAX
        }
    }

    fn on_ack(&mut self, ctx: &CcaCtx, newly_acked: u64, ece: bool, _rtt: Option<SimTime>) {
        if ece {
            if ctx.snd_una >= self.ecn_window_end {
                // RFC 3168: one halving per window on ECN.
                self.cwnd /= 2.0;
                self.clamp(ctx.min_cwnd);
                self.ssthresh = self.cwnd;
                self.ecn_window_end = ctx.snd_nxt;
            }
            // No growth for the rest of the CWR window.
            return;
        }
        if ctx.in_recovery || ctx.snd_una < self.ecn_window_end {
            return;
        }
        if self.cwnd < self.ssthresh {
            self.cwnd += newly_acked as f64;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
        } else {
            // Increment capped at acked bytes (sane for sub-MSS windows).
            let inc = (ctx.mss as f64) * (newly_acked as f64) / self.cwnd;
            self.cwnd += inc.min(newly_acked as f64);
        }
    }

    fn on_enter_recovery(&mut self, ctx: &CcaCtx) {
        self.cwnd /= 2.0;
        self.clamp(ctx.min_cwnd);
        self.ssthresh = self.cwnd;
    }

    fn on_timeout(&mut self, ctx: &CcaCtx) {
        self.ssthresh = (self.cwnd / 2.0).max(ctx.min_cwnd as f64);
        self.cwnd = ctx.min_cwnd as f64;
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cca::test_ctx;

    const MSS: u64 = 1446;

    #[test]
    fn slow_start_exponential() {
        let mut r = Reno::new(2 * MSS);
        let mut ctx = test_ctx(0);
        ctx.snd_nxt = 100 * MSS;
        r.on_ack(&ctx, 2 * MSS, false, None);
        assert_eq!(r.cwnd(), 4 * MSS);
        r.on_ack(&ctx, 4 * MSS, false, None);
        assert_eq!(r.cwnd(), 8 * MSS);
    }

    #[test]
    fn slow_start_capped_at_ssthresh() {
        let mut r = Reno::new(2 * MSS);
        r.ssthresh = 5.0 * MSS as f64;
        let ctx = test_ctx(0);
        r.on_ack(&ctx, 100 * MSS, false, None);
        assert_eq!(r.cwnd(), 5 * MSS);
    }

    #[test]
    fn ecn_halves_once_per_window() {
        let mut r = Reno::new(40 * MSS);
        let mut ctx = test_ctx(0);
        ctx.snd_una = 10 * MSS;
        ctx.snd_nxt = 50 * MSS;
        r.on_ack(&ctx, MSS, true, None);
        assert_eq!(r.cwnd(), 20 * MSS);
        // Same window: ignored.
        ctx.snd_una = 12 * MSS;
        r.on_ack(&ctx, MSS, true, None);
        assert_eq!(r.cwnd(), 20 * MSS);
        // Next window: cuts again.
        ctx.snd_una = 50 * MSS;
        ctx.snd_nxt = 80 * MSS;
        r.on_ack(&ctx, MSS, true, None);
        assert_eq!(r.cwnd(), 10 * MSS);
    }

    #[test]
    fn recovery_and_timeout() {
        let mut r = Reno::new(16 * MSS);
        let ctx = test_ctx(0);
        r.on_enter_recovery(&ctx);
        assert_eq!(r.cwnd(), 8 * MSS);
        r.on_timeout(&ctx);
        assert_eq!(r.cwnd(), MSS);
        assert_eq!(r.ssthresh(), 4 * MSS);
    }

    #[test]
    fn floor_enforced() {
        let mut r = Reno::new(MSS);
        let mut ctx = test_ctx(0);
        for i in 0..10u64 {
            ctx.snd_una = i * 100 * MSS;
            ctx.snd_nxt = ctx.snd_una + MSS;
            r.on_ack(&ctx, MSS, true, None);
        }
        assert_eq!(r.cwnd(), MSS);
    }
}
