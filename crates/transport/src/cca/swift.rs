//! Swift-like delay-based congestion control (Kumar et al., SIGCOMM 2020),
//! the paper's §5.2 point of comparison for very-high-degree incast.
//!
//! The essentials reproduced here:
//!
//! - the congestion signal is **delay**: each ACK's RTT sample is compared
//!   to a target; below target the window grows additively, above target it
//!   decreases multiplicatively in proportion to the excess delay (at most
//!   once per window),
//! - the window is **fractional**: it may fall far below 1 MSS, in which
//!   case the sender's pacing mode transmits one packet every
//!   `RTT × MSS / cwnd` (enable [`crate::config::TcpConfig::pacing`]),
//! - sub-MSS growth is scaled by the square of the window so deeply paced
//!   flows probe gently.
//!
//! Delay responds to *any* queueing, immediately and in proportion — unlike
//! DCTCP's alpha-gated cuts, which are weak for a flow whose alpha has
//! decayed. That difference is exactly why Swift survives O(10k) incasts
//! where window DCTCP collapses (bench `swift_pacing`).

use super::{Cca, CcaCtx};
use simnet::SimTime;

/// Swift-like delay-based congestion control.
#[derive(Debug)]
pub struct SwiftLike {
    cwnd: f64,
    /// Target end-to-end delay.
    target: SimTime,
    /// Additive increase per RTT, in MSS.
    ai: f64,
    /// Maximum multiplicative-decrease strength.
    beta: f64,
    /// End of the current reaction window (one decrease per window).
    window_end: u64,
}

impl SwiftLike {
    /// Creates the algorithm with the given initial window (bytes) and
    /// delay target.
    pub fn new(init_cwnd: u64, target: SimTime) -> Self {
        assert!(target > SimTime::ZERO, "zero delay target");
        SwiftLike {
            cwnd: init_cwnd as f64,
            target,
            ai: 1.0,
            beta: 0.8,
            window_end: 0,
        }
    }

    /// The delay target.
    pub fn target(&self) -> SimTime {
        self.target
    }

    fn clamp(&mut self, min_cwnd: u64) {
        if self.cwnd < min_cwnd as f64 {
            self.cwnd = min_cwnd as f64;
        }
    }

    fn grow(&mut self, ctx: &CcaCtx, newly_acked: u64) {
        let mss = ctx.mss as f64;
        if self.cwnd < mss {
            // Sub-MSS: probe with the square of the window.
            let frac = self.cwnd / mss;
            self.cwnd += mss * frac * frac * (newly_acked as f64 / mss);
        } else {
            // Additive increase: ai MSS per RTT.
            self.cwnd += self.ai * mss * (newly_acked as f64) / self.cwnd;
        }
    }
}

impl Cca for SwiftLike {
    fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    fn ssthresh(&self) -> u64 {
        u64::MAX // Swift has no slow-start threshold notion.
    }

    fn on_ack(&mut self, ctx: &CcaCtx, newly_acked: u64, _ece: bool, rtt: Option<SimTime>) {
        if ctx.in_recovery {
            return;
        }
        let Some(rtt) = rtt else {
            return; // dupacks / unsampled acks carry no delay signal
        };
        if rtt <= self.target {
            self.grow(ctx, newly_acked);
        } else if ctx.snd_una >= self.window_end {
            // Multiplicative decrease proportional to the excess delay,
            // at most once per window.
            let excess = (rtt.as_ps() - self.target.as_ps()) as f64 / rtt.as_ps() as f64;
            let factor = (1.0 - self.beta * excess).max(1.0 - self.beta);
            self.cwnd *= factor;
            self.window_end = ctx.snd_nxt;
        }
        self.clamp(ctx.min_cwnd);
    }

    fn on_enter_recovery(&mut self, ctx: &CcaCtx) {
        self.cwnd /= 2.0;
        self.clamp(ctx.min_cwnd);
    }

    fn on_timeout(&mut self, ctx: &CcaCtx) {
        self.cwnd = ctx.min_cwnd as f64;
        self.window_end = ctx.snd_nxt;
    }

    fn name(&self) -> &'static str {
        "swift-like"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cca::test_ctx;

    const MSS: u64 = 1446;

    fn ctx() -> CcaCtx {
        let mut c = test_ctx(0);
        c.snd_nxt = 1000 * MSS;
        c.min_cwnd = MSS / 16;
        c
    }

    #[test]
    fn grows_below_target() {
        let mut s = SwiftLike::new(10 * MSS, SimTime::from_us(60));
        let before = s.cwnd();
        s.on_ack(&ctx(), 10 * MSS, false, Some(SimTime::from_us(30)));
        assert!(s.cwnd() > before);
    }

    #[test]
    fn shrinks_above_target_proportionally() {
        let mut s = SwiftLike::new(100 * MSS, SimTime::from_us(60));
        let mut c = ctx();
        c.snd_una = 1;
        // Mild excess -> mild cut.
        s.on_ack(&c, MSS, false, Some(SimTime::from_us(70)));
        let mild = s.cwnd() as f64 / (100 * MSS) as f64;
        assert!(mild > 0.85 && mild < 1.0, "mild cut {mild}");
        // Severe excess in the next window -> near-maximal cut.
        let mut s = SwiftLike::new(100 * MSS, SimTime::from_us(60));
        s.on_ack(&c, MSS, false, Some(SimTime::from_us(600)));
        let severe = s.cwnd() as f64 / (100 * MSS) as f64;
        assert!(severe < 0.35, "severe cut {severe}");
    }

    #[test]
    fn decrease_once_per_window() {
        let mut s = SwiftLike::new(100 * MSS, SimTime::from_us(60));
        let mut c = ctx();
        c.snd_una = 1;
        s.on_ack(&c, MSS, false, Some(SimTime::from_ms(1)));
        let after_first = s.cwnd();
        c.snd_una = 2; // still inside the reaction window
        s.on_ack(&c, MSS, false, Some(SimTime::from_ms(1)));
        assert_eq!(s.cwnd(), after_first);
    }

    #[test]
    fn window_can_fall_below_one_mss() {
        let mut s = SwiftLike::new(2 * MSS, SimTime::from_us(60));
        let mut c = ctx();
        for i in 0..40u64 {
            c.snd_una = (i + 1) * MSS;
            c.snd_nxt = c.snd_una; // every ack opens a new window
            s.on_ack(&c, MSS, false, Some(SimTime::from_ms(1)));
        }
        assert!(s.cwnd() < MSS, "cwnd {} should be sub-MSS", s.cwnd());
        assert!(s.cwnd() >= MSS / 16, "floor respected");
    }

    #[test]
    fn sub_mss_growth_is_gentle() {
        let mut s = SwiftLike::new(MSS / 16, SimTime::from_us(60));
        let c = ctx();
        s.on_ack(&c, MSS, false, Some(SimTime::from_us(10)));
        // One good ack from the floor must not snap back to 1 MSS.
        assert!(s.cwnd() < MSS / 8, "cwnd {}", s.cwnd());
    }

    #[test]
    fn dupacks_without_rtt_are_ignored() {
        let mut s = SwiftLike::new(10 * MSS, SimTime::from_us(60));
        let before = s.cwnd();
        s.on_ack(&ctx(), 0, false, None);
        assert_eq!(s.cwnd(), before);
    }

    #[test]
    fn loss_and_timeout() {
        let mut s = SwiftLike::new(10 * MSS, SimTime::from_us(60));
        let c = ctx();
        s.on_enter_recovery(&c);
        assert_eq!(s.cwnd(), 5 * MSS);
        s.on_timeout(&c);
        assert_eq!(s.cwnd(), MSS / 16);
    }

    #[test]
    #[should_panic]
    fn zero_target_rejected() {
        SwiftLike::new(MSS, SimTime::ZERO);
    }
}
